// The query language L end to end: parse, plan, execute, explain.
//
// Shows the textual surface syntax for every query shape, how the planner
// decides between the R*-tree and scanning, and how the [GK95] statistic
// predicates (MEAN/STD) combine with similarity predicates.

#include <cstdio>

#include "core/database.h"
#include "core/parser.h"
#include "workload/generators.h"

namespace {

void RunAndExplain(const simq::Database& db, const char* text) {
  std::printf("query> %s\n", text);
  const simq::Result<simq::QueryResult> result = db.ExecuteText(text);
  if (!result.ok()) {
    std::printf("  error: %s\n\n", result.status().ToString().c_str());
    return;
  }
  const simq::QueryResult& r = result.value();
  std::printf("  plan: %s | node accesses %lld | candidates %lld | exact "
              "checks %lld\n",
              r.stats.used_index ? "INDEX (Algorithm 2)" : "SEQUENTIAL SCAN",
              static_cast<long long>(r.stats.node_accesses),
              static_cast<long long>(r.stats.candidates),
              static_cast<long long>(r.stats.exact_checks));
  if (!r.matches.empty()) {
    std::printf("  answers (%zu):", r.matches.size());
    for (size_t i = 0; i < r.matches.size() && i < 6; ++i) {
      std::printf(" %s(%.2f)", r.matches[i].name.c_str(),
                  r.matches[i].distance);
    }
    std::printf(r.matches.size() > 6 ? " ...\n" : "\n");
  }
  if (!r.pairs.empty()) {
    std::printf("  pairs: %zu\n", r.pairs.size());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace simq;  // NOLINT: example brevity

  Database db;
  SIMQ_CHECK(db.CreateRelation("stocks").ok());
  workload::StockMarketOptions options;
  options.num_series = 800;
  SIMQ_CHECK(db.BulkLoad("stocks", workload::StockMarket(options)).ok());

  std::printf("=== similarity queries over 800 stocks (128 days) ===\n\n");

  // Plain range query: indexed.
  RunAndExplain(db, "RANGE stocks WITHIN 2.0 OF #stock100");

  // Transformed range query: the moving average runs through the index
  // because its multiplier is safe in the polar feature space (Theorem 3).
  RunAndExplain(db, "RANGE stocks WITHIN 1.0 OF #stock100 USING mavg(20)");

  // Shift/scale are invisible to normal-form distances ([GK95]): the
  // planner drops them and still uses the index.
  RunAndExplain(db,
                "RANGE stocks WITHIN 2.0 OF #stock100 USING "
                "shift(10)|scale(3)");

  // A non-spectral rule forces a scan.
  RunAndExplain(db, "RANGE stocks WITHIN 2.0 OF #stock100 USING despike(1)");

  // Statistic predicates narrow the pattern (and prune index subtrees).
  RunAndExplain(db,
                "RANGE stocks WITHIN 3.0 OF #stock100 MEAN 20 60 STD 0 15");

  // Nearest neighbors under a transformation.
  RunAndExplain(db, "NEAREST 5 stocks TO #stock100 USING mavg(20)");

  // Similarity join, smoothing both sides (Table 1 method d).
  RunAndExplain(db, "PAIRS stocks WITHIN 0.5 USING mavg(20)");

  // One-sided reversal: the hedging join r >< T_rev(r).
  RunAndExplain(db,
                "PAIRS stocks WITHIN 1.0 USING mavg(20) VS reverse|mavg(20)");

  // Raw distances bypass the normal-form machinery (scan only).
  RunAndExplain(db, "RANGE stocks WITHIN 30 OF #stock100 MODE RAW");

  // Errors are reported with positions.
  RunAndExplain(db, "RANGE stocks WITHIN oops OF #stock100");
  return 0;
}
