// Stock data analysis: re-enacts the motivating examples of the paper.
//
//   Example 1.1  two stocks that look different but share a trend: the
//                3-day moving average reveals the similarity (paper values:
//                D = 11.92 raw, D = 0.47 smoothed).
//   Example 2.1  shift -> scale (normal form) -> smooth pipeline reducing
//                the distance step by step.
//   Example 2.2  opposite movers: reversal plus smoothing.
//   Example 2.3  dissimilar trends stay dissimilar no matter how much you
//                smooth -- the reason transformations carry costs.
//
// Examples 2.1-2.3 used 1995 stock closes from a now-defunct FTP archive;
// here they run on the synthetic market generator (see DESIGN.md).

#include <cstdio>
#include <vector>

#include "core/transformation.h"
#include "ts/transforms.h"
#include "util/stats.h"
#include "workload/generators.h"

namespace {

double Distance(const std::vector<double>& a, const std::vector<double>& b) {
  return simq::EuclideanDistance(a, b);
}

}  // namespace

int main() {
  using namespace simq;  // NOLINT: example brevity

  // --- Example 1.1 -------------------------------------------------------
  const std::vector<double> s1 = {36, 38, 40, 38, 42, 38, 36, 36,
                                  37, 38, 39, 38, 40, 38, 37};
  const std::vector<double> s2 = {40, 37, 37, 42, 41, 35, 40, 35,
                                  34, 42, 38, 35, 45, 36, 34};
  std::printf("Example 1.1 (paper: D=11.92 raw, D=0.47 after mavg(3))\n");
  std::printf("  D(s1, s2)                 = %6.2f\n", Distance(s1, s2));
  std::printf("  D(mavg3(s1), mavg3(s2))   = %6.2f\n\n",
              Distance(CircularMovingAverage(s1, 3),
                       CircularMovingAverage(s2, 3)));

  // --- Example 2.1: shift, scale, smooth ---------------------------------
  workload::StockMarketOptions options;
  options.num_series = 100;
  const std::vector<TimeSeries> market = workload::StockMarket(options);
  // An engineered "similar after smoothing" pair (see generators.h layout).
  const std::vector<double>& bba = market[0].values;
  const std::vector<double>& ztr = market[1].values;

  std::printf("Example 2.1: two synthetic stocks, same trend, own noise\n");
  std::printf("  original:                 D = %7.2f\n", Distance(bba, ztr));
  const NormalFormResult nf_a = ToNormalForm(bba);
  const NormalFormResult nf_b = ToNormalForm(ztr);
  std::vector<double> shifted_a(bba.size());
  std::vector<double> shifted_b(ztr.size());
  for (size_t i = 0; i < bba.size(); ++i) {
    shifted_a[i] = bba[i] - nf_a.mean;
    shifted_b[i] = ztr[i] - nf_b.mean;
  }
  std::printf("  shifted (mean to 0):      D = %7.2f\n",
              Distance(shifted_a, shifted_b));
  std::printf("  scaled (normal forms):    D = %7.2f\n",
              Distance(nf_a.values, nf_b.values));
  std::printf("  20-day moving average:    D = %7.2f\n\n",
              Distance(CircularMovingAverage(nf_a.values, 20),
                       CircularMovingAverage(nf_b.values, 20)));

  // --- Example 2.2: opposite movers --------------------------------------
  const int inverse_base = 2 * options.num_smoothed_similar_pairs;
  const std::vector<double>& cc = market[static_cast<size_t>(inverse_base)]
                                      .values;
  const std::vector<double>& var =
      market[static_cast<size_t>(inverse_base + 1)].values;
  std::printf("Example 2.2: opposite price movements (hedging)\n");
  std::printf("  original:                 D = %7.2f\n", Distance(cc, var));
  const std::vector<double> nf_cc = ToNormalForm(cc).values;
  const std::vector<double> nf_var = ToNormalForm(var).values;
  std::printf("  normal forms:             D = %7.2f\n",
              Distance(nf_cc, nf_var));
  std::printf("  one side reversed:        D = %7.2f\n",
              Distance(ReverseSeries(nf_var), nf_cc));
  std::printf("  reversed + mavg(20):      D = %7.2f\n\n",
              Distance(CircularMovingAverage(ReverseSeries(nf_var), 20),
                       CircularMovingAverage(nf_cc, 20)));

  // --- Example 2.3: genuinely different trends stay different ------------
  const std::vector<double> nf_x =
      ToNormalForm(market[60].values).values;  // two background stocks from
  const std::vector<double> nf_y =
      ToNormalForm(market[61].values).values;  // different sectors
  std::printf("Example 2.3: dissimilar trends resist smoothing\n");
  std::printf("  normal forms:             D = %7.2f\n",
              Distance(nf_x, nf_y));
  std::vector<double> smooth_x = nf_x;
  std::vector<double> smooth_y = nf_y;
  for (int round = 1; round <= 10; ++round) {
    smooth_x = CircularMovingAverage(smooth_x, 20);
    smooth_y = CircularMovingAverage(smooth_y, 20);
    if (round == 1 || round == 2 || round == 3 || round == 10) {
      std::printf("  after %2d x mavg(20):      D = %7.2f\n", round,
                  Distance(smooth_x, smooth_y));
    }
  }
  std::printf(
      "\n  (distances shrink slowly: repeated smoothing flattens everything\n"
      "   eventually, which is why the framework charges costs per rule --\n"
      "   Section 2 and Equation 10 of the paper.)\n");
  return 0;
}
