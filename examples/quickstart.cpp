// Quickstart: build a similarity database, run range / nearest-neighbor /
// textual queries with transformations.
//
//   $ ./quickstart
//
// Walks through the core public API in ~60 lines: Database, TimeSeries,
// Query, and the textual query language.

#include <cstdio>

#include "core/database.h"
#include "core/transformation.h"
#include "workload/generators.h"

int main() {
  using namespace simq;  // NOLINT: example brevity

  // 1. A database holds relations of equal-length series, each indexed by
  //    an R*-tree over normal-form DFT features (the paper's 6-d layout).
  Database db;
  SIMQ_CHECK(db.CreateRelation("stocks").ok());

  // 2. Load 500 synthetic random-walk "stocks" (128 trading days each).
  const std::vector<TimeSeries> series =
      workload::RandomWalkSeries(/*count=*/500, /*length=*/128, /*seed=*/1);
  SIMQ_CHECK(db.BulkLoad("stocks", series).ok());

  // 3. Range query: series whose normal form is within 2.0 of walk42's.
  Query range;
  range.kind = QueryKind::kRange;
  range.relation = "stocks";
  range.query_series.name = "walk42";
  range.epsilon = 2.0;
  const QueryResult range_result = db.Execute(range).value();
  std::printf("series within 2.0 of walk42 (normal-form distance):\n");
  for (const Match& match : range_result.matches) {
    std::printf("  %-8s distance %.3f\n", match.name.c_str(),
                match.distance);
  }
  std::printf("  [executed via %s, %lld R-tree node accesses, %lld exact "
              "checks]\n\n",
              range_result.stats.used_index ? "index" : "scan",
              static_cast<long long>(range_result.stats.node_accesses),
              static_cast<long long>(range_result.stats.exact_checks));

  // 4. The same query with a transformation: compare 20-day moving
  //    averages instead of the raw normal forms. The moving average is
  //    evaluated through the index (Theorem 3 + Algorithm 2 of the paper).
  range.transform = std::shared_ptr<const TransformationRule>(
      MakeMovingAverageRule(20).release());
  range.epsilon = 1.0;
  const QueryResult smoothed = db.Execute(range).value();
  std::printf("series whose 20-day moving average is within 1.0:\n");
  for (const Match& match : smoothed.matches) {
    std::printf("  %-8s distance %.3f\n", match.name.c_str(),
                match.distance);
  }

  // 5. Nearest neighbors, via the textual query language.
  const QueryResult nearest =
      db.ExecuteText("NEAREST 5 stocks TO #walk42 USING mavg(20)").value();
  std::printf("\n5 nearest to walk42 under mavg(20):\n");
  for (const Match& match : nearest.matches) {
    std::printf("  %-8s distance %.3f\n", match.name.c_str(),
                match.distance);
  }

  // 6. Similarity join: all pairs of opposite movers (reverse transform).
  const QueryResult pairs =
      db.ExecuteText("PAIRS stocks WITHIN 3.0 USING reverse|mavg(20)")
          .value();
  std::printf("\nhedging pairs (reverse + smoothing) within 3.0: %zu\n",
              pairs.pairs.size());
  return 0;
}
