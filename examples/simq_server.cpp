// simq_server: the SIMQNET1 network server over a QueryService.
//
// Loads a workload (the 1067x128 stock market by default, so simq_client's
// Table-1 queries work out of the box), binds a TCP port, and serves the
// binary protocol (docs/PROTOCOL.md) until SIGTERM/SIGINT -- which drains
// in-flight queries, sends goodbye frames, and (when --wal-dir is given)
// checkpoints the WAL before exiting.
//
//   simq_server [--port N] [--relation NAME] [--gen COUNT LENGTH]
//               [--wal-dir DIR] [--deadline-ms D] [--admission-timeout-ms A]
//               [--metrics-port N] [--slow-query-log PATH]
//               [--slow-query-threshold-ms T] [--trace-sample-every N]
//               [--watchdog-stall-ms W] [--flight-dump PATH]
//
// With --port 0 (the default) the kernel picks a free port; the server
// prints the choice on a "listening on port N" line, which scripts parse.
// --metrics-port starts the Prometheus-style scrape endpoint
// (obs/http_exporter.h) and prints "metrics on port N" the same way
// (tools/check_metrics.py parses it), also serving /statements (the
// statements table as JSON) and /flightrecorder (the flight recorder as
// JSONL); --slow-query-log appends one JSON line per traced query past
// the threshold (obs/slow_query_log.h).
//
// The process flight recorder is always on: SIGUSR1 dumps it to the
// crash-dump path and continues, and any fatal signal / std::terminate
// dumps it before dying. --flight-dump sets that path explicitly; with
// --wal-dir it defaults to <wal-dir>/simq.flight.jsonl.
// --watchdog-stall-ms W arms the stall watchdog: if queries are pending
// but none completes for W ms, the recorder is dumped automatically.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/sharded_relation.h"
#include "core/wal.h"
#include "net/server.h"
#include "obs/flight_recorder.h"
#include "obs/http_exporter.h"
#include "obs/statements.h"
#include "service/query_service.h"
#include "workload/generators.h"

namespace simq {
namespace {

int Main(int argc, char** argv) {
  uint16_t port = 0;
  std::string relation = "stocks";
  int gen_count = 0;
  int gen_length = 0;
  std::string wal_dir;
  double deadline_ms = 0.0;
  double admission_timeout_ms = 250.0;
  int metrics_port = -1;  // -1 = no scrape endpoint; 0 = ephemeral port
  std::string slow_query_log;
  double slow_query_threshold_ms = 100.0;
  int trace_sample_every = 0;
  double watchdog_stall_ms = 0.0;  // 0 = watchdog off
  std::string flight_dump;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      port = static_cast<uint16_t>(std::atoi(next("--port")));
    } else if (arg == "--relation") {
      relation = next("--relation");
    } else if (arg == "--gen") {
      gen_count = std::atoi(next("--gen"));
      gen_length = std::atoi(next("--gen"));
    } else if (arg == "--wal-dir") {
      wal_dir = next("--wal-dir");
    } else if (arg == "--deadline-ms") {
      deadline_ms = std::atof(next("--deadline-ms"));
    } else if (arg == "--admission-timeout-ms") {
      admission_timeout_ms = std::atof(next("--admission-timeout-ms"));
    } else if (arg == "--metrics-port") {
      metrics_port = std::atoi(next("--metrics-port"));
    } else if (arg == "--slow-query-log") {
      slow_query_log = next("--slow-query-log");
    } else if (arg == "--slow-query-threshold-ms") {
      slow_query_threshold_ms = std::atof(next("--slow-query-threshold-ms"));
    } else if (arg == "--trace-sample-every") {
      trace_sample_every = std::atoi(next("--trace-sample-every"));
    } else if (arg == "--watchdog-stall-ms") {
      watchdog_stall_ms = std::atof(next("--watchdog-stall-ms"));
    } else if (arg == "--flight-dump") {
      flight_dump = next("--flight-dump");
    } else {
      std::fprintf(stderr,
                   "usage: simq_server [--port N] [--relation NAME] "
                   "[--gen COUNT LENGTH] [--wal-dir DIR] [--deadline-ms D] "
                   "[--admission-timeout-ms A] [--metrics-port N] "
                   "[--slow-query-log PATH] [--slow-query-threshold-ms T] "
                   "[--trace-sample-every N] [--watchdog-stall-ms W] "
                   "[--flight-dump PATH]\n");
      return 2;
    }
  }

  ServiceOptions service_options;
  service_options.default_deadline_ms = deadline_ms;
  service_options.admission_timeout_ms = admission_timeout_ms;
  service_options.trace_sample_every = trace_sample_every;
  service_options.watchdog_stall_after_ms = watchdog_stall_ms;
  if (!slow_query_log.empty()) {
    service_options.slow_query_log_path = slow_query_log;
    service_options.slow_query_threshold_ms = slow_query_threshold_ms;
    // Only traced executions can reach the slow-query log; if the caller
    // asked for the log but not for sampling, trace everything.
    if (service_options.trace_sample_every == 0) {
      service_options.trace_sample_every = 1;
    }
  }
  if (!wal_dir.empty()) {
    service_options.snapshot_path = wal_dir + "/simq.snapshot";
    service_options.wal_path = wal_dir + "/simq.wal";
  }

  // Recover from a prior run's snapshot + WAL when durability is on;
  // otherwise start from an empty in-memory database.
  Database db(FeatureConfig(), RTree::Options(), ShardingOptions::FromEnv());
  if (!wal_dir.empty()) {
    Result<Database> recovered =
        OpenDurableDatabase(FeatureConfig(), service_options.snapshot_path,
                            service_options.wal_path, nullptr);
    if (recovered.ok()) {
      db = std::move(recovered).value();
    } else {
      std::fprintf(stderr, "recovery failed: %s\n",
                   recovered.status().ToString().c_str());
      return 1;
    }
  }
  QueryService service(std::move(db), service_options);

  // Black box: the process recorder dumps on SIGUSR1, on any fatal
  // signal, and when the stall watchdog trips. The dump lands next to
  // the WAL unless --flight-dump says otherwise.
  obs::FlightRecorder& flight = obs::FlightRecorder::Global();
  if (flight_dump.empty() && !wal_dir.empty()) {
    flight_dump = wal_dir + "/simq.flight.jsonl";
  }
  if (!flight_dump.empty()) {
    flight.SetCrashDumpPath(flight_dump);
    std::printf("flight-recorder dump path: %s\n", flight_dump.c_str());
  }
  obs::FlightRecorder::InstallCrashHandlers(&flight);

  if (service.RelationEpoch(relation) == 0 &&
      service.database_unlocked().GetRelation(relation) == nullptr) {
    Status status = service.CreateRelation(relation);
    if (status.ok()) {
      status = gen_count > 0
                   ? service.BulkLoad(relation, workload::RandomWalkSeries(
                                                    gen_count, gen_length, 42))
                   : service.BulkLoad(relation,
                                      workload::StockMarket(
                                          workload::StockMarketOptions()));
    }
    if (!status.ok()) {
      std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("loaded %s workload into '%s'\n",
                gen_count > 0 ? "random-walk" : "stock", relation.c_str());
  } else {
    std::printf("serving recovered relation '%s'\n", relation.c_str());
  }

  net::NetServerOptions net_options;
  net_options.port = port;
  net::NetServer server(&service, net_options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  server.EnableSignalShutdown();

  // Prometheus-style scrape endpoint; RefreshScrapeGauges before each
  // render so every scrape -- not only stats() calls -- sees current
  // delta, cache, and statements gauges.
  obs::MetricsHttpExporter exporter(
      service.metrics_registry(),
      [&service] { service.RefreshScrapeGauges(); });
  exporter.AddHandler("/statements", [&service] {
    obs::MetricsHttpExporter::Response response;
    response.content_type = "application/json";
    response.body =
        obs::RenderStatementsJson(service.statements()->Top(0));
    return response;
  });
  exporter.AddHandler("/flightrecorder", [&service] {
    obs::MetricsHttpExporter::Response response;
    response.content_type = "application/x-ndjson";
    response.body = service.flight_recorder()->DumpJsonl();
    return response;
  });
  exporter.SetHealthCheck([&service](std::string* detail) {
    const ServiceStats probe = service.stats();
    if (probe.wal_failures > 0) {
      *detail = "degraded: " + std::to_string(probe.wal_failures) +
                " wal append failures";
      return false;
    }
    return true;
  });
  if (metrics_port >= 0) {
    if (!exporter.Start(static_cast<uint16_t>(metrics_port))) {
      std::fprintf(stderr, "metrics endpoint failed to bind port %d\n",
                   metrics_port);
      return 1;
    }
    std::printf("metrics on port %u\n", exporter.port());
  }
  if (!slow_query_log.empty()) {
    std::printf("slow-query log: %s (threshold %.1f ms)\n",
                slow_query_log.c_str(), slow_query_threshold_ms);
  }

  std::printf("listening on port %u\n", server.port());
  std::fflush(stdout);
  server.Run();
  exporter.Stop();

  const net::NetServerStats stats = server.stats();
  std::printf(
      "shutdown: accepted=%lld shed=%lld timed_out=%lld frames_in=%lld "
      "frames_out=%lld protocol_errors=%lld bytes_in=%lld bytes_out=%lld\n",
      static_cast<long long>(stats.connections_accepted),
      static_cast<long long>(stats.connections_shed),
      static_cast<long long>(stats.connections_timed_out),
      static_cast<long long>(stats.frames_in),
      static_cast<long long>(stats.frames_out),
      static_cast<long long>(stats.protocol_errors),
      static_cast<long long>(stats.bytes_in),
      static_cast<long long>(stats.bytes_out));
  return 0;
}

}  // namespace
}  // namespace simq

int main(int argc, char** argv) { return simq::Main(argc, argv); }
