// Subsequence matching with the [FRM94] ST-index: find where a short
// pattern occurs inside long series ("stocks that increased linearly up to
// October 1987, and then crashed" -- the intro's motivating query needs
// subsequence, not whole-sequence, matching).

#include <cstdio>

#include "subseq/subsequence_index.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "workload/generators.h"

int main() {
  using namespace simq;  // NOLINT: example brevity

  // Four years of per-minute-ish data: 4 series x 100k samples.
  const std::vector<TimeSeries> data =
      workload::RandomWalkSeries(4, 100000, 20261987);

  SubsequenceIndex::Options options;
  options.window = 128;       // pattern length being matched
  options.num_coefficients = 3;
  options.packing = TrailPacking::kAdaptive;
  SubsequenceIndex index(options);

  Stopwatch build;
  for (const TimeSeries& ts : data) {
    SIMQ_CHECK(index.AddSeries(ts).ok());
  }
  std::printf(
      "indexed %lld windows (%lld sub-trail MBRs, R-tree height %d) in %.0f "
      "ms\n\n",
      static_cast<long long>(index.num_windows()),
      static_cast<long long>(index.num_trails()), index.rtree().height(),
      build.ElapsedMillis());

  // The pattern: a "crash" -- a stored window from series 2 with noise.
  Random rng(7);
  std::vector<double> pattern(data[2].values.begin() + 55000,
                              data[2].values.begin() + 55128);
  for (double& v : pattern) {
    v += rng.UniformDouble(-0.05, 0.05);
  }

  SubsequenceIndex::SearchStats stats;
  Stopwatch search;
  const auto matches = index.RangeSearch(pattern, 3.0, &stats);
  const double index_ms = search.ElapsedMillis();

  std::printf("pattern matches within 3.0:\n");
  for (const auto& match : matches) {
    std::printf("  series %lld offset %6d  distance %.3f\n",
                static_cast<long long>(match.series_id), match.offset,
                match.distance);
  }
  std::printf(
      "\n  ST-index: %.2f ms -- %lld of %lld windows verified (%.3f%%), "
      "%lld node accesses\n",
      index_ms, static_cast<long long>(stats.windows_checked),
      static_cast<long long>(index.num_windows()),
      100.0 * static_cast<double>(stats.windows_checked) /
          static_cast<double>(index.num_windows()),
      static_cast<long long>(stats.node_accesses));

  search.Restart();
  const auto scan_matches = index.ScanSearch(pattern, 3.0);
  std::printf("  offset scan: %.2f ms -- same %zu matches\n",
              search.ElapsedMillis(), scan_matches.size());
  SIMQ_CHECK_EQ(matches.size(), scan_matches.size());
  return 0;
}
