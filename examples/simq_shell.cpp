// simq_shell: an interactive shell over the concurrent query service.
//
// Lines are either dot-commands (data management, prepared statements,
// service stats, telemetry) or query text in the language of
// core/parser.h, with the EXPLAIN prefix rendering the plan (strategy,
// traversal engine, cache status, relation epoch) instead of the answer
// rows and EXPLAIN ANALYZE additionally printing the execution's span
// tree with actual per-stage wall times. `.trace on|N` forces/samples
// tracing for ordinary queries, `.metrics` dumps the service's metric
// registry in Prometheus text exposition. See examples/README.md for a
// quickstart transcript.

#include <algorithm>
#include <cstdio>
#include <cstdint>
#include <exception>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/persistence.h"
#include "core/sharded_relation.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/resource_usage.h"
#include "obs/statements.h"
#include "obs/trace.h"
#include "service/query_service.h"
#include "workload/generators.h"

namespace simq {
namespace {

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  .gen <relation> <count> <length> [seed]  create + bulk-load random"
      " walks\n"
      "  .stock <relation>                        bulk-load the 1067x128"
      " stock workload\n"
      "  .load <path> | .save <path> [version]    snapshot restore / save\n"
      "  .relations                               list relations and"
      " epochs\n"
      "  .prepare <name> <query text>             prepare a statement\n"
      "  .exec <name> [eps=<v>] [k=<n>] [of=#<s>] execute a prepared"
      " statement\n"
      "  .stats                                   service counters +"
      " latency percentiles\n"
      "  .metrics                                 metric registry in"
      " Prometheus text format\n"
      "  .top [n]                                 statements table, top n"
      " by total time (0=all)\n"
      "  .usage                                   this session's cumulative"
      " resource usage\n"
      "  .flight                                  dump the flight recorder"
      " as JSONL\n"
      "  .trace on|off|N                          trace every query /"
      " none / 1-in-N\n"
      "  .filter on|off [bits]                    quantized filter engine"
      " toggle\n"
      "  .help | .quit\n"
      "anything else is parsed as a query; prefix with EXPLAIN to see the"
      " plan, or\n"
      "EXPLAIN ANALYZE to run it and print the span tree with actual"
      " timings.\n"
      "query language reference (grammar + worked examples):"
      " docs/QUERY_LANGUAGE.md\n");
}

void PrintPlan(const ServiceResult& result) {
  std::printf(
      "plan: strategy=%s engine=%s filter=%s shards=%d cache=%s epoch=%llu "
      "generation=%llu delta_rows=%lld prepared=%s fingerprint=%016llx\n",
      result.plan.strategy.c_str(), result.plan.engine.c_str(),
      result.plan.filter.c_str(), result.plan.shards,
      result.plan.cache_hit ? "hit" : "miss",
      static_cast<unsigned long long>(result.plan.relation_epoch),
      static_cast<unsigned long long>(result.plan.generation),
      static_cast<long long>(result.plan.delta_rows),
      result.plan.prepared ? "yes" : "no",
      static_cast<unsigned long long>(result.plan.fingerprint));
  std::printf(
      "stats: node_accesses=%lld candidates=%lld exact_checks=%lld "
      "(%.3f ms)\n",
      static_cast<long long>(result.result.stats.node_accesses),
      static_cast<long long>(result.result.stats.candidates),
      static_cast<long long>(result.result.stats.exact_checks),
      result.elapsed_ms);
  if (result.plan.filter != "none") {
    std::printf("filter: scanned=%lld survivors=%lld pruned=%.1f%%\n",
                static_cast<long long>(result.plan.filter_scanned),
                static_cast<long long>(result.plan.candidates),
                100.0 * result.plan.pruning_ratio);
  }
  // Per-shard cardinalities: the estimated column is planner-side, the
  // actual columns come from the execution -- the same rows back both
  // EXPLAIN and EXPLAIN ANALYZE, so the columns always line up. Empty on
  // cache hits replaying a pre-observability entry.
  if (!result.plan.per_shard.empty()) {
    std::printf("  %5s %10s %12s %12s %12s\n", "shard", "rows",
                "est_cand", "candidates", "exact");
    for (const ExecutionStats::ShardStats& shard : result.plan.per_shard) {
      std::printf("  %5d %10lld %12lld %12lld %12lld\n", shard.shard,
                  static_cast<long long>(shard.rows),
                  static_cast<long long>(shard.estimated_candidates),
                  static_cast<long long>(shard.candidates),
                  static_cast<long long>(shard.exact_checks));
    }
  }
  // EXPLAIN ANALYZE: the span tree with actual per-stage wall times.
  if (result.trace != nullptr) {
    std::fputs(obs::RenderTraceTree(result.trace->spans()).c_str(), stdout);
  }
}

void PrintResult(const ServiceResult& result, bool explain) {
  if (explain) {
    PrintPlan(result);
    return;
  }
  const QueryResult& answer = result.result;
  if (!answer.pairs.empty() || answer.matches.empty()) {
    std::printf("%zu pairs, %zu matches", answer.pairs.size(),
                answer.matches.size());
  } else {
    std::printf("%zu matches", answer.matches.size());
  }
  std::printf(" in %.3f ms%s\n", result.elapsed_ms,
              result.plan.cache_hit ? " (cached)" : "");
  const size_t show = std::min<size_t>(answer.matches.size(), 10);
  for (size_t i = 0; i < show; ++i) {
    std::printf("  %6lld  %-16s  %.6f\n",
                static_cast<long long>(answer.matches[i].id),
                answer.matches[i].name.c_str(), answer.matches[i].distance);
  }
  if (answer.matches.size() > show) {
    std::printf("  ... %zu more\n", answer.matches.size() - show);
  }
  const size_t show_pairs = std::min<size_t>(answer.pairs.size(), 10);
  for (size_t i = 0; i < show_pairs; ++i) {
    std::printf("  (%lld, %lld)  %.6f\n",
                static_cast<long long>(answer.pairs[i].first),
                static_cast<long long>(answer.pairs[i].second),
                answer.pairs[i].distance);
  }
  if (answer.pairs.size() > show_pairs) {
    std::printf("  ... %zu more\n", answer.pairs.size() - show_pairs);
  }
  // `.trace on|N` elected this execution: show where the time went.
  if (result.trace != nullptr) {
    std::fputs(obs::RenderTraceTree(result.trace->spans()).c_str(), stdout);
  }
}

void PrintStats(const ServiceStats& stats) {
  std::printf(
      "queries=%lld (prepared=%lld, parses=%lld)  mutations=%lld  "
      "admission_waits=%lld\n",
      static_cast<long long>(stats.queries),
      static_cast<long long>(stats.prepared_executions),
      static_cast<long long>(stats.cold_parses),
      static_cast<long long>(stats.mutations),
      static_cast<long long>(stats.admission_waits));
  const int64_t lookups = stats.cache.hits + stats.cache.misses;
  std::printf(
      "cache: hits=%lld misses=%lld hit_rate=%.1f%% entries_invalidated="
      "%lld cache_bytes=%lld\n",
      static_cast<long long>(stats.cache.hits),
      static_cast<long long>(stats.cache.misses),
      lookups > 0 ? 100.0 * static_cast<double>(stats.cache.hits) /
                        static_cast<double>(lookups)
                  : 0.0,
      static_cast<long long>(stats.cache.invalidated_entries),
      static_cast<long long>(stats.cache.bytes));
  std::printf(
      "lifecycle: timeouts=%lld cancellations=%lld overloaded=%lld "
      "degraded=%lld\n",
      static_cast<long long>(stats.timeouts),
      static_cast<long long>(stats.cancellations),
      static_cast<long long>(stats.overloaded),
      static_cast<long long>(stats.degraded_queries));
  if (stats.wal_appends > 0 || stats.wal_failures > 0 ||
      stats.checkpoints > 0) {
    std::printf("wal: appends=%lld failures=%lld checkpoints=%lld\n",
                static_cast<long long>(stats.wal_appends),
                static_cast<long long>(stats.wal_failures),
                static_cast<long long>(stats.checkpoints));
  }
  std::printf("latency: p50=%.3f ms  p95=%.3f ms  p99=%.3f ms\n",
              stats.latency_p50_ms, stats.latency_p95_ms,
              stats.latency_p99_ms);
  std::printf("sessions: open=%lld total=%lld\n",
              static_cast<long long>(stats.active_sessions),
              static_cast<long long>(stats.sessions_opened));
  const ServiceStats::NetStats& net = stats.net;
  if (net.connections_accepted > 0 || net.connections_shed > 0 ||
      net.requests_shed > 0) {
    std::printf(
        "net: accepted=%lld active=%lld shed=%lld timed_out=%lld "
        "requests_shed=%lld bytes_in=%lld bytes_out=%lld\n",
        static_cast<long long>(net.connections_accepted),
        static_cast<long long>(net.connections_active),
        static_cast<long long>(net.connections_shed),
        static_cast<long long>(net.connections_timed_out),
        static_cast<long long>(net.requests_shed),
        static_cast<long long>(net.bytes_in),
        static_cast<long long>(net.bytes_out));
  }
}

// A `key=value`-style token of the .exec command; returns true on match.
bool ConsumeOption(const std::string& token, const std::string& key,
                   std::string* value) {
  if (token.rfind(key, 0) != 0) {
    return false;
  }
  *value = token.substr(key.size());
  return true;
}

// Strict numeric parsing for user input: the whole token must convert.
// std::stod/stoi throw on garbage ("eps=abc") and would unwind the REPL;
// the shell must print a usage error and keep the session alive instead.
bool ParseDoubleArg(const std::string& text, double* out) {
  try {
    size_t consumed = 0;
    const double value = std::stod(text, &consumed);
    if (consumed != text.size()) {
      return false;
    }
    *out = value;
    return true;
  } catch (...) {
    return false;
  }
}

bool ParseIntArg(const std::string& text, int* out) {
  try {
    size_t consumed = 0;
    const int value = std::stoi(text, &consumed);
    if (consumed != text.size()) {
      return false;
    }
    *out = value;
    return true;
  } catch (...) {
    return false;
  }
}

class Shell {
 public:
  // SIMQ_SHARDS=<n> shards every relation's data plane n ways
  // (core/sharded_relation.h); EXPLAIN then reports the scatter width.
  Shell()
      : service_(std::make_unique<QueryService>(Database(
            FeatureConfig(), RTree::Options(), ShardingOptions::FromEnv()))),
        session_(service_->OpenSession()) {}

  // Returns false when the shell should exit.
  bool HandleLine(const std::string& line) {
    std::istringstream in(line);
    std::string head;
    if (!(in >> head)) {
      return true;  // blank line
    }
    if (head == ".quit" || head == ".exit") {
      return false;
    }
    if (head == ".help") {
      PrintHelp();
    } else if (head == ".gen") {
      CmdGenerate(in);
    } else if (head == ".stock") {
      CmdStock(in);
    } else if (head == ".load") {
      CmdLoad(in);
    } else if (head == ".save") {
      CmdSave(in);
    } else if (head == ".relations") {
      CmdRelations();
    } else if (head == ".prepare") {
      CmdPrepare(in, line);
    } else if (head == ".exec") {
      CmdExec(in);
    } else if (head == ".stats") {
      PrintStats(service_->stats());
    } else if (head == ".metrics") {
      CmdMetrics();
    } else if (head == ".top") {
      CmdTop(in);
    } else if (head == ".usage") {
      CmdUsage();
    } else if (head == ".flight") {
      CmdFlight();
    } else if (head == ".trace") {
      CmdTrace(in);
    } else if (head == ".filter") {
      CmdFilter(in);
    } else if (!head.empty() && head[0] == '.') {
      std::printf("unknown command '%s' (try .help)\n", head.c_str());
    } else {
      CmdQuery(line);
    }
    return true;
  }

 private:
  void CmdGenerate(std::istringstream& in) {
    std::string relation;
    int count = 0;
    int length = 0;
    uint64_t seed = 42;
    if (!(in >> relation >> count >> length)) {
      std::printf("usage: .gen <relation> <count> <length> [seed]\n");
      return;
    }
    in >> seed;
    Status status = service_->CreateRelation(relation);
    if (status.ok()) {
      status = service_->BulkLoad(
          relation, workload::RandomWalkSeries(count, length, seed));
    }
    if (!status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
      return;
    }
    std::printf("loaded %d random walks of length %d into '%s'\n", count,
                length, relation.c_str());
  }

  // Engine-wide filter toggle (Database::set_filter_engine): `.filter on
  // [bits]` routes every eligible scan through the quantized
  // filter-and-refine path; per-query MODE FILTERED / MODE EXACT still
  // override it. Safe here because the shell is single-threaded.
  void CmdFilter(std::istringstream& in) {
    std::string mode;
    if (!(in >> mode) || (mode != "on" && mode != "off")) {
      std::printf("usage: .filter on|off [bits_per_dim 4..8]\n");
      return;
    }
    Database& db = service_->mutable_database_unlocked();
    std::string bits_arg;
    if (in >> bits_arg) {
      int bits = 0;
      size_t consumed = 0;
      try {
        bits = std::stoi(bits_arg, &consumed);
      } catch (...) {
      }
      if (consumed != bits_arg.size() || bits < ScalarQuantizer::kMinBits ||
          bits > ScalarQuantizer::kMaxBits) {
        std::printf("bits_per_dim '%s' is invalid: expected an integer in "
                    "[%d, %d]\n",
                    bits_arg.c_str(), ScalarQuantizer::kMinBits,
                    ScalarQuantizer::kMaxBits);
        return;
      }
      FilterOptions options;
      options.bits_per_dim = bits;
      db.set_filter_options(options);
    }
    db.set_filter_engine(mode == "on" ? FilterEngine::kQuantized
                                      : FilterEngine::kExact);
    std::printf("filter engine: %s (bits_per_dim=%d)\n",
                mode == "on" ? "quantized" : "exact",
                db.filter_options().bits_per_dim);
  }

  // Full registry scrape, in the same text exposition the HTTP endpoint
  // serves; RefreshScrapeGauges first so the mirrored delta/cache/
  // statements gauges reflect this scrape's moment.
  void CmdMetrics() {
    service_->RefreshScrapeGauges();
    std::fputs(service_->metrics_registry()->RenderPrometheusText().c_str(),
               stdout);
  }

  // `.top [n]`: the statements table (pg_stat_statements-style), top n
  // rows by total time (default 10, 0 = all). The same Top() snapshot
  // backs the kStatements wire frame and the HTTP /statements endpoint.
  void CmdTop(std::istringstream& in) {
    int n = 10;
    std::string arg;
    if (in >> arg && (!ParseIntArg(arg, &n) || n < 0)) {
      std::printf("usage: .top [n]  (0 shows all)\n");
      return;
    }
    const std::vector<obs::StatementStats> rows =
        service_->statements()->Top(static_cast<size_t>(n));
    if (rows.empty()) {
      std::printf("no statements recorded yet\n");
      return;
    }
    std::printf("  %-16s %6s %4s %5s %10s %8s %8s %9s  %s\n", "fingerprint",
                "calls", "fail", "hits", "total_ms", "mean_ms", "p95_ms",
                "cpu_ms", "text");
    for (const obs::StatementStats& row : rows) {
      const double mean_ms =
          row.calls > 0 ? row.total_ms / static_cast<double>(row.calls) : 0.0;
      const double p95_ms =
          row.latency.count > 0 ? row.latency.Percentile(95.0) : 0.0;
      const int64_t failures =
          row.errors + row.timeouts + row.cancellations + row.sheds;
      std::printf(
          "  %016llx %6lld %4lld %5lld %10.3f %8.3f %8.3f %9.3f  %s\n",
          static_cast<unsigned long long>(row.fingerprint),
          static_cast<long long>(row.calls),
          static_cast<long long>(failures),
          static_cast<long long>(row.cache_hits), row.total_ms, mean_ms,
          p95_ms, static_cast<double>(row.total.cpu_ns) / 1e6,
          row.text.c_str());
    }
  }

  // `.usage`: this session's cumulative ResourceUsage roll-up.
  void CmdUsage() {
    const obs::ResourceUsage usage = session_->cumulative_usage();
    std::printf("{%s}\n", obs::FormatResourceUsageJson(usage).c_str());
  }

  // `.flight`: the flight recorder's current contents as JSONL -- the
  // same bytes HTTP /flightrecorder serves and the crash path writes.
  void CmdFlight() {
    std::fputs(service_->flight_recorder()->DumpJsonl().c_str(), stdout);
  }

  // `.trace on` traces every subsequent query, `.trace N` one in N,
  // `.trace off` none. Shell-side election: elected queries run with
  // ExecOptions::force_trace, so this is independent of the service's own
  // sampler and never changes the answer set.
  void CmdTrace(std::istringstream& in) {
    std::string mode;
    if (!(in >> mode)) {
      std::printf("usage: .trace on|off|N  (N traces 1 in N queries)\n");
      return;
    }
    if (mode == "on") {
      trace_every_ = 1;
    } else if (mode == "off") {
      trace_every_ = 0;
    } else {
      int every = 0;
      if (!ParseIntArg(mode, &every) || every < 1) {
        std::printf("usage: .trace on|off|N  (N traces 1 in N queries)\n");
        return;
      }
      trace_every_ = every;
    }
    trace_seq_ = 0;
    if (trace_every_ == 0) {
      std::printf("tracing off\n");
    } else if (trace_every_ == 1) {
      std::printf("tracing every query\n");
    } else {
      std::printf("tracing 1 in %d queries\n", trace_every_);
    }
  }

  // The ExecOptions for the next query under the `.trace` setting.
  ExecOptions NextExecOptions() {
    ExecOptions options;
    if (trace_every_ > 0) {
      options.force_trace = (trace_seq_++ % trace_every_) == 0;
    }
    return options;
  }

  void CmdStock(std::istringstream& in) {
    std::string relation;
    if (!(in >> relation)) {
      std::printf("usage: .stock <relation>\n");
      return;
    }
    Status status = service_->CreateRelation(relation);
    if (status.ok()) {
      status = service_->BulkLoad(
          relation, workload::StockMarket(workload::StockMarketOptions()));
    }
    if (!status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
      return;
    }
    std::printf("loaded the stock workload into '%s'\n", relation.c_str());
  }

  void CmdLoad(std::istringstream& in) {
    std::string path;
    if (!(in >> path)) {
      std::printf("usage: .load <path>\n");
      return;
    }
    Result<Database> loaded = LoadDatabase(path);
    if (!loaded.ok()) {
      std::printf("error: %s\n", loaded.status().ToString().c_str());
      return;
    }
    // Replace the whole service: prepared statements refer to the old
    // data and are dropped with the old session.
    session_.reset();
    statements_.clear();
    service_ = std::make_unique<QueryService>(std::move(loaded).value());
    session_ = service_->OpenSession();
    std::printf("loaded '%s'\n", path.c_str());
    CmdRelations();
  }

  void CmdSave(std::istringstream& in) {
    std::string path;
    int version = 3;
    if (!(in >> path)) {
      std::printf("usage: .save <path> [version 1..3]\n");
      return;
    }
    std::string version_arg;
    if (in >> version_arg && !ParseIntArg(version_arg, &version)) {
      std::printf("version '%s' is not an integer\n", version_arg.c_str());
      return;
    }
    // An unwritable path or unsupported version comes back as a Status
    // (kIoError / kInvalidArgument); the session stays alive either way,
    // and a failed save never leaves a partial file (core/persistence.h
    // writes a temp file and renames only after fsync).
    const Status status =
        SaveDatabase(service_->database_unlocked(), path, version);
    std::printf("%s\n", status.ok() ? "saved" : status.ToString().c_str());
  }

  void CmdRelations() {
    for (const std::string& name :
         service_->database_unlocked().RelationNames()) {
      const Relation* relation =
          service_->database_unlocked().GetRelation(name);
      std::printf("  %-16s %lld series x %d  (epoch %llu)\n", name.c_str(),
                  static_cast<long long>(relation->size()),
                  relation->series_length(),
                  static_cast<unsigned long long>(
                      service_->RelationEpoch(name)));
    }
  }

  void CmdPrepare(std::istringstream& in, const std::string& line) {
    std::string name;
    if (!(in >> name)) {
      std::printf("usage: .prepare <name> <query text>\n");
      return;
    }
    // Everything after the statement name is the query text; tellg points
    // just past the token the stream consumed.
    const std::streampos text_start = in.tellg();
    if (text_start < 0) {
      std::printf("usage: .prepare <name> <query text>\n");
      return;
    }
    const std::string text = line.substr(static_cast<size_t>(text_start));
    const Result<int64_t> statement = session_->Prepare(text);
    if (!statement.ok()) {
      std::printf("error: %s\n", statement.status().ToString().c_str());
      return;
    }
    statements_[name] = statement.value();
    std::printf("prepared '%s' as statement %lld\n", name.c_str(),
                static_cast<long long>(statement.value()));
  }

  void CmdExec(std::istringstream& in) {
    std::string name;
    if (!(in >> name)) {
      std::printf("usage: .exec <name> [eps=<v>] [k=<n>] [of=#<series>]\n");
      return;
    }
    const auto it = statements_.find(name);
    if (it == statements_.end()) {
      std::printf("no prepared statement named '%s'\n", name.c_str());
      return;
    }
    BindParams params;
    std::string token;
    while (in >> token) {
      std::string value;
      if (ConsumeOption(token, "eps=", &value)) {
        double eps = 0.0;
        if (!ParseDoubleArg(value, &eps)) {
          std::printf("eps '%s' is not a number\n", value.c_str());
          return;
        }
        params.epsilon = eps;
      } else if (ConsumeOption(token, "k=", &value)) {
        int k = 0;
        if (!ParseIntArg(value, &k)) {
          std::printf("k '%s' is not an integer\n", value.c_str());
          return;
        }
        params.k = k;
      } else if (ConsumeOption(token, "of=#", &value)) {
        params.series.emplace();
        params.series->name = value;
      } else {
        std::printf("unknown option '%s'\n", token.c_str());
        return;
      }
    }
    const Result<ServiceResult> result =
        session_->ExecutePrepared(it->second, params, NextExecOptions());
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      return;
    }
    PrintResult(result.value(), /*explain=*/false);
  }

  void CmdQuery(const std::string& text) {
    const Result<ServiceResult> result =
        session_->Execute(text, NextExecOptions());
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      return;
    }
    PrintResult(result.value(), result.value().plan.explain);
  }

  std::unique_ptr<QueryService> service_;
  std::unique_ptr<Session> session_;
  std::map<std::string, int64_t> statements_;
  int trace_every_ = 0;    // 0 = off, 1 = every query, N = 1 in N
  int64_t trace_seq_ = 0;  // shell-side election counter for `.trace N`
};

int Main() {
  std::printf("simq shell -- .help for commands, .quit to exit\n");
  Shell shell;
  std::string line;
  while (true) {
    std::printf("simq> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) {
      break;
    }
    // Last-resort guard: no input line may kill the REPL. Commands report
    // failures as Status already; this catches anything that still
    // escapes (e.g. an injected fault surfacing as an exception).
    try {
      if (!shell.HandleLine(line)) {
        break;
      }
    } catch (const std::exception& e) {
      std::printf("error: %s\n", e.what());
    }
  }
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace simq

int main() { return simq::Main(); }
