// Time warping (Example 1.2 and Appendix A): comparing series sampled at
// different rates.
//
// Sequence p is sampled every other day, sequence s daily. Warping p by 2
// (every value duplicated) makes them comparable. Appendix A shows the
// warp is a linear transformation on DFT coefficients, so it runs through
// the index like any other safe transformation -- across different series
// lengths.

#include <cstdio>

#include "core/database.h"
#include "core/transformation.h"
#include "ts/dft.h"
#include "ts/transforms.h"
#include "util/stats.h"
#include "workload/generators.h"

int main() {
  using namespace simq;  // NOLINT: example brevity

  // --- Example 1.2 --------------------------------------------------------
  const std::vector<double> p = {20, 21, 20, 23};
  const std::vector<double> s = {20, 20, 21, 21, 20, 20, 23, 23};
  std::printf("Example 1.2: p sampled every other day, s daily\n");
  std::printf("  warp_2(p) = ");
  for (const double v : TimeWarpSeries(p, 2)) {
    std::printf("%g ", v);
  }
  std::printf("\n  D(warp_2(p), s) = %.4f (identical)\n\n",
              EuclideanDistance(TimeWarpSeries(p, 2), s));

  // --- Appendix A: the warp as a spectral multiplier ----------------------
  std::printf("Appendix A: DFT_{2n}(warp_2(x))_f = a_f * DFT_n(x)_f\n");
  const std::vector<TimeSeries> walks = workload::RandomWalkSeries(1, 64, 3);
  const std::vector<double>& x = walks[0].values;
  const Spectrum base = Dft(x);
  const Spectrum warped = Dft(TimeWarpSeries(x, 2));
  const Spectrum multiplier = TimeWarpSpectrum(64, 2, 6);
  std::printf("  f   a_f * X_f            DFT(warp(x))_f       |error|\n");
  for (int f = 0; f < 6; ++f) {
    const Complex predicted =
        multiplier[static_cast<size_t>(f)] * base[static_cast<size_t>(f)];
    const Complex actual = warped[static_cast<size_t>(f)];
    std::printf("  %d   %8.4f%+8.4fi   %8.4f%+8.4fi   %.2e\n", f,
                predicted.real(), predicted.imag(), actual.real(),
                actual.imag(), std::abs(predicted - actual));
  }

  // --- Cross-length similarity queries through the index ------------------
  std::printf("\nIndexed query across sampling rates:\n");
  Database db;
  SIMQ_CHECK(db.CreateRelation("halfrate").ok());
  // 400 series sampled every other day (length 64).
  const std::vector<TimeSeries> slow =
      workload::RandomWalkSeries(400, 64, 17);
  SIMQ_CHECK(db.BulkLoad("halfrate", slow).ok());

  // The query pattern is a DAILY series (length 128): the warped, slightly
  // perturbed version of halfrate series #123.
  std::vector<double> daily_pattern =
      TimeWarpSeries(ToNormalForm(slow[123].values).values, 2);
  for (size_t i = 0; i < daily_pattern.size(); i += 7) {
    daily_pattern[i] += 0.01;  // mild noise so the match is not exact
  }

  Query query;
  query.kind = QueryKind::kRange;
  query.relation = "halfrate";
  query.query_series.literal = daily_pattern;
  query.query_prenormalized = true;
  query.epsilon = 0.5;
  query.transform = std::shared_ptr<const TransformationRule>(
      MakeTimeWarpRule(2).release());
  query.strategy = ExecutionStrategy::kIndex;

  const QueryResult result = db.Execute(query).value();
  std::printf(
      "  RANGE halfrate WITHIN 0.5 OF <daily pattern, length 128> USING "
      "warp(2)\n");
  for (const Match& match : result.matches) {
    std::printf("    %-8s  D(warp_2(x), pattern) = %.4f\n",
                match.name.c_str(), match.distance);
  }
  std::printf(
      "  [via %s: %lld node accesses, %lld candidates of %d series]\n",
      result.stats.used_index ? "index" : "scan",
      static_cast<long long>(result.stats.node_accesses),
      static_cast<long long>(result.stats.candidates), 400);
  return 0;
}
