// Hedging-pair discovery: the paper's T_rev spatial join.
//
// "Transformation T_rev can be used to obtain all the pairs of series that
//  move in opposite directions. This can be formulated ... as a spatial
//  join between r and T_rev(r)."  -- [RM97] §3.2
//
// Finds all pairs of stocks whose smoothed normal forms mirror each other:
// D( mavg20(nf(a)), -mavg20(nf(b)) ) <= eps, evaluated through the R*-tree
// with the reversal applied to the index on the fly.

#include <algorithm>
#include <cstdio>

#include "core/database.h"
#include "workload/generators.h"

int main() {
  using namespace simq;  // NOLINT: example brevity

  workload::StockMarketOptions options;
  options.num_series = 500;
  options.num_inverse_pairs = 6;
  const std::vector<TimeSeries> market = workload::StockMarket(options);

  Database db;
  SIMQ_CHECK(db.CreateRelation("stocks").ok());
  SIMQ_CHECK(db.BulkLoad("stocks", market).ok());

  // One-sided reversal: left side smoothed, right side reversed+smoothed.
  const QueryResult result =
      db.ExecuteText(
            "PAIRS stocks WITHIN 1.5 USING mavg(20) VS reverse|mavg(20)")
          .value();

  std::printf("hedging pairs (opposite movers after 20-day smoothing):\n\n");
  std::vector<PairMatch> pairs = result.pairs;
  std::sort(pairs.begin(), pairs.end(),
            [](const PairMatch& a, const PairMatch& b) {
              return a.distance < b.distance;
            });
  const Relation* relation = db.GetRelation("stocks");
  int printed = 0;
  for (const PairMatch& pair : pairs) {
    if (pair.first > pair.second) {
      continue;  // each unordered pair appears in both orientations
    }
    std::printf("  %-14s <-> %-14s  D = %.4f\n",
                relation->record(pair.first).name.c_str(),
                relation->record(pair.second).name.c_str(), pair.distance);
    if (++printed >= 15) {
      break;
    }
  }
  std::printf(
      "\n  [%zu ordered pairs found; %lld R-tree node accesses; "
      "%lld exact distance checks over %lld series]\n",
      pairs.size(), static_cast<long long>(result.stats.node_accesses),
      static_cast<long long>(result.stats.exact_checks),
      static_cast<long long>(relation->size()));

  // The engineered inverse pairs should top the list.
  std::printf("\n  engineered inverse pairs in the data: %d\n",
              options.num_inverse_pairs);
  return 0;
}
