// simq_client: runs the Table-1 stock workload over the wire.
//
// Connects to a simq_server (which loads the 1067x128 stock market into
// 'stocks' by default), executes the four worked queries from
// docs/QUERY_LANGUAGE.md -- the [JMM95] Table-1 workload -- by draining
// each cursor over SIMQNET1, and prints the answer rows in exactly the
// format simq_shell uses, so the two transcripts diff clean. Finishes
// with a stats frame and an orderly goodbye.
//
//   simq_client [--host H] [--port N] [--relation NAME] [--page-rows R]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "net/client.h"

namespace simq {
namespace {

// Mirrors simq_shell's PrintResult (elapsed is measured client-side: the
// wire carries rows, not timings).
void PrintResult(const QueryResult& answer, double elapsed_ms) {
  if (!answer.pairs.empty() || answer.matches.empty()) {
    std::printf("%zu pairs, %zu matches", answer.pairs.size(),
                answer.matches.size());
  } else {
    std::printf("%zu matches", answer.matches.size());
  }
  std::printf(" in %.3f ms\n", elapsed_ms);
  const size_t show = std::min<size_t>(answer.matches.size(), 10);
  for (size_t i = 0; i < show; ++i) {
    std::printf("  %6lld  %-16s  %.6f\n",
                static_cast<long long>(answer.matches[i].id),
                answer.matches[i].name.c_str(), answer.matches[i].distance);
  }
  if (answer.matches.size() > show) {
    std::printf("  ... %zu more\n", answer.matches.size() - show);
  }
  const size_t show_pairs = std::min<size_t>(answer.pairs.size(), 10);
  for (size_t i = 0; i < show_pairs; ++i) {
    std::printf("  (%lld, %lld)  %.6f\n",
                static_cast<long long>(answer.pairs[i].first),
                static_cast<long long>(answer.pairs[i].second),
                answer.pairs[i].distance);
  }
  if (answer.pairs.size() > show_pairs) {
    std::printf("  ... %zu more\n", answer.pairs.size() - show_pairs);
  }
}

int Main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string relation = "stocks";
  uint32_t page_rows = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      host = next("--host");
    } else if (arg == "--port") {
      port = static_cast<uint16_t>(std::atoi(next("--port")));
    } else if (arg == "--relation") {
      relation = next("--relation");
    } else if (arg == "--page-rows") {
      page_rows = static_cast<uint32_t>(std::atoi(next("--page-rows")));
    } else {
      std::fprintf(stderr,
                   "usage: simq_client [--host H] [--port N] "
                   "[--relation NAME] [--page-rows R]\n");
      return 2;
    }
  }
  if (port == 0) {
    std::fprintf(stderr, "--port is required (simq_server prints it)\n");
    return 2;
  }

  net::NetClient client;
  const Status connected = client.Connect(host, port);
  if (!connected.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 connected.ToString().c_str());
    return 1;
  }
  std::printf("connected: protocol v%u, max_payload=%u, page_rows=%u\n",
              client.server_hello().version,
              client.server_hello().max_payload,
              client.server_hello().default_page_rows);

  // The Table-1 workload of docs/QUERY_LANGUAGE.md over relation
  // `relation`: smoothed range, smoothed all-pairs, whole-match nearest,
  // and the cross-transformation pairs query.
  const std::vector<std::string> queries = {
      "RANGE " + relation + " WITHIN 2.5 OF #smooth_pair0 USING mavg(20)",
      "PAIRS " + relation + " WITHIN 1.0 USING mavg(20)",
      "NEAREST 10 " + relation + " TO #stock48",
      "PAIRS " + relation +
          " WITHIN 1.0 USING mavg(20) VS reverse|mavg(20)",
  };

  int failures = 0;
  for (const std::string& text : queries) {
    std::printf("simq> %s\n", text.c_str());
    net::ExecRequest request;
    request.text = text;
    request.page_rows = page_rows;
    const auto begin = std::chrono::steady_clock::now();
    Result<QueryResult> answer = client.ExecAll(request);
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - begin)
            .count();
    if (!answer.ok()) {
      std::printf("error: %s\n", answer.status().ToString().c_str());
      ++failures;
      continue;
    }
    PrintResult(answer.value(), elapsed_ms);
  }

  Result<net::WireStats> stats = client.Stats();
  if (stats.ok()) {
    const net::WireStats& s = stats.value();
    std::printf(
        "server stats: queries=%llu shed=%llu p50=%.3f ms p99=%.3f ms "
        "connections=%llu/%llu bytes_in=%llu bytes_out=%llu\n",
        static_cast<unsigned long long>(s.queries),
        static_cast<unsigned long long>(s.requests_shed), s.latency_p50_ms,
        s.latency_p99_ms, static_cast<unsigned long long>(s.connections_active),
        static_cast<unsigned long long>(s.connections_accepted),
        static_cast<unsigned long long>(s.bytes_in),
        static_cast<unsigned long long>(s.bytes_out));
  }
  const Status bye = client.Goodbye();
  if (!bye.ok()) {
    std::fprintf(stderr, "goodbye failed: %s\n", bye.ToString().c_str());
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace simq

int main(int argc, char** argv) { return simq::Main(argc, argv); }
