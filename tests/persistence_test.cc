#include <cstdio>
#include <fstream>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "core/persistence.h"
#include "workload/generators.h"

namespace simq {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::set<int64_t> MatchIds(const QueryResult& result) {
  std::set<int64_t> ids;
  for (const Match& match : result.matches) {
    ids.insert(match.id);
  }
  return ids;
}

TEST(PersistenceTest, RoundTripPreservesQueryAnswers) {
  FeatureConfig config;
  config.num_coefficients = 3;
  Database db(config);
  ASSERT_TRUE(db.CreateRelation("stocks").ok());
  ASSERT_TRUE(
      db.BulkLoad("stocks", workload::RandomWalkSeries(150, 64, 5)).ok());
  ASSERT_TRUE(db.CreateRelation("bonds").ok());
  ASSERT_TRUE(
      db.BulkLoad("bonds", workload::RandomWalkSeries(40, 32, 6)).ok());

  const std::string path = TempPath("roundtrip.simqdb");
  ASSERT_TRUE(SaveDatabase(db, path).ok());

  Result<Database> loaded = LoadDatabase(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  Database& restored = loaded.value();

  EXPECT_EQ(restored.config().num_coefficients, 3);
  EXPECT_EQ(restored.RelationNames(), db.RelationNames());
  EXPECT_EQ(restored.GetRelation("stocks")->size(), 150);
  EXPECT_EQ(restored.GetRelation("bonds")->size(), 40);
  EXPECT_TRUE(restored.GetRelation("stocks")->index().CheckInvariants());

  for (const char* text :
       {"RANGE stocks WITHIN 3.0 OF #walk7 USING mavg(20)",
        "NEAREST 5 stocks TO #walk7 USING reverse",
        "RANGE bonds WITHIN 5.0 OF #walk3"}) {
    const Result<QueryResult> before = db.ExecuteText(text);
    const Result<QueryResult> after = restored.ExecuteText(text);
    ASSERT_TRUE(before.ok()) << text;
    ASSERT_TRUE(after.ok()) << text;
    EXPECT_EQ(MatchIds(before.value()), MatchIds(after.value())) << text;
  }
}

TEST(PersistenceTest, RoundTripPreservesRawValuesExactly) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("r").ok());
  ASSERT_TRUE(db.BulkLoad("r", workload::RandomWalkSeries(20, 48, 9)).ok());
  const std::string path = TempPath("exact.simqdb");
  ASSERT_TRUE(SaveDatabase(db, path).ok());
  Result<Database> loaded = LoadDatabase(path);
  ASSERT_TRUE(loaded.ok());
  const Relation* before = db.GetRelation("r");
  const Relation* after = loaded.value().GetRelation("r");
  for (int64_t id = 0; id < before->size(); ++id) {
    EXPECT_EQ(before->record(id).name, after->record(id).name);
    EXPECT_EQ(before->record(id).raw, after->record(id).raw);  // bit-exact
  }
}

TEST(PersistenceTest, EmptyDatabaseRoundTrips) {
  Database db;
  const std::string path = TempPath("empty.simqdb");
  ASSERT_TRUE(SaveDatabase(db, path).ok());
  Result<Database> loaded = LoadDatabase(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().RelationNames().empty());
}

TEST(PersistenceTest, MissingFileIsNotFound) {
  EXPECT_EQ(LoadDatabase(TempPath("does_not_exist.simqdb")).status().code(),
            StatusCode::kNotFound);
}

TEST(PersistenceTest, RejectsForeignFile) {
  const std::string path = TempPath("foreign.bin");
  std::ofstream out(path, std::ios::binary);
  out << "definitely not a snapshot, but long enough to read";
  out.close();
  EXPECT_EQ(LoadDatabase(path).status().code(), StatusCode::kCorruption);
}

std::string ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(PersistenceTest, DefaultFormatIsV4WithPreservedIds) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("r").ok());
  ASSERT_TRUE(db.BulkLoad("r", workload::RandomWalkSeries(25, 32, 11)).ok());
  const std::string path = TempPath("v4_default.simqdb");
  ASSERT_TRUE(SaveDatabase(db, path).ok());
  EXPECT_EQ(ReadAllBytes(path).substr(0, 8), "SIMQDB4\n");

  Result<Database> loaded = LoadDatabase(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Relation* restored = loaded.value().GetRelation("r");
  ASSERT_NE(restored, nullptr);
  for (int64_t id = 0; id < restored->size(); ++id) {
    EXPECT_EQ(restored->record(id).id, db.GetRelation("r")->record(id).id);
    EXPECT_EQ(restored->record(id).name, db.GetRelation("r")->record(id).name);
  }
}

TEST(PersistenceTest, VersionRoundTrip) {
  // The same database through both on-disk versions must restore to
  // identical contents: v1 snapshots from older builds stay readable, and
  // v2 adds ids + stats without changing what is restored.
  FeatureConfig config;
  config.num_coefficients = 2;
  Database db(config);
  ASSERT_TRUE(db.CreateRelation("stocks").ok());
  ASSERT_TRUE(
      db.BulkLoad("stocks", workload::RandomWalkSeries(60, 64, 21)).ok());

  const std::string v1_path = TempPath("roundtrip_v1.simqdb");
  const std::string v2_path = TempPath("roundtrip_v2.simqdb");
  ASSERT_TRUE(SaveDatabase(db, v1_path, /*format_version=*/1).ok());
  ASSERT_TRUE(SaveDatabase(db, v2_path, /*format_version=*/2).ok());
  EXPECT_EQ(ReadAllBytes(v1_path).substr(0, 8), "SIMQDB1\n");

  Result<Database> from_v1 = LoadDatabase(v1_path);
  Result<Database> from_v2 = LoadDatabase(v2_path);
  ASSERT_TRUE(from_v1.ok()) << from_v1.status().ToString();
  ASSERT_TRUE(from_v2.ok()) << from_v2.status().ToString();
  const Relation* r1 = from_v1.value().GetRelation("stocks");
  const Relation* r2 = from_v2.value().GetRelation("stocks");
  ASSERT_EQ(r1->size(), r2->size());
  for (int64_t id = 0; id < r1->size(); ++id) {
    EXPECT_EQ(r1->record(id).raw, r2->record(id).raw);  // bit-exact
    EXPECT_EQ(r1->record(id).name, r2->record(id).name);
  }

  const char* text = "RANGE stocks WITHIN 4.0 OF #walk5";
  const Result<QueryResult> a = from_v1.value().ExecuteText(text);
  const Result<QueryResult> b = from_v2.value().ExecuteText(text);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(MatchIds(a.value()), MatchIds(b.value()));
}

TEST(PersistenceTest, TombstonesRoundTripInV4) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("r").ok());
  ASSERT_TRUE(db.BulkLoad("r", workload::RandomWalkSeries(20, 32, 13)).ok());
  ASSERT_TRUE(db.Delete("r", 3).ok());
  ASSERT_TRUE(db.Delete("r", 17).ok());

  const std::string path = TempPath("v4_tombstones.simqdb");
  ASSERT_TRUE(SaveDatabase(db, path).ok());
  Result<Database> loaded = LoadDatabase(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Deleted series stay deleted across the round trip: answers are
  // bit-identical to the pre-save database and never contain them.
  const char* text = "RANGE r WITHIN 100.0 OF #walk0";
  const Result<QueryResult> before = db.ExecuteText(text);
  const Result<QueryResult> after = loaded.value().ExecuteText(text);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_EQ(MatchIds(before.value()), MatchIds(after.value()));
  EXPECT_EQ(MatchIds(after.value()).count(3), 0u);
  EXPECT_EQ(MatchIds(after.value()).count(17), 0u);
  // Their names stay reserved after the round trip, exactly as live.
  EXPECT_EQ(loaded.value().Delete("r", 3).code(), StatusCode::kNotFound);

  // A v3 save drops tombstones by design: the deleted records reload
  // alive (documented legacy-format behavior).
  const std::string v3_path = TempPath("v3_tombstones.simqdb");
  ASSERT_TRUE(SaveDatabase(db, v3_path, /*format_version=*/3).ok());
  Result<Database> legacy = LoadDatabase(v3_path);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  const Result<QueryResult> revived = legacy.value().ExecuteText(text);
  ASSERT_TRUE(revived.ok());
  EXPECT_EQ(revived.value().matches.size(),
            before.value().matches.size() + 2);
}

TEST(PersistenceTest, RejectsUnsupportedSaveVersion) {
  Database db;
  EXPECT_EQ(SaveDatabase(db, TempPath("v5.simqdb"), 5).code(),
            StatusCode::kInvalidArgument);
}

TEST(PersistenceTest, V3RejectsFlippedSectionByte) {
  // A v3 snapshot carries a CRC32 per section; any flipped payload byte
  // must surface as kCorruption, not as a wrong-but-loadable database.
  Database db;
  ASSERT_TRUE(db.CreateRelation("r").ok());
  ASSERT_TRUE(db.BulkLoad("r", workload::RandomWalkSeries(10, 16, 3)).ok());
  const std::string path = TempPath("v3_crc_base.simqdb");
  ASSERT_TRUE(SaveDatabase(db, path).ok());
  std::string bytes = ReadAllBytes(path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x20);
  const std::string bad_path = TempPath("v3_crc_flip.simqdb");
  std::ofstream out(bad_path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  EXPECT_EQ(LoadDatabase(bad_path).status().code(), StatusCode::kCorruption);
}

TEST(PersistenceTest, V2RejectsCorruptIdsAndStats) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("r").ok());
  ASSERT_TRUE(db.BulkLoad("r", workload::RandomWalkSeries(10, 16, 3)).ok());
  const std::string path = TempPath("v2_corrupt_base.simqdb");
  ASSERT_TRUE(SaveDatabase(db, path, /*format_version=*/2).ok());
  const std::string bytes = ReadAllBytes(path);

  // Fixed offsets for relation "r" (name length 1), per the layout in
  // persistence.h: header 8+4+4+1, relation count 8, name 4+1, series
  // length 4, record count 8 -> stats at 42, first record id at 74.
  const size_t stats_offset = 42;
  const size_t first_id_offset = stats_offset + 4 * sizeof(double);

  {
    std::string corrupt = bytes;
    corrupt[first_id_offset] = 5;  // first record claims id 5, not 0
    const std::string bad_path = TempPath("v2_bad_ids.simqdb");
    std::ofstream out(bad_path, std::ios::binary);
    out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
    out.close();
    const Result<Database> loaded = LoadDatabase(bad_path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find("record ids"),
              std::string::npos);
  }
  {
    std::string corrupt = bytes;
    corrupt[stats_offset + 3] =
        static_cast<char>(corrupt[stats_offset + 3] + 1);  // mangle mean_min
    const std::string bad_path = TempPath("v2_bad_stats.simqdb");
    std::ofstream out(bad_path, std::ios::binary);
    out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
    out.close();
    const Result<Database> loaded = LoadDatabase(bad_path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find("stats"), std::string::npos);
  }
}

TEST(PersistenceTest, RejectsTruncatedSnapshot) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("r").ok());
  ASSERT_TRUE(db.BulkLoad("r", workload::RandomWalkSeries(10, 16, 3)).ok());
  const std::string path = TempPath("full.simqdb");
  ASSERT_TRUE(SaveDatabase(db, path).ok());

  // Copy a truncated prefix.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  const std::string cut_path = TempPath("truncated.simqdb");
  std::ofstream cut(cut_path, std::ios::binary);
  cut.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  cut.close();

  EXPECT_FALSE(LoadDatabase(cut_path).ok());
}

// Quantized codes are derived data: they are not serialized, and a
// restored database must lazily rebuild them on the first filtered query
// -- with answers bit-identical both to a fresh build of the same series
// and to the restored database's own exact execution.
TEST(PersistenceTest, FilteredQueriesBitIdenticalAfterSimqdb2RoundTrip) {
  const std::vector<TimeSeries> series = workload::RandomWalkSeries(80, 48, 9);
  Database db;
  ASSERT_TRUE(db.CreateRelation("r").ok());
  ASSERT_TRUE(db.BulkLoad("r", series).ok());

  const std::string path = TempPath("filtered.simqdb");
  ASSERT_TRUE(SaveDatabase(db, path, /*format_version=*/2).ok());
  Result<Database> loaded = LoadDatabase(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  Database& restored = loaded.value();

  Database fresh;
  ASSERT_TRUE(fresh.CreateRelation("r").ok());
  ASSERT_TRUE(fresh.BulkLoad("r", series).ok());

  for (const char* text :
       {"RANGE r WITHIN 2.0 OF #walk5 VIA SCAN MODE FILTERED",
        "NEAREST 9 r TO #walk11 VIA SCAN MODE FILTERED",
        "PAIRS r WITHIN 1.5 VIA SCAN MODE FILTERED"}) {
    const Result<QueryResult> via_restored = restored.ExecuteText(text);
    const Result<QueryResult> via_fresh = fresh.ExecuteText(text);
    ASSERT_TRUE(via_restored.ok()) << text;
    ASSERT_TRUE(via_fresh.ok()) << text;
    // Codes rebuilt after Load: the filter path actually ran.
    EXPECT_TRUE(via_restored.value().stats.used_filter) << text;
    ASSERT_EQ(via_restored.value().matches.size(),
              via_fresh.value().matches.size())
        << text;
    for (size_t i = 0; i < via_fresh.value().matches.size(); ++i) {
      EXPECT_EQ(via_restored.value().matches[i].id,
                via_fresh.value().matches[i].id)
          << text;
      EXPECT_EQ(via_restored.value().matches[i].distance,
                via_fresh.value().matches[i].distance)
          << text;
    }
    ASSERT_EQ(via_restored.value().pairs.size(),
              via_fresh.value().pairs.size())
        << text;
    for (size_t i = 0; i < via_fresh.value().pairs.size(); ++i) {
      EXPECT_EQ(via_restored.value().pairs[i].first,
                via_fresh.value().pairs[i].first)
          << text;
      EXPECT_EQ(via_restored.value().pairs[i].second,
                via_fresh.value().pairs[i].second)
          << text;
      EXPECT_EQ(via_restored.value().pairs[i].distance,
                via_fresh.value().pairs[i].distance)
          << text;
    }
    // And the restored database's filtered answers match its own exact
    // execution of the same query.
    const std::string exact_text =
        std::string(text).substr(0, std::string(text).rfind(" MODE")) +
        " MODE EXACT";
    const Result<QueryResult> exact = restored.ExecuteText(exact_text);
    ASSERT_TRUE(exact.ok()) << exact_text;
    EXPECT_EQ(exact.value().matches.size(),
              via_restored.value().matches.size());
    EXPECT_EQ(exact.value().pairs.size(), via_restored.value().pairs.size());
  }
}

}  // namespace
}  // namespace simq
