#include <cstdio>
#include <fstream>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "core/persistence.h"
#include "workload/generators.h"

namespace simq {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::set<int64_t> MatchIds(const QueryResult& result) {
  std::set<int64_t> ids;
  for (const Match& match : result.matches) {
    ids.insert(match.id);
  }
  return ids;
}

TEST(PersistenceTest, RoundTripPreservesQueryAnswers) {
  FeatureConfig config;
  config.num_coefficients = 3;
  Database db(config);
  ASSERT_TRUE(db.CreateRelation("stocks").ok());
  ASSERT_TRUE(
      db.BulkLoad("stocks", workload::RandomWalkSeries(150, 64, 5)).ok());
  ASSERT_TRUE(db.CreateRelation("bonds").ok());
  ASSERT_TRUE(
      db.BulkLoad("bonds", workload::RandomWalkSeries(40, 32, 6)).ok());

  const std::string path = TempPath("roundtrip.simqdb");
  ASSERT_TRUE(SaveDatabase(db, path).ok());

  Result<Database> loaded = LoadDatabase(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  Database& restored = loaded.value();

  EXPECT_EQ(restored.config().num_coefficients, 3);
  EXPECT_EQ(restored.RelationNames(), db.RelationNames());
  EXPECT_EQ(restored.GetRelation("stocks")->size(), 150);
  EXPECT_EQ(restored.GetRelation("bonds")->size(), 40);
  EXPECT_TRUE(restored.GetRelation("stocks")->index().CheckInvariants());

  for (const char* text :
       {"RANGE stocks WITHIN 3.0 OF #walk7 USING mavg(20)",
        "NEAREST 5 stocks TO #walk7 USING reverse",
        "RANGE bonds WITHIN 5.0 OF #walk3"}) {
    const Result<QueryResult> before = db.ExecuteText(text);
    const Result<QueryResult> after = restored.ExecuteText(text);
    ASSERT_TRUE(before.ok()) << text;
    ASSERT_TRUE(after.ok()) << text;
    EXPECT_EQ(MatchIds(before.value()), MatchIds(after.value())) << text;
  }
}

TEST(PersistenceTest, RoundTripPreservesRawValuesExactly) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("r").ok());
  ASSERT_TRUE(db.BulkLoad("r", workload::RandomWalkSeries(20, 48, 9)).ok());
  const std::string path = TempPath("exact.simqdb");
  ASSERT_TRUE(SaveDatabase(db, path).ok());
  Result<Database> loaded = LoadDatabase(path);
  ASSERT_TRUE(loaded.ok());
  const Relation* before = db.GetRelation("r");
  const Relation* after = loaded.value().GetRelation("r");
  for (int64_t id = 0; id < before->size(); ++id) {
    EXPECT_EQ(before->record(id).name, after->record(id).name);
    EXPECT_EQ(before->record(id).raw, after->record(id).raw);  // bit-exact
  }
}

TEST(PersistenceTest, EmptyDatabaseRoundTrips) {
  Database db;
  const std::string path = TempPath("empty.simqdb");
  ASSERT_TRUE(SaveDatabase(db, path).ok());
  Result<Database> loaded = LoadDatabase(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().RelationNames().empty());
}

TEST(PersistenceTest, MissingFileIsNotFound) {
  EXPECT_EQ(LoadDatabase(TempPath("does_not_exist.simqdb")).status().code(),
            StatusCode::kNotFound);
}

TEST(PersistenceTest, RejectsForeignFile) {
  const std::string path = TempPath("foreign.bin");
  std::ofstream out(path, std::ios::binary);
  out << "definitely not a snapshot, but long enough to read";
  out.close();
  EXPECT_EQ(LoadDatabase(path).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PersistenceTest, RejectsTruncatedSnapshot) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("r").ok());
  ASSERT_TRUE(db.BulkLoad("r", workload::RandomWalkSeries(10, 16, 3)).ok());
  const std::string path = TempPath("full.simqdb");
  ASSERT_TRUE(SaveDatabase(db, path).ok());

  // Copy a truncated prefix.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  const std::string cut_path = TempPath("truncated.simqdb");
  std::ofstream cut(cut_path, std::ios::binary);
  cut.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  cut.close();

  EXPECT_FALSE(LoadDatabase(cut_path).ok());
}

}  // namespace
}  // namespace simq
