// Randomized stress test of the R*-tree: long interleaved sequences of
// inserts, deletes, and searches, validated after every phase against a
// shadow set and the structural invariant checker. Catches split/reinsert/
// condense interactions that targeted unit tests miss.
//
// The packed-snapshot fuzz (below) additionally compiles a PackedRTree at
// checkpoints of the same operation stream and asserts engine equivalence:
// identical result sets for Search/JoinWith/NearestNeighbors and identical
// node-access counters (exact equality is the documented bound for all
// three traversals; see DESIGN.md "Packed traversal engine").

#include <limits>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "geom/search_region.h"
#include "index/packed_rtree.h"
#include "index/rtree.h"
#include "ts/feature.h"
#include "util/random.h"

namespace simq {
namespace {

struct FuzzCase {
  int dims;
  int max_entries;
  bool forced_reinsert;
  int operations;
  uint64_t seed;
};

class RTreeFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(RTreeFuzzTest, RandomOperationsPreserveConsistency) {
  const FuzzCase c = GetParam();
  RTree::Options options;
  options.max_entries = c.max_entries;
  options.min_entries = std::max(2, c.max_entries / 3);
  options.forced_reinsert = c.forced_reinsert;
  RTree tree(c.dims, options);
  Random rng(c.seed);

  // Shadow state: id -> point. Ids are never reused.
  std::map<int64_t, Point> live;
  int64_t next_id = 0;

  auto random_point = [&] {
    Point p(static_cast<size_t>(c.dims));
    for (double& v : p) {
      // Clustered coordinates provoke interesting splits.
      const double center = rng.Bernoulli(0.5) ? -50.0 : 50.0;
      v = center + rng.UniformDouble(-30.0, 30.0);
    }
    return p;
  };

  for (int op = 0; op < c.operations; ++op) {
    const double dice = rng.NextDouble();
    if (dice < 0.55 || live.empty()) {
      const Point p = random_point();
      tree.InsertPoint(p, next_id);
      live[next_id] = p;
      ++next_id;
    } else if (dice < 0.85) {
      // Delete a random live entry.
      auto it = live.begin();
      std::advance(it, static_cast<int64_t>(rng.UniformInt(
                           0, static_cast<int64_t>(live.size()) - 1)));
      ASSERT_TRUE(tree.Delete(Rect::FromPoint(it->second), it->first))
          << "op " << op;
      live.erase(it);
    } else {
      // Range search against the shadow set.
      Point lo(static_cast<size_t>(c.dims));
      Point hi(static_cast<size_t>(c.dims));
      for (int d = 0; d < c.dims; ++d) {
        const double a = rng.UniformDouble(-100.0, 100.0);
        const double b = rng.UniformDouble(-100.0, 100.0);
        lo[static_cast<size_t>(d)] = std::min(a, b);
        hi[static_cast<size_t>(d)] = std::max(a, b);
      }
      const Rect box = Rect::FromBounds(lo, hi);
      std::set<int64_t> expected;
      for (const auto& [id, point] : live) {
        if (box.ContainsPoint(point)) {
          expected.insert(id);
        }
      }
      std::set<int64_t> actual;
      tree.SearchGeneric(
          [&](const Rect& rect) { return box.Overlaps(rect); },
          [&](const Rect& rect, int64_t) {
            Point p(static_cast<size_t>(c.dims));
            for (int d = 0; d < c.dims; ++d) {
              p[static_cast<size_t>(d)] = rect.lo(d);
            }
            return box.ContainsPoint(p);
          },
          [&](int64_t id) { actual.insert(id); });
      ASSERT_EQ(actual, expected) << "op " << op;
    }

    if (op % 250 == 249) {
      ASSERT_TRUE(tree.CheckInvariants()) << "op " << op;
      ASSERT_EQ(tree.size(), static_cast<int64_t>(live.size())) << "op " << op;
    }
  }
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.size(), static_cast<int64_t>(live.size()));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RTreeFuzzTest,
    ::testing::Values(FuzzCase{2, 8, true, 3000, 1},
                      FuzzCase{2, 8, false, 3000, 2},
                      FuzzCase{3, 4, true, 2000, 3},
                      FuzzCase{4, 16, true, 3000, 4},
                      FuzzCase{6, 32, true, 4000, 5},
                      FuzzCase{6, 32, false, 4000, 6},
                      FuzzCase{1, 6, true, 2000, 7}));

class PackedFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(PackedFuzzTest, SnapshotMatchesPointerEngine) {
  const FuzzCase c = GetParam();
  RTree::Options options;
  options.max_entries = c.max_entries;
  options.min_entries = std::max(2, c.max_entries / 3);
  options.forced_reinsert = c.forced_reinsert;
  RTree tree(c.dims, options);
  Random rng(c.seed);

  std::map<int64_t, Point> live;
  int64_t next_id = 0;
  auto random_point = [&] {
    Point p(static_cast<size_t>(c.dims));
    for (double& v : p) {
      const double center = rng.Bernoulli(0.5) ? -50.0 : 50.0;
      v = center + rng.UniformDouble(-30.0, 30.0);
    }
    return p;
  };

  // kNN needs a feature-space layout: only defined for even dims.
  FeatureConfig config;
  config.space = FeatureSpace::kRectangular;
  config.include_mean_std = false;
  config.num_coefficients = c.dims / 2;
  const bool knn_enabled = c.dims % 2 == 0 && config.num_coefficients > 0;

  for (int op = 0; op < c.operations; ++op) {
    const double dice = rng.NextDouble();
    if (dice < 0.7 || live.empty()) {
      const Point p = random_point();
      tree.InsertPoint(p, next_id);
      live[next_id] = p;
      ++next_id;
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<int64_t>(rng.UniformInt(
                           0, static_cast<int64_t>(live.size()) - 1)));
      ASSERT_TRUE(tree.Delete(Rect::FromPoint(it->second), it->first));
      live.erase(it);
    }
    if (op % 400 != 399) {
      continue;
    }

    // Checkpoint: compile a snapshot and cross-check every traversal.
    const PackedRTree packed(tree);
    ASSERT_EQ(packed.node_count(), tree.node_count()) << "op " << op;
    ASSERT_EQ(packed.size(), tree.size()) << "op " << op;

    // Range searches via SearchGeneric: identical emit order and accesses.
    for (int trial = 0; trial < 4; ++trial) {
      Point lo(static_cast<size_t>(c.dims));
      Point hi(static_cast<size_t>(c.dims));
      for (int d = 0; d < c.dims; ++d) {
        const double a = rng.UniformDouble(-100.0, 100.0);
        const double b = rng.UniformDouble(-100.0, 100.0);
        lo[static_cast<size_t>(d)] = std::min(a, b);
        hi[static_cast<size_t>(d)] = std::max(a, b);
      }
      const Rect box = Rect::FromBounds(lo, hi);
      const auto overlaps = [&](const auto& rect) {
        for (int d = 0; d < c.dims; ++d) {
          if (rect.lo(d) > box.hi(d) || rect.hi(d) < box.lo(d)) {
            return false;
          }
        }
        return true;
      };
      const auto contains_point = [&](const auto& rect) {
        for (int d = 0; d < c.dims; ++d) {
          if (rect.lo(d) < box.lo(d) || rect.lo(d) > box.hi(d)) {
            return false;
          }
        }
        return true;
      };
      tree.ResetNodeAccesses();
      std::vector<int64_t> expected;
      tree.SearchGeneric(
          overlaps,
          [&](const Rect& rect, int64_t) { return contains_point(rect); },
          [&](int64_t id) { expected.push_back(id); });
      packed.ResetNodeAccesses();
      std::vector<int64_t> actual;
      packed.SearchGeneric(
          overlaps,
          [&](const auto& rect, int64_t) { return contains_point(rect); },
          [&](int64_t id) { actual.push_back(id); });
      ASSERT_EQ(actual, expected) << "op " << op << " trial " << trial;
      ASSERT_EQ(packed.node_accesses(), tree.node_accesses())
          << "op " << op << " trial " << trial;
    }

    // Self-join: identical pair sets and accesses, sweep on and off.
    {
      const double eps = rng.UniformDouble(1.0, 15.0);
      const EpsilonPairPredicate pred{c.dims, eps};
      tree.ResetNodeAccesses();
      std::set<std::pair<int64_t, int64_t>> expected;
      tree.JoinWith(tree, pred, [&](int64_t a, int64_t b) {
        expected.insert({a, b});
      });
      packed.ResetNodeAccesses();
      std::set<std::pair<int64_t, int64_t>> actual;
      packed.JoinWith(packed, pred, [&](int64_t a, int64_t b) {
        actual.insert({a, b});
      }, eps);
      ASSERT_EQ(actual, expected) << "op " << op;
      ASSERT_EQ(packed.node_accesses(), tree.node_accesses()) << "op " << op;
      std::set<std::pair<int64_t, int64_t>> no_sweep;
      packed.JoinWith(packed, pred, [&](int64_t a, int64_t b) {
        no_sweep.insert({a, b});
      }, std::numeric_limits<double>::infinity());
      ASSERT_EQ(no_sweep, expected) << "op " << op;
    }

    // kNN: identical (distance, id) results and accesses.
    if (knn_enabled && !live.empty()) {
      std::vector<Complex> query;
      for (int f = 0; f < config.num_coefficients; ++f) {
        query.push_back(Complex(rng.UniformDouble(-120.0, 120.0),
                                rng.UniformDouble(-120.0, 120.0)));
      }
      const NnLowerBound bound(query, config);
      const std::vector<DimAffine> identity(static_cast<size_t>(c.dims));
      const auto exact = [&](int64_t id) {
        return bound.ToTransformedPoint(live.at(id), identity);
      };
      const int k = static_cast<int>(rng.UniformInt(
          1, std::min<int64_t>(25, static_cast<int64_t>(live.size()))));
      tree.ResetNodeAccesses();
      const auto expected = tree.NearestNeighbors(bound, nullptr, k, exact);
      packed.ResetNodeAccesses();
      const auto actual = packed.NearestNeighbors(bound, nullptr, k, exact);
      ASSERT_EQ(actual, expected) << "op " << op << " k " << k;
      ASSERT_EQ(packed.node_accesses(), tree.node_accesses())
          << "op " << op << " k " << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PackedFuzzTest,
    ::testing::Values(FuzzCase{2, 8, true, 2400, 11},
                      FuzzCase{3, 4, false, 1600, 12},
                      FuzzCase{4, 16, true, 2400, 13},
                      FuzzCase{6, 32, true, 2800, 14},
                      FuzzCase{1, 6, true, 1600, 15}));

}  // namespace
}  // namespace simq
