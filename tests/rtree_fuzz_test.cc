// Randomized stress test of the R*-tree: long interleaved sequences of
// inserts, deletes, and searches, validated after every phase against a
// shadow set and the structural invariant checker. Catches split/reinsert/
// condense interactions that targeted unit tests miss.

#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "index/rtree.h"
#include "util/random.h"

namespace simq {
namespace {

struct FuzzCase {
  int dims;
  int max_entries;
  bool forced_reinsert;
  int operations;
  uint64_t seed;
};

class RTreeFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(RTreeFuzzTest, RandomOperationsPreserveConsistency) {
  const FuzzCase c = GetParam();
  RTree::Options options;
  options.max_entries = c.max_entries;
  options.min_entries = std::max(2, c.max_entries / 3);
  options.forced_reinsert = c.forced_reinsert;
  RTree tree(c.dims, options);
  Random rng(c.seed);

  // Shadow state: id -> point. Ids are never reused.
  std::map<int64_t, Point> live;
  int64_t next_id = 0;

  auto random_point = [&] {
    Point p(static_cast<size_t>(c.dims));
    for (double& v : p) {
      // Clustered coordinates provoke interesting splits.
      const double center = rng.Bernoulli(0.5) ? -50.0 : 50.0;
      v = center + rng.UniformDouble(-30.0, 30.0);
    }
    return p;
  };

  for (int op = 0; op < c.operations; ++op) {
    const double dice = rng.NextDouble();
    if (dice < 0.55 || live.empty()) {
      const Point p = random_point();
      tree.InsertPoint(p, next_id);
      live[next_id] = p;
      ++next_id;
    } else if (dice < 0.85) {
      // Delete a random live entry.
      auto it = live.begin();
      std::advance(it, static_cast<int64_t>(rng.UniformInt(
                           0, static_cast<int64_t>(live.size()) - 1)));
      ASSERT_TRUE(tree.Delete(Rect::FromPoint(it->second), it->first))
          << "op " << op;
      live.erase(it);
    } else {
      // Range search against the shadow set.
      Point lo(static_cast<size_t>(c.dims));
      Point hi(static_cast<size_t>(c.dims));
      for (int d = 0; d < c.dims; ++d) {
        const double a = rng.UniformDouble(-100.0, 100.0);
        const double b = rng.UniformDouble(-100.0, 100.0);
        lo[static_cast<size_t>(d)] = std::min(a, b);
        hi[static_cast<size_t>(d)] = std::max(a, b);
      }
      const Rect box = Rect::FromBounds(lo, hi);
      std::set<int64_t> expected;
      for (const auto& [id, point] : live) {
        if (box.ContainsPoint(point)) {
          expected.insert(id);
        }
      }
      std::set<int64_t> actual;
      tree.SearchGeneric(
          [&](const Rect& rect) { return box.Overlaps(rect); },
          [&](const Rect& rect, int64_t) {
            Point p(static_cast<size_t>(c.dims));
            for (int d = 0; d < c.dims; ++d) {
              p[static_cast<size_t>(d)] = rect.lo(d);
            }
            return box.ContainsPoint(p);
          },
          [&](int64_t id) { actual.insert(id); });
      ASSERT_EQ(actual, expected) << "op " << op;
    }

    if (op % 250 == 249) {
      ASSERT_TRUE(tree.CheckInvariants()) << "op " << op;
      ASSERT_EQ(tree.size(), static_cast<int64_t>(live.size())) << "op " << op;
    }
  }
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.size(), static_cast<int64_t>(live.size()));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RTreeFuzzTest,
    ::testing::Values(FuzzCase{2, 8, true, 3000, 1},
                      FuzzCase{2, 8, false, 3000, 2},
                      FuzzCase{3, 4, true, 2000, 3},
                      FuzzCase{4, 16, true, 3000, 4},
                      FuzzCase{6, 32, true, 4000, 5},
                      FuzzCase{6, 32, false, 4000, 6},
                      FuzzCase{1, 6, true, 2000, 7}));

}  // namespace
}  // namespace simq
