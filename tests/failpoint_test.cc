// Deterministic fault injection (util/failpoint.h): trigger semantics,
// spec parsing, and the injected-error plumbing through the persistence
// and execution layers.

#include <string>

#include <gtest/gtest.h>

#include "core/database.h"
#include "core/persistence.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"
#include "workload/generators.h"

namespace simq {
namespace {

// Every test leaves the global registry clean; failpoints are process-wide
// and a leaked trigger would poison unrelated tests in this binary.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::Global().Reset(); }
  void TearDown() override { Failpoints::Global().Reset(); }
};

Failpoints::Trigger Always() {
  Failpoints::Trigger t;
  t.kind = Failpoints::TriggerKind::kAlways;
  return t;
}

TEST_F(FailpointTest, UnarmedNeverFires) {
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(Failpoints::Global().Evaluate("test.unarmed"));
  }
  // Unarmed evaluations skip the registry entirely -- no hit bookkeeping.
  EXPECT_EQ(Failpoints::Global().hits("test.unarmed"), 0u);
}

TEST_F(FailpointTest, AlwaysFiresEveryHit) {
  Failpoints::Global().Configure("test.always", Always());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(Failpoints::Global().Evaluate("test.always"));
  }
  EXPECT_EQ(Failpoints::Global().hits("test.always"), 5u);
}

TEST_F(FailpointTest, OneInNFiresOnExactMultiples) {
  Failpoints::Trigger t;
  t.kind = Failpoints::TriggerKind::kOneIn;
  t.param = 3;
  Failpoints::Global().Configure("test.onein", t);
  // Deterministic: hits 3, 6, 9, ... fire; everything else does not.
  for (int hit = 1; hit <= 12; ++hit) {
    EXPECT_EQ(Failpoints::Global().Evaluate("test.onein"), hit % 3 == 0)
        << "hit " << hit;
  }
}

TEST_F(FailpointTest, AfterKFiresFromHitKPlusOne) {
  Failpoints::Trigger t;
  t.kind = Failpoints::TriggerKind::kAfter;
  t.param = 4;
  Failpoints::Global().Configure("test.after", t);
  for (int hit = 1; hit <= 8; ++hit) {
    EXPECT_EQ(Failpoints::Global().Evaluate("test.after"), hit > 4)
        << "hit " << hit;
  }
}

TEST_F(FailpointTest, ConfigureResetsHitCounter) {
  Failpoints::Global().Configure("test.reset", Always());
  Failpoints::Global().Evaluate("test.reset");
  Failpoints::Global().Evaluate("test.reset");
  EXPECT_EQ(Failpoints::Global().hits("test.reset"), 2u);
  Failpoints::Global().Configure("test.reset", Always());
  EXPECT_EQ(Failpoints::Global().hits("test.reset"), 0u);
}

TEST_F(FailpointTest, SpecGrammarRoundTrips) {
  ASSERT_TRUE(Failpoints::Global()
                  .ConfigureFromSpec(
                      "a.b=always;c.d=one-in-2;e.f=after-1;g.h=off")
                  .ok());
  EXPECT_TRUE(Failpoints::Global().Evaluate("a.b"));
  EXPECT_FALSE(Failpoints::Global().Evaluate("c.d"));  // hit 1 of one-in-2
  EXPECT_TRUE(Failpoints::Global().Evaluate("c.d"));   // hit 2 fires
  EXPECT_FALSE(Failpoints::Global().Evaluate("e.f"));  // hit 1 <= K
  EXPECT_TRUE(Failpoints::Global().Evaluate("e.f"));   // hit 2 > K
  EXPECT_FALSE(Failpoints::Global().Evaluate("g.h"));
}

TEST_F(FailpointTest, SpecRejectsMalformedClauses) {
  EXPECT_EQ(Failpoints::Global().ConfigureFromSpec("nope").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Failpoints::Global().ConfigureFromSpec("a=sometimes").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Failpoints::Global().ConfigureFromSpec("a=one-in-x").code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Injection through real code paths.
// ---------------------------------------------------------------------------

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

Database SmallDb() {
  Database db;
  EXPECT_TRUE(db.CreateRelation("r").ok());
  EXPECT_TRUE(db.BulkLoad("r", workload::RandomWalkSeries(30, 32, 7)).ok());
  return db;
}

TEST_F(FailpointTest, SaveFailpointsSurfaceAsIoErrorAndLeaveNoFile) {
  const Database db = SmallDb();
  for (const char* point :
       {"save.open", "save.write", "save.sync", "save.rename"}) {
    Failpoints::Global().Reset();
    Failpoints::Global().Configure(point, Always());
    const std::string path = TempPath(std::string("inj_") + point);
    const Status status = SaveDatabase(db, path);
    EXPECT_EQ(status.code(), StatusCode::kIoError) << point;
    EXPECT_NE(status.message().find(point), std::string::npos) << point;
    // Atomic save: a failed save must leave neither the target nor the
    // temp file behind.
    Failpoints::Global().Reset();
    EXPECT_EQ(LoadDatabase(path).status().code(), StatusCode::kNotFound)
        << point;
    EXPECT_EQ(LoadDatabase(path + ".tmp").status().code(),
              StatusCode::kNotFound)
        << point;
  }
}

TEST_F(FailpointTest, CompileFailpointsDegradeWithoutChangingAnswers) {
  Database db = SmallDb();
  // With the delta layer on, inserts no longer invalidate the packed
  // snapshot, so the armed failpoint would never be reached; run this
  // test in legacy invalidate-on-mutation mode.
  DeltaOptions legacy;
  legacy.enabled = false;
  db.set_delta_options(legacy);
  const char* text = "RANGE r WITHIN 3.0 OF #walk5";
  const Result<QueryResult> clean = db.ExecuteText(text);
  ASSERT_TRUE(clean.ok());
  ASSERT_FALSE(clean.value().stats.degraded);

  // Arm packed.compile and mutate so the snapshot must recompile: the
  // query demotes to the pointer engine, flags degraded, and returns the
  // same answer set.
  TimeSeries extra1 = workload::RandomWalkSeries(1, 32, 99)[0];
  extra1.id = "extra1";
  ASSERT_TRUE(db.Insert("r", extra1).ok());
  const Result<QueryResult> fresh = db.ExecuteText(text);
  ASSERT_TRUE(fresh.ok());

  TimeSeries extra2 = workload::RandomWalkSeries(1, 32, 100)[0];
  extra2.id = "extra2";
  ASSERT_TRUE(db.Insert("r", extra2).ok());
  Failpoints::Global().Configure("packed.compile", Always());
  const Result<QueryResult> degraded = db.ExecuteText(text);
  Failpoints::Global().Reset();
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded.value().stats.degraded);
  EXPECT_TRUE(degraded.value().stats.used_index);
  EXPECT_GE(db.degradation_stats().packed_compile_failures, 1u);
  EXPECT_GE(db.degradation_stats().degraded_queries, 1u);

  const Result<QueryResult> after = db.ExecuteText(text);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.value().stats.degraded);
  ASSERT_EQ(degraded.value().matches.size(), after.value().matches.size());
  for (size_t i = 0; i < after.value().matches.size(); ++i) {
    EXPECT_EQ(degraded.value().matches[i].id, after.value().matches[i].id);
    EXPECT_EQ(degraded.value().matches[i].distance,
              after.value().matches[i].distance);
  }
}

TEST_F(FailpointTest, FilterCompileFailureFallsBackToExactScan) {
  Database db = SmallDb();
  Failpoints::Global().Configure("filter.compile", Always());
  const Result<QueryResult> degraded =
      db.ExecuteText("RANGE r WITHIN 3.0 OF #walk5 VIA SCAN MODE FILTERED");
  Failpoints::Global().Reset();
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded.value().stats.degraded);
  EXPECT_FALSE(degraded.value().stats.used_filter);  // exact scan ran

  const Result<QueryResult> exact =
      db.ExecuteText("RANGE r WITHIN 3.0 OF #walk5 VIA SCAN MODE EXACT");
  ASSERT_TRUE(exact.ok());
  ASSERT_EQ(degraded.value().matches.size(), exact.value().matches.size());
  for (size_t i = 0; i < exact.value().matches.size(); ++i) {
    EXPECT_EQ(degraded.value().matches[i].id, exact.value().matches[i].id);
  }
}

TEST_F(FailpointTest, PoolTaskFailpointRethrowsOnCaller) {
  Failpoints::Trigger t;
  t.kind = Failpoints::TriggerKind::kAfter;
  t.param = 1;  // first task boundary passes, second throws
  Failpoints::Global().Configure("pool.task", t);
  ThreadPool pool(4);
  bool threw = false;
  try {
    pool.ParallelFor(0, 1 << 16, /*min_grain=*/1,
                     [](int64_t, int64_t, int64_t) {});
  } catch (const std::exception& e) {
    threw = true;
    EXPECT_NE(std::string(e.what()).find("pool.task"), std::string::npos);
  }
  Failpoints::Global().Reset();
  EXPECT_TRUE(threw);
  // The pool must stay usable after an injected task failure.
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(0, 1000, 1, [&sum](int64_t, int64_t lo, int64_t hi) {
    sum.fetch_add(hi - lo);
  });
  EXPECT_EQ(sum.load(), 1000);
}

}  // namespace
}  // namespace simq
