// MVCC generation stress: N reader threads against a concurrent writer
// and a recompactor hammering the same relation through the query
// service. The contract under test (DESIGN.md "Delta layer & MVCC
// generations"): readers never wait on a rebuild -- recompaction builds
// its fresh generation under the shared lock, and only the pointer-swap
// publish takes the exclusive lock -- and writers never wait on readers
// beyond that same brief publish.
//
// Enforcement is deadline-bounded rather than timing-averaged: every
// reader query carries an ExecOptions deadline far above a normal
// execution but far below the cost of a from-scratch rebuild of the
// relation, so a reader that ever blocks behind a recompaction build
// surfaces as a kTimeout failure, deterministically. The test also
// requires genuine overlap (several recompactions must complete while
// readers are in flight) and ends with a quiesced identity check
// (index answers == full-scan answers, generation advanced).
//
// Runs under the SIMQ_SANITIZE=thread CI job: any torn publish --
// readers observing a half-swapped tree/snapshot/codes trio -- is a
// data race TSan reports directly.

#include "service/query_service.h"

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "workload/generators.h"

namespace simq {
namespace {

std::set<std::string> MatchNames(const QueryResult& result) {
  std::set<std::string> names;
  for (const Match& match : result.matches) {
    names.insert(match.name);
  }
  return names;
}

TEST(MvccStressTest, ReadersNeverBlockOnRecompaction) {
  constexpr int kReaders = 4;
  constexpr int kQueriesPerReader = 40;
  constexpr int kInserts = 120;
  constexpr int kSeriesLength = 32;
  // Generous against sanitizer slowdown, but a reader serialized behind
  // a full recompaction cycle of this relation (plus the writer's queue)
  // trips it reliably.
  constexpr double kDeadlineMs = 4000.0;

  ShardingOptions sharding;
  sharding.num_shards = 2;
  Database db(FeatureConfig(), RTree::Options(), sharding);
  ASSERT_TRUE(db.CreateRelation("r").ok());
  ASSERT_TRUE(
      db.BulkLoad("r", workload::RandomWalkSeries(400, kSeriesLength, 17))
          .ok());
  // Recompaction in this test is driven explicitly by the recompactor
  // thread; disable the service's own threshold trigger so the schedule
  // is the test's, not the service's.
  DeltaOptions delta;
  delta.recompact_threshold = 0;
  db.set_delta_options(delta);

  ServiceOptions options;
  options.result_cache_capacity = 64;
  QueryService service(std::move(db), options);

  const uint64_t generation_before = [&] {
    const Result<ServiceResult> probe =
        service.ExecuteText("RANGE r WITHIN 2.0 OF #walk0");
    EXPECT_TRUE(probe.ok());
    return probe.ok() ? probe.value().plan.generation : 0;
  }();

  std::atomic<bool> readers_done{false};
  std::atomic<int> failures{0};
  std::atomic<int> timeouts{0};
  std::atomic<int> recompactions{0};

  const std::vector<std::string> texts = {
      "RANGE r WITHIN 3.0 OF #walk1",
      "NEAREST 5 r TO #walk3",
      "RANGE r WITHIN 3.0 OF #walk4 VIA SCAN",
      "RANGE r WITHIN 4.0 OF #walk5 VIA SCAN MODE FILTERED",
  };

  auto reader = [&](int reader_id) {
    ExecOptions bounded;
    bounded.deadline_ms = kDeadlineMs;
    // Run the quota, then keep querying until a few recompactions have
    // completed underneath us -- the overlap the test exists to create.
    // Bounded so a stuck recompactor fails the overlap assertion below
    // instead of hanging the test.
    for (int i = 0;
         i < kQueriesPerReader || (recompactions.load() < 3 && i < 4000);
         ++i) {
      const size_t which = static_cast<size_t>(
          (i + reader_id) % static_cast<int>(texts.size()));
      const Result<ServiceResult> executed =
          service.ExecuteText(texts[which], bounded);
      if (!executed.ok()) {
        ++failures;
        if (executed.status().code() == StatusCode::kTimeout) {
          ++timeouts;  // a reader waited on a rebuild: the MVCC bug
        }
      }
    }
  };

  auto writer = [&] {
    const std::vector<TimeSeries> series =
        workload::RandomWalkSeries(kInserts, kSeriesLength, 4242);
    for (int i = 0; i < kInserts; ++i) {
      TimeSeries fresh = series[static_cast<size_t>(i)];
      fresh.id = "w" + std::to_string(i);
      if (!service.Insert("r", fresh).ok()) {
        ++failures;
      }
      // Interleave tombstones over the writer's own rows so recompaction
      // always has something to shed.
      if (i % 8 == 7) {
        const Result<ServiceResult> lookup = service.ExecuteText(
            "NEAREST 1 r TO #w" + std::to_string(i));
        if (lookup.ok() && !lookup.value().result.matches.empty()) {
          if (!service.Delete("r", lookup.value().result.matches[0].id)
                   .ok()) {
            ++failures;
          }
        }
      }
    }
  };

  // The recompactor loops for as long as any reader is in flight, so
  // rebuilds provably overlap reads.
  auto recompactor = [&] {
    while (!readers_done.load(std::memory_order_acquire)) {
      if (service.Recompact("r").ok()) {
        recompactions.fetch_add(1);
      } else {
        ++failures;
      }
    }
  };

  std::vector<std::thread> reader_threads;
  for (int r = 0; r < kReaders; ++r) {
    reader_threads.emplace_back(reader, r);
  }
  std::thread writer_thread(writer);
  std::thread recompactor_thread(recompactor);
  for (std::thread& thread : reader_threads) {
    thread.join();
  }
  readers_done.store(true, std::memory_order_release);
  writer_thread.join();
  recompactor_thread.join();

  EXPECT_EQ(timeouts.load(), 0)
      << "a reader hit its deadline while recompactions ran";
  EXPECT_EQ(failures.load(), 0);
  // Overlap must be real: a recompactor that only ran after the readers
  // drained would vacuously pass the deadline check.
  EXPECT_GE(recompactions.load(), 3);

  // Quiesced identity: one more fold, then the published generation must
  // answer exactly like a cold full scan, and generations advanced
  // monotonically past the starting point.
  ASSERT_TRUE(service.Recompact("r").ok());
  const Result<ServiceResult> via_index =
      service.ExecuteText("RANGE r WITHIN 3.0 OF #walk1");
  const Result<ServiceResult> via_fullscan =
      service.ExecuteText("RANGE r WITHIN 3.0 OF #walk1 VIA FULLSCAN");
  ASSERT_TRUE(via_index.ok() && via_fullscan.ok());
  EXPECT_EQ(MatchNames(via_index.value().result),
            MatchNames(via_fullscan.value().result));
  EXPECT_GT(via_index.value().plan.generation, generation_before);
  EXPECT_EQ(via_index.value().plan.delta_rows, 0);

  const ServiceStats stats = service.stats();
  EXPECT_GE(stats.recompactions, recompactions.load());
  EXPECT_EQ(stats.delta_rows, 0);
}

TEST(MvccStressTest, BackgroundRecompactorKeepsDeltaBounded) {
  // The service's own trigger: a small threshold plus a steady insert
  // stream must schedule background recompactions without any explicit
  // Recompact call, and draining the service (its destructor joins the
  // in-flight folds) leaves a consistent database behind.
  Database db;
  ASSERT_TRUE(db.CreateRelation("r").ok());
  ASSERT_TRUE(db.BulkLoad("r", workload::RandomWalkSeries(64, 24, 5)).ok());
  DeltaOptions delta;
  delta.recompact_threshold = 16;
  db.set_delta_options(delta);

  std::set<std::string> expect_names;
  {
    QueryService service(std::move(db), ServiceOptions());
    const std::vector<TimeSeries> series =
        workload::RandomWalkSeries(96, 24, 99);
    for (int i = 0; i < 96; ++i) {
      TimeSeries fresh = series[static_cast<size_t>(i)];
      fresh.id = "bg" + std::to_string(i);
      ASSERT_TRUE(service.Insert("r", fresh).ok());
      if (i % 16 == 0) {
        const Result<ServiceResult> probe =
            service.ExecuteText("RANGE r WITHIN 3.0 OF #walk1");
        ASSERT_TRUE(probe.ok());
      }
    }
    // Let scheduled folds drain through the destructor below; capture the
    // ground truth first.
    const Result<ServiceResult> final_answer =
        service.ExecuteText("RANGE r WITHIN 3.0 OF #walk1 VIA FULLSCAN");
    ASSERT_TRUE(final_answer.ok());
    expect_names = MatchNames(final_answer.value().result);
    const ServiceStats stats = service.stats();
    EXPECT_GE(stats.recompactions, 1)
        << "threshold crossings never scheduled a background fold";

    const Result<ServiceResult> after =
        service.ExecuteText("RANGE r WITHIN 3.0 OF #walk1");
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(MatchNames(after.value().result), expect_names);
  }
}

}  // namespace
}  // namespace simq
