#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "geom/circular_interval.h"
#include "geom/linear_transform.h"
#include "ts/feature.h"
#include "util/random.h"

namespace simq {
namespace {

std::vector<Complex> RandomCoeffs(Random* rng, int k) {
  std::vector<Complex> coeffs(static_cast<size_t>(k));
  for (Complex& c : coeffs) {
    c = Complex(rng->UniformDouble(-3.0, 3.0), rng->UniformDouble(-3.0, 3.0));
  }
  return coeffs;
}

TEST(LinearTransformTest, IdentityProperties) {
  const LinearTransform identity = LinearTransform::Identity(3);
  EXPECT_TRUE(identity.IsIdentity());
  EXPECT_TRUE(identity.IsSafeRectangular());
  EXPECT_TRUE(identity.IsSafePolar());
  Random rng(1);
  const std::vector<Complex> x = RandomCoeffs(&rng, 3);
  const std::vector<Complex> y = identity.Apply(x);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(x[i], y[i]);
  }
}

TEST(LinearTransformTest, ApplyStretchAndShift) {
  const LinearTransform t({Complex(2.0, 0.0)}, {Complex(1.0, -1.0)});
  const std::vector<Complex> out = t.Apply({Complex(3.0, 4.0)});
  EXPECT_EQ(out[0], Complex(7.0, 7.0));
}

TEST(LinearTransformTest, SafetyTheorem2RealStretch) {
  // Real a, complex b: safe in S_rect.
  const LinearTransform t({Complex(2.0, 0.0), Complex(-1.0, 0.0)},
                          {Complex(1.0, 2.0), Complex(0.0, -3.0)});
  EXPECT_TRUE(t.IsSafeRectangular());
  EXPECT_FALSE(t.IsSafePolar());
}

TEST(LinearTransformTest, SafetyTheorem3ComplexStretchZeroShift) {
  // Complex a, b = 0: safe in S_pol.
  const LinearTransform t({Complex(1.0, 2.0)}, {Complex(0.0, 0.0)});
  EXPECT_FALSE(t.IsSafeRectangular());
  EXPECT_TRUE(t.IsSafePolar());
}

TEST(LinearTransformTest, ComplexStretchUnsafeInRectangularSpace) {
  // The paper's counterexample after Theorem 2: multiplying by s = 2 - 3j
  // maps the rectangle [-5-5j, 5+5j] to one that no longer contains the
  // image of the interior point -2+2j.
  const Complex s(2.0, -3.0);
  const Complex p(-5.0, -5.0);
  const Complex q(5.0, 5.0);
  const Complex r(-2.0, 2.0);
  const Complex tp = p * s;
  const Complex tq = q * s;
  const Complex tr = r * s;
  const double lo_re = std::min(tp.real(), tq.real());
  const double hi_re = std::max(tp.real(), tq.real());
  const double lo_im = std::min(tp.imag(), tq.imag());
  const double hi_im = std::max(tp.imag(), tq.imag());
  const bool inside = tr.real() >= lo_re && tr.real() <= hi_re &&
                      tr.imag() >= lo_im && tr.imag() <= hi_im;
  EXPECT_FALSE(inside);
}

TEST(LinearTransformTest, ComposeAfter) {
  Random rng(2);
  const LinearTransform first({Complex(2.0, 0.0)}, {Complex(1.0, 0.0)});
  const LinearTransform second({Complex(0.0, 1.0)}, {Complex(0.0, 0.0)});
  const LinearTransform composed = second.ComposeAfter(first);
  const std::vector<Complex> x = RandomCoeffs(&rng, 1);
  const std::vector<Complex> direct = second.Apply(first.Apply(x));
  const std::vector<Complex> fused = composed.Apply(x);
  EXPECT_LT(std::abs(direct[0] - fused[0]), 1e-12);
}

TEST(LinearTransformTest, FromSpectrumSkipsCoefficientZero) {
  const Spectrum multiplier = {Complex(9.0, 0.0), Complex(1.0, 1.0),
                               Complex(2.0, 2.0), Complex(3.0, 3.0)};
  const LinearTransform t = LinearTransform::FromSpectrum(multiplier, 2);
  EXPECT_EQ(t.num_coefficients(), 2);
  EXPECT_EQ(t.stretch()[0], Complex(1.0, 1.0));
  EXPECT_EQ(t.stretch()[1], Complex(2.0, 2.0));
}

class LoweringTest : public ::testing::TestWithParam<FeatureSpace> {};

TEST_P(LoweringTest, LoweredActionsMatchComplexApplication) {
  // The key consistency property behind Algorithm 2: applying the lowered
  // per-dimension actions to an index point equals mapping the transformed
  // complex coefficients into the feature space.
  const FeatureSpace space = GetParam();
  Random rng(3);
  FeatureConfig config;
  config.num_coefficients = 3;
  config.space = space;
  config.include_mean_std = true;

  for (int trial = 0; trial < 100; ++trial) {
    // Build a transformation safe in the chosen space.
    std::vector<Complex> stretch(3);
    std::vector<Complex> shift(3);
    for (int c = 0; c < 3; ++c) {
      if (space == FeatureSpace::kRectangular) {
        stretch[static_cast<size_t>(c)] =
            Complex(rng.UniformDouble(-2.0, 2.0), 0.0);
        shift[static_cast<size_t>(c)] = Complex(
            rng.UniformDouble(-1.0, 1.0), rng.UniformDouble(-1.0, 1.0));
      } else {
        stretch[static_cast<size_t>(c)] = Complex(
            rng.UniformDouble(-2.0, 2.0), rng.UniformDouble(-2.0, 2.0));
        shift[static_cast<size_t>(c)] = Complex(0.0, 0.0);
      }
    }
    const LinearTransform transform(stretch, shift);
    ASSERT_TRUE(transform.IsSafeIn(space));

    const std::vector<Complex> coeffs = RandomCoeffs(&rng, 3);
    std::vector<double> point = {rng.UniformDouble(0.0, 10.0),
                                 rng.UniformDouble(0.1, 3.0)};
    const std::vector<double> coeff_coords =
        CoefficientsToCoords(coeffs, space);
    point.insert(point.end(), coeff_coords.begin(), coeff_coords.end());

    const std::vector<DimAffine> affines =
        LowerToFeatureSpace(transform, config);
    const std::vector<double> transformed_point =
        ApplyDimAffines(affines, point);

    // Mean/std dims are untouched.
    EXPECT_DOUBLE_EQ(transformed_point[0], point[0]);
    EXPECT_DOUBLE_EQ(transformed_point[1], point[1]);

    const std::vector<Complex> transformed_coeffs = transform.Apply(coeffs);
    for (int c = 0; c < 3; ++c) {
      const size_t d0 = static_cast<size_t>(2 + 2 * c);
      const size_t d1 = d0 + 1;
      Complex reconstructed;
      if (space == FeatureSpace::kRectangular) {
        reconstructed =
            Complex(transformed_point[d0], transformed_point[d1]);
      } else {
        reconstructed =
            std::polar(transformed_point[d0], transformed_point[d1]);
      }
      EXPECT_LT(std::abs(reconstructed -
                         transformed_coeffs[static_cast<size_t>(c)]),
                1e-9)
          << "trial " << trial << " coeff " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Spaces, LoweringTest,
                         ::testing::Values(FeatureSpace::kRectangular,
                                           FeatureSpace::kPolar));

TEST(LoweringTest, PolarAngleDimsFlagged) {
  FeatureConfig config;
  config.num_coefficients = 2;
  config.space = FeatureSpace::kPolar;
  const LinearTransform t({Complex(0.0, 1.0), Complex(1.0, 0.0)},
                          {Complex(0.0, 0.0), Complex(0.0, 0.0)});
  const std::vector<DimAffine> affines = LowerToFeatureSpace(t, config);
  ASSERT_EQ(affines.size(), 6u);
  EXPECT_FALSE(affines[2].is_angle);
  EXPECT_TRUE(affines[3].is_angle);
  EXPECT_NEAR(affines[2].scale, 1.0, 1e-12);        // |i| = 1
  EXPECT_NEAR(affines[3].offset, M_PI / 2, 1e-12);  // arg(i)
}

TEST(LoweringTest, RectangularNegativeStretch) {
  FeatureConfig config;
  config.num_coefficients = 1;
  config.space = FeatureSpace::kRectangular;
  config.include_mean_std = false;
  const LinearTransform t({Complex(-1.0, 0.0)}, {Complex(0.5, -0.5)});
  const std::vector<DimAffine> affines = LowerToFeatureSpace(t, config);
  ASSERT_EQ(affines.size(), 2u);
  EXPECT_DOUBLE_EQ(affines[0].scale, -1.0);
  EXPECT_DOUBLE_EQ(affines[0].offset, 0.5);
  EXPECT_DOUBLE_EQ(affines[1].scale, -1.0);
  EXPECT_DOUBLE_EQ(affines[1].offset, -0.5);
}

}  // namespace
}  // namespace simq
