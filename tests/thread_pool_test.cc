#include "util/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace simq {
namespace {

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.ParallelFor(0, 1000, 1, [&](int64_t /*block*/, int64_t lo,
                                   int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      ++hits[static_cast<size_t>(i)];  // blocks are disjoint by contract
    }
  });
  for (const int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPoolTest, BlockIdsAreDenseAndOrdered) {
  ThreadPool pool(3);
  std::vector<std::pair<int64_t, int64_t>> ranges(
      static_cast<size_t>(4 * pool.num_threads()), {-1, -1});
  std::atomic<int64_t> max_block{-1};
  pool.ParallelFor(100, 1100, 10, [&](int64_t block, int64_t lo,
                                      int64_t hi) {
    ranges[static_cast<size_t>(block)] = {lo, hi};
    int64_t seen = max_block.load();
    while (seen < block && !max_block.compare_exchange_weak(seen, block)) {
    }
  });
  const int64_t blocks = max_block.load() + 1;
  ASSERT_GT(blocks, 1);
  ASSERT_LE(blocks, 4 * pool.num_threads());
  // Blocks partition [100, 1100) in increasing order.
  EXPECT_EQ(ranges[0].first, 100);
  for (int64_t b = 1; b < blocks; ++b) {
    EXPECT_EQ(ranges[static_cast<size_t>(b)].first,
              ranges[static_cast<size_t>(b - 1)].second);
  }
  EXPECT_EQ(ranges[static_cast<size_t>(blocks - 1)].second, 1100);
}

TEST(ThreadPoolTest, SmallRangeRunsInline) {
  ThreadPool pool(4);
  int64_t calls = 0;
  pool.ParallelFor(0, 10, 100, [&](int64_t block, int64_t lo, int64_t hi) {
    ++calls;  // single inline call: no synchronization needed
    EXPECT_EQ(block, 0);
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 10);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, EmptyRangeDoesNothing) {
  ThreadPool pool(2);
  int64_t calls = 0;
  pool.ParallelFor(5, 5, 1,
                   [&](int64_t, int64_t, int64_t) { ++calls; });
  pool.ParallelFor(7, 3, 1,
                   [&](int64_t, int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, NestedParallelForRunsSerially) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(0, 8, 1, [&](int64_t, int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      // A nested call from a worker must degrade to one inline block.
      pool.ParallelFor(0, 100, 1, [&](int64_t block, int64_t nlo,
                                      int64_t nhi) {
        EXPECT_EQ(block, 0);
        total.fetch_add(nhi - nlo);
      });
    }
  });
  EXPECT_EQ(total.load(), 800);
}

TEST(ThreadPoolTest, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  const int64_t count = 123457;
  std::vector<int64_t> block_sums(
      static_cast<size_t>(4 * pool.num_threads()), 0);
  pool.ParallelFor(0, count, 1000, [&](int64_t block, int64_t lo,
                                       int64_t hi) {
    int64_t sum = 0;
    for (int64_t i = lo; i < hi; ++i) {
      sum += i;
    }
    block_sums[static_cast<size_t>(block)] = sum;
  });
  const int64_t total = std::accumulate(block_sums.begin(),
                                        block_sums.end(), int64_t{0});
  EXPECT_EQ(total, count * (count - 1) / 2);
}

TEST(ThreadPoolTest, BodyExceptionPropagatesAfterAllWorkersFinish) {
  ThreadPool pool(4);
  std::atomic<int64_t> processed{0};
  EXPECT_THROW(
      pool.ParallelFor(0, 10000, 1,
                       [&](int64_t block, int64_t lo, int64_t hi) {
                         if (block == 1) {
                           throw std::runtime_error("body failure");
                         }
                         processed.fetch_add(hi - lo);
                       }),
      std::runtime_error);
  // After the rethrow no worker may still be running the body; a second
  // ParallelFor over the same pool must work normally.
  std::atomic<int64_t> total{0};
  pool.ParallelFor(0, 100, 1, [&](int64_t, int64_t lo, int64_t hi) {
    total.fetch_add(hi - lo);
  });
  EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  int64_t calls = 0;
  pool.ParallelFor(0, 100000, 1, [&](int64_t block, int64_t lo,
                                     int64_t hi) {
    ++calls;
    EXPECT_EQ(block, 0);
    EXPECT_EQ(hi - lo, 100000);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  std::atomic<int64_t> done{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
    // Destructor drains the queue: all 100 tasks finish before it returns.
  }
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, SubmitFromPooledTaskDoesNotDeadlock) {
  // A pooled task that submits more work must not deadlock, and the
  // re-submitted work must still run -- including tasks enqueued while the
  // destructor is already draining.
  std::atomic<int64_t> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i) {
      pool.Submit([&pool, &done] {
        pool.Submit([&pool, &done] {
          pool.Submit([&done] { done.fetch_add(1); });
          done.fetch_add(1);
        });
        done.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(done.load(), 24);
}

TEST(ThreadPoolTest, SubmitSingleThreadRunsInline) {
  // The SIMQ_THREADS=1 degenerate path: no workers exist, so Submit must
  // execute on the calling thread -- progress cannot depend on the queue.
  ThreadPool pool(1);
  bool ran = false;
  std::thread::id runner;
  pool.Submit([&] {
    ran = true;
    runner = std::this_thread::get_id();
  });
  EXPECT_TRUE(ran);
  EXPECT_EQ(runner, std::this_thread::get_id());
}

TEST(ThreadPoolTest, ParallelismBudgetLimitsFanOut) {
  ThreadPool pool(4);
  {
    // Budget 1: the call degenerates to one inline block.
    ThreadPool::ScopedParallelismBudget budget(1);
    int64_t calls = 0;
    pool.ParallelFor(0, 100000, 1,
                     [&](int64_t block, int64_t lo, int64_t hi) {
                       ++calls;
                       EXPECT_EQ(block, 0);
                       EXPECT_EQ(hi - lo, 100000);
                     });
    EXPECT_EQ(calls, 1);
  }
  {
    // Budget 2: at most 2*4 blocks even though the pool allows 16.
    ThreadPool::ScopedParallelismBudget budget(2);
    std::atomic<int64_t> max_block{-1};
    pool.ParallelFor(0, 100000, 1,
                     [&](int64_t block, int64_t, int64_t) {
                       int64_t seen = max_block.load();
                       while (seen < block &&
                              !max_block.compare_exchange_weak(seen, block)) {
                       }
                     });
    EXPECT_LT(max_block.load(), 8);
  }
  // The budget is scoped: after the blocks above, full width is back.
  std::atomic<int64_t> max_block{-1};
  pool.ParallelFor(0, 100000, 1, [&](int64_t block, int64_t, int64_t) {
    int64_t seen = max_block.load();
    while (seen < block && !max_block.compare_exchange_weak(seen, block)) {
    }
  });
  EXPECT_GE(max_block.load(), 8);
}

}  // namespace
}  // namespace simq
