#include <cmath>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "subseq/subsequence_index.h"
#include "ts/dft.h"
#include "util/random.h"
#include "util/stats.h"
#include "workload/generators.h"

namespace simq {
namespace {

using Match = SubsequenceIndex::SubsequenceMatch;

std::set<std::pair<int64_t, int>> MatchPositions(
    const std::vector<Match>& matches) {
  std::set<std::pair<int64_t, int>> positions;
  for (const Match& match : matches) {
    positions.insert({match.series_id, match.offset});
  }
  return positions;
}

TEST(SubsequenceIndexTest, WindowFeaturesMatchDirectDft) {
  // The sliding-window feature layout must agree with the unitary DFT.
  SubsequenceIndex::Options options;
  options.window = 16;
  options.num_coefficients = 4;
  SubsequenceIndex index(options);

  Random rng(1);
  std::vector<double> window(16);
  for (double& v : window) {
    v = rng.UniformDouble(-5.0, 5.0);
  }
  const std::vector<double> features = index.WindowFeatures(window.data());
  const Spectrum spectrum = Dft(window);
  ASSERT_EQ(features.size(), 7u);
  EXPECT_NEAR(features[0], spectrum[0].real(), 1e-10);
  for (int f = 1; f < 4; ++f) {
    EXPECT_NEAR(features[static_cast<size_t>(2 * f - 1)],
                spectrum[static_cast<size_t>(f)].real(), 1e-10);
    EXPECT_NEAR(features[static_cast<size_t>(2 * f)],
                spectrum[static_cast<size_t>(f)].imag(), 1e-10);
  }
}

TEST(SubsequenceIndexTest, IncrementalFeaturesMatchDirectComputation) {
  // Indexing uses the O(k) sliding update; verify every window's feature
  // point (as covered by trail MBRs) by recomputing features directly.
  SubsequenceIndex::Options options;
  options.window = 32;
  options.num_coefficients = 3;
  options.max_trail_length = 1;  // one MBR per window => exact points
  options.packing = TrailPacking::kFixed;
  SubsequenceIndex index(options);

  const std::vector<TimeSeries> walk = workload::RandomWalkSeries(1, 500, 7);
  ASSERT_TRUE(index.AddSeries(walk[0]).ok());

  // Each trail MBR is a single feature point; query with epsilon 0 around
  // each directly computed feature point must retrieve its own window.
  for (int offset = 0; offset < 500 - 32 + 1; offset += 37) {
    std::vector<double> window(walk[0].values.begin() + offset,
                               walk[0].values.begin() + offset + 32);
    const std::vector<Match> matches = index.RangeSearch(window, 1e-6);
    ASSERT_FALSE(matches.empty()) << "offset " << offset;
    EXPECT_EQ(matches[0].offset, offset);
    EXPECT_NEAR(matches[0].distance, 0.0, 1e-9);
  }
}

struct SubseqCase {
  TrailPacking packing;
  int max_trail_length;
  int num_coefficients;
};

class SubsequenceSearchTest : public ::testing::TestWithParam<SubseqCase> {};

TEST_P(SubsequenceSearchTest, RangeSearchMatchesScan) {
  const SubseqCase c = GetParam();
  SubsequenceIndex::Options options;
  options.window = 48;
  options.num_coefficients = c.num_coefficients;
  options.packing = c.packing;
  options.max_trail_length = c.max_trail_length;
  SubsequenceIndex index(options);

  const std::vector<TimeSeries> walks =
      workload::RandomWalkSeries(5, 700, 99);
  for (const TimeSeries& ts : walks) {
    ASSERT_TRUE(index.AddSeries(ts).ok());
  }
  EXPECT_EQ(index.num_series(), 5);
  EXPECT_EQ(index.num_windows(), 5 * (700 - 48 + 1));
  EXPECT_TRUE(index.rtree().CheckInvariants());

  Random rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    // Query: a stored window plus noise, so matches exist at small eps.
    const int series_id = static_cast<int>(rng.UniformInt(0, 4));
    const int offset = static_cast<int>(rng.UniformInt(0, 700 - 48));
    std::vector<double> query(
        walks[static_cast<size_t>(series_id)].values.begin() + offset,
        walks[static_cast<size_t>(series_id)].values.begin() + offset + 48);
    for (double& v : query) {
      v += rng.UniformDouble(-0.2, 0.2);
    }
    const double epsilon = rng.UniformDouble(0.5, 6.0);

    SubsequenceIndex::SearchStats index_stats;
    const std::vector<Match> via_index =
        index.RangeSearch(query, epsilon, &index_stats);
    SubsequenceIndex::SearchStats scan_stats;
    const std::vector<Match> via_scan =
        index.ScanSearch(query, epsilon, &scan_stats);

    EXPECT_EQ(MatchPositions(via_index), MatchPositions(via_scan))
        << "trial " << trial << " eps " << epsilon;
    ASSERT_EQ(via_index.size(), via_scan.size());
    for (size_t i = 0; i < via_index.size(); ++i) {
      EXPECT_NEAR(via_index[i].distance, via_scan[i].distance, 1e-9);
    }
    // The planted window must be found whenever its noise kept it inside
    // the query radius.
    const double planted_distance = EuclideanDistance(
        query,
        std::vector<double>(
            walks[static_cast<size_t>(series_id)].values.begin() + offset,
            walks[static_cast<size_t>(series_id)].values.begin() + offset +
                48));
    if (planted_distance <= epsilon) {
      EXPECT_EQ(MatchPositions(via_index).count({series_id, offset}), 1u);
    }
    // The index must not verify more windows than the scan does.
    EXPECT_LE(index_stats.windows_checked, scan_stats.windows_checked);
    EXPECT_GT(index_stats.node_accesses, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Packings, SubsequenceSearchTest,
    ::testing::Values(SubseqCase{TrailPacking::kFixed, 16, 3},
                      SubseqCase{TrailPacking::kFixed, 64, 3},
                      SubseqCase{TrailPacking::kAdaptive, 64, 3},
                      SubseqCase{TrailPacking::kAdaptive, 64, 2},
                      SubseqCase{TrailPacking::kAdaptive, 256, 4}));

TEST(SubsequenceIndexTest, SelectiveQueriesCheckFewWindows) {
  SubsequenceIndex::Options options;
  options.window = 64;
  SubsequenceIndex index(options);
  const std::vector<TimeSeries> walks =
      workload::RandomWalkSeries(4, 2000, 11);
  for (const TimeSeries& ts : walks) {
    ASSERT_TRUE(index.AddSeries(ts).ok());
  }
  // A planted exact query at small epsilon verifies only a small fraction
  // of the windows -- the point of the ST-index.
  std::vector<double> query(walks[2].values.begin() + 500,
                            walks[2].values.begin() + 564);
  SubsequenceIndex::SearchStats stats;
  const std::vector<Match> matches = index.RangeSearch(query, 0.5, &stats);
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(matches[0].series_id, 2);
  EXPECT_EQ(matches[0].offset, 500);
  EXPECT_LT(stats.windows_checked, index.num_windows() / 4);
}

TEST(SubsequenceIndexTest, RejectsShortSeries) {
  SubsequenceIndex::Options options;
  options.window = 64;
  SubsequenceIndex index(options);
  TimeSeries tiny;
  tiny.id = "tiny";
  tiny.values.assign(10, 1.0);
  EXPECT_EQ(index.AddSeries(tiny).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SubsequenceIndexTest, SeriesExactlyWindowLength) {
  SubsequenceIndex::Options options;
  options.window = 32;
  SubsequenceIndex index(options);
  const std::vector<TimeSeries> walk = workload::RandomWalkSeries(1, 32, 5);
  ASSERT_TRUE(index.AddSeries(walk[0]).ok());
  EXPECT_EQ(index.num_windows(), 1);
  const std::vector<Match> matches =
      index.RangeSearch(walk[0].values, 1e-9);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].offset, 0);
}

TEST(SubsequenceIndexTest, AdaptivePackingProducesFewerTrailsOnSmoothData) {
  // Smooth trails stay inside small MBRs; adaptive packing should cover
  // them with fewer MBRs than per-point packing.
  SubsequenceIndex::Options fixed_options;
  fixed_options.window = 32;
  fixed_options.packing = TrailPacking::kFixed;
  fixed_options.max_trail_length = 4;
  SubsequenceIndex fixed_index(fixed_options);

  SubsequenceIndex::Options adaptive_options = fixed_options;
  adaptive_options.packing = TrailPacking::kAdaptive;
  adaptive_options.max_trail_length = 256;
  SubsequenceIndex adaptive_index(adaptive_options);

  // A slow sinusoid: adjacent windows have nearly identical features.
  TimeSeries smooth;
  smooth.id = "smooth";
  smooth.values.resize(1500);
  for (size_t t = 0; t < smooth.values.size(); ++t) {
    smooth.values[t] = 10.0 * std::sin(static_cast<double>(t) * 0.01);
  }
  ASSERT_TRUE(fixed_index.AddSeries(smooth).ok());
  ASSERT_TRUE(adaptive_index.AddSeries(smooth).ok());
  EXPECT_LT(adaptive_index.num_trails(), fixed_index.num_trails());

  // Both must still answer correctly.
  std::vector<double> query(smooth.values.begin() + 700,
                            smooth.values.begin() + 732);
  EXPECT_EQ(MatchPositions(fixed_index.RangeSearch(query, 0.3)),
            MatchPositions(adaptive_index.RangeSearch(query, 0.3)));
}

TEST(SubsequenceIndexTest, LongSeriesDriftStaysBounded) {
  // 20k samples exercise many incremental updates plus the periodic
  // recomputation; an exact planted query late in the series must still be
  // found at tiny epsilon (i.e. feature drift is negligible).
  SubsequenceIndex::Options options;
  options.window = 64;
  SubsequenceIndex index(options);
  const std::vector<TimeSeries> walk =
      workload::RandomWalkSeries(1, 20000, 17);
  ASSERT_TRUE(index.AddSeries(walk[0]).ok());

  const int offset = 19000;
  std::vector<double> query(walk[0].values.begin() + offset,
                            walk[0].values.begin() + offset + 64);
  const std::vector<Match> matches = index.RangeSearch(query, 1e-5);
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(matches[0].offset, offset);
}

}  // namespace
}  // namespace simq
