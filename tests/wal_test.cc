// Write-ahead log (core/wal.h): append/replay round trips, torn-tail
// truncation, corruption detection, and the snapshot+WAL recovery
// composition.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/persistence.h"
#include "core/wal.h"
#include "util/failpoint.h"
#include "workload/generators.h"

namespace simq {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteAllBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::Global().Reset(); }
  void TearDown() override { Failpoints::Global().Reset(); }
};

TEST_F(WalTest, ReplayOfMissingFileIsEmptyOk) {
  Database db;
  WalReplayStats stats;
  ASSERT_TRUE(
      ReplayWal(TempPath("no_such.wal"), &db, &stats).ok());
  EXPECT_EQ(stats.frames_applied, 0u);
  EXPECT_FALSE(stats.torn_tail);
}

TEST_F(WalTest, AppendReplayRoundTrip) {
  const std::string path = TempPath("roundtrip.wal");
  std::remove(path.c_str());
  const std::vector<TimeSeries> series = workload::RandomWalkSeries(8, 24, 3);
  {
    Result<WalWriter> writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    WalWriter wal = std::move(writer).value();
    ASSERT_TRUE(wal.AppendCreateRelation("r").ok());
    ASSERT_TRUE(wal.AppendBulkLoad("r", {series.begin(), series.end() - 2})
                    .ok());
    ASSERT_TRUE(wal.AppendInsert("r", series[series.size() - 2]).ok());
    ASSERT_TRUE(wal.AppendInsert("r", series.back()).ok());
    ASSERT_TRUE(wal.Sync().ok());
  }

  Database replayed;
  WalReplayStats stats;
  ASSERT_TRUE(ReplayWal(path, &replayed, &stats).ok());
  EXPECT_EQ(stats.frames_applied, 4u);
  EXPECT_FALSE(stats.torn_tail);

  Database direct;
  ASSERT_TRUE(direct.CreateRelation("r").ok());
  ASSERT_TRUE(direct.BulkLoad("r", series).ok());

  const Relation* a = replayed.GetRelation("r");
  const Relation* b = direct.GetRelation("r");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->size(), b->size());
  for (int64_t id = 0; id < a->size(); ++id) {
    EXPECT_EQ(a->record(id).name, b->record(id).name);
    EXPECT_EQ(a->record(id).raw, b->record(id).raw);  // bit-exact
  }
}

TEST_F(WalTest, DeleteFramesReplayAsTombstones) {
  const std::string path = TempPath("deletes.wal");
  std::remove(path.c_str());
  const std::vector<TimeSeries> series = workload::RandomWalkSeries(6, 24, 7);
  {
    Result<WalWriter> writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    WalWriter wal = std::move(writer).value();
    ASSERT_TRUE(wal.AppendCreateRelation("r").ok());
    ASSERT_TRUE(wal.AppendBulkLoad("r", series).ok());
    ASSERT_TRUE(wal.AppendDelete("r", 2).ok());
    ASSERT_TRUE(wal.AppendDelete("r", 5).ok());
    ASSERT_TRUE(wal.Sync().ok());
  }

  Database replayed;
  WalReplayStats stats;
  ASSERT_TRUE(ReplayWal(path, &replayed, &stats).ok());
  EXPECT_EQ(stats.frames_applied, 4u);

  Database direct;
  ASSERT_TRUE(direct.CreateRelation("r").ok());
  ASSERT_TRUE(direct.BulkLoad("r", series).ok());
  ASSERT_TRUE(direct.Delete("r", 2).ok());
  ASSERT_TRUE(direct.Delete("r", 5).ok());

  const char* text = "RANGE r WITHIN 100.0 OF #walk0";
  const Result<QueryResult> a = replayed.ExecuteText(text);
  const Result<QueryResult> b = direct.ExecuteText(text);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a.value().matches.size(), b.value().matches.size());
  for (size_t i = 0; i < a.value().matches.size(); ++i) {
    EXPECT_EQ(a.value().matches[i].id, b.value().matches[i].id);
    EXPECT_NE(a.value().matches[i].id, 2);
    EXPECT_NE(a.value().matches[i].id, 5);
  }
  // Deleting an already-deleted id fails to apply -- and a WAL carrying
  // such a frame is corrupt (log does not match its snapshot).
  Database again;
  ASSERT_TRUE(again.CreateRelation("r").ok());
  ASSERT_TRUE(again.BulkLoad("r", series).ok());
  ASSERT_TRUE(again.Delete("r", 2).ok());
  EXPECT_EQ(again.Delete("r", 2).code(), StatusCode::kNotFound);
}

TEST_F(WalTest, TornTailIsTruncatedAndReplayContinuesAfterIt) {
  const std::string path = TempPath("torn.wal");
  std::remove(path.c_str());
  const std::vector<TimeSeries> series = workload::RandomWalkSeries(4, 16, 5);
  {
    Result<WalWriter> writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    WalWriter wal = std::move(writer).value();
    ASSERT_TRUE(wal.AppendCreateRelation("r").ok());
    ASSERT_TRUE(wal.AppendInsert("r", series[0]).ok());
    ASSERT_TRUE(wal.AppendInsert("r", series[1]).ok());
    ASSERT_TRUE(wal.Sync().ok());
  }
  const std::string intact = ReadAllBytes(path);

  // Chop the last frame mid-way: a torn append. Replay must apply the
  // valid prefix, truncate the garbage, and report it.
  WriteAllBytes(path, intact.substr(0, intact.size() - 7));
  Database db;
  WalReplayStats stats;
  ASSERT_TRUE(ReplayWal(path, &db, &stats).ok());
  EXPECT_EQ(stats.frames_applied, 2u);
  EXPECT_TRUE(stats.torn_tail);
  EXPECT_GT(stats.truncated_bytes, 0u);
  ASSERT_NE(db.GetRelation("r"), nullptr);
  EXPECT_EQ(db.GetRelation("r")->size(), 1);

  // The file now ends at the last valid frame: appends land cleanly and a
  // second replay sees a whole log.
  {
    Result<WalWriter> writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    WalWriter wal = std::move(writer).value();
    ASSERT_TRUE(wal.AppendInsert("r", series[2]).ok());
    ASSERT_TRUE(wal.Sync().ok());
  }
  Database db2;
  WalReplayStats stats2;
  ASSERT_TRUE(ReplayWal(path, &db2, &stats2).ok());
  EXPECT_EQ(stats2.frames_applied, 3u);
  EXPECT_FALSE(stats2.torn_tail);
  EXPECT_EQ(db2.GetRelation("r")->size(), 2);
}

TEST_F(WalTest, ValidCrcButUnappliableFrameIsCorruption) {
  const std::string path = TempPath("unappliable.wal");
  std::remove(path.c_str());
  {
    Result<WalWriter> writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    WalWriter wal = std::move(writer).value();
    // Insert into a relation the log never created: the frame is
    // well-formed (CRC passes) but cannot apply.
    ASSERT_TRUE(
        wal.AppendInsert("ghost", workload::RandomWalkSeries(1, 16, 1)[0])
            .ok());
    ASSERT_TRUE(wal.Sync().ok());
  }
  Database db;
  WalReplayStats stats;
  EXPECT_EQ(ReplayWal(path, &db, &stats).code(), StatusCode::kCorruption);
}

TEST_F(WalTest, RejectsForeignFile) {
  const std::string path = TempPath("foreign.wal");
  WriteAllBytes(path, "this is not a WAL, much longer than the magic");
  EXPECT_EQ(WalWriter::Open(path).status().code(), StatusCode::kCorruption);
}

TEST_F(WalTest, TruncateEmptiesTheLog) {
  const std::string path = TempPath("truncate.wal");
  std::remove(path.c_str());
  {
    Result<WalWriter> writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    WalWriter wal = std::move(writer).value();
    ASSERT_TRUE(wal.AppendCreateRelation("r").ok());
    ASSERT_TRUE(wal.Truncate().ok());
    ASSERT_TRUE(wal.AppendCreateRelation("s").ok());
    ASSERT_TRUE(wal.Sync().ok());
  }
  Database db;
  WalReplayStats stats;
  ASSERT_TRUE(ReplayWal(path, &db, &stats).ok());
  EXPECT_EQ(stats.frames_applied, 1u);
  EXPECT_EQ(db.GetRelation("r"), nullptr);
  EXPECT_NE(db.GetRelation("s"), nullptr);
}

TEST_F(WalTest, AppendFailpointSurfacesAsIoError) {
  const std::string path = TempPath("inj_append.wal");
  std::remove(path.c_str());
  Result<WalWriter> writer = WalWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  WalWriter wal = std::move(writer).value();
  Failpoints::Trigger t;
  t.kind = Failpoints::TriggerKind::kAlways;
  Failpoints::Global().Configure("wal.append", t);
  EXPECT_EQ(wal.AppendCreateRelation("r").code(), StatusCode::kIoError);
  Failpoints::Global().Reset();
}

TEST_F(WalTest, InjectedTornAppendIsInvisibleAfterReplay) {
  const std::string path = TempPath("inj_torn.wal");
  std::remove(path.c_str());
  const std::vector<TimeSeries> series = workload::RandomWalkSeries(2, 16, 8);
  {
    Result<WalWriter> writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    WalWriter wal = std::move(writer).value();
    ASSERT_TRUE(wal.AppendCreateRelation("r").ok());
    ASSERT_TRUE(wal.AppendInsert("r", series[0]).ok());
    // The torn-append failpoint writes half a frame then errors -- the
    // same bytes a crash mid-write leaves behind.
    Failpoints::Trigger t;
    t.kind = Failpoints::TriggerKind::kAlways;
    Failpoints::Global().Configure("wal.append.torn", t);
    EXPECT_EQ(wal.AppendInsert("r", series[1]).code(), StatusCode::kIoError);
    Failpoints::Global().Reset();
  }
  Database db;
  WalReplayStats stats;
  ASSERT_TRUE(ReplayWal(path, &db, &stats).ok());
  EXPECT_EQ(stats.frames_applied, 2u);  // the acknowledged prefix
  EXPECT_TRUE(stats.torn_tail);
  EXPECT_EQ(db.GetRelation("r")->size(), 1);
}

TEST_F(WalTest, OpenDurableDatabaseComposesSnapshotAndWal) {
  const std::string snapshot = TempPath("durable.simqdb");
  const std::string wal_path = TempPath("durable.wal");
  std::remove(snapshot.c_str());
  std::remove(wal_path.c_str());
  const std::vector<TimeSeries> series = workload::RandomWalkSeries(20, 32, 4);

  // Checkpointed prefix in the snapshot, two more mutations in the WAL.
  Database db;
  ASSERT_TRUE(db.CreateRelation("r").ok());
  ASSERT_TRUE(
      db.BulkLoad("r", {series.begin(), series.end() - 2}).ok());
  ASSERT_TRUE(SaveDatabase(db, snapshot).ok());
  {
    Result<WalWriter> writer = WalWriter::Open(wal_path);
    ASSERT_TRUE(writer.ok());
    WalWriter wal = std::move(writer).value();
    ASSERT_TRUE(wal.AppendInsert("r", series[series.size() - 2]).ok());
    ASSERT_TRUE(wal.AppendInsert("r", series.back()).ok());
    ASSERT_TRUE(wal.Sync().ok());
  }
  ASSERT_TRUE(db.Insert("r", series[series.size() - 2]).ok());
  ASSERT_TRUE(db.Insert("r", series.back()).ok());

  WalReplayStats stats;
  Result<Database> recovered =
      OpenDurableDatabase(FeatureConfig(), snapshot, wal_path, &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(stats.frames_applied, 2u);
  const Relation* a = recovered.value().GetRelation("r");
  const Relation* b = db.GetRelation("r");
  ASSERT_EQ(a->size(), b->size());
  for (int64_t id = 0; id < a->size(); ++id) {
    EXPECT_EQ(a->record(id).raw, b->record(id).raw);
  }

  // And the recovered database answers queries identically.
  const char* text = "NEAREST 5 r TO #walk3";
  const Result<QueryResult> qa = recovered.value().ExecuteText(text);
  const Result<QueryResult> qb = db.ExecuteText(text);
  ASSERT_TRUE(qa.ok() && qb.ok());
  ASSERT_EQ(qa.value().matches.size(), qb.value().matches.size());
  for (size_t i = 0; i < qa.value().matches.size(); ++i) {
    EXPECT_EQ(qa.value().matches[i].id, qb.value().matches[i].id);
    EXPECT_EQ(qa.value().matches[i].distance, qb.value().matches[i].distance);
  }
}

}  // namespace
}  // namespace simq
