#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/transformation.h"
#include "ts/dft.h"
#include "ts/transforms.h"
#include "util/random.h"
#include "util/stats.h"

namespace simq {
namespace {

std::vector<double> RandomSignal(Random* rng, int n) {
  std::vector<double> x(static_cast<size_t>(n));
  for (double& v : x) {
    v = rng->UniformDouble(-5.0, 5.0);
  }
  return x;
}

// Property shared by every spectral rule: applying the rule in the time
// domain and transforming equals multiplying the spectrum element-wise.
void CheckSpectralConsistency(const TransformationRule& rule, int n,
                              uint64_t seed) {
  Random rng(seed);
  const std::vector<double> x = RandomSignal(&rng, n);
  const std::vector<double> applied = rule.Apply(x);
  const Spectrum direct = Dft(applied);
  const Spectrum base = Dft(x);
  const int out_n = rule.OutputLength(n);
  ASSERT_EQ(static_cast<int>(applied.size()), out_n);
  for (int f = 0; f < out_n; ++f) {
    const std::optional<Complex> m = rule.Multiplier(f, n);
    ASSERT_TRUE(m.has_value());
    const Complex expected = *m * base[static_cast<size_t>(f % n)];
    EXPECT_LT(std::abs(direct[static_cast<size_t>(f)] - expected), 1e-8)
        << rule.name() << " n=" << n << " f=" << f;
  }
}

TEST(TransformationRuleTest, IdentityRule) {
  const auto rule = MakeIdentityRule(0.5);
  EXPECT_EQ(rule->name(), "identity");
  EXPECT_DOUBLE_EQ(rule->cost(), 0.5);
  EXPECT_TRUE(rule->IsNormalFormInvariant());
  CheckSpectralConsistency(*rule, 16, 1);
}

TEST(TransformationRuleTest, MovingAverageRule) {
  const auto rule = MakeMovingAverageRule(5);
  EXPECT_EQ(rule->name(), "mavg(5)");
  Random rng(2);
  const std::vector<double> x = RandomSignal(&rng, 32);
  const std::vector<double> expected = CircularMovingAverage(x, 5);
  const std::vector<double> actual = rule->Apply(x);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-12);
  }
  CheckSpectralConsistency(*rule, 32, 3);
  CheckSpectralConsistency(*rule, 45, 4);  // non-power-of-two
}

TEST(TransformationRuleTest, ReverseRule) {
  const auto rule = MakeReverseRule();
  CheckSpectralConsistency(*rule, 24, 5);
  EXPECT_FALSE(rule->IsNormalFormInvariant());
}

TEST(TransformationRuleTest, TimeWarpRule) {
  const auto rule = MakeTimeWarpRule(3);
  EXPECT_EQ(rule->OutputLength(8), 24);
  CheckSpectralConsistency(*rule, 8, 6);
  CheckSpectralConsistency(*rule, 16, 7);
}

TEST(TransformationRuleTest, ShiftRuleIsNormalFormInvariantNotSpectral) {
  const auto rule = MakeShiftRule(10.0);
  EXPECT_TRUE(rule->IsNormalFormInvariant());
  EXPECT_FALSE(rule->IsSpectral(16));
  const std::vector<double> out = rule->Apply({1.0, 2.0});
  EXPECT_DOUBLE_EQ(out[0], 11.0);
  EXPECT_DOUBLE_EQ(out[1], 12.0);
}

TEST(TransformationRuleTest, ScaleRule) {
  const auto positive = MakeScaleRule(2.0);
  EXPECT_TRUE(positive->IsNormalFormInvariant());
  CheckSpectralConsistency(*positive, 16, 8);
  const auto negative = MakeScaleRule(-1.5);
  EXPECT_FALSE(negative->IsNormalFormInvariant());
  CheckSpectralConsistency(*negative, 16, 9);
}

TEST(TransformationRuleTest, DespikeRuleClampsSpikes) {
  const auto rule = MakeDespikeRule(2.0);
  EXPECT_FALSE(rule->IsSpectral(8));
  const std::vector<double> x = {1.0, 1.0, 9.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  const std::vector<double> out = rule->Apply(x);
  EXPECT_DOUBLE_EQ(out[2], 1.0);  // spike removed
  EXPECT_DOUBLE_EQ(out[0], 1.0);
}

TEST(TransformationRuleTest, DespikeKeepsSmallVariation) {
  const auto rule = MakeDespikeRule(5.0);
  const std::vector<double> x = {1.0, 2.0, 3.0, 2.0, 1.0};
  const std::vector<double> out = rule->Apply(x);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], x[i]);
  }
}

TEST(TransformationRuleTest, DifferenceRule) {
  const auto rule = MakeDifferenceRule();
  EXPECT_EQ(rule->name(), "diff");
  const std::vector<double> out = rule->Apply({3.0, 5.0, 4.0, 7.0});
  // Circular: first entry differences against the last.
  EXPECT_DOUBLE_EQ(out[0], 3.0 - 7.0);
  EXPECT_DOUBLE_EQ(out[1], 2.0);
  EXPECT_DOUBLE_EQ(out[2], -1.0);
  EXPECT_DOUBLE_EQ(out[3], 3.0);
  CheckSpectralConsistency(*rule, 32, 20);
  CheckSpectralConsistency(*rule, 45, 21);
}

TEST(TransformationRuleTest, DifferenceOfConstantIsZero) {
  const auto rule = MakeDifferenceRule();
  for (const double v : rule->Apply({5.0, 5.0, 5.0, 5.0})) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(TransformationRuleTest, ExponentialSmoothingRule) {
  const auto rule = MakeExponentialSmoothingRule(0.5);
  CheckSpectralConsistency(*rule, 64, 22);
  // Weights sum to 1: the mean is preserved.
  Random rng(23);
  const std::vector<double> x = RandomSignal(&rng, 64);
  double mean_in = 0.0;
  double mean_out = 0.0;
  const std::vector<double> out = rule->Apply(x);
  for (size_t i = 0; i < x.size(); ++i) {
    mean_in += x[i];
    mean_out += out[i];
  }
  EXPECT_NEAR(mean_in, mean_out, 1e-9);
}

TEST(TransformationRuleTest, ExponentialSmoothingLongTailOnShortSeries) {
  // alpha = 0.05 has a geometric tail far longer than 16 samples; the
  // kernel must fold circularly rather than fail.
  const auto rule = MakeExponentialSmoothingRule(0.05);
  CheckSpectralConsistency(*rule, 16, 24);
}

TEST(TransformationRuleTest, ExponentialSmoothingReducesVariance) {
  Random rng(25);
  const std::vector<double> x = RandomSignal(&rng, 128);
  const auto rule = MakeExponentialSmoothingRule(0.3);
  const std::vector<double> out = rule->Apply(x);
  EXPECT_LT(StdDev(out), StdDev(x));
}

TEST(TransformationRuleTest, DifferenceIndexableInPolarSpace) {
  const auto rule = MakeDifferenceRule();
  const std::optional<LinearTransform> t = rule->IndexTransform(128, 2);
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(t->IsSafePolar());
  EXPECT_FALSE(t->IsSafeRectangular());  // genuinely complex multiplier
}

TEST(CompositeRuleTest, AppliesInOrder) {
  std::vector<std::unique_ptr<TransformationRule>> rules;
  rules.push_back(MakeShiftRule(1.0));
  rules.push_back(MakeScaleRule(2.0));
  const auto composite = MakeCompositeRule(std::move(rules));
  // (x + 1) * 2, not (x * 2) + 1.
  const std::vector<double> out = composite->Apply({3.0});
  EXPECT_DOUBLE_EQ(out[0], 8.0);
  EXPECT_EQ(composite->name(), "shift(1)|scale(2)");
}

TEST(CompositeRuleTest, CostIsSum) {
  std::vector<std::unique_ptr<TransformationRule>> rules;
  rules.push_back(MakeReverseRule(1.5));
  rules.push_back(MakeMovingAverageRule(3, 2.5));
  const auto composite = MakeCompositeRule(std::move(rules));
  EXPECT_DOUBLE_EQ(composite->cost(), 4.0);
}

TEST(CompositeRuleTest, SpectralCompositionSameLength) {
  std::vector<std::unique_ptr<TransformationRule>> rules;
  rules.push_back(MakeMovingAverageRule(4));
  rules.push_back(MakeReverseRule());
  const auto composite = MakeCompositeRule(std::move(rules));
  CheckSpectralConsistency(*composite, 32, 10);
}

TEST(CompositeRuleTest, SpectralCompositionWithTrailingWarp) {
  std::vector<std::unique_ptr<TransformationRule>> rules;
  rules.push_back(MakeMovingAverageRule(3));
  rules.push_back(MakeTimeWarpRule(2));
  const auto composite = MakeCompositeRule(std::move(rules));
  EXPECT_EQ(composite->OutputLength(16), 32);
  CheckSpectralConsistency(*composite, 16, 11);
}

TEST(CompositeRuleTest, SpectralCompositionWithLeadingWarp) {
  std::vector<std::unique_ptr<TransformationRule>> rules;
  rules.push_back(MakeTimeWarpRule(2));
  rules.push_back(MakeReverseRule());
  const auto composite = MakeCompositeRule(std::move(rules));
  EXPECT_EQ(composite->OutputLength(8), 16);
  CheckSpectralConsistency(*composite, 8, 12);
}

TEST(CompositeRuleTest, NonSpectralMemberBlocksMultiplier) {
  std::vector<std::unique_ptr<TransformationRule>> rules;
  rules.push_back(MakeMovingAverageRule(3));
  rules.push_back(MakeDespikeRule(1.0));
  const auto composite = MakeCompositeRule(std::move(rules));
  EXPECT_FALSE(composite->Multiplier(1, 16).has_value());
  EXPECT_FALSE(composite->IndexTransform(16, 2).has_value());
}

TEST(IndexTransformTest, MatchesMultiplier) {
  const auto rule = MakeMovingAverageRule(5);
  const std::optional<LinearTransform> t = rule->IndexTransform(64, 3);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->num_coefficients(), 3);
  for (int c = 0; c < 3; ++c) {
    EXPECT_LT(std::abs(t->stretch()[static_cast<size_t>(c)] -
                       *rule->Multiplier(c + 1, 64)),
              1e-12);
    EXPECT_EQ(t->shift()[static_cast<size_t>(c)], Complex(0.0, 0.0));
  }
  EXPECT_TRUE(t->IsSafePolar());
}

TEST(IndexTransformTest, MovingAverageUnsafeInRectangularSpace) {
  // A moving-average multiplier is genuinely complex, so it is safe in
  // S_pol but not S_rect -- the reason [RM97] §5 chose polar coordinates.
  const auto rule = MakeMovingAverageRule(20);
  const std::optional<LinearTransform> t = rule->IndexTransform(128, 2);
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(t->IsSafePolar());
  EXPECT_FALSE(t->IsSafeRectangular());
}

TEST(IndexTransformTest, ReverseSafeInBothSpaces) {
  const auto rule = MakeReverseRule();
  const std::optional<LinearTransform> t = rule->IndexTransform(128, 2);
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(t->IsSafePolar());
  EXPECT_TRUE(t->IsSafeRectangular());
}

TEST(MakeRuleByNameTest, ValidRules) {
  EXPECT_TRUE(MakeRuleByName("identity", {}).ok());
  EXPECT_TRUE(MakeRuleByName("mavg", {20}).ok());
  EXPECT_TRUE(MakeRuleByName("reverse", {}).ok());
  EXPECT_TRUE(MakeRuleByName("warp", {2}).ok());
  EXPECT_TRUE(MakeRuleByName("shift", {3.5}).ok());
  EXPECT_TRUE(MakeRuleByName("scale", {-1.0}).ok());
  EXPECT_TRUE(MakeRuleByName("despike", {1.0}).ok());
  EXPECT_TRUE(MakeRuleByName("diff", {}).ok());
  EXPECT_TRUE(MakeRuleByName("ewma", {0.3}).ok());
}

TEST(MakeRuleByNameTest, CostArgument) {
  const auto rule = MakeRuleByName("mavg", {20, 2.5});
  ASSERT_TRUE(rule.ok());
  EXPECT_DOUBLE_EQ(rule.value()->cost(), 2.5);
}

TEST(MakeRuleByNameTest, Errors) {
  EXPECT_FALSE(MakeRuleByName("nope", {}).ok());
  EXPECT_FALSE(MakeRuleByName("mavg", {}).ok());
  EXPECT_FALSE(MakeRuleByName("mavg", {-2}).ok());
  EXPECT_FALSE(MakeRuleByName("mavg", {2.5}).ok());
  EXPECT_FALSE(MakeRuleByName("warp", {0}).ok());
  EXPECT_FALSE(MakeRuleByName("shift", {}).ok());
  EXPECT_FALSE(MakeRuleByName("identity", {1.0, 2.0}).ok());
  EXPECT_FALSE(MakeRuleByName("ewma", {}).ok());
  EXPECT_FALSE(MakeRuleByName("ewma", {1.5}).ok());
  EXPECT_FALSE(MakeRuleByName("ewma", {0.0}).ok());
}

TEST(TransformationRuleTest, Example11ViaRuleMatchesPaper) {
  // The motivating example, end to end through the rule interface.
  const std::vector<double> s1 = {36, 38, 40, 38, 42, 38, 36, 36,
                                  37, 38, 39, 38, 40, 38, 37};
  const std::vector<double> s2 = {40, 37, 37, 42, 41, 35, 40, 35,
                                  34, 42, 38, 35, 45, 36, 34};
  const auto mavg3 = MakeMovingAverageRule(3);
  EXPECT_NEAR(EuclideanDistance(mavg3->Apply(s1), mavg3->Apply(s2)), 0.47,
              0.005);
}

}  // namespace
}  // namespace simq
