#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "geom/search_region.h"
#include "util/random.h"

namespace simq {
namespace {

std::vector<Complex> RandomCoeffs(Random* rng, int k) {
  std::vector<Complex> coeffs(static_cast<size_t>(k));
  for (Complex& c : coeffs) {
    c = Complex(rng->UniformDouble(-3.0, 3.0), rng->UniformDouble(-3.0, 3.0));
  }
  return coeffs;
}

double CoeffDistance(const std::vector<Complex>& a,
                     const std::vector<Complex>& b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum += std::norm(a[i] - b[i]);
  }
  return std::sqrt(sum);
}

// Builds an index point (mean, std, coefficient coords) for `coeffs`.
std::vector<double> IndexPoint(const std::vector<Complex>& coeffs,
                               const FeatureConfig& config, double mean,
                               double std_dev) {
  std::vector<double> point;
  if (config.include_mean_std) {
    point.push_back(mean);
    point.push_back(std_dev);
  }
  const std::vector<double> coords =
      CoefficientsToCoords(coeffs, config.space);
  point.insert(point.end(), coords.begin(), coords.end());
  return point;
}

class SearchRegionSpaceTest : public ::testing::TestWithParam<FeatureSpace> {};

TEST_P(SearchRegionSpaceTest, NoFalseDismissalsOnPoints) {
  // Every point within epsilon of the query must be inside the region
  // (the region is the MBR of the epsilon-ball; Figure 7).
  FeatureConfig config;
  config.num_coefficients = 2;
  config.space = GetParam();
  Random rng(10);
  for (int trial = 0; trial < 300; ++trial) {
    const std::vector<Complex> query = RandomCoeffs(&rng, 2);
    const double epsilon = rng.UniformDouble(0.01, 2.0);
    const SearchRegion region =
        SearchRegion::MakeRange(query, epsilon, config);
    // Perturb the query by a vector of norm <= epsilon.
    std::vector<Complex> inside = query;
    double remaining = epsilon * 0.999;
    for (Complex& c : inside) {
      const double r = rng.UniformDouble(0.0, remaining);
      const double theta = rng.UniformDouble(0.0, 2.0 * M_PI);
      c += std::polar(r, theta);
      remaining = std::sqrt(std::max(0.0, remaining * remaining - r * r));
    }
    ASSERT_LE(CoeffDistance(inside, query), epsilon);
    const std::vector<double> point = IndexPoint(inside, config, 5.0, 1.0);
    EXPECT_TRUE(region.ContainsPoint(point)) << "trial " << trial;
  }
}

TEST_P(SearchRegionSpaceTest, FarPointsExcluded) {
  // Points farther than sqrt(2k)*epsilon in every coefficient cannot be in
  // the bounding region.
  FeatureConfig config;
  config.num_coefficients = 2;
  config.space = GetParam();
  Random rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const std::vector<Complex> query = RandomCoeffs(&rng, 2);
    const double epsilon = rng.UniformDouble(0.01, 1.0);
    const SearchRegion region =
        SearchRegion::MakeRange(query, epsilon, config);
    std::vector<Complex> far = query;
    for (Complex& c : far) {
      c += Complex(10.0 * epsilon + 1.0, 0.0);
    }
    const std::vector<double> point = IndexPoint(far, config, 5.0, 1.0);
    EXPECT_FALSE(region.ContainsPoint(point)) << "trial " << trial;
  }
}

TEST_P(SearchRegionSpaceTest, TransformedContainmentMatchesDirect) {
  // ContainsTransformedPoint(p, lower(T)) must agree with testing T(p)
  // against the region directly.
  const FeatureSpace space = GetParam();
  FeatureConfig config;
  config.num_coefficients = 2;
  config.space = space;
  Random rng(12);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<Complex> stretch(2);
    std::vector<Complex> shift(2);
    for (int c = 0; c < 2; ++c) {
      if (space == FeatureSpace::kRectangular) {
        stretch[static_cast<size_t>(c)] =
            Complex(rng.UniformDouble(-2.0, 2.0), 0.0);
        shift[static_cast<size_t>(c)] = Complex(
            rng.UniformDouble(-1.0, 1.0), rng.UniformDouble(-1.0, 1.0));
      } else {
        stretch[static_cast<size_t>(c)] = Complex(
            rng.UniformDouble(-2.0, 2.0), rng.UniformDouble(-2.0, 2.0));
        shift[static_cast<size_t>(c)] = Complex(0.0, 0.0);
      }
    }
    const LinearTransform transform(stretch, shift);
    const std::vector<DimAffine> affines =
        LowerToFeatureSpace(transform, config);

    const std::vector<Complex> query = RandomCoeffs(&rng, 2);
    const double epsilon = rng.UniformDouble(0.1, 2.0);
    const SearchRegion region =
        SearchRegion::MakeRange(query, epsilon, config);

    const std::vector<Complex> data = RandomCoeffs(&rng, 2);
    const std::vector<double> data_point = IndexPoint(data, config, 1.0, 1.0);
    const std::vector<double> transformed_point =
        IndexPoint(transform.Apply(data), config, 1.0, 1.0);

    EXPECT_EQ(region.ContainsTransformedPoint(data_point, affines),
              region.ContainsPoint(transformed_point))
        << "trial " << trial;
  }
}

TEST_P(SearchRegionSpaceTest, RectIntersectionIsConservative) {
  // If any corner-ish sample of a rect lands in the region, the rect must
  // intersect the region (no false negatives on rectangles).
  const FeatureSpace space = GetParam();
  FeatureConfig config;
  config.num_coefficients = 1;
  config.space = space;
  config.include_mean_std = false;
  Random rng(13);
  for (int trial = 0; trial < 300; ++trial) {
    const std::vector<Complex> query = RandomCoeffs(&rng, 1);
    const double epsilon = rng.UniformDouble(0.1, 1.5);
    const SearchRegion region =
        SearchRegion::MakeRange(query, epsilon, config);

    const std::vector<Complex> sample = RandomCoeffs(&rng, 1);
    std::vector<double> coords = CoefficientsToCoords(sample, space);
    if (space == FeatureSpace::kPolar) {
      coords[0] = std::fabs(coords[0]);
    }
    std::vector<double> lo = coords;
    std::vector<double> hi = coords;
    lo[0] -= 0.2;
    hi[0] += 0.2;
    lo[1] -= 0.2;
    hi[1] += 0.2;
    if (space == FeatureSpace::kPolar) {
      lo[0] = std::max(0.0, lo[0]);
    }
    const Rect rect = Rect::FromBounds(lo, hi);
    if (region.ContainsPoint(coords)) {
      EXPECT_TRUE(region.IntersectsRect(rect)) << "trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Spaces, SearchRegionSpaceTest,
                         ::testing::Values(FeatureSpace::kRectangular,
                                           FeatureSpace::kPolar));

TEST(SearchRegionTest, PolarBallContainingOriginCoversAllAngles) {
  FeatureConfig config;
  config.num_coefficients = 1;
  config.space = FeatureSpace::kPolar;
  config.include_mean_std = false;
  // epsilon exceeds |q|: every angle is admissible, magnitude up to |q|+eps.
  const std::vector<Complex> query = {Complex(0.5, 0.0)};
  const SearchRegion region = SearchRegion::MakeRange(query, 1.0, config);
  for (double angle = -3.0; angle <= 3.0; angle += 0.5) {
    EXPECT_TRUE(region.ContainsPoint({0.2, angle}));
  }
  EXPECT_FALSE(region.ContainsPoint({1.6, 0.0}));
}

TEST(SearchRegionTest, MeanStdConstraints) {
  FeatureConfig config;  // includes mean/std
  const std::vector<Complex> query = {Complex(1.0, 0.0), Complex(0.0, 1.0)};
  SearchRegion region = SearchRegion::MakeRange(query, 10.0, config);
  region.ConstrainMean(0.0, 5.0);
  region.ConstrainStd(1.0, 2.0);
  std::vector<double> point = IndexPoint(query, config, 3.0, 1.5);
  EXPECT_TRUE(region.ContainsPoint(point));
  point[0] = 9.0;  // mean outside range
  EXPECT_FALSE(region.ContainsPoint(point));
  point[0] = 3.0;
  point[1] = 0.5;  // std outside range
  EXPECT_FALSE(region.ContainsPoint(point));
}

TEST(MinDistAnnularSectorTest, InsideSectorIsZero) {
  const CircularInterval arc = CircularInterval::FromCenter(0.0, 0.5);
  EXPECT_DOUBLE_EQ(
      MinDistToAnnularSector(std::polar(2.0, 0.1), 1.0, 3.0, arc), 0.0);
}

TEST(MinDistAnnularSectorTest, RadialGaps) {
  const CircularInterval arc = CircularInterval::FromCenter(0.0, 0.5);
  EXPECT_NEAR(MinDistToAnnularSector(std::polar(0.5, 0.0), 1.0, 3.0, arc),
              0.5, 1e-12);
  EXPECT_NEAR(MinDistToAnnularSector(std::polar(4.0, 0.0), 1.0, 3.0, arc),
              1.0, 1e-12);
}

TEST(MinDistAnnularSectorTest, FullCircleIsRadialOnly) {
  const CircularInterval full = CircularInterval::FullCircle();
  EXPECT_NEAR(MinDistToAnnularSector(std::polar(5.0, 2.2), 1.0, 3.0, full),
              2.0, 1e-12);
  EXPECT_NEAR(MinDistToAnnularSector(Complex(0.0, 0.0), 1.0, 3.0, full), 1.0,
              1e-12);
}

TEST(MinDistAnnularSectorTest, MatchesBruteForceSampling) {
  Random rng(14);
  for (int trial = 0; trial < 100; ++trial) {
    const double mag_lo = rng.UniformDouble(0.0, 2.0);
    const double mag_hi = mag_lo + rng.UniformDouble(0.0, 2.0);
    const double center = rng.UniformDouble(-M_PI, M_PI);
    const double half_width = rng.UniformDouble(0.05, 2.5);
    const CircularInterval arc =
        CircularInterval::FromCenter(center, half_width);
    const Complex p(rng.UniformDouble(-4.0, 4.0),
                    rng.UniformDouble(-4.0, 4.0));

    const double fast = MinDistToAnnularSector(p, mag_lo, mag_hi, arc);

    double sampled = 1e300;
    const int kSteps = 400;
    for (int a = 0; a <= kSteps; ++a) {
      const double theta =
          arc.is_full()
              ? -M_PI + 2.0 * M_PI * a / kSteps
              : arc.lo() + arc.extent() * a / kSteps;
      for (int r = 0; r <= 60; ++r) {
        const double mag = mag_lo + (mag_hi - mag_lo) * r / 60.0;
        sampled = std::min(sampled, std::abs(p - std::polar(mag, theta)));
      }
    }
    // The analytic distance must lower-bound the sampled one and be close.
    EXPECT_LE(fast, sampled + 1e-9) << "trial " << trial;
    EXPECT_NEAR(fast, sampled, 0.05) << "trial " << trial;
  }
}

TEST(NnLowerBoundTest, PointBoundIsExactFeatureDistance) {
  FeatureConfig config;
  config.num_coefficients = 2;
  config.space = FeatureSpace::kPolar;
  Random rng(15);
  for (int trial = 0; trial < 100; ++trial) {
    const std::vector<Complex> query = RandomCoeffs(&rng, 2);
    const std::vector<Complex> data = RandomCoeffs(&rng, 2);
    const NnLowerBound bound(query, config);
    const std::vector<double> point = IndexPoint(data, config, 0.0, 1.0);
    const std::vector<DimAffine> identity(6);
    EXPECT_NEAR(bound.ToTransformedPoint(point, identity),
                CoeffDistance(query, data), 1e-9);
  }
}

TEST(NnLowerBoundTest, RectBoundBelowContainedPointDistances) {
  // For any point inside a rect, the rect lower bound must not exceed the
  // point's feature distance -- in both spaces, with transformations.
  Random rng(16);
  for (const FeatureSpace space :
       {FeatureSpace::kRectangular, FeatureSpace::kPolar}) {
    FeatureConfig config;
    config.num_coefficients = 2;
    config.space = space;
    config.include_mean_std = false;
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<Complex> stretch(2);
      for (Complex& s : stretch) {
        s = space == FeatureSpace::kRectangular
                ? Complex(rng.UniformDouble(-2.0, 2.0), 0.0)
                : Complex(rng.UniformDouble(-2.0, 2.0),
                          rng.UniformDouble(-2.0, 2.0));
      }
      const LinearTransform transform(
          stretch, std::vector<Complex>(2, Complex(0.0, 0.0)));
      const std::vector<DimAffine> affines =
          LowerToFeatureSpace(transform, config);

      const std::vector<Complex> query = RandomCoeffs(&rng, 2);
      const NnLowerBound bound(query, config);

      const std::vector<Complex> center_coeffs = RandomCoeffs(&rng, 2);
      std::vector<double> center =
          CoefficientsToCoords(center_coeffs, space);
      if (space == FeatureSpace::kPolar) {
        center[0] = std::fabs(center[0]);
        center[2] = std::fabs(center[2]);
      }
      std::vector<double> lo = center;
      std::vector<double> hi = center;
      for (size_t d = 0; d < lo.size(); ++d) {
        lo[d] -= 0.15;
        hi[d] += 0.15;
      }
      if (space == FeatureSpace::kPolar) {
        lo[0] = std::max(0.0, lo[0]);
        lo[2] = std::max(0.0, lo[2]);
      }
      const Rect rect = Rect::FromBounds(lo, hi);

      const double rect_bound = bound.ToTransformedRect(rect, affines);
      // Sample points inside the rect.
      for (int s = 0; s < 20; ++s) {
        std::vector<double> point(lo.size());
        for (size_t d = 0; d < lo.size(); ++d) {
          point[d] = rng.UniformDouble(lo[d], hi[d]);
        }
        const double point_dist = bound.ToTransformedPoint(point, affines);
        EXPECT_LE(rect_bound, point_dist + 1e-9)
            << "space=" << static_cast<int>(space) << " trial=" << trial;
      }
    }
  }
}

}  // namespace
}  // namespace simq
