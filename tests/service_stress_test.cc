// Reader/writer races through the query service: N query threads against
// concurrent Insert and BulkLoad writers. Run under the SIMQ_SANITIZE CI
// job, this is the regression net for the snapshot-isolation scheme --
// torn reads of the records/FeatureStore/PackedRTree trio, stale packed
// snapshots, or cache entries surviving a mutation all surface here.

#include "service/query_service.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "workload/generators.h"

namespace simq {
namespace {

std::set<std::string> MatchNames(const QueryResult& result) {
  std::set<std::string> names;
  for (const Match& match : result.matches) {
    names.insert(match.name);
  }
  return names;
}

TEST(ServiceStressTest, ReadersRunAgainstConcurrentWriters) {
  constexpr int kReaders = 4;
  constexpr int kQueriesPerReader = 30;
  constexpr int kInsertsPerWriter = 25;
  constexpr int kSeriesLength = 32;

  Database db;
  ASSERT_TRUE(db.CreateRelation("r").ok());
  ASSERT_TRUE(
      db.BulkLoad("r", workload::RandomWalkSeries(80, kSeriesLength, 13))
          .ok());
  ServiceOptions options;
  options.result_cache_capacity = 64;
  QueryService service(std::move(db), options);

  const std::vector<std::string> texts = {
      "RANGE r WITHIN 3.0 OF #walk1",
      "RANGE r WITHIN 5.0 OF #walk2 USING mavg(4)",
      "NEAREST 5 r TO #walk3",
      "RANGE r WITHIN 3.0 OF #walk4 VIA SCAN",
  };

  std::atomic<int> failures{0};
  std::atomic<int64_t> total_queries{0};

  // Each reader records, per query text, the largest answer set seen so
  // far (by name). Inserts only add records, so answers must only grow:
  // a shrinking answer means a stale cache entry or a torn read.
  auto reader = [&](int reader_id) {
    auto session = service.OpenSession();
    std::map<std::string, std::set<std::string>> seen;
    std::vector<int64_t> statements;
    for (const std::string& text : texts) {
      const Result<int64_t> statement = session->Prepare(text);
      if (!statement.ok()) {
        ++failures;
        return;
      }
      statements.push_back(statement.value());
    }
    for (int i = 0; i < kQueriesPerReader; ++i) {
      const size_t which =
          static_cast<size_t>((i + reader_id) % static_cast<int>(texts.size()));
      const Result<ServiceResult> executed =
          (i % 2 == 0) ? session->ExecutePrepared(statements[which])
                       : session->Execute(texts[which]);
      if (!executed.ok()) {
        ++failures;
        continue;
      }
      ++total_queries;
      const QueryResult& result = executed.value().result;
      if (texts[which].rfind("NEAREST", 0) == 0) {
        continue;  // k-NN answers change membership as records arrive
      }
      const std::set<std::string> names = MatchNames(result);
      std::set<std::string>& best = seen[texts[which]];
      for (const std::string& name : best) {
        if (names.count(name) == 0) {
          ++failures;  // an answer set shrank: stale data was served
        }
      }
      if (names.size() >= best.size()) {
        best = names;
      }
    }
  };

  // Writers append fresh random series under unique names; one writer
  // also bulk-loads new relations to exercise CreateRelation+BulkLoad
  // under the exclusive lock.
  auto insert_writer = [&](int writer_id) {
    const std::vector<TimeSeries> series = workload::RandomWalkSeries(
        kInsertsPerWriter, kSeriesLength, 1000 + static_cast<uint64_t>(writer_id));
    for (int i = 0; i < kInsertsPerWriter; ++i) {
      TimeSeries fresh = series[static_cast<size_t>(i)];
      fresh.id = "w" + std::to_string(writer_id) + "_" + std::to_string(i);
      if (!service.Insert("r", fresh).ok()) {
        ++failures;
      }
    }
  };
  auto bulk_writer = [&] {
    for (int batch = 0; batch < 3; ++batch) {
      const std::string name = "batch" + std::to_string(batch);
      if (!service.CreateRelation(name).ok() ||
          !service
               .BulkLoad(name, workload::RandomWalkSeries(
                                   20, kSeriesLength,
                                   2000 + static_cast<uint64_t>(batch)))
               .ok()) {
        ++failures;
        continue;
      }
      const Result<ServiceResult> check = service.ExecuteText(
          "RANGE " + name + " WITHIN 2.0 OF #walk0");
      if (!check.ok()) {
        ++failures;
      }
    }
  };

  std::vector<std::thread> threads;
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back(reader, r);
  }
  threads.emplace_back(insert_writer, 0);
  threads.emplace_back(insert_writer, 1);
  threads.emplace_back(bulk_writer);
  for (std::thread& thread : threads) {
    thread.join();
  }

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(total_queries.load(), kReaders * kQueriesPerReader);

  // Quiesced: the service's view must now equal a cold scan of the final
  // data, and the epoch must reflect every mutation. The pre-loaded
  // relation starts at the bulk-load's shard roll-up (one bump per loaded
  // shard, here 1); every service-era insert adds exactly one bump.
  EXPECT_EQ(service.RelationEpoch("r"),
            static_cast<uint64_t>(1 + 2 * kInsertsPerWriter));
  const Result<ServiceResult> final_range =
      service.ExecuteText("RANGE r WITHIN 3.0 OF #walk1");
  const Result<ServiceResult> final_scan =
      service.ExecuteText("RANGE r WITHIN 3.0 OF #walk1 VIA FULLSCAN");
  ASSERT_TRUE(final_range.ok() && final_scan.ok());
  EXPECT_EQ(MatchNames(final_range.value().result),
            MatchNames(final_scan.value().result));
  EXPECT_EQ(service.database_unlocked().GetRelation("r")->size(),
            80 + 2 * kInsertsPerWriter);
}

TEST(ServiceStressTest, CacheInvalidationRaceServesOnlyCurrentEpoch) {
  // One hot query, hammered by readers while a writer keeps inserting
  // records that match it (duplicates of walk0). Every served answer must
  // be consistent with SOME epoch: the number of clones in the answer
  // can never exceed the clones inserted so far (stale-cache overshoot is
  // impossible by construction) and must never decrease per reader.
  Database db;
  ASSERT_TRUE(db.CreateRelation("r").ok());
  ASSERT_TRUE(db.BulkLoad("r", workload::RandomWalkSeries(40, 24, 29)).ok());
  ServiceOptions options;
  options.result_cache_capacity = 16;
  QueryService service(std::move(db), options);
  const std::vector<double> base =
      service.database_unlocked().GetRelation("r")->record(0).raw;

  constexpr int kClones = 20;
  std::atomic<int> inserted{0};
  std::atomic<int> failures{0};

  auto writer = [&] {
    for (int i = 0; i < kClones; ++i) {
      TimeSeries clone;
      clone.id = "clone" + std::to_string(i);
      clone.values = base;
      // Count BEFORE the insert commits: `inserted` is then always an
      // upper bound on the clones any in-flight query can observe.
      inserted.fetch_add(1);
      if (!service.Insert("r", clone).ok()) {
        ++failures;
      }
    }
  };
  auto reader = [&] {
    int last_clones = 0;
    for (int i = 0; i < 60; ++i) {
      // Upper bound read BEFORE the query: anything the answer contains
      // beyond this count would prove a result from the future or a
      // miscounted epoch; a count below last_clones proves staleness.
      const Result<ServiceResult> executed =
          service.ExecuteText("RANGE r WITHIN 0.25 OF #walk0");
      const int bound_after = inserted.load();
      if (!executed.ok()) {
        ++failures;
        continue;
      }
      int clones = 0;
      for (const Match& match : executed.value().result.matches) {
        if (match.name.rfind("clone", 0) == 0) {
          ++clones;
        }
      }
      if (clones > bound_after || clones < last_clones) {
        ++failures;
      }
      last_clones = clones;
    }
  };

  std::vector<std::thread> threads;
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back(reader);
  }
  threads.emplace_back(writer);
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);

  const Result<ServiceResult> final_result =
      service.ExecuteText("RANGE r WITHIN 0.25 OF #walk0");
  ASSERT_TRUE(final_result.ok());
  int clones = 0;
  for (const Match& match : final_result.value().result.matches) {
    clones += match.name.rfind("clone", 0) == 0 ? 1 : 0;
  }
  EXPECT_EQ(clones, kClones);
}

}  // namespace
}  // namespace simq
