// Property tests for the columnar execution engine: on randomized
// workloads, every execution strategy (index, early-abandoning scan, full
// scan) must return exactly the same answer set, and the batched columnar
// kernels must agree with a record-at-a-time AoS reference computed
// directly from the stored spectra. Epsilons are chosen as midpoints
// between consecutive reference distances so no answer sits on a rounding
// knife-edge.

#include <algorithm>
#include <cmath>
#include <complex>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "core/feature_store.h"
#include "core/transformation.h"
#include "ts/transforms.h"
#include "util/random.h"
#include "util/stats.h"
#include "workload/generators.h"

namespace simq {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::set<int64_t> MatchIds(const QueryResult& result) {
  std::set<int64_t> ids;
  for (const Match& match : result.matches) {
    ids.insert(match.id);
  }
  return ids;
}

std::set<std::pair<int64_t, int64_t>> PairSet(const QueryResult& result) {
  std::set<std::pair<int64_t, int64_t>> pairs;
  for (const PairMatch& pair : result.pairs) {
    pairs.emplace(pair.first, pair.second);
  }
  return pairs;
}

// Record-at-a-time reference: normal-form distance between T(x) and q in
// the time domain, the semantics the AoS engine implemented before the
// columnar refactor.
double ReferenceDistance(const std::vector<double>& data_raw,
                         const std::vector<double>& query_raw,
                         const TransformationRule* rule) {
  std::vector<double> lhs = ToNormalForm(data_raw).values;
  if (rule != nullptr) {
    lhs = rule->Apply(lhs);
  }
  return EuclideanDistance(lhs, ToNormalForm(query_raw).values);
}

// An epsilon with clearance on both sides: midway between the k-th and
// (k+1)-th smallest distances (skipping near-ties).
double MidpointEpsilon(std::vector<double> distances, size_t k) {
  std::sort(distances.begin(), distances.end());
  k = std::min(k, distances.size() - 2);
  for (size_t i = k; i + 1 < distances.size(); ++i) {
    if (distances[i + 1] - distances[i] > 1e-6) {
      return 0.5 * (distances[i] + distances[i + 1]);
    }
  }
  return distances.back() + 1.0;
}

struct RuleCase {
  const char* name;
  std::shared_ptr<const TransformationRule> rule;
};

std::vector<RuleCase> IndexableRules() {
  std::vector<RuleCase> rules;
  rules.push_back({"identity", nullptr});
  rules.push_back({"mavg7", MakeMovingAverageRule(7)});
  rules.push_back({"reverse", MakeReverseRule()});
  return rules;
}

TEST(ColumnarEquivalenceTest, RangeStrategiesAgreeOnRandomWorkloads) {
  for (const uint64_t seed : {11u, 29u, 73u}) {
    for (const int length : {64, 100}) {
      const std::vector<TimeSeries> series =
          workload::RandomWalkSeries(200, length, seed);
      Database db;
      ASSERT_TRUE(db.CreateRelation("r").ok());
      ASSERT_TRUE(db.BulkLoad("r", series).ok());

      for (const RuleCase& rule_case : IndexableRules()) {
        const TransformationRule* rule = rule_case.rule.get();
        const std::vector<double>& probe = series[seed % 7].values;

        std::vector<double> reference;
        reference.reserve(series.size());
        for (const TimeSeries& ts : series) {
          reference.push_back(ReferenceDistance(ts.values, probe, rule));
        }
        const double epsilon = MidpointEpsilon(reference, 12);
        std::set<int64_t> expected;
        for (size_t i = 0; i < reference.size(); ++i) {
          if (reference[i] <= epsilon) {
            expected.insert(static_cast<int64_t>(i));
          }
        }

        Query query;
        query.kind = QueryKind::kRange;
        query.relation = "r";
        query.query_series.literal = probe;  // semantics: D(T(x), q)
        query.epsilon = epsilon;
        query.transform = rule_case.rule;

        QueryResult results[3];
        const ExecutionStrategy strategies[] = {
            ExecutionStrategy::kIndex, ExecutionStrategy::kScan,
            ExecutionStrategy::kScanNoEarlyAbandon};
        for (int s = 0; s < 3; ++s) {
          query.strategy = strategies[s];
          const Result<QueryResult> result = db.Execute(query);
          ASSERT_TRUE(result.ok())
              << rule_case.name << ": " << result.status().ToString();
          results[s] = result.value();
        }
        for (int s = 0; s < 3; ++s) {
          EXPECT_EQ(MatchIds(results[s]), expected)
              << "rule=" << rule_case.name << " strategy=" << s
              << " seed=" << seed << " length=" << length;
        }
        // Index and scan must agree exactly; the time-domain reference
        // only up to FFT rounding.
        for (const Match& match : results[0].matches) {
          EXPECT_NEAR(match.distance,
                      reference[static_cast<size_t>(match.id)], 1e-8);
        }
      }
    }
  }
}

TEST(ColumnarEquivalenceTest, NearestStrategiesAgreeOnRandomWorkloads) {
  const std::vector<TimeSeries> series =
      workload::RandomWalkSeries(300, 128, 5);
  Database db;
  ASSERT_TRUE(db.CreateRelation("r").ok());
  ASSERT_TRUE(db.BulkLoad("r", series).ok());

  for (const RuleCase& rule_case : IndexableRules()) {
    Query query;
    query.kind = QueryKind::kNearest;
    query.relation = "r";
    query.query_series.literal = series[17].values;
    query.k = 9;
    query.transform = rule_case.rule;

    query.strategy = ExecutionStrategy::kIndex;
    const Result<QueryResult> via_index = db.Execute(query);
    query.strategy = ExecutionStrategy::kScan;
    const Result<QueryResult> via_scan = db.Execute(query);
    ASSERT_TRUE(via_index.ok());
    ASSERT_TRUE(via_scan.ok());
    ASSERT_EQ(via_index.value().matches.size(),
              via_scan.value().matches.size());
    for (size_t i = 0; i < via_scan.value().matches.size(); ++i) {
      EXPECT_EQ(via_index.value().matches[i].id,
                via_scan.value().matches[i].id)
          << rule_case.name;
      EXPECT_NEAR(via_index.value().matches[i].distance,
                  via_scan.value().matches[i].distance, 1e-9);
    }
  }
}

TEST(ColumnarEquivalenceTest, JoinMethodsAgreeOnStockWorkload) {
  workload::StockMarketOptions options;
  options.num_series = 220;
  const std::vector<TimeSeries> market = workload::StockMarket(options);
  Database db;
  ASSERT_TRUE(db.CreateRelation("r").ok());
  ASSERT_TRUE(db.BulkLoad("r", market).ok());
  const auto mavg = MakeMovingAverageRule(20);

  // Reference pair distances from the time domain.
  const Relation* relation = db.GetRelation("r");
  std::vector<std::vector<double>> smoothed;
  smoothed.reserve(static_cast<size_t>(relation->size()));
  for (const Record& record : relation->records()) {
    smoothed.push_back(mavg->Apply(record.normal_values));
  }
  std::vector<double> pair_distances;
  for (size_t i = 0; i < smoothed.size(); ++i) {
    for (size_t j = i + 1; j < smoothed.size(); ++j) {
      pair_distances.push_back(
          EuclideanDistance(smoothed[i], smoothed[j]));
    }
  }
  const double epsilon = MidpointEpsilon(pair_distances, 10);

  const Result<QueryResult> full =
      db.SelfJoin("r", epsilon, mavg.get(), JoinMethod::kFullScan);
  const Result<QueryResult> abandon =
      db.SelfJoin("r", epsilon, mavg.get(), JoinMethod::kScanEarlyAbandon);
  const Result<QueryResult> indexed =
      db.SelfJoin("r", epsilon, mavg.get(), JoinMethod::kIndexTransform);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(abandon.ok());
  ASSERT_TRUE(indexed.ok());

  EXPECT_EQ(PairSet(full.value()), PairSet(abandon.value()));

  // The scan methods report each unordered pair once; the index method
  // reports both orientations (Table 1 accounting).
  std::set<std::pair<int64_t, int64_t>> both_orientations;
  for (const auto& [i, j] : PairSet(abandon.value())) {
    both_orientations.emplace(i, j);
    both_orientations.emplace(j, i);
  }
  EXPECT_EQ(PairSet(indexed.value()), both_orientations);

  // Reference check: the scan join answers match the time domain.
  std::set<std::pair<int64_t, int64_t>> expected;
  for (size_t i = 0; i < smoothed.size(); ++i) {
    for (size_t j = i + 1; j < smoothed.size(); ++j) {
      if (EuclideanDistance(smoothed[i], smoothed[j]) <= epsilon) {
        expected.emplace(static_cast<int64_t>(i), static_cast<int64_t>(j));
      }
    }
  }
  EXPECT_EQ(PairSet(abandon.value()), expected);
}

TEST(ColumnarEquivalenceTest, AsymmetricJoinAgreesAcrossMethods) {
  // The hedging join r >< T_rev(r): scan and index methods both report
  // ordered pairs, so their answer sets must be identical.
  workload::StockMarketOptions options;
  options.num_series = 150;
  const std::vector<TimeSeries> market = workload::StockMarket(options);
  Database db;
  ASSERT_TRUE(db.CreateRelation("r").ok());
  ASSERT_TRUE(db.BulkLoad("r", market).ok());
  const auto reverse = MakeReverseRule();

  const Relation* relation = db.GetRelation("r");
  std::vector<double> pair_distances;
  for (int64_t i = 0; i < relation->size(); ++i) {
    for (int64_t j = 0; j < relation->size(); ++j) {
      if (i == j) {
        continue;
      }
      pair_distances.push_back(EuclideanDistance(
          relation->record(i).normal_values,
          reverse->Apply(relation->record(j).normal_values)));
    }
  }
  const double epsilon = MidpointEpsilon(pair_distances, 8);

  const Result<QueryResult> scan = db.SelfJoin(
      "r", epsilon, nullptr, reverse.get(), JoinMethod::kScanEarlyAbandon);
  const Result<QueryResult> indexed = db.SelfJoin(
      "r", epsilon, nullptr, reverse.get(), JoinMethod::kIndexTransform);
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE(indexed.ok());
  EXPECT_FALSE(PairSet(scan.value()).empty());
  EXPECT_EQ(PairSet(scan.value()), PairSet(indexed.value()));
}

TEST(ColumnarEquivalenceTest, StoreMirrorsRecordData) {
  // The SoA store must hold exactly the spectra/statistics of the records
  // it mirrors, including after incremental inserts.
  const std::vector<TimeSeries> series = workload::RandomWalkSeries(50, 33, 3);
  Database db;
  ASSERT_TRUE(db.CreateRelation("r").ok());
  for (const TimeSeries& ts : series) {
    ASSERT_TRUE(db.Insert("r", ts).ok());
  }
  const Relation* relation = db.GetRelation("r");
  const FeatureStore& store = relation->store();
  ASSERT_EQ(store.size(), relation->size());
  ASSERT_EQ(store.spectrum_length(), 33);
  for (int64_t i = 0; i < relation->size(); ++i) {
    const Record& record = relation->record(i);
    EXPECT_EQ(store.mean(i), record.features.mean);
    EXPECT_EQ(store.std_dev(i), record.features.std_dev);
    const double* row = store.SpectrumRow(i);
    for (int f = 0; f < store.spectrum_length(); ++f) {
      EXPECT_EQ(row[2 * f],
                record.features.normal_spectrum[static_cast<size_t>(f)]
                    .real());
      EXPECT_EQ(row[2 * f + 1],
                record.features.normal_spectrum[static_cast<size_t>(f)]
                    .imag());
    }
    const double* normal = store.NormalRow(i);
    for (int t = 0; t < store.series_length(); ++t) {
      EXPECT_EQ(normal[t], record.normal_values[static_cast<size_t>(t)]);
    }
  }
}

TEST(ColumnarEquivalenceTest, KernelsMatchComplexArithmetic) {
  // Direct kernel-vs-AoS check: the batched kernels must agree with naive
  // std::complex arithmetic over the same spectra to reassociation noise,
  // and must abandon iff the full sum exceeds the limit.
  Random rng(99);
  const int n = 37;
  Spectrum a(static_cast<size_t>(n)), b(static_cast<size_t>(n)),
      m(static_cast<size_t>(n));
  for (int f = 0; f < n; ++f) {
    a[static_cast<size_t>(f)] = Complex(rng.NextGaussian(),
                                        rng.NextGaussian());
    b[static_cast<size_t>(f)] = Complex(rng.NextGaussian(),
                                        rng.NextGaussian());
    m[static_cast<size_t>(f)] = Complex(rng.NextGaussian(),
                                        rng.NextGaussian());
  }
  const std::vector<double> a_ri = InterleaveSpectrum(a);
  const std::vector<double> b_ri = InterleaveSpectrum(b);
  const std::vector<double> m_ri = InterleaveSpectrum(m);

  double plain = 0.0, with_mult = 0.0, two_sided = 0.0;
  for (int f = 0; f < n; ++f) {
    plain += std::norm(a[static_cast<size_t>(f)] - b[static_cast<size_t>(f)]);
    with_mult += std::norm(a[static_cast<size_t>(f)] *
                               m[static_cast<size_t>(f)] -
                           b[static_cast<size_t>(f)]);
    two_sided += std::norm(a[static_cast<size_t>(f)] *
                               m[static_cast<size_t>(f)] -
                           b[static_cast<size_t>(f)] *
                               m[static_cast<size_t>(f)]);
  }
  EXPECT_NEAR(RowDistanceSq(a_ri.data(), b_ri.data(), n, kInf), plain,
              1e-12 * plain);
  EXPECT_NEAR(
      RowDistanceSqMult(a_ri.data(), m_ri.data(), b_ri.data(), n, kInf),
      with_mult, 1e-12 * with_mult);
  EXPECT_NEAR(RowDistanceSqTwoSided(a_ri.data(), b_ri.data(), m_ri.data(),
                                    m_ri.data(), n, kInf),
              two_sided, 1e-12 * two_sided);

  // Abandoning: a limit below the total must yield +infinity, a limit
  // above it the exact value.
  EXPECT_EQ(RowDistanceSq(a_ri.data(), b_ri.data(), n, plain * 0.5), kInf);
  EXPECT_LT(RowDistanceSq(a_ri.data(), b_ri.data(), n, plain * 2.0), kInf);
}

}  // namespace
}  // namespace simq
