#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "geom/circular_interval.h"
#include "geom/rect.h"

namespace simq {
namespace {

TEST(RectTest, FromPointIsDegenerate) {
  const Rect rect = Rect::FromPoint({1.0, 2.0});
  EXPECT_EQ(rect.dims(), 2);
  EXPECT_DOUBLE_EQ(rect.lo(0), 1.0);
  EXPECT_DOUBLE_EQ(rect.hi(0), 1.0);
  EXPECT_DOUBLE_EQ(rect.Area(), 0.0);
  EXPECT_FALSE(rect.IsEmpty());
}

TEST(RectTest, EmptyRect) {
  Rect rect = Rect::Empty(3);
  EXPECT_TRUE(rect.IsEmpty());
  rect.ExpandToInclude(Rect::FromPoint({1.0, 1.0, 1.0}));
  EXPECT_FALSE(rect.IsEmpty());
  EXPECT_DOUBLE_EQ(rect.lo(0), 1.0);
}

TEST(RectTest, OverlapsAndContains) {
  const Rect a = Rect::FromBounds({0.0, 0.0}, {4.0, 4.0});
  const Rect b = Rect::FromBounds({2.0, 2.0}, {6.0, 6.0});
  const Rect c = Rect::FromBounds({5.0, 5.0}, {7.0, 7.0});
  const Rect inner = Rect::FromBounds({1.0, 1.0}, {2.0, 2.0});
  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_TRUE(b.Overlaps(a));
  EXPECT_FALSE(a.Overlaps(c));
  EXPECT_TRUE(a.Contains(inner));
  EXPECT_FALSE(inner.Contains(a));
  EXPECT_TRUE(a.ContainsPoint({0.0, 4.0}));  // boundary inclusive
  EXPECT_FALSE(a.ContainsPoint({4.1, 0.0}));
}

TEST(RectTest, TouchingRectsOverlap) {
  const Rect a = Rect::FromBounds({0.0}, {1.0});
  const Rect b = Rect::FromBounds({1.0}, {2.0});
  EXPECT_TRUE(a.Overlaps(b));
}

TEST(RectTest, AreaMarginOverlap) {
  const Rect a = Rect::FromBounds({0.0, 0.0}, {4.0, 2.0});
  EXPECT_DOUBLE_EQ(a.Area(), 8.0);
  EXPECT_DOUBLE_EQ(a.Margin(), 6.0);
  const Rect b = Rect::FromBounds({3.0, 1.0}, {5.0, 5.0});
  EXPECT_DOUBLE_EQ(a.OverlapArea(b), 1.0);
  EXPECT_DOUBLE_EQ(b.OverlapArea(a), 1.0);
  const Rect c = Rect::FromBounds({10.0, 10.0}, {11.0, 11.0});
  EXPECT_DOUBLE_EQ(a.OverlapArea(c), 0.0);
}

TEST(RectTest, UnionAndEnlargement) {
  const Rect a = Rect::FromBounds({0.0, 0.0}, {2.0, 2.0});
  const Rect b = Rect::FromBounds({3.0, 3.0}, {4.0, 4.0});
  const Rect u = Rect::Union(a, b);
  EXPECT_DOUBLE_EQ(u.lo(0), 0.0);
  EXPECT_DOUBLE_EQ(u.hi(1), 4.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(b), 16.0 - 4.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(a), 0.0);
}

TEST(RectTest, CenterAndCenterDistance) {
  const Rect a = Rect::FromBounds({0.0, 0.0}, {2.0, 2.0});
  const Rect b = Rect::FromBounds({4.0, 1.0}, {6.0, 1.0});
  const Point center = a.Center();
  EXPECT_DOUBLE_EQ(center[0], 1.0);
  EXPECT_DOUBLE_EQ(center[1], 1.0);
  EXPECT_DOUBLE_EQ(a.CenterDistanceSquared(b), 16.0);
}

TEST(RectTest, MinDistToPoint) {
  const Rect rect = Rect::FromBounds({0.0, 0.0}, {2.0, 2.0});
  EXPECT_DOUBLE_EQ(rect.MinDistSquaredToPoint({1.0, 1.0}), 0.0);  // inside
  EXPECT_DOUBLE_EQ(rect.MinDistSquaredToPoint({3.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(rect.MinDistSquaredToPoint({3.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(rect.MinDistSquaredToPoint({-1.0, -1.0}), 2.0);
}

TEST(CircularIntervalTest, NormalizeAngle) {
  EXPECT_NEAR(NormalizeAngle(0.0), 0.0, 1e-12);
  EXPECT_NEAR(NormalizeAngle(2.0 * M_PI), 0.0, 1e-12);
  EXPECT_NEAR(NormalizeAngle(3.0 * M_PI), -M_PI, 1e-12);
  EXPECT_NEAR(NormalizeAngle(-M_PI), -M_PI, 1e-12);
  EXPECT_NEAR(NormalizeAngle(M_PI), -M_PI, 1e-12);  // pi wraps to -pi
  EXPECT_NEAR(NormalizeAngle(M_PI / 2 + 4.0 * M_PI), M_PI / 2, 1e-12);
}

TEST(CircularIntervalTest, ContainsSimple) {
  const CircularInterval arc = CircularInterval::FromCenter(0.0, 0.5);
  EXPECT_TRUE(arc.Contains(0.0));
  EXPECT_TRUE(arc.Contains(0.49));
  EXPECT_TRUE(arc.Contains(-0.49));
  EXPECT_FALSE(arc.Contains(0.6));
  EXPECT_FALSE(arc.Contains(M_PI));
}

TEST(CircularIntervalTest, ContainsAcrossWrap) {
  // Arc centered at pi crosses the +-pi boundary.
  const CircularInterval arc = CircularInterval::FromCenter(M_PI, 0.5);
  EXPECT_TRUE(arc.Contains(M_PI - 0.3));
  EXPECT_TRUE(arc.Contains(-M_PI + 0.3));
  EXPECT_FALSE(arc.Contains(0.0));
}

TEST(CircularIntervalTest, FullCircleContainsEverything) {
  const CircularInterval full = CircularInterval::FullCircle();
  EXPECT_TRUE(full.is_full());
  for (double angle = -3.1; angle < 3.2; angle += 0.37) {
    EXPECT_TRUE(full.Contains(angle));
  }
}

TEST(CircularIntervalTest, HalfWidthAtLeastPiIsFull) {
  EXPECT_TRUE(CircularInterval::FromCenter(1.0, M_PI).is_full());
  EXPECT_TRUE(CircularInterval::FromCenter(1.0, 10.0).is_full());
  EXPECT_FALSE(CircularInterval::FromCenter(1.0, 3.0).is_full());
}

TEST(CircularIntervalTest, OverlapsBasic) {
  const CircularInterval a = CircularInterval::FromCenter(0.0, 0.5);
  const CircularInterval b = CircularInterval::FromCenter(0.8, 0.5);
  const CircularInterval c = CircularInterval::FromCenter(2.5, 0.4);
  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_TRUE(b.Overlaps(a));
  EXPECT_FALSE(a.Overlaps(c));
  EXPECT_TRUE(b.Overlaps(CircularInterval::FullCircle()));
}

TEST(CircularIntervalTest, OverlapsAcrossWrap) {
  const CircularInterval near_pi = CircularInterval::FromCenter(M_PI, 0.3);
  const CircularInterval near_minus_pi =
      CircularInterval::FromCenter(-M_PI + 0.1, 0.3);
  EXPECT_TRUE(near_pi.Overlaps(near_minus_pi));
  const CircularInterval near_zero = CircularInterval::FromCenter(0.0, 0.3);
  EXPECT_FALSE(near_pi.Overlaps(near_zero));
}

TEST(CircularIntervalTest, ContainedArcOverlaps) {
  const CircularInterval big = CircularInterval::FromCenter(1.0, 1.0);
  const CircularInterval small = CircularInterval::FromCenter(1.0, 0.1);
  EXPECT_TRUE(big.Overlaps(small));
  EXPECT_TRUE(small.Overlaps(big));
}

TEST(CircularIntervalTest, RotatedMovesArc) {
  const CircularInterval arc = CircularInterval::FromCenter(0.0, 0.2);
  const CircularInterval rotated = arc.Rotated(M_PI);
  EXPECT_TRUE(rotated.Contains(M_PI - 0.1));
  EXPECT_TRUE(rotated.Contains(-M_PI + 0.1));
  EXPECT_FALSE(rotated.Contains(0.0));
}

TEST(CircularIntervalTest, RotationPreservesExtent) {
  const CircularInterval arc = CircularInterval::FromBounds(0.5, 1.7);
  const CircularInterval rotated = arc.Rotated(2.9);
  EXPECT_NEAR(rotated.extent(), arc.extent(), 1e-12);
}

TEST(CircularIntervalTest, AngularDistance) {
  const CircularInterval arc = CircularInterval::FromCenter(0.0, 0.5);
  EXPECT_DOUBLE_EQ(arc.AngularDistance(0.2), 0.0);
  EXPECT_NEAR(arc.AngularDistance(1.0), 0.5, 1e-12);
  EXPECT_NEAR(arc.AngularDistance(-1.0), 0.5, 1e-12);
  EXPECT_NEAR(arc.AngularDistance(M_PI), M_PI - 0.5, 1e-12);
}

TEST(CircularIntervalTest, OverlapConsistentWithSampling) {
  // Property check: Overlaps agrees with dense sampling of both arcs.
  for (int trial = 0; trial < 200; ++trial) {
    const double c1 = -M_PI + 2.0 * M_PI * (trial % 20) / 20.0;
    const double w1 = 0.05 + 0.12 * (trial % 7);
    const double c2 = -M_PI + 2.0 * M_PI * ((trial * 13) % 25) / 25.0;
    const double w2 = 0.05 + 0.1 * (trial % 5);
    const CircularInterval a = CircularInterval::FromCenter(c1, w1);
    const CircularInterval b = CircularInterval::FromCenter(c2, w2);
    bool sampled_overlap = false;
    for (int s = 0; s <= 300; ++s) {
      const double angle = c1 - w1 + 2.0 * w1 * s / 300.0;
      if (b.Contains(NormalizeAngle(angle))) {
        sampled_overlap = true;
        break;
      }
    }
    EXPECT_EQ(a.Overlaps(b), sampled_overlap)
        << "c1=" << c1 << " w1=" << w1 << " c2=" << c2 << " w2=" << w2;
  }
}

}  // namespace
}  // namespace simq
