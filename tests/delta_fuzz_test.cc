// Differential mutation fuzz for the delta layer (core/sharded_relation.h).
//
// Two databases run the same randomized schedule of interleaved ops --
// insert, bulk-load, delete, range, kNN, self-join, recompact, checkpoint:
//
//  * the SUBJECT keeps the delta layer on (the default): mutations land in
//    the exactly-scanned delta, compiled artifacts stay put, recompaction
//    folds the delta into fresh generations;
//  * the ORACLE runs with the delta layer off: every mutation invalidates
//    the packed snapshot and the quantized codes, so each query rebuilds
//    derived state from scratch -- the naive rebuild-every-time semantics
//    the delta layer must reproduce bit for bit.
//
// After every query the answers are compared bitwise (ids, names, raw
// double distances). Range and kNN answers are canonically ordered by the
// engine ((distance, id) sort), so they compare as sequences; self-join
// pair emission order may legitimately differ between a fresh tree and a
// snapshot+delta walk, so pairs compare as (first, second)-sorted sets.
// Subject generations must be monotone, and a checkpoint (SIMQDB4 save +
// load) must restore a database that answers identically.
//
// The schedule space crosses shard counts 1/2/4 with the packed and
// pointer index engines and the filtered and exact scan paths. Every
// failure message carries the (config, seed, op index) triple needed to
// replay it.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "core/persistence.h"
#include "ts/time_series.h"
#include "workload/generators.h"

namespace simq {
namespace {

struct FuzzConfig {
  int shards = 1;
  IndexEngine engine = IndexEngine::kPacked;
  bool filtered = true;
};

std::string ConfigTag(const FuzzConfig& config, uint64_t seed, int op) {
  return "shards=" + std::to_string(config.shards) + " engine=" +
         (config.engine == IndexEngine::kPacked ? "packed" : "pointer") +
         " filter=" + (config.filtered ? "filtered" : "exact") +
         " seed=" + std::to_string(seed) + " op=" + std::to_string(op);
}

Database MakeDb(const FuzzConfig& config, bool delta_enabled) {
  ShardingOptions sharding;
  sharding.num_shards = config.shards;
  Database db(FeatureConfig(), RTree::Options(), sharding);
  db.set_index_engine(config.engine);
  DeltaOptions delta;
  delta.enabled = delta_enabled;
  db.set_delta_options(delta);
  EXPECT_TRUE(db.CreateRelation("r").ok());
  return db;
}

// Bitwise answer comparison: distances must be the very same doubles --
// the delta path refines through the identical exact kernels, so even
// the rounding is shared.
void ExpectSameAnswers(const QueryResult& subject, const QueryResult& oracle,
                       const std::string& tag) {
  ASSERT_EQ(subject.matches.size(), oracle.matches.size()) << tag;
  for (size_t i = 0; i < subject.matches.size(); ++i) {
    EXPECT_EQ(subject.matches[i].id, oracle.matches[i].id) << tag;
    EXPECT_EQ(subject.matches[i].name, oracle.matches[i].name) << tag;
    EXPECT_EQ(subject.matches[i].distance, oracle.matches[i].distance) << tag;
  }
  std::vector<PairMatch> a = subject.pairs;
  std::vector<PairMatch> b = oracle.pairs;
  const auto by_ids = [](const PairMatch& x, const PairMatch& y) {
    if (x.first != y.first) {
      return x.first < y.first;
    }
    return x.second < y.second;
  };
  std::sort(a.begin(), a.end(), by_ids);
  std::sort(b.begin(), b.end(), by_ids);
  ASSERT_EQ(a.size(), b.size()) << tag;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first) << tag;
    EXPECT_EQ(a[i].second, b[i].second) << tag;
    EXPECT_EQ(a[i].distance, b[i].distance) << tag;
  }
}

class DeltaFuzz {
 public:
  DeltaFuzz(const FuzzConfig& config, uint64_t seed)
      : config_(config),
        seed_(seed),
        rng_(seed),
        subject_(MakeDb(config, /*delta_enabled=*/true)),
        oracle_(MakeDb(config, /*delta_enabled=*/false)) {}

  void Run(int ops) {
    // Seed both databases so queries have substance from op 0.
    Apply([this](Database* db) {
      return db->BulkLoad("r", workload::RandomWalkSeries(12, 24, seed_));
    });
    names_ = 12;  // RandomWalkSeries names them walk0..walk11
    alive_.assign(12, 1);
    for (int op = 0; op < ops && !::testing::Test::HasFailure(); ++op) {
      op_ = op;
      const int dice = std::uniform_int_distribution<int>(0, 99)(rng_);
      if (dice < 30) {
        Insert();
      } else if (dice < 45) {
        Delete();
      } else if (dice < 50) {
        BulkLoad();
      } else if (dice < 65) {
        Range();
      } else if (dice < 80) {
        Nearest();
      } else if (dice < 90) {
        Join();
      } else if (dice < 95) {
        Recompact();
      } else {
        Checkpoint();
      }
      CheckGenerationMonotone();
    }
  }

 private:
  std::string Tag() const { return ConfigTag(config_, seed_, op_); }

  // Applies one mutation to both databases and insists they agree on it.
  template <typename Fn>
  void Apply(const Fn& fn) {
    const Status s = fn(&subject_);
    const Status o = fn(&oracle_);
    ASSERT_EQ(s.code(), o.code()) << Tag() << " subject=" << s.ToString()
                                  << " oracle=" << o.ToString();
    ASSERT_TRUE(s.ok()) << Tag() << " " << s.ToString();
  }

  TimeSeries FreshSeries() {
    TimeSeries series =
        workload::RandomWalkSeries(1, 24, seed_ * 1000003 + names_)[0];
    series.id = "s" + std::to_string(names_++);
    alive_.push_back(1);
    return series;
  }

  void Insert() {
    const TimeSeries series = FreshSeries();
    Apply([&](Database* db) { return db->Insert("r", series).status(); });
  }

  void BulkLoad() {
    // BulkLoad targets empty relations only, so the op loads a fresh
    // sibling relation on both sides: the bulk path still interleaves
    // with everything else, and the sibling rides through checkpoints.
    const std::string rel = "b" + std::to_string(bulk_relations_++);
    const int count = std::uniform_int_distribution<int>(3, 8)(rng_);
    const std::vector<TimeSeries> batch =
        workload::RandomWalkSeries(count, 24, seed_ * 7919 + op_);
    Apply([&](Database* db) {
      const Status created = db->CreateRelation(rel);
      if (!created.ok()) {
        return created;
      }
      return db->BulkLoad(rel, batch);
    });
    Compare("RANGE " + rel + " WITHIN 5.0 OF #walk0 VIA INDEX");
  }

  void Delete() {
    const int64_t id = PickLive();
    if (id < 0) {
      return;
    }
    alive_[static_cast<size_t>(id)] = 0;
    Apply([&](Database* db) { return db->Delete("r", id); });
    // Double-deletes must fail identically on both sides.
    EXPECT_EQ(subject_.Delete("r", id).code(), StatusCode::kNotFound)
        << Tag();
    EXPECT_EQ(oracle_.Delete("r", id).code(), StatusCode::kNotFound) << Tag();
  }

  int64_t PickLive() {
    std::vector<int64_t> live;
    for (size_t i = 0; i < alive_.size(); ++i) {
      if (alive_[i] != 0) {
        live.push_back(static_cast<int64_t>(i));
      }
    }
    if (live.size() <= 4) {
      return -1;  // keep a few rows so queries stay meaningful
    }
    return live[std::uniform_int_distribution<size_t>(0, live.size() - 1)(
        rng_)];
  }

  std::string LiveName() {
    const int64_t id = PickLive();
    if (id < 0) {
      return "";
    }
    return id < 12 ? "walk" + std::to_string(id)
                   : "s" + std::to_string(id);
  }

  std::string Mode() const {
    return config_.filtered ? " MODE FILTERED" : " MODE EXACT";
  }

  void Compare(const std::string& text) {
    const Result<QueryResult> subject = subject_.ExecuteText(text);
    const Result<QueryResult> oracle = oracle_.ExecuteText(text);
    ASSERT_EQ(subject.ok(), oracle.ok())
        << Tag() << " '" << text << "' subject=" << subject.status().ToString()
        << " oracle=" << oracle.status().ToString();
    if (!subject.ok()) {
      return;
    }
    ExpectSameAnswers(subject.value(), oracle.value(),
                      Tag() + " '" + text + "'");
  }

  void Range() {
    const std::string name = LiveName();
    if (name.empty()) {
      return;
    }
    const char* eps[] = {"0", "0.4", "2.0", "1e6"};
    const std::string e =
        eps[std::uniform_int_distribution<int>(0, 3)(rng_)];
    Compare("RANGE r WITHIN " + e + " OF #" + name + " VIA INDEX");
    Compare("RANGE r WITHIN " + e + " OF #" + name + " VIA SCAN" + Mode());
  }

  void Nearest() {
    const std::string name = LiveName();
    if (name.empty()) {
      return;
    }
    const char* ks[] = {"1", "3", "8", "100"};
    const std::string k = ks[std::uniform_int_distribution<int>(0, 3)(rng_)];
    Compare("NEAREST " + k + " r TO #" + name + " VIA INDEX");
    Compare("NEAREST " + k + " r TO #" + name + " VIA SCAN" + Mode());
  }

  void Join() {
    const char* eps[] = {"0.2", "1.0"};
    const std::string e =
        eps[std::uniform_int_distribution<int>(0, 1)(rng_)];
    Compare("PAIRS r WITHIN " + e);
  }

  void Recompact() {
    // Subject only: recompaction is the delta layer's maintenance; the
    // oracle's rebuild-every-time semantics have nothing to fold.
    ASSERT_TRUE(subject_.Recompact("r").ok()) << Tag();
    Range();
  }

  void Checkpoint() {
    const std::string path =
        ::testing::TempDir() + "/delta_fuzz_" + std::to_string(seed_) +
        ".simqdb";
    ASSERT_TRUE(SaveDatabase(subject_, path).ok()) << Tag();
    Result<Database> loaded = LoadDatabase(path);
    ASSERT_TRUE(loaded.ok()) << Tag() << " " << loaded.status().ToString();
    const std::string name = LiveName();
    if (name.empty()) {
      return;
    }
    const std::string text = "RANGE r WITHIN 2.0 OF #" + name;
    const Result<QueryResult> a = subject_.ExecuteText(text);
    const Result<QueryResult> b = loaded.value().ExecuteText(text);
    ASSERT_TRUE(a.ok() && b.ok()) << Tag();
    ExpectSameAnswers(b.value(), a.value(), Tag() + " checkpoint");
  }

  void CheckGenerationMonotone() {
    const Relation* rel = subject_.GetRelation("r");
    ASSERT_NE(rel, nullptr) << Tag();
    const uint64_t generation = rel->sharded().generation();
    EXPECT_GE(generation, last_generation_) << Tag();
    last_generation_ = generation;
  }

  FuzzConfig config_;
  uint64_t seed_;
  int op_ = 0;
  std::mt19937_64 rng_;
  Database subject_;
  Database oracle_;
  int64_t names_ = 0;
  int64_t bulk_relations_ = 0;
  std::vector<uint8_t> alive_;
  uint64_t last_generation_ = 0;
};

TEST(DeltaFuzzTest, SubjectMatchesRebuildOracleAcrossSchedules) {
  std::vector<FuzzConfig> configs;
  for (const int shards : {1, 2, 4}) {
    for (const IndexEngine engine :
         {IndexEngine::kPacked, IndexEngine::kPointer}) {
      for (const bool filtered : {true, false}) {
        configs.push_back(FuzzConfig{shards, engine, filtered});
      }
    }
  }
  // 12 configs x 10 seeds = 120 schedules of 36 interleaved ops each.
  constexpr int kSeedsPerConfig = 10;
  constexpr int kOpsPerSchedule = 36;
  for (const FuzzConfig& config : configs) {
    for (uint64_t seed = 1; seed <= kSeedsPerConfig; ++seed) {
      DeltaFuzz fuzz(config, seed);
      fuzz.Run(kOpsPerSchedule);
      if (::testing::Test::HasFailure()) {
        // The failing assertions above carry the full (config, seed, op)
        // triple; print the replay header once more where it is hard to
        // miss and stop instead of drowning it in repeats.
        std::fprintf(stderr, "delta fuzz FAILED at %s\n",
                     ConfigTag(config, seed, -1).c_str());
        return;
      }
    }
  }
}

// Deletes alone (no recompaction) must flow through every driver: the
// pointer tree still holds the dead entries, so this pins the read-side
// tombstone filters rather than recompaction's shedding.
TEST(DeltaFuzzTest, TombstonesFilterOnEveryPathWithoutRecompaction) {
  for (const int shards : {1, 3}) {
    FuzzConfig config;
    config.shards = shards;
    Database subject = MakeDb(config, true);
    Database oracle = MakeDb(config, false);
    const std::vector<TimeSeries> series =
        workload::RandomWalkSeries(16, 24, 77);
    ASSERT_TRUE(subject.BulkLoad("r", series).ok());
    ASSERT_TRUE(oracle.BulkLoad("r", series).ok());
    for (const int64_t id : {0, 5, 9, 15}) {
      ASSERT_TRUE(subject.Delete("r", id).ok());
      ASSERT_TRUE(oracle.Delete("r", id).ok());
    }
    for (const char* text : {
             "RANGE r WITHIN 3.0 OF #walk2 VIA INDEX",
             "RANGE r WITHIN 3.0 OF #walk2 VIA SCAN MODE FILTERED",
             "RANGE r WITHIN 3.0 OF #walk2 VIA SCAN MODE EXACT",
             "NEAREST 5 r TO #walk2 VIA INDEX",
             "NEAREST 5 r TO #walk2 VIA SCAN MODE FILTERED",
             "PAIRS r WITHIN 1.5",
         }) {
      const Result<QueryResult> a = subject.ExecuteText(text);
      const Result<QueryResult> b = oracle.ExecuteText(text);
      ASSERT_TRUE(a.ok() && b.ok()) << text;
      ExpectSameAnswers(a.value(), b.value(), text);
      for (const Match& match : a.value().matches) {
        EXPECT_NE(match.id, 0) << text;
        EXPECT_NE(match.id, 5) << text;
      }
    }
    // A deleted series can no longer anchor a query...
    EXPECT_FALSE(subject.ExecuteText("NEAREST 3 r TO #walk0").ok());
    // ...and its name stays reserved.
    TimeSeries reuse = series[0];
    EXPECT_FALSE(subject.Insert("r", reuse).ok());
  }
}

}  // namespace
}  // namespace simq
