#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "ts/feature.h"
#include "ts/transforms.h"
#include "util/random.h"

namespace simq {
namespace {

std::vector<double> RandomSignal(Random* rng, int n) {
  std::vector<double> x(static_cast<size_t>(n));
  for (double& v : x) {
    v = rng->UniformDouble(10.0, 90.0);
  }
  return x;
}

TEST(FeatureConfigTest, DimensionCount) {
  FeatureConfig config;
  config.num_coefficients = 2;
  config.include_mean_std = true;
  EXPECT_EQ(FeatureDimension(config), 6);  // the paper's 6-d layout
  config.include_mean_std = false;
  EXPECT_EQ(FeatureDimension(config), 4);
  config.num_coefficients = 5;
  EXPECT_EQ(FeatureDimension(config), 10);
}

TEST(FeatureConfigTest, AngleDimensionsPolar) {
  FeatureConfig config;
  config.num_coefficients = 2;
  config.space = FeatureSpace::kPolar;
  config.include_mean_std = true;
  const std::vector<bool> angles = AngleDimensions(config);
  const std::vector<bool> expected = {false, false, false,
                                      true,  false, true};
  EXPECT_EQ(angles, expected);
}

TEST(FeatureConfigTest, AngleDimensionsRectangularAllLinear) {
  FeatureConfig config;
  config.space = FeatureSpace::kRectangular;
  for (bool is_angle : AngleDimensions(config)) {
    EXPECT_FALSE(is_angle);
  }
}

TEST(ComputeFeaturesTest, NormalSpectrumFirstCoefficientIsZero) {
  Random rng(1);
  const SeriesFeatures features = ComputeFeatures(RandomSignal(&rng, 64));
  // The normal form has zero mean, so DFT coefficient 0 vanishes -- the
  // reason the index drops it.
  EXPECT_NEAR(std::abs(features.normal_spectrum[0]), 0.0, 1e-9);
}

TEST(ComputeFeaturesTest, RecordsStatistics) {
  const std::vector<double> x = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const SeriesFeatures features = ComputeFeatures(x);
  EXPECT_DOUBLE_EQ(features.mean, 5.0);
  EXPECT_DOUBLE_EQ(features.std_dev, 2.0);
  EXPECT_EQ(features.length(), 8);
}

TEST(ExtractCoefficientsTest, SkipsCoefficientZero) {
  Spectrum spectrum = {Complex(9.0, 0.0), Complex(1.0, 2.0),
                       Complex(3.0, 4.0), Complex(5.0, 6.0)};
  const std::vector<Complex> coeffs = ExtractCoefficients(spectrum, 2);
  ASSERT_EQ(coeffs.size(), 2u);
  EXPECT_EQ(coeffs[0], Complex(1.0, 2.0));
  EXPECT_EQ(coeffs[1], Complex(3.0, 4.0));
}

TEST(ExtractCoefficientsTest, PadsMissingWithZero) {
  Spectrum spectrum = {Complex(1.0, 0.0), Complex(2.0, 0.0)};
  const std::vector<Complex> coeffs = ExtractCoefficients(spectrum, 3);
  ASSERT_EQ(coeffs.size(), 3u);
  EXPECT_EQ(coeffs[0], Complex(2.0, 0.0));
  EXPECT_EQ(coeffs[1], Complex(0.0, 0.0));
  EXPECT_EQ(coeffs[2], Complex(0.0, 0.0));
}

TEST(CoordsTest, RectangularLayout) {
  const std::vector<Complex> coeffs = {Complex(1.0, 2.0), Complex(-3.0, 0.5)};
  const std::vector<double> coords =
      CoefficientsToCoords(coeffs, FeatureSpace::kRectangular);
  const std::vector<double> expected = {1.0, 2.0, -3.0, 0.5};
  ASSERT_EQ(coords.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(coords[i], expected[i]);
  }
}

TEST(CoordsTest, PolarLayout) {
  const std::vector<Complex> coeffs = {Complex(3.0, 4.0)};
  const std::vector<double> coords =
      CoefficientsToCoords(coeffs, FeatureSpace::kPolar);
  ASSERT_EQ(coords.size(), 2u);
  EXPECT_DOUBLE_EQ(coords[0], 5.0);
  EXPECT_NEAR(coords[1], std::atan2(4.0, 3.0), 1e-12);
}

TEST(CoordsTest, PolarRoundTrip) {
  Random rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const Complex c(rng.UniformDouble(-5.0, 5.0),
                    rng.UniformDouble(-5.0, 5.0));
    const std::vector<double> coords =
        CoefficientsToCoords({c}, FeatureSpace::kPolar);
    const Complex back = std::polar(coords[0], coords[1]);
    EXPECT_LT(std::abs(back - c), 1e-10);
  }
}

TEST(MakeFeaturePointTest, PaperLayoutSixDims) {
  Random rng(3);
  const std::vector<double> series = RandomSignal(&rng, 128);
  const SeriesFeatures features = ComputeFeatures(series);
  FeatureConfig config;  // defaults: 2 coefficients, polar, mean/std
  const std::vector<double> point = MakeFeaturePoint(features, config);
  ASSERT_EQ(point.size(), 6u);
  EXPECT_DOUBLE_EQ(point[0], features.mean);
  EXPECT_DOUBLE_EQ(point[1], features.std_dev);
  EXPECT_NEAR(point[2], std::abs(features.normal_spectrum[1]), 1e-12);
  EXPECT_NEAR(point[3], std::arg(features.normal_spectrum[1]), 1e-12);
  EXPECT_NEAR(point[4], std::abs(features.normal_spectrum[2]), 1e-12);
  EXPECT_NEAR(point[5], std::arg(features.normal_spectrum[2]), 1e-12);
}

TEST(MakeFeaturePointTest, WithoutMeanStd) {
  Random rng(4);
  const SeriesFeatures features = ComputeFeatures(RandomSignal(&rng, 32));
  FeatureConfig config;
  config.include_mean_std = false;
  config.space = FeatureSpace::kRectangular;
  const std::vector<double> point = MakeFeaturePoint(features, config);
  ASSERT_EQ(point.size(), 4u);
  EXPECT_NEAR(point[0], features.normal_spectrum[1].real(), 1e-12);
  EXPECT_NEAR(point[1], features.normal_spectrum[1].imag(), 1e-12);
}

TEST(MakeFeaturePointTest, ShiftScaleChangeOnlyMeanStdDims) {
  // [GK95]: shifting/scaling moves a series only along the first two index
  // dimensions; the normal-form coefficients are untouched.
  Random rng(5);
  const std::vector<double> series = RandomSignal(&rng, 64);
  std::vector<double> shifted(series.size());
  for (size_t i = 0; i < series.size(); ++i) {
    shifted[i] = 2.0 * series[i] + 30.0;
  }
  FeatureConfig config;
  const std::vector<double> p1 =
      MakeFeaturePoint(ComputeFeatures(series), config);
  const std::vector<double> p2 =
      MakeFeaturePoint(ComputeFeatures(shifted), config);
  EXPECT_GT(std::fabs(p1[0] - p2[0]), 1.0);  // mean moved
  for (size_t d = 2; d < p1.size(); ++d) {
    EXPECT_NEAR(p1[d], p2[d], 1e-9) << "dim " << d;
  }
}

}  // namespace
}  // namespace simq
