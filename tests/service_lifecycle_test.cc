// Query-lifecycle hardening in the service layer: deadlines, session
// cancellation, admission timeouts (overload shedding), slot hygiene,
// graceful degradation, the byte-bounded result cache, and the
// service-driven durability loop (WAL + checkpoint + recovery).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "core/wal.h"
#include "service/query_service.h"
#include "service/result_cache.h"
#include "util/failpoint.h"
#include "workload/generators.h"

namespace simq {
namespace {

// Pin the global pool width before anything instantiates it: the
// cancellation/admission races need real worker threads (and the
// pool.task boundary) even on a single-core CI machine.
const bool kPoolWidthPinned = [] {
  ::setenv("SIMQ_THREADS", "4", 1);
  return true;
}();

Database MakeDatabase(int count, int length = 64, uint64_t seed = 7) {
  Database db;
  EXPECT_TRUE(db.CreateRelation("r").ok());
  EXPECT_TRUE(
      db.BulkLoad("r", workload::RandomWalkSeries(count, length, seed)).ok());
  return db;
}

// A query that burns hundreds of milliseconds of exact-kernel work while
// producing almost no matches: every pair's distance is computed, almost
// none are within epsilon.
const char* kSlowQuery = "PAIRS r WITHIN 0.001 VIA SCAN MODE EXACT";

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(ServiceLifecycleTest, ExpiredDeadlineFailsBeforeAdmission) {
  QueryService service(MakeDatabase(50, 32));
  ExecOptions options;
  options.deadline_ms = 1e-6;  // expired by the time the check runs
  const Result<ServiceResult> result =
      service.ExecuteText("RANGE r WITHIN 1.0 OF #walk0", options);
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(service.stats().timeouts, 1);
  // Nothing leaked: the next unbounded execution runs normally.
  EXPECT_TRUE(service.ExecuteText("RANGE r WITHIN 1.0 OF #walk0").ok());
}

TEST(ServiceLifecycleTest, RunningQueryTimesOutAtAPollBoundary) {
  QueryService service(MakeDatabase(20000, 16));
  ExecOptions options;
  options.deadline_ms = 10.0;
  const auto start = std::chrono::steady_clock::now();
  const Result<ServiceResult> result =
      service.ExecuteText(kSlowQuery, options);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout)
      << result.status().ToString();
  // "Within one poll interval": generous CI bound, but far below the
  // multi-second full execution.
  EXPECT_LT(elapsed_ms, 2000.0);
  EXPECT_EQ(service.stats().timeouts, 1);
}

TEST(ServiceLifecycleTest, DefaultDeadlineAppliesAndExecOptionsOverride) {
  ServiceOptions options;
  options.default_deadline_ms = 10.0;
  QueryService service(MakeDatabase(20000, 16), options);
  // Inherits the service default: times out.
  EXPECT_EQ(service.ExecuteText(kSlowQuery).status().code(),
            StatusCode::kTimeout);
  // deadline_ms = 0 explicitly lifts it: the query completes.
  ExecOptions unbounded;
  unbounded.deadline_ms = 0.0;
  EXPECT_TRUE(service.ExecuteText(kSlowQuery, unbounded).ok());
}

TEST(ServiceLifecycleTest, CancelStopsARunningQueryAndStickinessResets) {
  QueryService service(MakeDatabase(20000, 16));
  auto session = service.OpenSession();

  std::atomic<bool> started{false};
  Result<ServiceResult> slow = Status::Internal("not run");
  std::thread worker([&] {
    started.store(true);
    slow = session->Execute(kSlowQuery);
  });
  while (!started.load()) {
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  session->Cancel();
  worker.join();
  EXPECT_EQ(slow.status().code(), StatusCode::kCancelled)
      << slow.status().ToString();

  // The session stays cancelled until reset; cancellation of finished
  // executions is sticky but the session itself recovers.
  EXPECT_EQ(session->Execute("RANGE r WITHIN 1.0 OF #walk0").status().code(),
            StatusCode::kCancelled);
  session->ResetCancel();
  EXPECT_TRUE(session->Execute("RANGE r WITHIN 1.0 OF #walk0").ok());
  EXPECT_GE(service.stats().cancellations, 2);
}

TEST(ServiceLifecycleTest, AdmissionTimeoutShedsLoadWithoutLeakingSlots) {
  ServiceOptions options;
  options.max_concurrent_queries = 1;
  options.admission_timeout_ms = 25.0;
  QueryService service(MakeDatabase(20000, 16), options);

  std::atomic<bool> started{false};
  Result<ServiceResult> slow = Status::Internal("not run");
  std::thread worker([&] {
    started.store(true);
    ExecOptions bounded;
    bounded.deadline_ms = 1500.0;  // self-bounding, holds the slot a while
    slow = service.ExecuteText(kSlowQuery, bounded);
  });
  while (!started.load()) {
    std::this_thread::yield();
  }
  // Admission is immediate when the slot is free, so shortly after the
  // worker's Execute call it holds the only slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Unbounded-deadline query: the admission wait itself times out.
  const Result<ServiceResult> shed =
      service.ExecuteText("RANGE r WITHIN 1.0 OF #walk0");
  EXPECT_EQ(shed.status().code(), StatusCode::kOverloaded)
      << shed.status().ToString();

  // A queued query whose deadline is shorter than the admission timeout
  // reports kTimeout, not kOverloaded.
  ExecOptions tight;
  tight.deadline_ms = 5.0;
  const Result<ServiceResult> expired =
      service.ExecuteText("RANGE r WITHIN 1.0 OF #walk0", tight);
  EXPECT_EQ(expired.status().code(), StatusCode::kTimeout)
      << expired.status().ToString();

  worker.join();
  // The worker's own termination is a deadline timeout or, on a fast
  // machine, a completed run -- either way its slot was returned.
  const ServiceStats stats = service.stats();
  EXPECT_GE(stats.overloaded, 1);
  EXPECT_GE(stats.timeouts, 1);
  // No leaked slot: with the service idle again, queries admit instantly.
  EXPECT_TRUE(service.ExecuteText("RANGE r WITHIN 1.0 OF #walk0").ok());
}

TEST(ServiceLifecycleTest, CancelWakesAQueuedWaiter) {
  ServiceOptions options;
  options.max_concurrent_queries = 1;
  QueryService service(MakeDatabase(20000, 16), options);

  std::atomic<bool> holder_started{false};
  Result<ServiceResult> holder_result = Status::Internal("not run");
  std::thread holder([&] {
    holder_started.store(true);
    ExecOptions bounded;
    bounded.deadline_ms = 1500.0;
    holder_result = service.ExecuteText(kSlowQuery, bounded);
  });
  while (!holder_started.load()) {
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  auto session = service.OpenSession();
  std::atomic<bool> waiter_started{false};
  Result<ServiceResult> waiter_result = Status::Internal("not run");
  std::thread waiter([&] {
    waiter_started.store(true);
    // No admission timeout configured: without cancellation this would
    // wait for the full duration of the holder's query.
    waiter_result = session->Execute("RANGE r WITHIN 1.0 OF #walk0");
  });
  while (!waiter_started.load()) {
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const auto cancel_at = std::chrono::steady_clock::now();
  session->Cancel();
  waiter.join();
  const double wake_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - cancel_at)
          .count();
  EXPECT_EQ(waiter_result.status().code(), StatusCode::kCancelled)
      << waiter_result.status().ToString();
  EXPECT_LT(wake_ms, 1000.0);  // woken by Cancel, not by the slot freeing
  holder.join();
}

TEST(ServiceLifecycleTest, EngineExceptionIsContainedAsInternal) {
  QueryService service(MakeDatabase(200, 32));
  Failpoints::Global().Reset();
  Failpoints::Trigger t;
  t.kind = Failpoints::TriggerKind::kAlways;
  Failpoints::Global().Configure("pool.task", t);
  const Result<ServiceResult> poisoned = service.ExecuteText(kSlowQuery);
  Failpoints::Global().Reset();
  EXPECT_EQ(poisoned.status().code(), StatusCode::kInternal)
      << poisoned.status().ToString();
  // The service (and its pool) survive the poisoned query.
  EXPECT_TRUE(service.ExecuteText("RANGE r WITHIN 1.0 OF #walk0").ok());
}

TEST(ServiceLifecycleTest, CompileFailureSurfacesAsDegradedPlan) {
  // Cache off: a degraded answer is (correctly) cacheable, and a replay
  // would report the cached degraded plan instead of a fresh healthy run.
  ServiceOptions cache_off;
  cache_off.enable_result_cache = false;
  Database db = MakeDatabase(60, 32);
  // With the delta layer on, inserts no longer invalidate the packed
  // snapshot, so the armed failpoint would never be reached; run this
  // test in legacy invalidate-on-mutation mode.
  DeltaOptions legacy;
  legacy.enabled = false;
  db.set_delta_options(legacy);
  QueryService service(std::move(db), cache_off);
  Failpoints::Global().Reset();
  const std::string text = "RANGE r WITHIN 2.0 OF #walk3";
  const Result<ServiceResult> clean = service.ExecuteText(text);
  ASSERT_TRUE(clean.ok());
  ASSERT_FALSE(clean.value().plan.degraded);

  // Mutate so the packed snapshot must recompile, and make that fail.
  TimeSeries extra = workload::RandomWalkSeries(1, 32, 91)[0];
  extra.id = "extra";
  ASSERT_TRUE(service.Insert("r", extra).ok());
  Failpoints::Trigger t;
  t.kind = Failpoints::TriggerKind::kAlways;
  Failpoints::Global().Configure("packed.compile", t);
  const Result<ServiceResult> degraded = service.ExecuteText(text);
  Failpoints::Global().Reset();
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded.value().plan.degraded);
  EXPECT_EQ(degraded.value().plan.engine, "pointer");
  EXPECT_GE(service.stats().degraded_queries, 1);

  // Identical answers, demoted engine only.
  const Result<ServiceResult> healthy = service.ExecuteText(text);
  ASSERT_TRUE(healthy.ok());
  EXPECT_FALSE(healthy.value().plan.degraded);
  ASSERT_EQ(degraded.value().result.matches.size(),
            healthy.value().result.matches.size());
  for (size_t i = 0; i < healthy.value().result.matches.size(); ++i) {
    EXPECT_EQ(degraded.value().result.matches[i].id,
              healthy.value().result.matches[i].id);
    EXPECT_EQ(degraded.value().result.matches[i].distance,
              healthy.value().result.matches[i].distance);
  }
}

TEST(ServiceLifecycleTest, ServiceDurabilityRoundTripAndCheckpoint) {
  const std::string snapshot_path = TempPath("svc_durable.simqdb");
  const std::string wal_path = TempPath("svc_durable.wal");
  std::remove(snapshot_path.c_str());
  std::remove(wal_path.c_str());
  const std::vector<TimeSeries> series = workload::RandomWalkSeries(10, 32, 6);

  ServiceOptions options;
  options.snapshot_path = snapshot_path;
  options.wal_path = wal_path;
  {
    QueryService service(Database(), options);
    ASSERT_TRUE(service.durable());
    ASSERT_TRUE(service.CreateRelation("r").ok());
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(service.Insert("r", series[static_cast<size_t>(i)]).ok());
    }
    ASSERT_TRUE(service.Checkpoint().ok());
    for (int i = 6; i < 10; ++i) {
      ASSERT_TRUE(service.Insert("r", series[static_cast<size_t>(i)]).ok());
    }
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.wal_appends, 11);  // 1 create + 10 inserts
    EXPECT_EQ(stats.wal_failures, 0);
    EXPECT_EQ(stats.checkpoints, 1);
  }

  // The checkpoint truncated the log: only the post-checkpoint tail
  // replays on top of the snapshot.
  WalReplayStats replay;
  Result<Database> recovered =
      OpenDurableDatabase(FeatureConfig(), snapshot_path, wal_path, &replay);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(replay.frames_applied, 4u);

  Database oracle;
  ASSERT_TRUE(oracle.CreateRelation("r").ok());
  ASSERT_TRUE(oracle.BulkLoad("r", series).ok());
  const Relation* a = recovered.value().GetRelation("r");
  const Relation* b = oracle.GetRelation("r");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->size(), b->size());
  for (int64_t id = 0; id < a->size(); ++id) {
    EXPECT_EQ(a->record(id).name, b->record(id).name);
    EXPECT_EQ(a->record(id).raw, b->record(id).raw);
  }
  const Result<QueryResult> qa =
      recovered.value().ExecuteText("NEAREST 3 r TO #walk1");
  const Result<QueryResult> qb = oracle.ExecuteText("NEAREST 3 r TO #walk1");
  ASSERT_TRUE(qa.ok() && qb.ok());
  ASSERT_EQ(qa.value().matches.size(), qb.value().matches.size());
  for (size_t i = 0; i < qa.value().matches.size(); ++i) {
    EXPECT_EQ(qa.value().matches[i].id, qb.value().matches[i].id);
    EXPECT_EQ(qa.value().matches[i].distance, qb.value().matches[i].distance);
  }
}

TEST(ServiceLifecycleTest, WalAppendFailureSurfacesOnTheMutation) {
  const std::string wal_path = TempPath("svc_walfail.wal");
  std::remove(wal_path.c_str());
  ServiceOptions options;
  options.wal_path = wal_path;
  QueryService service(Database(), options);
  Failpoints::Global().Reset();
  ASSERT_TRUE(service.CreateRelation("r").ok());

  Failpoints::Trigger t;
  t.kind = Failpoints::TriggerKind::kAlways;
  Failpoints::Global().Configure("wal.append", t);
  const Result<int64_t> inserted =
      service.Insert("r", workload::RandomWalkSeries(1, 16, 2)[0]);
  Failpoints::Global().Reset();
  EXPECT_EQ(inserted.status().code(), StatusCode::kIoError);
  EXPECT_GE(service.stats().wal_failures, 1);
}

TEST(ServiceLifecycleTest, NetConnectionCountersFoldIntoStats) {
  // The Note* hooks are the contract net::NetServer maintains (one call
  // per event, under stats_mutex_); the end-to-end path is covered over a
  // real socket in net_protocol_test.cc.
  QueryService service(MakeDatabase(10, 16));
  EXPECT_EQ(service.stats().net.connections_accepted, 0);
  service.NoteConnectionOpened();
  service.NoteConnectionOpened();
  service.NoteConnectionClosed(/*timed_out=*/false);
  service.NoteConnectionClosed(/*timed_out=*/true);
  service.NoteConnectionShed();
  service.NoteRequestShed();
  service.NoteNetBytes(100, 40);
  service.NoteNetBytes(20, 5);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.net.connections_accepted, 2);
  EXPECT_EQ(stats.net.connections_active, 0);
  EXPECT_EQ(stats.net.connections_shed, 1);
  EXPECT_EQ(stats.net.connections_timed_out, 1);
  EXPECT_EQ(stats.net.requests_shed, 1);
  EXPECT_EQ(stats.net.bytes_in, 120);
  EXPECT_EQ(stats.net.bytes_out, 45);
}

TEST(ResultCacheByteBudgetTest, EvictsPastTheByteBudget) {
  QueryResult big;
  for (int i = 0; i < 1000; ++i) {
    big.matches.push_back(Match{i, "m" + std::to_string(i), 0.5});
  }
  const size_t entry_bytes = ResultCache::ApproxResultBytes(big);
  ASSERT_GT(entry_bytes, 0u);

  // Budget for about two entries; the third Put evicts the LRU one even
  // though the entry-count capacity (100) is nowhere near exceeded.
  ResultCache cache(100, entry_bytes * 2 + entry_bytes / 2);
  cache.Put("k1", "r", big);
  cache.Put("k2", "r", big);
  EXPECT_EQ(cache.stats().evictions, 0);
  cache.Put("k3", "r", big);
  EXPECT_EQ(cache.stats().evictions, 1);
  QueryResult out;
  EXPECT_FALSE(cache.Get("k1", &out));  // LRU went first
  EXPECT_TRUE(cache.Get("k2", &out));
  EXPECT_TRUE(cache.Get("k3", &out));
  EXPECT_LE(cache.bytes(), entry_bytes * 2 + entry_bytes / 2);
  EXPECT_EQ(cache.stats().bytes, static_cast<int64_t>(cache.bytes()));

  // A single result bigger than the whole budget cannot be pinned: it
  // evicts everything including itself.
  ResultCache tiny(100, entry_bytes / 2);
  tiny.Put("huge", "r", big);
  EXPECT_FALSE(tiny.Get("huge", &out));
  EXPECT_EQ(tiny.bytes(), 0u);
}

TEST(ResultCacheByteBudgetTest, ServiceReportsCacheBytesAndBoundsThem) {
  ServiceOptions options;
  options.result_cache_max_bytes = 16 * 1024;
  QueryService service(MakeDatabase(200, 32), options);
  // Distinct epsilons -> distinct fingerprints -> many cached answer sets.
  for (int i = 1; i <= 40; ++i) {
    ASSERT_TRUE(service
                    .ExecuteText("RANGE r WITHIN " + std::to_string(i) +
                                 ".0 OF #walk0")
                    .ok());
  }
  const ServiceStats stats = service.stats();
  EXPECT_GT(stats.cache.bytes, 0);
  EXPECT_LE(stats.cache.bytes, 16 * 1024);
  EXPECT_GT(stats.cache.evictions, 0);
}

}  // namespace
}  // namespace simq
