// Observability subsystem tests: the metrics registry (sharded counters
// under concurrent writers, histogram bucket math, text exposition), the
// per-query trace span tree and its shape across engine paths, EXPLAIN
// ANALYZE answer identity, the slow-query JSONL log (round-trip,
// threshold, sampling), the kMetrics wire codec's hostile-input matrix,
// and the service-counter regression through the registry.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "service/query_service.h"
#include "workload/generators.h"

namespace simq {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

Database MakeDatabase(int count = 120, int length = 64, uint64_t seed = 7) {
  Database db;
  EXPECT_TRUE(db.CreateRelation("r").ok());
  EXPECT_TRUE(
      db.BulkLoad("r", workload::RandomWalkSeries(count, length, seed)).ok());
  return db;
}

void ExpectSameMatches(const QueryResult& a, const QueryResult& b) {
  ASSERT_EQ(a.matches.size(), b.matches.size());
  for (size_t i = 0; i < a.matches.size(); ++i) {
    EXPECT_EQ(a.matches[i].id, b.matches[i].id);
    EXPECT_EQ(a.matches[i].name, b.matches[i].name);
    EXPECT_EQ(a.matches[i].distance, b.matches[i].distance);  // bit-exact
  }
  ASSERT_EQ(a.pairs.size(), b.pairs.size());
  for (size_t i = 0; i < a.pairs.size(); ++i) {
    EXPECT_EQ(a.pairs[i].first, b.pairs[i].first);
    EXPECT_EQ(a.pairs[i].second, b.pairs[i].second);
    EXPECT_EQ(a.pairs[i].distance, b.pairs[i].distance);
  }
}

// --- metrics registry ---

TEST(MetricsTest, CounterMergesConcurrentWriters) {
  obs::MetricRegistry registry;
  obs::Counter* counter = registry.GetCounter("test_total");
  obs::Gauge* gauge = registry.GetGauge("test_gauge");
  obs::Histogram* histogram = registry.GetHistogram("test_ms");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([=] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Add();
        gauge->Add(1);
        histogram->Observe(0.5);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
  EXPECT_EQ(gauge->Value(), kThreads * kPerThread);
  const obs::Histogram::Snapshot snap = histogram->snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_NEAR(snap.sum_ms, 0.5 * kThreads * kPerThread,
              0.01 * kThreads * kPerThread);
}

TEST(MetricsTest, RegistryInternsStablePointers) {
  obs::MetricRegistry registry;
  obs::Counter* a = registry.GetCounter("x_total");
  EXPECT_EQ(a, registry.GetCounter("x_total"));
  // A type-mismatched re-registration must not alias through the wrong
  // type: it returns a distinct private metric.
  obs::Gauge* mismatched = registry.GetGauge("x_total");
  ASSERT_NE(mismatched, nullptr);
  mismatched->Set(7);
  a->Add(3);
  EXPECT_EQ(a->Value(), 3);
  EXPECT_EQ(mismatched->Value(), 7);
  // The first registration owns the name in snapshots.
  const std::vector<obs::MetricSample> samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].name, "x_total");
  EXPECT_EQ(samples[0].type, obs::MetricSample::Type::kCounter);
  EXPECT_EQ(samples[0].value, 3.0);
}

TEST(MetricsTest, HistogramBucketBoundaries) {
  using H = obs::Histogram;
  // UpperBound(i) = kFirstBoundMs * 2^i.
  EXPECT_DOUBLE_EQ(H::UpperBound(0), 0.001);
  EXPECT_DOUBLE_EQ(H::UpperBound(1), 0.002);
  EXPECT_DOUBLE_EQ(H::UpperBound(10), 0.001 * 1024.0);
  // Bucket i spans (UpperBound(i-1), UpperBound(i)]: the bound itself is
  // inclusive, one ulp above it spills into the next bucket.
  EXPECT_EQ(H::BucketIndex(0.0), 0);
  EXPECT_EQ(H::BucketIndex(0.001), 0);
  EXPECT_EQ(H::BucketIndex(0.0011), 1);
  EXPECT_EQ(H::BucketIndex(0.002), 1);
  EXPECT_EQ(H::BucketIndex(0.001 * 1024.0), 10);
  // Beyond the last bound: the overflow bucket.
  EXPECT_EQ(H::BucketIndex(H::UpperBound(H::kBuckets - 1)), H::kBuckets - 1);
  EXPECT_EQ(H::BucketIndex(H::UpperBound(H::kBuckets - 1) * 2.1),
            H::kBuckets);
  EXPECT_EQ(H::BucketIndex(1e300), H::kBuckets);

  H histogram;
  histogram.Observe(0.001);            // bucket 0
  histogram.Observe(0.0015);           // bucket 1
  histogram.Observe(1e300);            // overflow
  const H::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.counts[0], 1);
  EXPECT_EQ(snap.counts[1], 1);
  EXPECT_EQ(snap.counts[H::kBuckets], 1);
  EXPECT_EQ(snap.count, 3);
}

TEST(MetricsTest, HistogramPercentilesAreMonotoneAndBounded) {
  obs::Histogram histogram;
  for (int i = 1; i <= 1000; ++i) {
    histogram.Observe(static_cast<double>(i) * 0.1);  // 0.1ms .. 100ms
  }
  const obs::Histogram::Snapshot snap = histogram.snapshot();
  const double p50 = snap.Percentile(50.0);
  const double p95 = snap.Percentile(95.0);
  const double p99 = snap.Percentile(99.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Bucketed percentiles are exact only to the bucket (a factor-of-two
  // band); assert the band, not the point.
  EXPECT_GE(p50, 25.0);
  EXPECT_LE(p50, 105.0);
  // True p99 is ~99ms, inside the (65.5, 131.1] bucket; the interpolated
  // read may land anywhere in that bucket.
  EXPECT_GE(p99, 64.0);
  EXPECT_LE(p99, 132.0);
}

TEST(MetricsTest, PrometheusTextRendersEveryRegisteredMetric) {
  obs::MetricRegistry registry;
  registry.GetCounter("a_total")->Add(3);
  registry.GetGauge("b")->Set(-2);
  registry.GetHistogram("c_ms")->Observe(0.5);
  const std::string text = registry.RenderPrometheusText();
  EXPECT_NE(text.find("# TYPE a_total counter"), std::string::npos);
  EXPECT_NE(text.find("a_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE b gauge"), std::string::npos);
  EXPECT_NE(text.find("b -2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE c_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("c_ms_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("c_ms_count 1"), std::string::npos);
}

// --- trace span trees ---

TEST(TraceTest, SpanTreeRecordsShapeAndRows) {
  obs::Trace trace;
  const int child = trace.StartSpan("execute");
  const int grandchild = trace.StartSpan("scan", child);
  trace.SetShard(grandchild, 2);
  trace.SetRows(grandchild, 100, 90, 10);
  trace.EndSpan(grandchild);
  const int done =
      trace.AddCompleted("parse", obs::Trace::kRoot, 0.0, 0.0);
  trace.SetNote(child, "index/packed");
  trace.EndSpan(child);
  trace.EndSpan(obs::Trace::kRoot);

  const std::vector<obs::TraceSpan> spans = trace.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "query");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[child].name, "execute");
  EXPECT_EQ(spans[child].parent, obs::Trace::kRoot);
  EXPECT_EQ(spans[child].note, "index/packed");
  EXPECT_EQ(spans[grandchild].parent, child);
  EXPECT_EQ(spans[grandchild].shard, 2);
  EXPECT_EQ(spans[grandchild].rows_scanned, 100);
  EXPECT_EQ(spans[grandchild].rows_pruned, 90);
  EXPECT_EQ(spans[grandchild].rows_returned, 10);
  // An AddCompleted span with zero elapsed stays zero (it is closed, not
  // open); it must not report time-since-trace-start.
  EXPECT_EQ(spans[done].elapsed_ms, 0.0);

  const std::string rendered = obs::RenderTraceTree(spans);
  EXPECT_NE(rendered.find("query"), std::string::npos);
  EXPECT_NE(rendered.find("execute"), std::string::npos);
  EXPECT_NE(rendered.find("scanned=100"), std::string::npos);
  EXPECT_NE(rendered.find("index/packed"), std::string::npos);
}

TEST(TraceTest, ForcedTraceCarriesServiceAndEngineSpans) {
  QueryService service(MakeDatabase());
  auto session = service.OpenSession();
  ExecOptions options;
  options.force_trace = true;
  const Result<ServiceResult> result =
      session->Execute("RANGE r WITHIN 4.0 OF #walk3", options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result.value().trace, nullptr);

  std::map<std::string, int> names;
  const std::vector<obs::TraceSpan> spans = result.value().trace->spans();
  for (const obs::TraceSpan& span : spans) {
    names[span.name]++;
    // Every execution-side span is closed by the time the result returns.
    EXPECT_GE(span.elapsed_ms, 0.0);
  }
  EXPECT_EQ(names["query"], 1);
  EXPECT_EQ(names["parse"], 1);
  EXPECT_EQ(names["admission"], 1);
  EXPECT_EQ(names["execute"], 1);
  EXPECT_GE(names["index shard"], 1);  // one per shard the query touched
  // The root records the returned row count.
  EXPECT_EQ(spans[obs::Trace::kRoot].rows_returned,
            static_cast<int64_t>(result.value().result.matches.size()));
  // Untraced executions carry no trace.
  const Result<ServiceResult> untraced =
      session->Execute("RANGE r WITHIN 4.0 OF #walk3");
  ASSERT_TRUE(untraced.ok());
  EXPECT_EQ(untraced.value().trace, nullptr);
}

TEST(TraceTest, SamplerTracesOneInN) {
  ServiceOptions options;
  options.trace_sample_every = 4;
  options.enable_result_cache = false;  // hits would still trace; keep 1:1
  QueryService service(MakeDatabase(), options);
  int traced = 0;
  for (int i = 0; i < 16; ++i) {
    const Result<ServiceResult> result =
        service.ExecuteText("NEAREST 3 r TO #walk1");
    ASSERT_TRUE(result.ok());
    traced += result.value().trace != nullptr ? 1 : 0;
  }
  EXPECT_EQ(traced, 4);
  EXPECT_EQ(service.stats().traced_queries, 4);
}

// --- EXPLAIN / EXPLAIN ANALYZE ---

TEST(ExplainAnalyzeTest, AnswersBitIdenticalAndTraceAttached) {
  QueryService service(MakeDatabase());
  const std::vector<std::string> texts = {
      "RANGE r WITHIN 4.0 OF #walk3 USING mavg(8)",
      "NEAREST 7 r TO #walk5",
      "PAIRS r WITHIN 1.5",
  };
  for (const std::string& text : texts) {
    const Result<ServiceResult> plain = service.ExecuteText(text);
    ASSERT_TRUE(plain.ok()) << text;
    const Result<ServiceResult> analyzed =
        service.ExecuteText("EXPLAIN ANALYZE " + text);
    ASSERT_TRUE(analyzed.ok()) << text;
    EXPECT_TRUE(analyzed.value().plan.explain);
    EXPECT_TRUE(analyzed.value().plan.analyze);
    ASSERT_NE(analyzed.value().trace, nullptr) << text;
    ExpectSameMatches(plain.value().result, analyzed.value().result);

    // Plain EXPLAIN carries no analyze flag and, by default, no trace.
    const Result<ServiceResult> explained =
        service.ExecuteText("EXPLAIN " + text);
    ASSERT_TRUE(explained.ok()) << text;
    EXPECT_TRUE(explained.value().plan.explain);
    EXPECT_FALSE(explained.value().plan.analyze);
  }
}

TEST(ExplainAnalyzeTest, PerShardEstimatesLineUpWithActuals) {
  QueryService service(MakeDatabase());
  // A cold EXPLAIN (no ANALYZE) must already carry the per-shard rows
  // with the planner-side estimate, so the estimated column of EXPLAIN
  // and the actual columns of EXPLAIN ANALYZE come from the same table.
  const Result<ServiceResult> explained =
      service.ExecuteText("EXPLAIN RANGE r WITHIN 4.0 OF #walk3");
  ASSERT_TRUE(explained.ok());
  ASSERT_FALSE(explained.value().plan.per_shard.empty());
  int64_t total_rows = 0;
  for (const ExecutionStats::ShardStats& shard :
       explained.value().plan.per_shard) {
    EXPECT_GE(shard.estimated_candidates, 0);
    total_rows += shard.rows;
  }
  EXPECT_EQ(total_rows, 120);

  const Result<ServiceResult> analyzed =
      service.ExecuteText("EXPLAIN ANALYZE NEAREST 5 r TO #walk2");
  ASSERT_TRUE(analyzed.ok());
  ASSERT_FALSE(analyzed.value().plan.per_shard.empty());
  int64_t exact_checks = 0;
  for (const ExecutionStats::ShardStats& shard :
       analyzed.value().plan.per_shard) {
    exact_checks += shard.exact_checks;
  }
  EXPECT_GT(exact_checks, 0);
}

// --- slow-query log ---

TEST(SlowQueryLogTest, JsonRoundTripsEveryField) {
  obs::SlowQueryEntry entry;
  entry.unix_ms = 1723000000123;
  entry.fingerprint = "RANGE r WITHIN 4 OF #walk\\3 \"quoted\"\n";
  entry.epoch = 42;
  entry.relation = "r";
  entry.elapsed_ms = 12.5;
  entry.strategy = "index";
  entry.engine = "packed";
  entry.filtered = true;
  entry.cache_hit = false;
  entry.degraded = true;
  entry.shards = 3;
  obs::TraceSpan span;
  span.name = "execute";
  span.parent = 0;
  span.shard = 1;
  span.start_ms = 0.25;
  span.elapsed_ms = 12.0;
  span.rows_scanned = 100;
  span.rows_pruned = 90;
  span.rows_returned = 10;
  span.note = "index/packed";
  entry.spans.push_back(span);

  const std::string line = obs::FormatSlowQueryJson(entry);
  obs::SlowQueryEntry parsed;
  ASSERT_TRUE(obs::ParseSlowQueryJson(line, &parsed)) << line;
  EXPECT_EQ(parsed.unix_ms, entry.unix_ms);
  EXPECT_EQ(parsed.fingerprint, entry.fingerprint);
  EXPECT_EQ(parsed.epoch, entry.epoch);
  EXPECT_EQ(parsed.relation, entry.relation);
  EXPECT_DOUBLE_EQ(parsed.elapsed_ms, entry.elapsed_ms);
  EXPECT_EQ(parsed.strategy, entry.strategy);
  EXPECT_EQ(parsed.engine, entry.engine);
  EXPECT_EQ(parsed.filtered, entry.filtered);
  EXPECT_EQ(parsed.cache_hit, entry.cache_hit);
  EXPECT_EQ(parsed.degraded, entry.degraded);
  EXPECT_EQ(parsed.shards, entry.shards);
  ASSERT_EQ(parsed.spans.size(), 1u);
  EXPECT_EQ(parsed.spans[0].name, span.name);
  EXPECT_EQ(parsed.spans[0].parent, span.parent);
  EXPECT_EQ(parsed.spans[0].shard, span.shard);
  EXPECT_DOUBLE_EQ(parsed.spans[0].start_ms, span.start_ms);
  EXPECT_DOUBLE_EQ(parsed.spans[0].elapsed_ms, span.elapsed_ms);
  EXPECT_EQ(parsed.spans[0].rows_scanned, span.rows_scanned);
  EXPECT_EQ(parsed.spans[0].rows_pruned, span.rows_pruned);
  EXPECT_EQ(parsed.spans[0].rows_returned, span.rows_returned);
  EXPECT_EQ(parsed.spans[0].note, span.note);

  obs::SlowQueryEntry bad;
  EXPECT_FALSE(obs::ParseSlowQueryJson("not json", &bad));
  EXPECT_FALSE(obs::ParseSlowQueryJson("{\"unix_ms\":1}", &bad));
}

TEST(SlowQueryLogTest, ThresholdAndSamplingElectQualifyingQueries) {
  obs::SlowQueryLogOptions options;
  options.path = TempPath("slow_sampling.jsonl");
  options.threshold_ms = 10.0;
  options.sample_every = 3;
  std::remove(options.path.c_str());
  obs::SlowQueryLog log(options);
  ASSERT_TRUE(log.ok());
  // Below threshold: never logged, and the sampling counter must not
  // advance ("1 in N" means 1 in N *slow* queries).
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(log.ShouldLog(9.9));
  }
  int elected = 0;
  for (int i = 0; i < 9; ++i) {
    elected += log.ShouldLog(10.0) ? 1 : 0;
  }
  EXPECT_EQ(elected, 3);
}

TEST(SlowQueryLogTest, ServiceAppendsParseableLinesForSlowQueries) {
  const std::string path = TempPath("slow_service.jsonl");
  std::remove(path.c_str());
  ServiceOptions options;
  options.trace_sample_every = 1;  // trace everything
  options.slow_query_log_path = path;
  options.slow_query_threshold_ms = 0.0;  // every traced query qualifies
  QueryService service(MakeDatabase(), options);
  const int64_t queries = 5;
  for (int64_t i = 0; i < queries; ++i) {
    ASSERT_TRUE(service.ExecuteText("NEAREST 3 r TO #walk1").ok());
  }
  EXPECT_EQ(service.stats().slow_query_log_lines, queries);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  int64_t lines = 0;
  while (std::getline(in, line)) {
    obs::SlowQueryEntry entry;
    ASSERT_TRUE(obs::ParseSlowQueryJson(line, &entry)) << line;
    EXPECT_EQ(entry.relation, "r");
    EXPECT_GT(entry.unix_ms, 0);
    EXPECT_FALSE(entry.spans.empty());
    EXPECT_EQ(entry.strategy, "index");
    ++lines;
  }
  EXPECT_EQ(lines, queries);
}

// --- kMetrics wire codec ---

std::vector<net::WireMetric> SampleMetrics() {
  std::vector<net::WireMetric> metrics;
  net::WireMetric a;
  a.name = "simq_queries_total";
  a.type = 0;
  a.value = 17.0;
  metrics.push_back(a);
  net::WireMetric b;
  b.name = "simq_query_latency_ms_p99";
  b.type = 1;
  b.value = 1.75;
  metrics.push_back(b);
  net::WireMetric c;  // empty name is legal on the wire
  c.name = "";
  c.type = 1;
  c.value = -3.0;
  metrics.push_back(c);
  return metrics;
}

TEST(MetricsWireTest, EncodeDecodeRoundTrips) {
  const std::vector<net::WireMetric> metrics = SampleMetrics();
  const std::vector<uint8_t> payload = net::EncodeMetrics(metrics);
  std::vector<net::WireMetric> decoded;
  ASSERT_TRUE(
      net::DecodeMetrics(payload.data(), payload.size(), &decoded).ok());
  ASSERT_EQ(decoded.size(), metrics.size());
  for (size_t i = 0; i < metrics.size(); ++i) {
    EXPECT_EQ(decoded[i].name, metrics[i].name);
    EXPECT_EQ(decoded[i].type, metrics[i].type);
    EXPECT_EQ(decoded[i].value, metrics[i].value);
  }
  // The empty list is a valid frame too.
  const std::vector<uint8_t> empty = net::EncodeMetrics({});
  ASSERT_TRUE(net::DecodeMetrics(empty.data(), empty.size(), &decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(MetricsWireTest, EveryTruncationIsRejected) {
  const std::vector<uint8_t> payload = net::EncodeMetrics(SampleMetrics());
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    std::vector<net::WireMetric> decoded;
    const Status status =
        net::DecodeMetrics(payload.data(), cut, &decoded);
    EXPECT_FALSE(status.ok()) << "truncation at " << cut << " accepted";
  }
}

TEST(MetricsWireTest, TrailingGarbageAndHostileCountsAreRejected) {
  std::vector<uint8_t> padded = net::EncodeMetrics(SampleMetrics());
  padded.push_back(0xAB);  // one stray byte past a well-formed payload
  std::vector<net::WireMetric> decoded;
  EXPECT_FALSE(
      net::DecodeMetrics(padded.data(), padded.size(), &decoded).ok());

  // A count prefix promising far more samples than the payload holds must
  // fail up front (no giant reserve, no deep parse).
  const std::vector<uint8_t> huge = {0xFF, 0xFF, 0xFF, 0x7F};
  EXPECT_FALSE(net::DecodeMetrics(huge.data(), huge.size(), &decoded).ok());

  // Garbage bytes never crash the decoder (poisoned-reader contract).
  std::vector<uint8_t> garbage(64);
  for (size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = static_cast<uint8_t>(i * 37 + 11);
  }
  (void)net::DecodeMetrics(garbage.data(), garbage.size(), &decoded);
}

// --- service counters through the registry ---

TEST(ServiceMetricsTest, CountersMatchServiceStatsExactly) {
  QueryService service(MakeDatabase());
  auto session = service.OpenSession();
  const Result<int64_t> statement =
      session->Prepare("NEAREST 3 r TO #walk1");
  ASSERT_TRUE(statement.ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(session->ExecutePrepared(statement.value()).ok());
  }
  ASSERT_TRUE(service.ExecuteText("RANGE r WITHIN 2.0 OF #walk0").ok());
  ASSERT_TRUE(service.ExecuteText("RANGE r WITHIN 2.0 OF #walk0").ok());
  TimeSeries series;
  series.id = "extra";
  series.values.assign(64, 0.5);
  ASSERT_TRUE(service.Insert("r", series).ok());

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries, 6);
  EXPECT_EQ(stats.prepared_executions, 4);
  // Prepare + two one-shots parse text; executing prepared does not.
  EXPECT_EQ(stats.cold_parses, 3);
  // The fixture mutates the Database before the service takes ownership,
  // so only the Insert counts as a service mutation.
  EXPECT_EQ(stats.mutations, 1);
  EXPECT_EQ(stats.sessions_opened, 1);
  EXPECT_EQ(stats.active_sessions, 1);
  // Repeats hit the cache: 3 of the 4 prepared runs + the repeated RANGE.
  EXPECT_EQ(stats.cache.hits, 4);

  // The registry is the source of truth behind those numbers.
  obs::MetricRegistry* registry = service.metrics_registry();
  EXPECT_EQ(registry->GetCounter("simq_queries_total")->Value(), 6);
  EXPECT_EQ(
      registry->GetCounter("simq_prepared_executions_total")->Value(), 4);
  EXPECT_EQ(registry->GetCounter("simq_cold_parses_total")->Value(), 3);
  EXPECT_EQ(registry->GetCounter("simq_mutations_total")->Value(), 1);
  EXPECT_EQ(registry->GetGauge("simq_cache_hits")->Value(), 4);
  // Latency percentiles come from the histogram now.
  const obs::Histogram::Snapshot latency =
      registry->GetHistogram("simq_query_latency_ms")->snapshot();
  EXPECT_EQ(latency.count, 6);
  EXPECT_GT(stats.latency_p99_ms, 0.0);

  // Two services never share a default registry.
  QueryService other(MakeDatabase());
  EXPECT_EQ(
      other.metrics_registry()->GetCounter("simq_queries_total")->Value(),
      0);
}

TEST(ServiceMetricsTest, InjectedRegistryIsShared) {
  obs::MetricRegistry shared;
  ServiceOptions options;
  options.metrics_registry = &shared;
  QueryService service(MakeDatabase(), options);
  ASSERT_TRUE(service.ExecuteText("NEAREST 1 r TO #walk1").ok());
  EXPECT_EQ(service.metrics_registry(), &shared);
  EXPECT_EQ(shared.GetCounter("simq_queries_total")->Value(), 1);
}

TEST(ServiceMetricsTest, ConcurrentQueriesKeepCountersExact) {
  ServiceOptions options;
  options.enable_result_cache = false;
  QueryService service(MakeDatabase(), options);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &failures] {
      auto session = service.OpenSession();
      for (int i = 0; i < kPerThread; ++i) {
        if (!session->Execute("NEAREST 2 r TO #walk4").ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries, kThreads * kPerThread);
  EXPECT_EQ(stats.sessions_opened, kThreads);
  EXPECT_EQ(stats.active_sessions, 0);
}

// --- snapshot accumulation (the statements table's rollup primitives) ---

TEST(MetricsTest, SnapshotObserveAndMergeAddBucketForBucket) {
  using H = obs::Histogram;
  H::Snapshot a;
  a.Observe(1.0);
  a.Observe(1.0);
  a.Observe(1.0);
  H::Snapshot b;
  b.Observe(10.0);
  a.Merge(b);
  EXPECT_EQ(a.count, 4);
  EXPECT_DOUBLE_EQ(a.sum_ms, 13.0);
  EXPECT_EQ(a.counts[H::BucketIndex(1.0)], 3);
  EXPECT_EQ(a.counts[H::BucketIndex(10.0)], 1);

  // Merging a live histogram's snapshot lands in the same buckets: every
  // histogram in the process shares the fixed exponential bounds.
  H live;
  live.Observe(1.0);
  live.Observe(10.0);
  a.Merge(live.snapshot());
  EXPECT_EQ(a.count, 6);
  EXPECT_EQ(a.counts[H::BucketIndex(1.0)], 4);
  EXPECT_EQ(a.counts[H::BucketIndex(10.0)], 2);
  // The merged distribution is unchanged in shape, so percentiles stay
  // inside the same buckets.
  EXPECT_EQ(H::BucketIndex(a.Percentile(50.0)), H::BucketIndex(1.0));
  EXPECT_EQ(H::BucketIndex(a.Percentile(100.0)), H::BucketIndex(10.0));
}

TEST(MetricsTest, PercentileInterpolatesLinearlyAtBucketBoundaries) {
  using H = obs::Histogram;
  H::Snapshot empty;
  EXPECT_DOUBLE_EQ(empty.Percentile(50.0), 0.0);

  // Four identical samples pin one bucket, making the interpolation
  // arithmetic exact: rank r of n samples in a bucket (lo, hi] reads
  // back lo + (r/n)(hi - lo).
  H::Snapshot snap;
  for (int i = 0; i < 4; ++i) {
    snap.Observe(3.0);
  }
  const int bucket = H::BucketIndex(3.0);
  const double lo = H::UpperBound(bucket - 1);
  const double hi = H::UpperBound(bucket);
  ASSERT_LT(lo, 3.0);
  ASSERT_LE(3.0, hi);
  EXPECT_DOUBLE_EQ(snap.Percentile(100.0), hi);           // rank 4: bucket top
  EXPECT_DOUBLE_EQ(snap.Percentile(75.0), lo + 0.75 * (hi - lo));
  EXPECT_DOUBLE_EQ(snap.Percentile(50.0), lo + 0.5 * (hi - lo));
  // Ranks clamp at 1, so every percentile at or below 1/n reads the
  // same point -- and none ever reads below the bucket's first rank.
  EXPECT_DOUBLE_EQ(snap.Percentile(25.0), lo + 0.25 * (hi - lo));
  EXPECT_DOUBLE_EQ(snap.Percentile(1.0), lo + 0.25 * (hi - lo));
  EXPECT_DOUBLE_EQ(snap.Percentile(0.0), lo + 0.25 * (hi - lo));

  // Overflow bucket: the report is one band above the top finite bound.
  H::Snapshot overflow;
  overflow.Observe(1e300);
  const double top = H::UpperBound(H::kBuckets - 1);
  EXPECT_DOUBLE_EQ(overflow.Percentile(99.0), top * 2.0);
}

// --- recompaction tracing ---

TEST(TraceTest, RecompactionPhasesVisibleInRenderedTree) {
  QueryService service(MakeDatabase());
  EXPECT_EQ(service.last_recompaction_trace(), nullptr);

  TimeSeries extra;
  extra.id = "extra";
  extra.values.assign(64, 0.5);
  ASSERT_TRUE(service.Insert("r", extra).ok());
  ASSERT_TRUE(service.Recompact("r").ok());

  const std::shared_ptr<obs::Trace> trace =
      service.last_recompaction_trace();
  ASSERT_NE(trace, nullptr);
  const std::vector<obs::TraceSpan> spans = trace->spans();
  bool build = false;
  bool publish = false;
  for (const obs::TraceSpan& span : spans) {
    if (span.name == "recompact.build") {
      build = true;
      EXPECT_GE(span.elapsed_ms, 0.0);
    }
    if (span.name == "recompact.publish") {
      publish = true;
    }
  }
  EXPECT_TRUE(build);
  EXPECT_TRUE(publish);

  const std::string tree = obs::RenderTraceTree(spans);
  EXPECT_NE(tree.find("recompact.build"), std::string::npos) << tree;
  EXPECT_NE(tree.find("recompact.publish"), std::string::npos) << tree;

  // A second recompaction replaces the trace, not appends to it.
  ASSERT_TRUE(service.Recompact("r").ok());
  const std::shared_ptr<obs::Trace> second =
      service.last_recompaction_trace();
  ASSERT_NE(second, nullptr);
  EXPECT_NE(second, trace);
}

}  // namespace
}  // namespace simq
