#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "ts/transforms.h"
#include "util/stats.h"
#include "workload/generators.h"

namespace simq {
namespace {

TEST(RandomWalkSeriesTest, ShapeAndDeterminism) {
  const std::vector<TimeSeries> a = workload::RandomWalkSeries(50, 128, 9);
  const std::vector<TimeSeries> b = workload::RandomWalkSeries(50, 128, 9);
  ASSERT_EQ(a.size(), 50u);
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].length(), 128);
    EXPECT_EQ(a[i].values, b[i].values) << "not deterministic at " << i;
  }
  const std::vector<TimeSeries> c = workload::RandomWalkSeries(50, 128, 10);
  EXPECT_NE(a[0].values, c[0].values);
}

TEST(RandomWalkSeriesTest, MatchesPaperConstruction) {
  // x0 in [20, 99], steps within [-4, 4].
  const std::vector<TimeSeries> series =
      workload::RandomWalkSeries(200, 64, 123);
  for (const TimeSeries& ts : series) {
    EXPECT_GE(ts.values[0], 20.0);
    EXPECT_LT(ts.values[0], 99.0);
    for (int t = 1; t < ts.length(); ++t) {
      const double step = ts.values[static_cast<size_t>(t)] -
                          ts.values[static_cast<size_t>(t - 1)];
      EXPECT_LE(std::fabs(step), 4.0);
    }
  }
}

TEST(RandomWalkSeriesTest, UniqueIds) {
  const std::vector<TimeSeries> series =
      workload::RandomWalkSeries(100, 16, 5);
  std::set<std::string> ids;
  for (const TimeSeries& ts : series) {
    ids.insert(ts.id);
  }
  EXPECT_EQ(ids.size(), series.size());
}

TEST(StockMarketTest, ShapeAndDeterminism) {
  workload::StockMarketOptions options;
  options.num_series = 300;
  const std::vector<TimeSeries> a = workload::StockMarket(options);
  const std::vector<TimeSeries> b = workload::StockMarket(options);
  ASSERT_EQ(a.size(), 300u);
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].length(), options.length);
    EXPECT_EQ(a[i].values, b[i].values);
  }
}

TEST(StockMarketTest, DefaultMatchesPaperRelationShape) {
  const std::vector<TimeSeries> market =
      workload::StockMarket(workload::StockMarketOptions());
  EXPECT_EQ(market.size(), 1067u);  // the paper's stock relation size
  EXPECT_EQ(market[0].length(), 128);
}

TEST(StockMarketTest, SmoothedPairsAreSimilarAfterMovingAverage) {
  workload::StockMarketOptions options;
  options.num_series = 200;
  const std::vector<TimeSeries> market = workload::StockMarket(options);
  // The first 2*num_smoothed_similar_pairs series are the engineered pairs.
  for (int p = 0; p < options.num_smoothed_similar_pairs; ++p) {
    const std::vector<double>& a =
        market[static_cast<size_t>(2 * p)].values;
    const std::vector<double>& b =
        market[static_cast<size_t>(2 * p + 1)].values;
    const std::vector<double> na = ToNormalForm(a).values;
    const std::vector<double> nb = ToNormalForm(b).values;
    const double raw = EuclideanDistance(na, nb);
    const double smoothed = EuclideanDistance(
        CircularMovingAverage(na, 20), CircularMovingAverage(nb, 20));
    EXPECT_LT(smoothed, raw) << "pair " << p;
    EXPECT_LT(smoothed, 1.0) << "pair " << p;
  }
}

TEST(StockMarketTest, InversePairsCloseUnderReversal) {
  workload::StockMarketOptions options;
  options.num_series = 200;
  const std::vector<TimeSeries> market = workload::StockMarket(options);
  const int base = 2 * options.num_smoothed_similar_pairs;
  for (int p = 0; p < options.num_inverse_pairs; ++p) {
    const std::vector<double> na =
        ToNormalForm(market[static_cast<size_t>(base + 2 * p)].values).values;
    const std::vector<double> nb =
        ToNormalForm(market[static_cast<size_t>(base + 2 * p + 1)].values)
            .values;
    // Reversing one side must bring the normal forms close (Example 2.2).
    const double reversed_distance =
        EuclideanDistance(ReverseSeries(na), nb);
    const double direct_distance = EuclideanDistance(na, nb);
    EXPECT_LT(reversed_distance, 0.25 * direct_distance) << "pair " << p;
  }
}

TEST(StockMarketTest, ResampledPairsMatchExactlyAfterWarpStorage) {
  workload::StockMarketOptions options;
  options.num_series = 200;
  const std::vector<TimeSeries> market = workload::StockMarket(options);
  const int base = 2 * (options.num_smoothed_similar_pairs +
                        options.num_inverse_pairs);
  for (int p = 0; p < options.num_resampled_pairs; ++p) {
    const TimeSeries& fast = market[static_cast<size_t>(base + 2 * p)];
    const TimeSeries& slow = market[static_cast<size_t>(base + 2 * p + 1)];
    // Both stored at full length; they are stutters of the same half-rate
    // walk, hence identical.
    EXPECT_EQ(fast.values, slow.values) << "pair " << p;
    // And each is exactly a 2x stutter: even/odd samples equal.
    for (int t = 0; t < fast.length(); t += 2) {
      EXPECT_DOUBLE_EQ(fast.values[static_cast<size_t>(t)],
                       fast.values[static_cast<size_t>(t + 1)]);
    }
  }
}

TEST(StockMarketTest, RejectsTooManyEngineeredPairs) {
  workload::StockMarketOptions options;
  options.num_series = 10;  // smaller than the engineered population
  EXPECT_DEATH(workload::StockMarket(options), "SIMQ_CHECK");
}

TEST(CalibrateEpsilonTest, PicksThresholdForTargetSize) {
  const std::vector<double> distances = {0.1, 0.5, 1.0, 2.0, 5.0};
  EXPECT_GE(workload::CalibrateEpsilon(distances, 3), 1.0);
  EXPECT_LT(workload::CalibrateEpsilon(distances, 3), 2.0);
  // Requesting more answers than data yields the maximum distance.
  EXPECT_GE(workload::CalibrateEpsilon(distances, 10), 5.0);
  // Zero target: strictly below the smallest distance.
  EXPECT_LT(workload::CalibrateEpsilon(distances, 0), 0.1);
}

}  // namespace
}  // namespace simq
