#include <cmath>
#include <complex>
#include <vector>

#include <gtest/gtest.h>

#include "ts/dft.h"
#include "util/random.h"
#include "util/stats.h"

namespace simq {
namespace {

std::vector<double> RandomSignal(Random* rng, int n) {
  std::vector<double> x(static_cast<size_t>(n));
  for (double& v : x) {
    v = rng->UniformDouble(-10.0, 10.0);
  }
  return x;
}

Spectrum ToComplex(const std::vector<double>& x) {
  Spectrum out(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    out[i] = Complex(x[i], 0.0);
  }
  return out;
}

double MaxAbsDiff(const Spectrum& a, const Spectrum& b) {
  EXPECT_EQ(a.size(), b.size());
  double max_diff = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
  }
  return max_diff;
}

TEST(DftTest, IsPowerOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(1023));
}

TEST(DftTest, ImpulseHasFlatSpectrum) {
  // DFT of the unit impulse is 1/sqrt(n) everywhere.
  const int n = 8;
  std::vector<double> x(n, 0.0);
  x[0] = 1.0;
  const Spectrum spec = Dft(x);
  for (const Complex& c : spec) {
    EXPECT_NEAR(c.real(), 1.0 / std::sqrt(8.0), 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(DftTest, ConstantSignalConcentratesAtZero) {
  const std::vector<double> x(16, 2.0);
  const Spectrum spec = Dft(x);
  // X_0 = sqrt(n) * mean = 4 * 2.
  EXPECT_NEAR(spec[0].real(), 8.0, 1e-12);
  for (size_t f = 1; f < spec.size(); ++f) {
    EXPECT_NEAR(std::abs(spec[f]), 0.0, 1e-12);
  }
}

class DftLengthTest : public ::testing::TestWithParam<int> {};

TEST_P(DftLengthTest, MatchesNaiveReference) {
  const int n = GetParam();
  Random rng(1000 + static_cast<uint64_t>(n));
  const Spectrum x = ToComplex(RandomSignal(&rng, n));
  EXPECT_LT(MaxAbsDiff(Dft(x), NaiveDft(x)), 1e-8);
}

TEST_P(DftLengthTest, InverseRoundTrip) {
  const int n = GetParam();
  Random rng(2000 + static_cast<uint64_t>(n));
  const std::vector<double> x = RandomSignal(&rng, n);
  const std::vector<double> back = InverseDftReal(Dft(x));
  ASSERT_EQ(back.size(), x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(back[i], x[i], 1e-9);
  }
}

TEST_P(DftLengthTest, ParsevalEnergyPreserved) {
  const int n = GetParam();
  Random rng(3000 + static_cast<uint64_t>(n));
  const std::vector<double> x = RandomSignal(&rng, n);
  EXPECT_NEAR(Energy(x), Energy(Dft(x)), 1e-8 * (1.0 + Energy(x)));
}

TEST_P(DftLengthTest, DistancePreserved) {
  // Equation 8: Euclidean distance is identical in both domains.
  const int n = GetParam();
  Random rng(4000 + static_cast<uint64_t>(n));
  const std::vector<double> x = RandomSignal(&rng, n);
  const std::vector<double> y = RandomSignal(&rng, n);
  const double time_domain = EuclideanDistance(x, y);
  const double freq_domain = EuclideanDistance(Dft(x), Dft(y));
  EXPECT_NEAR(time_domain, freq_domain, 1e-9 * (1.0 + time_domain));
}

TEST_P(DftLengthTest, Linearity) {
  const int n = GetParam();
  Random rng(5000 + static_cast<uint64_t>(n));
  const std::vector<double> x = RandomSignal(&rng, n);
  const std::vector<double> y = RandomSignal(&rng, n);
  std::vector<double> combo(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    combo[static_cast<size_t>(i)] = 2.5 * x[static_cast<size_t>(i)] -
                                    1.5 * y[static_cast<size_t>(i)];
  }
  const Spectrum sx = Dft(x);
  const Spectrum sy = Dft(y);
  const Spectrum sc = Dft(combo);
  for (int f = 0; f < n; ++f) {
    const Complex expected = 2.5 * sx[static_cast<size_t>(f)] -
                             1.5 * sy[static_cast<size_t>(f)];
    EXPECT_LT(std::abs(sc[static_cast<size_t>(f)] - expected), 1e-9);
  }
}

TEST_P(DftLengthTest, ConvolutionMultiplicationProperty) {
  // With the unitary convention, DFT(conv(x,y)) = sqrt(n) * X * Y
  // element-wise (the sqrt(n) factor the paper's algebra drops).
  const int n = GetParam();
  Random rng(6000 + static_cast<uint64_t>(n));
  const std::vector<double> x = RandomSignal(&rng, n);
  const std::vector<double> y = RandomSignal(&rng, n);
  const Spectrum conv_spec = Dft(CircularConvolution(x, y));
  const Spectrum sx = Dft(x);
  const Spectrum sy = Dft(y);
  const double root_n = std::sqrt(static_cast<double>(n));
  for (int f = 0; f < n; ++f) {
    const Complex expected =
        root_n * sx[static_cast<size_t>(f)] * sy[static_cast<size_t>(f)];
    EXPECT_LT(std::abs(conv_spec[static_cast<size_t>(f)] - expected), 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, DftLengthTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 15, 16,
                                           31, 32, 60, 64, 100, 128, 375,
                                           512, 1000, 1024));

TEST(DftTest, ConjugateSymmetryForRealSignals) {
  Random rng(77);
  const std::vector<double> x = RandomSignal(&rng, 64);
  const Spectrum spec = Dft(x);
  for (size_t f = 1; f < spec.size(); ++f) {
    EXPECT_LT(std::abs(spec[f] - std::conj(spec[spec.size() - f])), 1e-9);
  }
}

TEST(DftTest, CircularConvolutionCommutes) {
  Random rng(88);
  const std::vector<double> x = RandomSignal(&rng, 17);
  const std::vector<double> y = RandomSignal(&rng, 17);
  const std::vector<double> xy = CircularConvolution(x, y);
  const std::vector<double> yx = CircularConvolution(y, x);
  for (size_t i = 0; i < xy.size(); ++i) {
    EXPECT_NEAR(xy[i], yx[i], 1e-10);
  }
}

TEST(DftTest, FftConvolutionMatchesNaiveOracle) {
  // The production CircularConvolution takes the FFT path above its
  // small-size cutoff; the O(n^2) loop is the oracle. Cover power-of-two
  // and Bluestein lengths on both sides of the cutoff.
  for (const int n : {8, 31, 32, 33, 64, 100, 128, 375}) {
    Random rng(4200 + static_cast<uint64_t>(n));
    const std::vector<double> x = RandomSignal(&rng, n);
    const std::vector<double> y = RandomSignal(&rng, n);
    const std::vector<double> fast = CircularConvolution(x, y);
    const std::vector<double> naive = CircularConvolutionNaive(x, y);
    ASSERT_EQ(fast.size(), naive.size());
    double scale = 1.0;
    for (const double v : naive) {
      scale = std::max(scale, std::abs(v));
    }
    for (size_t i = 0; i < naive.size(); ++i) {
      EXPECT_NEAR(fast[i], naive[i], 1e-10 * scale)
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(DftTest, ConvolutionWithDeltaIsIdentity) {
  Random rng(99);
  const std::vector<double> x = RandomSignal(&rng, 9);
  std::vector<double> delta(9, 0.0);
  delta[0] = 1.0;
  const std::vector<double> out = CircularConvolution(x, delta);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(out[i], x[i], 1e-12);
  }
}

TEST(DftTest, RandomWalkEnergyConcentratesInLowFrequencies) {
  // The energy-concentration property that justifies the k-index: a random
  // walk keeps most spectral energy in the first few coefficients.
  Random rng(123);
  std::vector<double> walk(256);
  walk[0] = rng.UniformDouble(20.0, 99.0);
  for (size_t i = 1; i < walk.size(); ++i) {
    walk[i] = walk[i - 1] + rng.UniformDouble(-4.0, 4.0);
  }
  // Remove the mean so coefficient 0 does not dominate trivially.
  double mean = 0.0;
  for (double v : walk) {
    mean += v;
  }
  mean /= static_cast<double>(walk.size());
  for (double& v : walk) {
    v -= mean;
  }
  const Spectrum spec = Dft(walk);
  EXPECT_GT(LowFrequencyEnergyFraction(spec, 3), 0.6);
  EXPECT_GT(LowFrequencyEnergyFraction(spec, 8), 0.8);
}

TEST(DftTest, EnergyFractionBounds) {
  Random rng(321);
  const std::vector<double> x = RandomSignal(&rng, 32);
  const Spectrum spec = Dft(x);
  double previous = 0.0;
  for (int k = 1; k <= 16; ++k) {
    const double fraction = LowFrequencyEnergyFraction(spec, k);
    EXPECT_GE(fraction, previous - 1e-12);  // monotone in k
    EXPECT_LE(fraction, 1.0 + 1e-12);
    previous = fraction;
  }
  EXPECT_NEAR(LowFrequencyEnergyFraction(spec, 16), 1.0, 1e-9);
}

}  // namespace
}  // namespace simq
