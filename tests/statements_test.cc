// Statements-table tests: per-fingerprint aggregation across every
// outcome kind, LRU capacity eviction, deterministic Top() ordering, the
// kStatements wire codec's hostile-input matrix, resource accounting
// through the service, and the acceptance contract that the shell
// surface (Top), the wire frame, and the HTTP JSON body all report
// bit-identical aggregates from one snapshot.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "obs/resource_usage.h"
#include "obs/statements.h"
#include "service/query_service.h"
#include "workload/generators.h"

namespace simq {
namespace {

Database MakeDatabase(int count = 120, int length = 64, uint64_t seed = 7) {
  Database db;
  EXPECT_TRUE(db.CreateRelation("r").ok());
  EXPECT_TRUE(
      db.BulkLoad("r", workload::RandomWalkSeries(count, length, seed)).ok());
  return db;
}

obs::ResourceUsage MakeUsage(int64_t base, int64_t parallelism) {
  obs::ResourceUsage usage;
  usage.rows_scanned = base;
  usage.candidates = base / 2;
  usage.exact_checks = base / 4;
  usage.delta_rows_merged = base / 8;
  usage.result_bytes = base * 10;
  usage.cpu_ns = base * 100;
  usage.pool_tasks = base / 16;
  usage.peak_parallelism = parallelism;
  return usage;
}

// --- StatementsTable unit ---

TEST(StatementsTableTest, AggregatesEveryOutcomeAndUsage) {
  obs::StatementsTable table(8);
  EXPECT_TRUE(table.enabled());
  const obs::ResourceUsage a = MakeUsage(64, 2);
  const obs::ResourceUsage b = MakeUsage(16, 4);
  table.Record(1, "q1", Status::Ok(), false, 2.0, a);
  table.Record(1, "q1", Status::Ok(), true, 0.5, b);
  table.Record(1, "q1", Status::Timeout("t"), false, 3.0, {});
  table.Record(1, "q1", Status::Cancelled("c"), false, 0.1, {});
  table.Record(1, "q1", Status::Overloaded("o"), false, 0.1, {});
  table.Record(1, "q1", Status::Internal("i"), false, 0.1, {});

  const std::vector<obs::StatementStats> rows = table.Top(0);
  ASSERT_EQ(rows.size(), 1u);
  const obs::StatementStats& row = rows[0];
  EXPECT_EQ(row.fingerprint, 1u);
  EXPECT_EQ(row.text, "q1");
  EXPECT_EQ(row.calls, 6);
  EXPECT_EQ(row.errors, 1);
  EXPECT_EQ(row.timeouts, 1);
  EXPECT_EQ(row.cancellations, 1);
  EXPECT_EQ(row.sheds, 1);
  EXPECT_EQ(row.cache_hits, 1);
  EXPECT_DOUBLE_EQ(row.total_ms, 5.8);
  EXPECT_DOUBLE_EQ(row.max_ms, 3.0);
  EXPECT_EQ(row.latency.count, 6);
  // Sum everywhere, max on peak_parallelism.
  EXPECT_EQ(row.total.rows_scanned, a.rows_scanned + b.rows_scanned);
  EXPECT_EQ(row.total.cpu_ns, a.cpu_ns + b.cpu_ns);
  EXPECT_EQ(row.total.peak_parallelism, 4);
  // Component-wise max.
  EXPECT_EQ(row.max.rows_scanned, a.rows_scanned);
  EXPECT_EQ(row.max.result_bytes, a.result_bytes);
  EXPECT_EQ(row.max.peak_parallelism, 4);
}

TEST(StatementsTableTest, EvictsLeastRecentlyUpdated) {
  obs::StatementsTable table(2);
  table.Record(1, "q1", Status::Ok(), false, 1.0, {});
  table.Record(2, "q2", Status::Ok(), false, 1.0, {});
  // Touch q1 so q2 becomes the coldest; q3 then evicts q2.
  table.Record(1, "q1", Status::Ok(), false, 1.0, {});
  table.Record(3, "q3", Status::Ok(), false, 1.0, {});
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.evictions(), 1);
  const std::vector<obs::StatementStats> rows = table.Top(0);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].fingerprint, 1u);  // 2.0ms total beats 1.0ms
  EXPECT_EQ(rows[1].fingerprint, 3u);
  // A re-recorded fingerprint revives with its history intact.
  table.Record(2, "q2", Status::Ok(), false, 1.0, {});
  EXPECT_EQ(table.evictions(), 2);
  for (const obs::StatementStats& row : table.Top(0)) {
    if (row.fingerprint == 2) {
      EXPECT_EQ(row.calls, 1);  // the evicted history is gone
    }
  }
}

TEST(StatementsTableTest, TopOrderingIsDeterministic) {
  obs::StatementsTable table(8);
  table.Record(10, "a", Status::Ok(), false, 5.0, {});
  table.Record(20, "b", Status::Ok(), false, 2.5, {});
  table.Record(20, "b", Status::Ok(), false, 2.5, {});
  table.Record(30, "c", Status::Ok(), false, 9.0, {});
  // Same total and calls as fingerprint 10: the smaller fingerprint wins.
  table.Record(40, "d", Status::Ok(), false, 5.0, {});

  const std::vector<obs::StatementStats> all = table.Top(0);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].fingerprint, 30u);  // 9.0ms
  EXPECT_EQ(all[1].fingerprint, 20u);  // 5.0ms total, 2 calls
  EXPECT_EQ(all[2].fingerprint, 10u);  // 5.0ms, 1 call, smaller fp
  EXPECT_EQ(all[3].fingerprint, 40u);

  const std::vector<obs::StatementStats> top2 = table.Top(2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].fingerprint, 30u);
  EXPECT_EQ(top2[1].fingerprint, 20u);
}

TEST(StatementsTableTest, DisabledTextCapAndClear) {
  obs::StatementsTable disabled(0);
  EXPECT_FALSE(disabled.enabled());
  disabled.Record(1, "q", Status::Ok(), false, 1.0, {});
  EXPECT_EQ(disabled.size(), 0u);
  EXPECT_TRUE(disabled.Top(0).empty());

  obs::StatementsTable table(4);
  const std::string long_text(obs::kStatementTextCap + 100, 'x');
  table.Record(1, long_text, Status::Ok(), false, 1.0, {});
  const std::vector<obs::StatementStats> rows = table.Top(0);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].text.size(), obs::kStatementTextCap);

  table.Clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_TRUE(table.Top(0).empty());
}

TEST(StatementsTableTest, ConcurrentRecordsStayExact) {
  obs::StatementsTable table(16);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table, t] {
      for (int i = 0; i < kPerThread; ++i) {
        table.Record(static_cast<uint64_t>(t % 4), "q", Status::Ok(),
                     false, 0.5, MakeUsage(1, 1));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  int64_t calls = 0;
  for (const obs::StatementStats& row : table.Top(0)) {
    calls += row.calls;
    EXPECT_EQ(row.total.rows_scanned, row.calls);  // 1 per record
  }
  EXPECT_EQ(calls, kThreads * kPerThread);
}

// --- kStatements wire codec ---

std::vector<net::WireStatementRow> SampleRows() {
  std::vector<net::WireStatementRow> rows;
  net::WireStatementRow a;
  a.fingerprint = 0x0123456789abcdefULL;
  a.text = "NEAREST 3 r TO #walk1";
  a.calls = 17;
  a.errors = 1;
  a.timeouts = 2;
  a.cancellations = 3;
  a.sheds = 4;
  a.cache_hits = 5;
  a.total_ms = 0.1 + 0.2;  // not exactly representable: bit-identity test
  a.max_ms = 1e-17;
  a.p50_ms = 3.14159265358979;
  a.p95_ms = 12.5;
  a.p99_ms = 100.0;
  a.total = MakeUsage(1000, 8);
  a.max = MakeUsage(100, 8);
  rows.push_back(a);
  net::WireStatementRow b;  // empty text is legal on the wire
  b.fingerprint = 0;
  b.text = "";
  rows.push_back(b);
  return rows;
}

TEST(StatementsWireTest, EncodeDecodeRoundTripsBitExact) {
  const std::vector<net::WireStatementRow> rows = SampleRows();
  const std::vector<uint8_t> payload = net::EncodeStatements(rows);
  std::vector<net::WireStatementRow> decoded;
  ASSERT_TRUE(
      net::DecodeStatements(payload.data(), payload.size(), &decoded).ok());
  ASSERT_EQ(decoded.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(decoded[i].fingerprint, rows[i].fingerprint);
    EXPECT_EQ(decoded[i].text, rows[i].text);
    EXPECT_EQ(decoded[i].calls, rows[i].calls);
    EXPECT_EQ(decoded[i].errors, rows[i].errors);
    EXPECT_EQ(decoded[i].timeouts, rows[i].timeouts);
    EXPECT_EQ(decoded[i].cancellations, rows[i].cancellations);
    EXPECT_EQ(decoded[i].sheds, rows[i].sheds);
    EXPECT_EQ(decoded[i].cache_hits, rows[i].cache_hits);
    // Doubles ride the wire as raw bits: EXPECT_EQ, not NEAR.
    EXPECT_EQ(decoded[i].total_ms, rows[i].total_ms);
    EXPECT_EQ(decoded[i].max_ms, rows[i].max_ms);
    EXPECT_EQ(decoded[i].p50_ms, rows[i].p50_ms);
    EXPECT_EQ(decoded[i].p95_ms, rows[i].p95_ms);
    EXPECT_EQ(decoded[i].p99_ms, rows[i].p99_ms);
    EXPECT_EQ(decoded[i].total.rows_scanned, rows[i].total.rows_scanned);
    EXPECT_EQ(decoded[i].total.cpu_ns, rows[i].total.cpu_ns);
    EXPECT_EQ(decoded[i].total.peak_parallelism,
              rows[i].total.peak_parallelism);
    EXPECT_EQ(decoded[i].max.result_bytes, rows[i].max.result_bytes);
    EXPECT_EQ(decoded[i].max.pool_tasks, rows[i].max.pool_tasks);
  }
  // The empty table is a valid frame.
  const std::vector<uint8_t> empty = net::EncodeStatements({});
  ASSERT_TRUE(
      net::DecodeStatements(empty.data(), empty.size(), &decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(StatementsWireTest, EveryTruncationIsRejected) {
  const std::vector<uint8_t> payload = net::EncodeStatements(SampleRows());
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    std::vector<net::WireStatementRow> decoded;
    EXPECT_FALSE(net::DecodeStatements(payload.data(), cut, &decoded).ok())
        << "truncation at " << cut << " accepted";
  }
}

TEST(StatementsWireTest, HostileCountsAndGarbageAreRejected) {
  std::vector<uint8_t> padded = net::EncodeStatements(SampleRows());
  padded.push_back(0xAB);  // stray byte past a well-formed payload
  std::vector<net::WireStatementRow> decoded;
  EXPECT_FALSE(
      net::DecodeStatements(padded.data(), padded.size(), &decoded).ok());

  // A count promising far more rows than the payload holds must fail up
  // front (no giant reserve, no deep parse).
  const std::vector<uint8_t> huge = {0xFF, 0xFF, 0xFF, 0x7F};
  EXPECT_FALSE(
      net::DecodeStatements(huge.data(), huge.size(), &decoded).ok());

  // Garbage never crashes the decoder (poisoned-reader contract).
  std::vector<uint8_t> garbage(256);
  for (size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = static_cast<uint8_t>(i * 37 + 11);
  }
  (void)net::DecodeStatements(garbage.data(), garbage.size(), &decoded);

  // The request codec has the same contract.
  net::StatementsRequest request;
  EXPECT_FALSE(net::DecodeStatementsRequest(garbage.data(), 3, &request).ok());
  const std::vector<uint8_t> req = net::EncodeStatementsRequest({});
  for (size_t cut = 0; cut < req.size(); ++cut) {
    EXPECT_FALSE(net::DecodeStatementsRequest(req.data(), cut, &request).ok());
  }
}

// --- resource accounting through the service ---

TEST(ResourceAccountingTest, UsageRidesOnServiceResults) {
  QueryService service(MakeDatabase());
  auto session = service.OpenSession();
  const Result<ServiceResult> cold =
      session->Execute("RANGE r WITHIN 4.0 OF #walk3");
  ASSERT_TRUE(cold.ok());
  const obs::ResourceUsage& usage = cold.value().usage;
  EXPECT_GT(usage.rows_scanned, 0);
  EXPECT_GT(usage.exact_checks, 0);
  EXPECT_GT(usage.result_bytes, 0);
  EXPECT_GE(usage.peak_parallelism, 1);
  EXPECT_GT(usage.cpu_ns, 0);  // the exact kernel burns real thread CPU

  // A cache hit re-serves the stored answer: engine counters are zero,
  // but the result bytes are still accounted.
  const Result<ServiceResult> hit =
      session->Execute("RANGE r WITHIN 4.0 OF #walk3");
  ASSERT_TRUE(hit.ok());
  ASSERT_TRUE(hit.value().plan.cache_hit);
  EXPECT_EQ(hit.value().usage.rows_scanned, 0);
  EXPECT_EQ(hit.value().usage.exact_checks, 0);
  EXPECT_GT(hit.value().usage.result_bytes, 0);

  // The session rolls its executions up.
  const obs::ResourceUsage cumulative = session->cumulative_usage();
  EXPECT_EQ(cumulative.rows_scanned, usage.rows_scanned);
  EXPECT_EQ(cumulative.result_bytes,
            usage.result_bytes + hit.value().usage.result_bytes);
  EXPECT_GE(cumulative.cpu_ns, usage.cpu_ns);
}

TEST(ResourceAccountingTest, DisabledAccountingZeroesCpuOnly) {
  ServiceOptions options;
  options.enable_resource_accounting = false;
  QueryService service(MakeDatabase(), options);
  const Result<ServiceResult> result =
      service.ExecuteText("NEAREST 3 r TO #walk1");
  ASSERT_TRUE(result.ok());
  // Engine-effort counters still flow from ExecutionStats; only the CPU
  // metering is off.
  EXPECT_GT(result.value().usage.rows_scanned, 0);
  EXPECT_EQ(result.value().usage.cpu_ns, 0);
  EXPECT_EQ(result.value().usage.pool_tasks, 0);
}

TEST(StatementsServiceTest, RecordsCallsHitsAndFailures) {
  ServiceOptions options;
  options.statements_capacity = 16;
  QueryService service(MakeDatabase(), options);
  auto session = service.OpenSession();

  Result<ServiceResult> first = session->Execute("NEAREST 3 r TO #walk1");
  ASSERT_TRUE(first.ok());
  const uint64_t fp = first.value().plan.fingerprint;
  ASSERT_NE(fp, 0u);
  ASSERT_TRUE(session->Execute("NEAREST 3 r TO #walk1").ok());  // cache hit
  ASSERT_TRUE(session->Execute("NEAREST 3 r TO #walk1").ok());  // cache hit
  ASSERT_TRUE(session->Execute("RANGE r WITHIN 2.0 OF #walk0").ok());

  EXPECT_EQ(service.statements()->size(), 2u);
  bool found = false;
  for (const obs::StatementStats& row : service.statements()->Top(0)) {
    if (row.fingerprint != fp) {
      continue;
    }
    found = true;
    EXPECT_EQ(row.calls, 3);
    EXPECT_EQ(row.cache_hits, 2);
    EXPECT_EQ(row.errors + row.timeouts + row.cancellations + row.sheds, 0);
    EXPECT_EQ(row.latency.count, 3);
    EXPECT_GT(row.total_ms, 0.0);
    EXPECT_GT(row.total.rows_scanned, 0);
    // The text sample is the canonical key ("N|<rel>|k=..." here).
    EXPECT_EQ(row.text.rfind("N|", 0), 0u);
  }
  EXPECT_TRUE(found);

  // Distinct parameters are distinct statement shapes (the fingerprint
  // hashes the canonical AST, not the raw text).
  ASSERT_TRUE(session->Execute("NEAREST 5 r TO #walk1").ok());
  EXPECT_EQ(service.statements()->size(), 3u);
}

TEST(StatementsServiceTest, CapacityZeroDisablesTracking) {
  ServiceOptions options;
  options.statements_capacity = 0;
  QueryService service(MakeDatabase(), options);
  ASSERT_TRUE(service.ExecuteText("NEAREST 3 r TO #walk1").ok());
  EXPECT_EQ(service.statements()->size(), 0u);
  EXPECT_FALSE(service.statements()->enabled());
}

// --- the three surfaces agree bit-for-bit ---

struct TestServer {
  TestServer() : service(MakeDatabase(64, 32)) {
    server = std::make_unique<net::NetServer>(&service);
    const Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    loop = std::thread([this] { server->Run(); });
  }
  ~TestServer() {
    server->Shutdown();
    loop.join();
  }
  QueryService service;
  std::unique_ptr<net::NetServer> server;
  std::thread loop;
};

// Extracts the value of `"key":` within `json` starting at `from`.
double JsonNumber(const std::string& json, const std::string& key,
                  size_t from = 0) {
  const size_t at = json.find("\"" + key + "\":", from);
  EXPECT_NE(at, std::string::npos) << key;
  if (at == std::string::npos) {
    return -1.0;
  }
  return std::strtod(json.c_str() + at + key.size() + 3, nullptr);
}

TEST(StatementsSurfacesTest, WireShellAndJsonAgreeBitIdentical) {
  TestServer harness;
  net::NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.server->port()).ok());
  net::ExecRequest exec;
  exec.text = "NEAREST 3 r TO #walk1";
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.Exec(exec).ok());
  }
  exec.text = "RANGE r WITHIN 2.0 OF #walk0";
  ASSERT_TRUE(client.Exec(exec).ok());

  // No executions between the three reads: one logical snapshot.
  const std::vector<obs::StatementStats> shell =
      harness.service.statements()->Top(0);
  const Result<std::vector<net::WireStatementRow>> wire =
      client.Statements(0);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  const std::string json = obs::RenderStatementsJson(shell);

  ASSERT_EQ(shell.size(), 2u);
  ASSERT_EQ(wire.value().size(), shell.size());
  size_t cursor = 0;
  for (size_t i = 0; i < shell.size(); ++i) {
    const obs::StatementStats& s = shell[i];
    const net::WireStatementRow& w = wire.value()[i];
    EXPECT_EQ(w.fingerprint, s.fingerprint);
    EXPECT_EQ(w.text, s.text);
    EXPECT_EQ(w.calls, static_cast<uint64_t>(s.calls));
    EXPECT_EQ(w.cache_hits, static_cast<uint64_t>(s.cache_hits));
    EXPECT_EQ(w.total_ms, s.total_ms);  // bit-identical
    EXPECT_EQ(w.max_ms, s.max_ms);
    EXPECT_EQ(w.p50_ms, s.latency.Percentile(50.0));
    EXPECT_EQ(w.p95_ms, s.latency.Percentile(95.0));
    EXPECT_EQ(w.p99_ms, s.latency.Percentile(99.0));
    EXPECT_EQ(w.total.rows_scanned, s.total.rows_scanned);
    EXPECT_EQ(w.total.cpu_ns, s.total.cpu_ns);
    EXPECT_EQ(w.max.exact_checks, s.max.exact_checks);

    // The JSON body renders the same row in the same order; shortest
    // round-trip doubles parse back to the exact wire values.
    char fp[32];
    std::snprintf(fp, sizeof(fp), "\"fingerprint\":\"%016llx\"",
                  static_cast<unsigned long long>(s.fingerprint));
    const size_t at = json.find(fp, cursor);
    ASSERT_NE(at, std::string::npos) << fp;
    cursor = at;
    EXPECT_EQ(JsonNumber(json, "total_ms", cursor), w.total_ms);
    EXPECT_EQ(JsonNumber(json, "max_ms", cursor), w.max_ms);
    EXPECT_EQ(JsonNumber(json, "p50_ms", cursor), w.p50_ms);
    EXPECT_EQ(JsonNumber(json, "p99_ms", cursor), w.p99_ms);
    EXPECT_EQ(static_cast<int64_t>(JsonNumber(json, "calls", cursor)),
              s.calls);
    EXPECT_EQ(static_cast<int64_t>(JsonNumber(json, "cpu_ns", cursor)),
              s.total.cpu_ns);
  }

  // top_n truncates identically on every surface.
  const Result<std::vector<net::WireStatementRow>> top1 =
      client.Statements(1);
  ASSERT_TRUE(top1.ok());
  ASSERT_EQ(top1.value().size(), 1u);
  EXPECT_EQ(top1.value()[0].fingerprint,
            harness.service.statements()->Top(1)[0].fingerprint);
  ASSERT_TRUE(client.Goodbye().ok());
}

}  // namespace
}  // namespace simq
