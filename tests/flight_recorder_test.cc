// Flight-recorder tests: complete-JSON line discipline (empty fields,
// oversized truncation, concurrent writers), ring wrap, the crash-dump
// path, the fatal-signal fork/abort schedule (the black box must land on
// disk and parse as JSONL after an abort), the stall watchdog's
// detect/re-arm cycle, and the service-level event stream.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "obs/flight_recorder.h"
#include "obs/watchdog.h"
#include "service/query_service.h"
#include "workload/generators.h"

namespace simq {
namespace {

// The crash schedule forks; forking a process with live pool threads can
// deadlock the child in malloc. SIMQ_THREADS=1 keeps the global pool
// inline (same idiom as net_protocol_test).
const bool kSingleThreadPinned = [] {
  ::setenv("SIMQ_THREADS", "1", 1);
  return true;
}();

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      end = text.size();
    }
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

// Minimal structural JSON check: one top-level object, balanced braces
// outside strings, valid escape positions. Catches truncated or torn
// lines without a full parser.
bool IsCompleteJsonObject(const std::string& line) {
  if (line.empty() || line.front() != '{') {
    return false;
  }
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++depth;
    } else if (c == '}') {
      --depth;
      if (depth == 0 && i + 1 != line.size()) {
        return false;  // trailing bytes after the object
      }
    }
  }
  return depth == 0 && !in_string;
}

// --- recorder line discipline ---

TEST(FlightRecorderTest, LinesAreCompleteOrderedJson) {
  obs::FlightRecorder recorder(64);
  recorder.Record("checkpoint", nullptr);
  recorder.Record("checkpoint", "");
  recorder.Recordf("query", "\"fp\":\"%016llx\",\"ms\":%.3f", 0xabcULL, 1.5);

  const std::vector<std::string> lines = SplitLines(recorder.DumpJsonl());
  ASSERT_EQ(lines.size(), 3u);
  int64_t last_seq = -1;
  for (const std::string& line : lines) {
    EXPECT_TRUE(IsCompleteJsonObject(line)) << line;
    const size_t at = line.find("\"seq\":");
    ASSERT_NE(at, std::string::npos);
    const int64_t seq = std::atoll(line.c_str() + at + 6);
    EXPECT_GT(seq, last_seq);  // oldest first, strictly ordered
    last_seq = seq;
    EXPECT_NE(line.find("\"ts_ms\":"), std::string::npos);
  }
  // Empty fields leave no trailing comma.
  EXPECT_NE(lines[0].find("\"ev\":\"checkpoint\"}"), std::string::npos);
  EXPECT_NE(lines[1].find("\"ev\":\"checkpoint\"}"), std::string::npos);
  EXPECT_NE(lines[2].find("\"ms\":1.500"), std::string::npos);
  EXPECT_EQ(recorder.events_recorded(), 3);
}

TEST(FlightRecorderTest, RingWrapKeepsTheMostRecent) {
  obs::FlightRecorder recorder(8);
  for (int i = 0; i < 20; ++i) {
    recorder.Recordf("tick", "\"i\":%d", i);
  }
  const std::vector<std::string> lines = SplitLines(recorder.DumpJsonl());
  ASSERT_EQ(lines.size(), 8u);
  for (size_t k = 0; k < lines.size(); ++k) {
    EXPECT_TRUE(IsCompleteJsonObject(lines[k])) << lines[k];
    char expect[32];
    std::snprintf(expect, sizeof(expect), "\"i\":%d}",
                  12 + static_cast<int>(k));
    EXPECT_NE(lines[k].find(expect), std::string::npos) << lines[k];
  }
}

TEST(FlightRecorderTest, OversizedFieldsTruncateToValidJson) {
  obs::FlightRecorder recorder(8);
  std::string huge = "\"note\":\"";
  huge.append(2 * obs::FlightRecorder::kLineBytes, 'x');
  huge += "\"";
  recorder.Record("query", huge.c_str());
  const std::vector<std::string> lines = SplitLines(recorder.DumpJsonl());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(IsCompleteJsonObject(lines[0])) << lines[0];
  EXPECT_NE(lines[0].find("\"truncated\":true"), std::string::npos);
  EXPECT_EQ(lines[0].find("xxx"), std::string::npos);
}

TEST(FlightRecorderTest, ConcurrentWritersNeverTearLines) {
  obs::FlightRecorder recorder(1024);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.Recordf("tick", "\"t\":%d,\"i\":%d", t, i);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(recorder.events_recorded(), kThreads * kPerThread);
  const std::vector<std::string> lines = SplitLines(recorder.DumpJsonl());
  EXPECT_LE(lines.size(), 1024u);
  EXPECT_GT(lines.size(), 0u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(IsCompleteJsonObject(line)) << line;
  }
}

TEST(FlightRecorderTest, CrashPathDumpWritesTheRing) {
  obs::FlightRecorder recorder(16);
  EXPECT_FALSE(recorder.DumpToCrashPath());  // unset path: no-op
  const std::string path = TempPath("flight_on_demand.jsonl");
  std::remove(path.c_str());
  recorder.SetCrashDumpPath(path);
  EXPECT_STREQ(recorder.crash_dump_path(), path.c_str());
  recorder.Recordf("conn", "\"event\":\"open\",\"active\":%d", 1);
  ASSERT_TRUE(recorder.DumpToCrashPath());

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(IsCompleteJsonObject(line)) << line;
    ++lines;
  }
  EXPECT_EQ(lines, 1);
}

// --- the fatal path, end to end ---

// Child: route the process black box at dump files, run real queries
// through a service, prove SIGUSR1 dumps-and-continues, then abort. The
// parent asserts the SIGABRT exit, and that the crash dump is valid
// JSONL holding the admitted queries.
TEST(FlightRecorderCrashTest, AbortLeavesParseableJsonlWithLastQueries) {
  const std::string usr1_path = TempPath("flight_usr1.jsonl");
  const std::string crash_path = TempPath("flight_crash.jsonl");
  std::remove(usr1_path.c_str());
  std::remove(crash_path.c_str());

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child. No gtest assertions here; precondition failures exit with a
    // status the parent will reject.
    obs::FlightRecorder& flight = obs::FlightRecorder::Global();
    flight.SetCrashDumpPath(usr1_path);
    obs::FlightRecorder::InstallCrashHandlers(&flight);

    Database db;
    if (!db.CreateRelation("r").ok() ||
        !db.BulkLoad("r", workload::RandomWalkSeries(64, 32, 7)).ok()) {
      _exit(3);
    }
    QueryService service(std::move(db));
    if (!service.ExecuteText("NEAREST 3 r TO #walk1").ok() ||
        !service.ExecuteText("RANGE r WITHIN 2.0 OF #walk0").ok()) {
      _exit(4);
    }
    ::raise(SIGUSR1);  // on-demand dump; the process must keep flying
    if (::access(usr1_path.c_str(), R_OK) != 0) {
      _exit(5);
    }
    flight.SetCrashDumpPath(crash_path);
    std::abort();  // the fatal path dumps, then the re-raise kills us
  }

  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus)) << "exit status " << wstatus;
  EXPECT_EQ(WTERMSIG(wstatus), SIGABRT);

  // Surviving SIGUSR1 is proven by the child reaching abort() at all;
  // the dump it left must parse too.
  std::ifstream usr1(usr1_path);
  ASSERT_TRUE(usr1.is_open());
  std::string line;
  while (std::getline(usr1, line)) {
    EXPECT_TRUE(IsCompleteJsonObject(line)) << line;
  }

  std::ifstream in(crash_path);
  ASSERT_TRUE(in.is_open());
  int lines = 0;
  bool saw_admit = false;
  bool saw_query = false;
  while (std::getline(in, line)) {
    ASSERT_TRUE(IsCompleteJsonObject(line)) << line;
    saw_admit = saw_admit ||
                line.find("\"ev\":\"query_admit\"") != std::string::npos;
    saw_query = saw_query || (line.find("\"ev\":\"query\"") !=
                                  std::string::npos &&
                              line.find("\"status\":\"ok\"") !=
                                  std::string::npos);
    ++lines;
  }
  EXPECT_GT(lines, 0);
  EXPECT_TRUE(saw_admit);
  EXPECT_TRUE(saw_query);
}

// --- service event stream ---

TEST(FlightRecorderServiceTest, MutationsAndQueriesLandInTheRing) {
  obs::FlightRecorder flight(256);
  ServiceOptions options;
  options.flight_recorder = &flight;
  Database db;
  ASSERT_TRUE(db.CreateRelation("r").ok());
  ASSERT_TRUE(
      db.BulkLoad("r", workload::RandomWalkSeries(64, 32, 7)).ok());
  QueryService service(std::move(db), options);
  TimeSeries extra;
  extra.id = "extra";
  extra.values.assign(32, 0.25);
  const Result<int64_t> inserted = service.Insert("r", extra);
  ASSERT_TRUE(inserted.ok());
  ASSERT_TRUE(service.ExecuteText("NEAREST 3 r TO #walk1").ok());
  ASSERT_TRUE(service.Delete("r", inserted.value()).ok());

  const std::string dump = flight.DumpJsonl();
  EXPECT_NE(dump.find("\"ev\":\"mutation\""), std::string::npos);
  EXPECT_NE(dump.find("\"op\":\"insert\""), std::string::npos);
  EXPECT_NE(dump.find("\"op\":\"delete\""), std::string::npos);
  EXPECT_NE(dump.find("\"ev\":\"query_admit\""), std::string::npos);
  EXPECT_NE(dump.find("\"ev\":\"query\""), std::string::npos);
  EXPECT_NE(dump.find("\"rows_scanned\":"), std::string::npos);
  for (const std::string& line : SplitLines(dump)) {
    EXPECT_TRUE(IsCompleteJsonObject(line)) << line;
  }
}

// --- stall watchdog ---

TEST(WatchdogTest, DetectsStallsAndRearmsAfterProgress) {
  std::atomic<int64_t> completed{0};
  std::atomic<int64_t> pending{1};
  std::atomic<int> fired{0};
  double last_stalled_ms = 0.0;
  obs::StallWatchdog::Options options;
  options.poll_interval_ms = 5.0;
  options.stall_after_ms = 40.0;
  obs::StallWatchdog watchdog(
      options,
      [&] {
        obs::StallWatchdog::Probe probe;
        probe.completed = completed.load();
        probe.pending = pending.load();
        return probe;
      },
      [&](double stalled_ms, const obs::StallWatchdog::Probe& probe) {
        last_stalled_ms = stalled_ms;
        EXPECT_GT(probe.pending, 0);
        fired.fetch_add(1);
      });
  watchdog.Start();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fired.load() < 1 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(fired.load(), 1);  // fires once per stall, not per poll
  EXPECT_GE(last_stalled_ms, 40.0);
  EXPECT_EQ(watchdog.stalls_detected(), 1);

  // Progress re-arms; a second freeze is a second stall.
  completed.fetch_add(1);
  while (fired.load() < 2 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(fired.load(), 2);
  EXPECT_EQ(watchdog.stalls_detected(), 2);
  watchdog.Stop();
}

TEST(WatchdogTest, StaysQuietWhenIdleOrProgressing) {
  std::atomic<int64_t> completed{0};
  std::atomic<int64_t> pending{0};
  std::atomic<int> fired{0};
  obs::StallWatchdog::Options options;
  options.poll_interval_ms = 5.0;
  options.stall_after_ms = 30.0;
  obs::StallWatchdog watchdog(
      options,
      [&] {
        obs::StallWatchdog::Probe probe;
        // Progressing whenever pending: completed advances every probe.
        probe.completed =
            pending.load() > 0 ? completed.fetch_add(1) + 1 : completed.load();
        probe.pending = pending.load();
        return probe;
      },
      [&](double, const obs::StallWatchdog::Probe&) { fired.fetch_add(1); });
  watchdog.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));  // idle
  pending.store(1);  // busy but progressing
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  watchdog.Stop();
  EXPECT_EQ(fired.load(), 0);
  EXPECT_EQ(watchdog.stalls_detected(), 0);
}

TEST(WatchdogTest, ServiceWatchdogRunsCleanWithoutFalseStalls) {
  ServiceOptions options;
  options.watchdog_stall_after_ms = 50.0;
  options.watchdog_poll_interval_ms = 5.0;
  Database db;
  ASSERT_TRUE(db.CreateRelation("r").ok());
  ASSERT_TRUE(
      db.BulkLoad("r", workload::RandomWalkSeries(64, 32, 7)).ok());
  QueryService service(std::move(db), options);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(service.ExecuteText("NEAREST 3 r TO #walk1").ok());
  }
  // Idle well past the stall threshold: pending is zero, so no stall.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_EQ(
      service.metrics_registry()
          ->GetCounter("simq_watchdog_stalls_total")
          ->Value(),
      0);
}

}  // namespace
}  // namespace simq
