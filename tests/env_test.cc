// Unit tests for the validated environment-knob parsing (util/env.h):
// SIMQ_THREADS / SIMQ_SHARDS must reject non-numeric, zero, negative,
// trailing-garbage, and overflowing values with a clear error naming the
// variable, instead of silently falling back to a default.

#include <string>

#include <gtest/gtest.h>

#include "util/env.h"

namespace simq {
namespace {

TEST(EnvParsing, AcceptsPositiveIntegers) {
  for (const auto& [text, expected] :
       {std::pair<std::string, int>{"1", 1},
        {"8", 8},
        {"64", 64},
        {"2147483647", 2147483647}}) {
    const Result<int> parsed = ParsePositiveIntEnv("SIMQ_THREADS", text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_EQ(parsed.value(), expected) << text;
  }
}

TEST(EnvParsing, RejectsNonNumeric) {
  for (const char* text : {"", "abc", "x8", "--", " "}) {
    const Result<int> parsed = ParsePositiveIntEnv("SIMQ_THREADS", text);
    EXPECT_FALSE(parsed.ok()) << "'" << text << "'";
  }
}

TEST(EnvParsing, RejectsZeroAndNegative) {
  for (const char* text : {"0", "-1", "-64"}) {
    const Result<int> parsed = ParsePositiveIntEnv("SIMQ_SHARDS", text);
    ASSERT_FALSE(parsed.ok()) << text;
    EXPECT_NE(parsed.status().message().find(">= 1"), std::string::npos)
        << parsed.status().ToString();
  }
}

TEST(EnvParsing, RejectsTrailingGarbage) {
  for (const char* text : {"8x", "4 shards", "1.5", "0x10"}) {
    EXPECT_FALSE(ParsePositiveIntEnv("SIMQ_SHARDS", text).ok()) << text;
  }
}

TEST(EnvParsing, RejectsOverflow) {
  for (const char* text :
       {"2147483648", "99999999999999999999", "9223372036854775808"}) {
    const Result<int> parsed = ParsePositiveIntEnv("SIMQ_THREADS", text);
    ASSERT_FALSE(parsed.ok()) << text;
    EXPECT_NE(parsed.status().message().find("overflow"), std::string::npos)
        << parsed.status().ToString();
  }
}

TEST(EnvParsing, ErrorNamesTheVariableAndValue) {
  const Result<int> parsed = ParsePositiveIntEnv("SIMQ_SHARDS", "lots");
  ASSERT_FALSE(parsed.ok());
  const std::string message = parsed.status().message();
  EXPECT_NE(message.find("SIMQ_SHARDS"), std::string::npos) << message;
  EXPECT_NE(message.find("lots"), std::string::npos) << message;
}

TEST(EnvParsing, FromEnvFallsBackOnlyWhenUnset) {
  unsetenv("SIMQ_TEST_KNOB");
  EXPECT_EQ(PositiveIntFromEnv("SIMQ_TEST_KNOB", 7), 7);
  setenv("SIMQ_TEST_KNOB", "12", 1);
  EXPECT_EQ(PositiveIntFromEnv("SIMQ_TEST_KNOB", 7), 12);
  unsetenv("SIMQ_TEST_KNOB");
}

TEST(EnvParsingDeathTest, SetButInvalidAborts) {
  setenv("SIMQ_TEST_KNOB", "zero", 1);
  EXPECT_DEATH(PositiveIntFromEnv("SIMQ_TEST_KNOB", 7), "SIMQ_TEST_KNOB");
  unsetenv("SIMQ_TEST_KNOB");
}

}  // namespace
}  // namespace simq
