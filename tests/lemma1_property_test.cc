// Dedicated property suite for Lemma 1 of [RM97]: "the k-index approach
// enhanced with transformations always returns a superset of the answer
// set" -- i.e. the index filter admits candidates but never dismisses a
// true answer, for every combination of feature space, coefficient count,
// transformation, and threshold.
//
// The test compares three layers for random workloads:
//   ground truth   time-domain distances on transformed normal forms
//   index filter   raw candidate sets from the R*-tree traversal
//   full pipeline  Database range query results (filter + postprocess)

#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "core/transformation.h"
#include "geom/search_region.h"
#include "ts/transforms.h"
#include "util/random.h"
#include "util/stats.h"
#include "workload/generators.h"

namespace simq {
namespace {

struct Lemma1Case {
  FeatureSpace space;
  int num_coefficients;
  const char* rule;
  int length;
};

std::shared_ptr<TransformationRule> MakeRule(const std::string& name) {
  if (name == "none") {
    return nullptr;
  }
  if (name == "mavg8") {
    return MakeMovingAverageRule(8);
  }
  if (name == "mavg20") {
    return MakeMovingAverageRule(20);
  }
  if (name == "reverse") {
    return MakeReverseRule();
  }
  if (name == "reverse_mavg8") {
    std::vector<std::unique_ptr<TransformationRule>> parts;
    parts.push_back(MakeReverseRule());
    parts.push_back(MakeMovingAverageRule(8));
    return MakeCompositeRule(std::move(parts));
  }
  if (name == "scale_neg") {
    return MakeScaleRule(-1.5);
  }
  ADD_FAILURE() << "unknown rule " << name;
  return nullptr;
}

class Lemma1Test : public ::testing::TestWithParam<Lemma1Case> {};

TEST_P(Lemma1Test, IndexFilterNeverDismissesTrueAnswers) {
  const Lemma1Case c = GetParam();
  const std::shared_ptr<TransformationRule> rule = MakeRule(c.rule);

  // Skip combinations the planner would legitimately reject (unsafe space).
  FeatureConfig config;
  config.space = c.space;
  config.num_coefficients = c.num_coefficients;
  if (rule != nullptr) {
    const auto lowered = rule->IndexTransform(c.length, c.num_coefficients);
    ASSERT_TRUE(lowered.has_value());
    if (!lowered->IsSafeIn(c.space)) {
      GTEST_SKIP() << "transformation unsafe in this space (by design)";
    }
  }

  const std::vector<TimeSeries> series = workload::RandomWalkSeries(
      200, c.length,
      static_cast<uint64_t>(1000 + c.length + c.num_coefficients));
  Database db(config);
  ASSERT_TRUE(db.CreateRelation("r").ok());
  ASSERT_TRUE(db.BulkLoad("r", series).ok());
  const Relation* relation = db.GetRelation("r");

  Random rng(static_cast<uint64_t>(c.length * 31 + c.num_coefficients));
  for (int trial = 0; trial < 8; ++trial) {
    const int64_t probe = rng.UniformInt(0, 199);
    const double epsilon = rng.UniformDouble(0.1, 10.0);

    // Ground truth in the time domain.
    std::vector<double> target = relation->record(probe).normal_values;
    if (rule != nullptr) {
      target = rule->Apply(target);
    }
    std::set<int64_t> truth;
    for (const Record& record : relation->records()) {
      std::vector<double> transformed = record.normal_values;
      if (rule != nullptr) {
        transformed = rule->Apply(transformed);
      }
      if (EuclideanDistance(transformed, target) <= epsilon) {
        truth.insert(record.id);
      }
    }

    // Raw index filter: traverse the tree directly.
    const Spectrum target_spectrum = Dft(target);
    const std::vector<Complex> query_coeffs =
        ExtractCoefficients(target_spectrum, c.num_coefficients);
    const SearchRegion region =
        SearchRegion::MakeRange(query_coeffs, epsilon, config);
    std::vector<DimAffine> affines;
    const std::vector<DimAffine>* affines_ptr = nullptr;
    if (rule != nullptr) {
      affines = LowerToFeatureSpace(
          *rule->IndexTransform(c.length, c.num_coefficients), config);
      affines_ptr = &affines;
    }
    std::vector<int64_t> candidates;
    relation->index().Search(region, affines_ptr, &candidates);
    const std::set<int64_t> candidate_set(candidates.begin(),
                                          candidates.end());

    // Lemma 1: candidates are a superset of the truth.
    for (const int64_t id : truth) {
      EXPECT_EQ(candidate_set.count(id), 1u)
          << "FALSE DISMISSAL: series " << id << " (trial " << trial
          << ", eps " << epsilon << ", rule " << c.rule << ")";
    }

    // Full pipeline: exactly the truth.
    Query query;
    query.kind = QueryKind::kRange;
    query.relation = "r";
    query.query_series.literal = target;
    query.query_prenormalized = true;
    query.epsilon = epsilon;
    query.transform = rule;
    query.strategy = ExecutionStrategy::kIndex;
    const Result<QueryResult> result = db.Execute(query);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::set<int64_t> answers;
    for (const Match& match : result.value().matches) {
      answers.insert(match.id);
    }
    EXPECT_EQ(answers, truth) << "trial " << trial << " eps " << epsilon;
  }
}

std::vector<Lemma1Case> AllCases() {
  std::vector<Lemma1Case> cases;
  for (const FeatureSpace space :
       {FeatureSpace::kPolar, FeatureSpace::kRectangular}) {
    for (const int k : {1, 2, 4}) {
      for (const char* rule :
           {"none", "mavg8", "mavg20", "reverse", "reverse_mavg8",
            "scale_neg"}) {
        for (const int length : {32, 128}) {
          cases.push_back(Lemma1Case{space, k, rule, length});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Lemma1Test, ::testing::ValuesIn(AllCases()));

TEST(Lemma1WarpTest, CrossLengthNoFalseDismissals) {
  // The warp transformation changes the output length; Lemma 1 must still
  // hold for the cross-rate queries of Appendix A.
  FeatureConfig config;
  const std::vector<TimeSeries> series =
      workload::RandomWalkSeries(150, 64, 777);
  Database db(config);
  ASSERT_TRUE(db.CreateRelation("r").ok());
  ASSERT_TRUE(db.BulkLoad("r", series).ok());
  const Relation* relation = db.GetRelation("r");
  const auto warp = std::shared_ptr<const TransformationRule>(
      MakeTimeWarpRule(2).release());

  Random rng(888);
  for (int trial = 0; trial < 10; ++trial) {
    const int64_t probe = rng.UniformInt(0, 149);
    const double epsilon = rng.UniformDouble(0.5, 8.0);
    const std::vector<double> target =
        warp->Apply(relation->record(probe).normal_values);

    std::set<int64_t> truth;
    for (const Record& record : relation->records()) {
      if (EuclideanDistance(warp->Apply(record.normal_values), target) <=
          epsilon) {
        truth.insert(record.id);
      }
    }

    Query query;
    query.kind = QueryKind::kRange;
    query.relation = "r";
    query.query_series.literal = target;
    query.query_prenormalized = true;
    query.epsilon = epsilon;
    query.transform = warp;
    query.strategy = ExecutionStrategy::kIndex;
    const Result<QueryResult> result = db.Execute(query);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::set<int64_t> answers;
    for (const Match& match : result.value().matches) {
      answers.insert(match.id);
    }
    EXPECT_EQ(answers, truth) << "trial " << trial << " eps " << epsilon;
  }
}

}  // namespace
}  // namespace simq
