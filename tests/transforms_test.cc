#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "ts/dft.h"
#include "ts/transforms.h"
#include "util/random.h"
#include "util/stats.h"

namespace simq {
namespace {

// The two stock series of Example 1.1 of [RM97].
const std::vector<double> kSeries1 = {36, 38, 40, 38, 42, 38, 36, 36,
                                      37, 38, 39, 38, 40, 38, 37};
const std::vector<double> kSeries2 = {40, 37, 37, 42, 41, 35, 40, 35,
                                      34, 42, 38, 35, 45, 36, 34};

std::vector<double> RandomSignal(Random* rng, int n) {
  std::vector<double> x(static_cast<size_t>(n));
  for (double& v : x) {
    v = rng->UniformDouble(-5.0, 5.0);
  }
  return x;
}

TEST(NormalFormTest, MeanZeroStdOne) {
  Random rng(42);
  const std::vector<double> x = RandomSignal(&rng, 100);
  const NormalFormResult normal = ToNormalForm(x);
  EXPECT_NEAR(Mean(normal.values), 0.0, 1e-10);
  EXPECT_NEAR(StdDev(normal.values), 1.0, 1e-10);
}

TEST(NormalFormTest, RecordsOriginalStatistics) {
  const std::vector<double> x = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const NormalFormResult normal = ToNormalForm(x);
  EXPECT_DOUBLE_EQ(normal.mean, 5.0);
  EXPECT_DOUBLE_EQ(normal.std_dev, 2.0);
}

TEST(NormalFormTest, ConstantSeriesBecomesZero) {
  const NormalFormResult normal = ToNormalForm({7.0, 7.0, 7.0});
  EXPECT_DOUBLE_EQ(normal.std_dev, 0.0);
  for (double v : normal.values) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(NormalFormTest, InvariantUnderShiftAndPositiveScale) {
  // The [GK95] property: shift/scale disappear in the normal form.
  Random rng(43);
  const std::vector<double> x = RandomSignal(&rng, 64);
  std::vector<double> y(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    y[i] = 3.5 * x[i] + 11.0;
  }
  const std::vector<double> nx = ToNormalForm(x).values;
  const std::vector<double> ny = ToNormalForm(y).values;
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(nx[i], ny[i], 1e-9);
  }
}

TEST(NormalFormTest, NegativeScaleFlipsSign) {
  Random rng(44);
  const std::vector<double> x = RandomSignal(&rng, 32);
  std::vector<double> y(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    y[i] = -2.0 * x[i];
  }
  const std::vector<double> nx = ToNormalForm(x).values;
  const std::vector<double> ny = ToNormalForm(y).values;
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(ny[i], -nx[i], 1e-9);
  }
}

TEST(MovingAverageTest, WindowOneIsIdentity) {
  Random rng(45);
  const std::vector<double> x = RandomSignal(&rng, 20);
  const std::vector<double> ma = CircularMovingAverage(x, 1);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(ma[i], x[i]);
  }
}

TEST(MovingAverageTest, FullWindowIsConstantMean) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ma =
      CircularMovingAverage(x, static_cast<int>(x.size()));
  for (double v : ma) {
    EXPECT_NEAR(v, 2.5, 1e-12);
  }
}

TEST(MovingAverageTest, EqualsCircularConvolutionWithWindowKernel) {
  Random rng(46);
  const int n = 24;
  const int window = 5;
  const std::vector<double> x = RandomSignal(&rng, n);
  std::vector<double> kernel(static_cast<size_t>(n), 0.0);
  for (int t = 0; t < window; ++t) {
    kernel[static_cast<size_t>(t)] = 1.0 / window;
  }
  const std::vector<double> via_conv = CircularConvolution(x, kernel);
  const std::vector<double> via_ma = CircularMovingAverage(x, window);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(via_ma[static_cast<size_t>(i)],
                via_conv[static_cast<size_t>(i)], 1e-10);
  }
}

TEST(MovingAverageTest, PreservesMean) {
  Random rng(47);
  const std::vector<double> x = RandomSignal(&rng, 50);
  const std::vector<double> ma = CircularMovingAverage(x, 7);
  EXPECT_NEAR(Mean(ma), Mean(x), 1e-10);
}

TEST(MovingAverageTest, Example11RawDistance) {
  // D(s1, s2) = 11.92 in the paper.
  EXPECT_NEAR(EuclideanDistance(kSeries1, kSeries2), 11.92, 0.005);
}

TEST(MovingAverageTest, Example11ThreeDayMovingAverageDistance) {
  // D(mavg3(s1), mavg3(s2)) = 0.47 in the paper.
  const std::vector<double> m1 = CircularMovingAverage(kSeries1, 3);
  const std::vector<double> m2 = CircularMovingAverage(kSeries2, 3);
  EXPECT_NEAR(EuclideanDistance(m1, m2), 0.47, 0.005);
}

TEST(MovingAverageTest, SmoothingReducesDistanceOfNoisyTwins) {
  // Two series sharing a trend but with independent noise move closer
  // under smoothing (the Example 2.1 phenomenon).
  Random rng(48);
  const int n = 128;
  std::vector<double> trend(static_cast<size_t>(n));
  trend[0] = 10.0;
  for (int i = 1; i < n; ++i) {
    trend[static_cast<size_t>(i)] =
        trend[static_cast<size_t>(i - 1)] + rng.UniformDouble(-1.0, 1.0);
  }
  std::vector<double> a = trend;
  std::vector<double> b = trend;
  for (int i = 0; i < n; ++i) {
    a[static_cast<size_t>(i)] += rng.UniformDouble(-1.0, 1.0);
    b[static_cast<size_t>(i)] += rng.UniformDouble(-1.0, 1.0);
  }
  const double before = EuclideanDistance(a, b);
  const double after = EuclideanDistance(CircularMovingAverage(a, 20),
                                         CircularMovingAverage(b, 20));
  EXPECT_LT(after, 0.5 * before);
}

TEST(ReverseTest, NegatesValues) {
  const std::vector<double> x = {1.0, -2.0, 3.0};
  const std::vector<double> reversed = ReverseSeries(x);
  EXPECT_DOUBLE_EQ(reversed[0], -1.0);
  EXPECT_DOUBLE_EQ(reversed[1], 2.0);
  EXPECT_DOUBLE_EQ(reversed[2], -3.0);
}

TEST(ReverseTest, Involution) {
  Random rng(49);
  const std::vector<double> x = RandomSignal(&rng, 10);
  const std::vector<double> twice = ReverseSeries(ReverseSeries(x));
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(twice[i], x[i]);
  }
}

TEST(TimeWarpTest, StuttersValues) {
  const std::vector<double> warped = TimeWarpSeries({20, 21, 20, 23}, 2);
  const std::vector<double> expected = {20, 20, 21, 21, 20, 20, 23, 23};
  ASSERT_EQ(warped.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(warped[i], expected[i]);
  }
}

TEST(TimeWarpTest, FactorOneIsIdentity) {
  Random rng(50);
  const std::vector<double> x = RandomSignal(&rng, 12);
  const std::vector<double> warped = TimeWarpSeries(x, 1);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(warped[i], x[i]);
  }
}

TEST(TimeWarpTest, Example12WarpedSeriesMatches) {
  // Example 1.2: warping p by 2 yields a series identical to s.
  const std::vector<double> p = {20, 21, 20, 23};
  const std::vector<double> s = {20, 20, 21, 21, 20, 20, 23, 23};
  EXPECT_DOUBLE_EQ(EuclideanDistance(TimeWarpSeries(p, 2), s), 0.0);
}

// --- Spectral equivalence: the frequency-domain multipliers must agree
// --- exactly with the time-domain definitions (DESIGN.md corrections).

class SpectralEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SpectralEquivalenceTest, MovingAverageMultiplier) {
  const auto [n, window] = GetParam();
  if (window > n) {
    GTEST_SKIP() << "window larger than series";
  }
  Random rng(600 + static_cast<uint64_t>(n));
  const std::vector<double> x = RandomSignal(&rng, n);
  const Spectrum direct = Dft(CircularMovingAverage(x, window));
  const Spectrum base = Dft(x);
  const Spectrum multiplier = MovingAverageSpectrum(n, window);
  for (int f = 0; f < n; ++f) {
    const Complex expected =
        multiplier[static_cast<size_t>(f)] * base[static_cast<size_t>(f)];
    EXPECT_LT(std::abs(direct[static_cast<size_t>(f)] - expected), 1e-8)
        << "n=" << n << " window=" << window << " f=" << f;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpectralEquivalenceTest,
    ::testing::Combine(::testing::Values(8, 15, 16, 64, 128),
                       ::testing::Values(1, 2, 3, 5, 8, 20)));

TEST(SpectralEquivalenceTest, ReverseMultiplier) {
  Random rng(61);
  const int n = 32;
  const std::vector<double> x = RandomSignal(&rng, n);
  const Spectrum direct = Dft(ReverseSeries(x));
  const Spectrum base = Dft(x);
  const Spectrum multiplier = ReverseSpectrum(n);
  for (int f = 0; f < n; ++f) {
    EXPECT_LT(std::abs(direct[static_cast<size_t>(f)] -
                       multiplier[static_cast<size_t>(f)] *
                           base[static_cast<size_t>(f)]),
              1e-9);
  }
}

TEST(SpectralEquivalenceTest, IdentityMultiplier) {
  const Spectrum multiplier = IdentitySpectrum(5);
  for (const Complex& c : multiplier) {
    EXPECT_EQ(c, Complex(1.0, 0.0));
  }
}

class TimeWarpSpectrumTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TimeWarpSpectrumTest, FirstCoefficientsMatch) {
  // Appendix A (corrected): DFT_{mn}(warp_m(x))_f = a_f * DFT_n(x)_f for
  // the first coefficients.
  const auto [n, m] = GetParam();
  Random rng(700 + static_cast<uint64_t>(n * m));
  const std::vector<double> x = RandomSignal(&rng, n);
  const Spectrum warped_spec = Dft(TimeWarpSeries(x, m));
  const Spectrum base = Dft(x);
  const int k = std::min(n, 8);
  const Spectrum multiplier = TimeWarpSpectrum(n, m, k);
  for (int f = 0; f < k; ++f) {
    const Complex expected =
        multiplier[static_cast<size_t>(f)] * base[static_cast<size_t>(f)];
    EXPECT_LT(std::abs(warped_spec[static_cast<size_t>(f)] - expected), 1e-8)
        << "n=" << n << " m=" << m << " f=" << f;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TimeWarpSpectrumTest,
                         ::testing::Combine(::testing::Values(4, 8, 12, 64),
                                            ::testing::Values(1, 2, 3, 4)));

TEST(WeightedMovingAverageTest, TrendWeightsMatchSpectralForm) {
  Random rng(62);
  const int n = 64;
  // Heavier weights at the window end, as used for trend prediction.
  const std::vector<double> weights = {0.1, 0.15, 0.2, 0.25, 0.3};
  const std::vector<double> x = RandomSignal(&rng, n);
  const Spectrum direct = Dft(WeightedCircularMovingAverage(x, weights));
  const Spectrum base = Dft(x);
  const Spectrum multiplier = WeightedMovingAverageSpectrum(n, weights);
  for (int f = 0; f < n; ++f) {
    EXPECT_LT(std::abs(direct[static_cast<size_t>(f)] -
                       multiplier[static_cast<size_t>(f)] *
                           base[static_cast<size_t>(f)]),
              1e-8);
  }
}

TEST(MovingAverageTest, RepeatedSmoothingConvergesTowardFlatLine) {
  // Section 2's remark: iterating the moving average eventually flattens
  // any series (motivating cost budgets on derivations).
  Random rng(63);
  std::vector<double> x = RandomSignal(&rng, 64);
  const double mean = Mean(x);
  double previous_spread = StdDev(x);
  for (int round = 0; round < 10; ++round) {
    x = CircularMovingAverage(x, 8);
    const double spread = StdDev(x);
    EXPECT_LE(spread, previous_spread + 1e-12);
    previous_spread = spread;
  }
  EXPECT_NEAR(Mean(x), mean, 1e-9);
  EXPECT_LT(previous_spread, 0.5);
}

}  // namespace
}  // namespace simq
