// Filter-equivalence property suite: the quantized filter-and-refine
// engine (src/filter, MODE FILTERED) must return answers bit-identical to
// the unfiltered engines -- same ids, same names, same IEEE-754 distance
// bits, same tie-breaking, same pair emission -- for every shard count,
// bit width, strategy, and workload, including tie-heavy ones where
// distances land exactly on eps and on the k-th kNN distance. The filter
// may only change HOW MANY exact checks run (stats), never the answer.
//
// Also covered: the bracketing invariant of the quantizer, the code
// round-trip through the bit-packed rows, the lower/upper-bound sandwich
// against brute-force distances, the stale-on-mutation rebuild contract,
// and the planner bias of an explicit MODE FILTERED under VIA AUTO.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "core/feature_store.h"
#include "core/sharded_relation.h"
#include "filter/bound_kernels.h"
#include "filter/quantized_codes.h"
#include "filter/quantizer.h"
#include "ts/transforms.h"
#include "workload/generators.h"

namespace simq {
namespace {

ShardingOptions Sharded(int shards) {
  ShardingOptions options;
  options.num_shards = shards;
  return options;
}

Database BuildDatabase(const std::vector<TimeSeries>& series, int shards,
                       int bits) {
  Database db(FeatureConfig(), RTree::Options(), Sharded(shards));
  FilterOptions filter;
  filter.bits_per_dim = bits;
  db.set_filter_options(filter);
  EXPECT_TRUE(db.CreateRelation("r").ok());
  EXPECT_TRUE(db.BulkLoad("r", series).ok());
  return db;
}

// A clustered, tie-heavy workload: random-walk seeds plus exact
// duplicates (distance exactly 0 under the normal form), vertically
// shifted copies (also distance 0: shifts are invisible to normal forms),
// and small perturbations (tiny nonzero distances), so range answers are
// nonempty and kNN rankings carry genuine ties at the k-th distance.
std::vector<TimeSeries> TieHeavyWorkload(int seeds, int length,
                                         uint64_t seed) {
  std::vector<TimeSeries> series =
      workload::RandomWalkSeries(seeds, length, seed);
  const int base = static_cast<int>(series.size());
  for (int i = 0; i < base; ++i) {
    TimeSeries dup = series[static_cast<size_t>(i)];
    dup.id = "dup" + std::to_string(i);
    series.push_back(dup);

    TimeSeries shifted = series[static_cast<size_t>(i)];
    shifted.id = "shift" + std::to_string(i);
    for (double& v : shifted.values) {
      v += 3.25;
    }
    series.push_back(shifted);

    TimeSeries tweaked = series[static_cast<size_t>(i)];
    tweaked.id = "tweak" + std::to_string(i);
    tweaked.values[static_cast<size_t>(i % length)] += 0.05;
    series.push_back(tweaked);
  }
  return series;
}

void ExpectSameMatches(const QueryResult& expected, const QueryResult& actual,
                       const std::string& context) {
  ASSERT_EQ(expected.matches.size(), actual.matches.size()) << context;
  for (size_t i = 0; i < expected.matches.size(); ++i) {
    EXPECT_EQ(expected.matches[i].id, actual.matches[i].id)
        << context << " row " << i;
    EXPECT_EQ(expected.matches[i].name, actual.matches[i].name)
        << context << " row " << i;
    // Bit-exact: survivors run the identical exact kernels.
    EXPECT_EQ(expected.matches[i].distance, actual.matches[i].distance)
        << context << " row " << i;
  }
}

void ExpectSamePairs(const QueryResult& expected, const QueryResult& actual,
                     const std::string& context) {
  ASSERT_EQ(expected.pairs.size(), actual.pairs.size()) << context;
  // The filtered join preserves the unfiltered emission order exactly
  // (same (i, j) loop, same block merge), so compare verbatim.
  for (size_t i = 0; i < expected.pairs.size(); ++i) {
    EXPECT_EQ(expected.pairs[i].first, actual.pairs[i].first)
        << context << " pair " << i;
    EXPECT_EQ(expected.pairs[i].second, actual.pairs[i].second)
        << context << " pair " << i;
    EXPECT_EQ(expected.pairs[i].distance, actual.pairs[i].distance)
        << context << " pair " << i;
  }
}

// Executes `text` twice -- MODE EXACT vs MODE FILTERED -- and expects
// bit-identical answers; returns the filtered result for stats checks.
QueryResult ExpectFilteredMatchesExact(const Database& db,
                                       const std::string& text,
                                       const std::string& context) {
  Result<QueryResult> exact = db.ExecuteText(text + " MODE EXACT");
  Result<QueryResult> filtered = db.ExecuteText(text + " MODE FILTERED");
  EXPECT_TRUE(exact.ok()) << context << ": " << exact.status().ToString();
  EXPECT_TRUE(filtered.ok())
      << context << ": " << filtered.status().ToString();
  if (!exact.ok() || !filtered.ok()) {
    return QueryResult();
  }
  ExpectSameMatches(exact.value(), filtered.value(), context);
  ExpectSamePairs(exact.value(), filtered.value(), context);
  return filtered.value();
}

TEST(Quantizer, CellsBracketEveryEncodedValue) {
  const std::vector<TimeSeries> series =
      workload::RandomWalkSeries(64, 48, 7);
  FeatureStore store;
  for (const TimeSeries& ts : series) {
    const auto normal = ToNormalForm(ts.values);
    store.Append(ComputeFeatures(ts.values), normal.values);
  }
  for (const int bits : {4, 5, 6, 7, 8}) {
    const ScalarQuantizer q = ScalarQuantizer::Train(store, bits);
    ASSERT_EQ(q.dims(), 2 * store.spectrum_length());
    ASSERT_EQ(q.cells(), 1 << bits);
    for (int64_t i = 0; i < store.size(); ++i) {
      const double* row = store.SpectrumRow(i);
      for (int d = 0; d < q.dims(); ++d) {
        const uint32_t c = q.Encode(d, row[d]);
        ASSERT_LT(c, static_cast<uint32_t>(q.cells()));
        const double* edges = q.bounds(d);
        EXPECT_LE(edges[c], row[d]) << "bits " << bits << " dim " << d;
        EXPECT_GE(edges[c + 1], row[d]) << "bits " << bits << " dim " << d;
      }
    }
  }
}

TEST(QuantizedCodes, PackedRowsRoundTripEveryWidth) {
  const std::vector<TimeSeries> series =
      workload::RandomWalkSeries(40, 33, 11);  // odd length: tail dims
  FeatureStore store;
  for (const TimeSeries& ts : series) {
    const auto normal = ToNormalForm(ts.values);
    store.Append(ComputeFeatures(ts.values), normal.values);
  }
  for (const int bits : {4, 5, 6, 7, 8}) {
    const QuantizedCodes codes(store, bits);
    ASSERT_EQ(codes.size(), store.size());
    for (int64_t i = 0; i < codes.size(); ++i) {
      const double* row = store.SpectrumRow(i);
      for (int d = 0; d < codes.dims(); ++d) {
        EXPECT_EQ(QuantizedCodes::CodeAt(codes.CodeRow(i), d, bits),
                  codes.quantizer().Encode(d, row[d]))
            << "bits " << bits << " row " << i << " dim " << d;
      }
    }
  }
}

TEST(BoundKernels, LowerUpperSandwichBruteForceDistances) {
  const int length = 40;
  const std::vector<TimeSeries> series =
      workload::RandomWalkSeries(80, length, 19);
  FeatureStore store;
  for (const TimeSeries& ts : series) {
    const auto normal = ToNormalForm(ts.values);
    store.Append(ComputeFeatures(ts.values), normal.values);
  }
  const int n = store.spectrum_length();
  for (const int bits : {4, 8}) {
    const QuantizedCodes codes(store, bits);
    // Queries: stored rows (exact cell hits) and perturbed ones.
    for (int qi = 0; qi < 8; ++qi) {
      std::vector<double> query(static_cast<size_t>(2 * n));
      const double* src = store.SpectrumRow(qi * 7 % store.size());
      for (int d = 0; d < 2 * n; ++d) {
        query[static_cast<size_t>(d)] = src[d] + (qi % 3 - 1) * 0.01 * d;
      }
      const QueryLuts luts = BuildQueryLuts(
          codes.quantizer(), query.data(), nullptr, n, /*with_upper=*/true);
      WithFilterBits(bits, [&](auto tag) {
        constexpr int kBits = decltype(tag)::value;
        for (int64_t i = 0; i < codes.size(); ++i) {
          const double exact_sq = RowDistanceSq(
              store.SpectrumRow(i), query.data(), n,
              std::numeric_limits<double>::infinity());
          double ub_sq = 0.0;
          const double lb_sq = LowerUpperBoundSq<kBits>(
              codes.CodeRow(i), luts,
              std::numeric_limits<double>::infinity(), &ub_sq);
          // The sandwich must hold up to the documented FP slack.
          EXPECT_LE(lb_sq, SafeThreshold(exact_sq, luts.slack))
              << "bits " << bits << " row " << i;
          EXPECT_LE(exact_sq, SafeThreshold(ub_sq, luts.slack))
              << "bits " << bits << " row " << i;
        }
      });
    }
  }
}

TEST(FilterEquivalence, RangeKnnJoinAcrossShardsAndWidths) {
  const std::vector<TimeSeries> series = TieHeavyWorkload(12, 32, 23);
  for (const int shards : {1, 2, 4}) {
    for (const int bits : {4, 6, 8}) {
      const Database db = BuildDatabase(series, shards, bits);
      const std::string tag =
          "shards=" + std::to_string(shards) + " bits=" + std::to_string(bits);
      // Range: eps 0 (exact duplicates only), a mid eps, and a huge eps
      // (everything matches -- zero pruning, pure pass-through).
      for (const char* eps : {"0", "0.3", "2.5", "1e6"}) {
        ExpectFilteredMatchesExact(
            db,
            std::string("RANGE r WITHIN ") + eps + " OF #walk0 VIA SCAN",
            tag + " range eps=" + eps);
      }
      // kNN: k hitting the duplicate/shift tie groups, k = 1, k > count.
      for (const char* k : {"1", "3", "7", "500"}) {
        ExpectFilteredMatchesExact(
            db, std::string("NEAREST ") + k + " r TO #walk1 VIA SCAN",
            tag + " knn k=" + k);
      }
      // Literal query series (not a stored record).
      ExpectFilteredMatchesExact(
          db,
          "NEAREST 5 r TO [1, 2, 1.5, 3, 2, 1, 0.5, 1, 2, 3, 2.5, 2, 1, 0, "
          "1, 2, 1, 0.5, 0, 1, 2, 3, 2, 1, 1.5, 2, 2.5, 3, 2, 1, 0.5, 0] "
          "VIA SCAN",
          tag + " knn literal");
      // Self-join at a tie-rich eps and at 0 (duplicate pairs only).
      for (const char* eps : {"0", "0.4", "3.0"}) {
        const QueryResult filtered = ExpectFilteredMatchesExact(
            db, std::string("PAIRS r WITHIN ") + eps + " VIA SCAN",
            tag + " join eps=" + eps);
        EXPECT_TRUE(filtered.stats.used_filter) << tag;
        EXPECT_GT(filtered.stats.filter_scanned, 0) << tag;
      }
    }
  }
}

TEST(FilterEquivalence, EpsilonExactlyAtStoredDistanceKeepsTies) {
  const std::vector<TimeSeries> series = TieHeavyWorkload(10, 24, 31);
  const Database db = BuildDatabase(series, 2, 8);
  // Harvest true distances (from a wide RANGE scan, so the doubles come
  // from the same abandoning kernel the boundary query will run), then
  // query with eps exactly equal to one: the boundary record must
  // survive the filter (no false dismissal at the threshold).
  const Result<QueryResult> all =
      db.ExecuteText("RANGE r WITHIN 1e9 OF #walk2 VIA SCAN MODE EXACT");
  ASSERT_TRUE(all.ok());
  ASSERT_GT(all.value().matches.size(), 8u);
  for (const size_t pick : {size_t{3}, size_t{7}}) {
    const double eps = all.value().matches[pick].distance;
    std::ostringstream text;
    text.precision(17);
    text << "RANGE r WITHIN " << eps << " OF #walk2 VIA SCAN";
    const QueryResult filtered =
        ExpectFilteredMatchesExact(db, text.str(), "tie at eps");
    // Every record at distance <= eps (including the boundary ties) is in.
    size_t at_or_below = 0;
    for (const Match& m : all.value().matches) {
      at_or_below += m.distance <= eps ? 1 : 0;
    }
    EXPECT_EQ(filtered.matches.size(), at_or_below);
  }
}

TEST(FilterEquivalence, SpectralMultiplierRulesUseWeightedLuts) {
  const std::vector<TimeSeries> series = TieHeavyWorkload(10, 32, 41);
  for (const int shards : {1, 3}) {
    const Database db = BuildDatabase(series, shards, 8);
    const std::string tag = "shards=" + std::to_string(shards);
    // mavg lowers to a spectral multiplier with zero entries at some
    // frequencies (the base-constant path of the LUT builder).
    ExpectFilteredMatchesExact(
        db, "RANGE r WITHIN 1.0 OF #walk0 USING mavg(4) VIA SCAN",
        tag + " range mavg");
    ExpectFilteredMatchesExact(
        db, "NEAREST 6 r TO #walk3 USING mavg(8) VIA SCAN",
        tag + " knn mavg");
    // Transformed joins fall back to the exact kernels (the filter only
    // covers untransformed joins) -- still bit-identical, filter off.
    const QueryResult join = ExpectFilteredMatchesExact(
        db, "PAIRS r WITHIN 2.0 USING mavg(4) VIA SCAN", tag + " join mavg");
    EXPECT_FALSE(join.stats.used_filter) << tag;
  }
}

TEST(FilterEquivalence, PatternPredicatesApplyBeforeTheCodeScan) {
  const std::vector<TimeSeries> series = TieHeavyWorkload(10, 28, 53);
  const Database db = BuildDatabase(series, 2, 8);
  const QueryResult filtered = ExpectFilteredMatchesExact(
      db, "RANGE r WITHIN 2.0 OF #walk0 VIA SCAN MEAN 10 60 STD 0.5 30",
      "stats pattern");
  // Records excluded by the pattern are never bound-scanned.
  EXPECT_LT(filtered.stats.filter_scanned,
            static_cast<int64_t>(series.size()));
  ExpectFilteredMatchesExact(
      db, "NEAREST 4 r TO #walk1 VIA SCAN MEAN 10 60", "knn pattern");
}

TEST(FilterEquivalence, ExplicitFilteredBiasesAutoPlanningToScan) {
  const std::vector<TimeSeries> series = TieHeavyWorkload(8, 24, 61);
  const Database db = BuildDatabase(series, 1, 8);
  const Result<QueryResult> filtered =
      db.ExecuteText("RANGE r WITHIN 0.5 OF #walk0 MODE FILTERED");
  ASSERT_TRUE(filtered.ok());
  EXPECT_FALSE(filtered.value().stats.used_index);
  EXPECT_TRUE(filtered.value().stats.used_filter);
  // Same query without the request plans the index as before.
  const Result<QueryResult> target =
      db.ExecuteText("RANGE r WITHIN 0.5 OF #walk0");
  ASSERT_TRUE(target.ok());
  EXPECT_TRUE(target.value().stats.used_index);
  ExpectSameMatches(target.value(), filtered.value(), "auto bias");
  // VIA INDEX + MODE FILTERED keeps the index path (filter inapplicable).
  const Result<QueryResult> indexed =
      db.ExecuteText("RANGE r WITHIN 0.5 OF #walk0 VIA INDEX MODE FILTERED");
  ASSERT_TRUE(indexed.ok());
  EXPECT_TRUE(indexed.value().stats.used_index);
  EXPECT_FALSE(indexed.value().stats.used_filter);
  ExpectSameMatches(target.value(), indexed.value(), "index unaffected");
  // PAIRS under auto planning: an explicit MODE FILTERED routes an
  // untransformed join to the filtered scan instead of the index join,
  // with an identical pair set (emission orders differ between join
  // methods, so compare as sorted sets of (first, second, distance)).
  const Result<QueryResult> join_filtered =
      db.ExecuteText("PAIRS r WITHIN 0.5 MODE FILTERED");
  ASSERT_TRUE(join_filtered.ok());
  EXPECT_TRUE(join_filtered.value().stats.used_filter);
  EXPECT_FALSE(join_filtered.value().stats.used_index);
  const Result<QueryResult> join_auto = db.ExecuteText("PAIRS r WITHIN 0.5");
  ASSERT_TRUE(join_auto.ok());
  EXPECT_TRUE(join_auto.value().stats.used_index);
  const auto sorted_set = [](const QueryResult& result) {
    std::vector<PairMatch> pairs;
    // Index joins emit both orientations; scans emit each unordered pair
    // once (the documented Table-1 accounting). Canonicalize to ordered
    // (min, max) and dedupe before comparing.
    for (const PairMatch& p : result.pairs) {
      pairs.push_back(PairMatch{std::min(p.first, p.second),
                                std::max(p.first, p.second), p.distance});
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const PairMatch& a, const PairMatch& b) {
                if (a.first != b.first) {
                  return a.first < b.first;
                }
                return a.second < b.second;
              });
    pairs.erase(std::unique(pairs.begin(), pairs.end(),
                            [](const PairMatch& a, const PairMatch& b) {
                              return a.first == b.first &&
                                     a.second == b.second;
                            }),
                pairs.end());
    return pairs;
  };
  const std::vector<PairMatch> expected = sorted_set(join_auto.value());
  const std::vector<PairMatch> actual = sorted_set(join_filtered.value());
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].first, actual[i].first);
    EXPECT_EQ(expected[i].second, actual[i].second);
  }
}

TEST(FilterEquivalence, EngineWideToggleAndStats) {
  const std::vector<TimeSeries> series = TieHeavyWorkload(10, 32, 71);
  Database db = BuildDatabase(series, 2, 8);
  db.set_filter_engine(FilterEngine::kQuantized);
  const Result<QueryResult> on =
      db.ExecuteText("RANGE r WITHIN 0.4 OF #walk0 VIA SCAN");
  ASSERT_TRUE(on.ok());
  EXPECT_TRUE(on.value().stats.used_filter);
  EXPECT_EQ(on.value().stats.candidates, on.value().stats.exact_checks);
  EXPECT_GE(on.value().stats.filter_scanned, on.value().stats.candidates);
  // Pruning must actually bite at a small eps on this workload.
  EXPECT_LT(on.value().stats.candidates, on.value().stats.filter_scanned);
  // Per-query MODE EXACT overrides the engine default.
  const Result<QueryResult> off =
      db.ExecuteText("RANGE r WITHIN 0.4 OF #walk0 VIA SCAN MODE EXACT");
  ASSERT_TRUE(off.ok());
  EXPECT_FALSE(off.value().stats.used_filter);
  ExpectSameMatches(off.value(), on.value(), "toggle");
}

TEST(FilterEquivalence, CodesRebuildAfterMutationLikeTheSnapshot) {
  std::vector<TimeSeries> series = TieHeavyWorkload(8, 24, 83);
  Database db = BuildDatabase(series, 2, 8);
  const QueryResult before = ExpectFilteredMatchesExact(
      db, "RANGE r WITHIN 1.0 OF #walk0 VIA SCAN", "before insert");
  // Mutate one shard: the new record lands in the delta layer, so the
  // compiled codes stay put -- it is exact-checked, not code-scanned --
  // and the answer must still match the exact engine (which sees it too).
  TimeSeries extra = series[0];
  extra.id = "fresh";
  extra.values[3] += 0.01;
  ASSERT_TRUE(db.Insert("r", extra).ok());
  const QueryResult after = ExpectFilteredMatchesExact(
      db, "RANGE r WITHIN 1.0 OF #walk0 VIA SCAN", "after insert");
  EXPECT_EQ(after.stats.filter_scanned, before.stats.filter_scanned);
  // Recompaction folds the delta row into a fresh generation of codes;
  // only then does the code scan cover it.
  ASSERT_TRUE(db.Recompact("r").ok());
  const QueryResult folded = ExpectFilteredMatchesExact(
      db, "RANGE r WITHIN 1.0 OF #walk0 VIA SCAN", "after recompact");
  EXPECT_EQ(folded.stats.filter_scanned, before.stats.filter_scanned + 1);
  // The new record is an eps-0 duplicate up to the tweak; make sure it
  // can actually be found through the filter.
  const Result<QueryResult> probe =
      db.ExecuteText("NEAREST 2 r TO #fresh VIA SCAN MODE FILTERED");
  ASSERT_TRUE(probe.ok());
  ASSERT_FALSE(probe.value().matches.empty());
  EXPECT_EQ(probe.value().matches[0].name, "fresh");
}

TEST(FilterEquivalence, RawModeAndNonSpectralRulesFallBackExactly) {
  const std::vector<TimeSeries> series = TieHeavyWorkload(8, 24, 97);
  const Database db = BuildDatabase(series, 2, 8);
  // kRaw distances are not in the quantized (normal-form spectral) space:
  // the filter must decline and the answers must still match.
  const QueryResult raw = ExpectFilteredMatchesExact(
      db, "RANGE r WITHIN 50 OF #walk0 VIA SCAN MODE RAW", "raw mode");
  EXPECT_FALSE(raw.stats.used_filter);
  // despike is non-spectral: time-domain fallback, filter off.
  const QueryResult despiked = ExpectFilteredMatchesExact(
      db, "RANGE r WITHIN 2.0 OF #walk0 USING despike(4) VIA SCAN",
      "non-spectral rule");
  EXPECT_FALSE(despiked.stats.used_filter);
}

}  // namespace
}  // namespace simq
