// Crash-recovery harness: for every registered IO failpoint, fork a child
// that runs a scripted mutation workload through a durable QueryService
// and is SIGKILLed (kill: failpoints) at exactly that IO boundary; then
// recover in the parent via OpenDurableDatabase and assert that
//
//  * recovery itself always succeeds (a crash never corrupts the store),
//  * every acknowledged mutation survived (the ack file, appended to and
//    fdatasync'd by the child after each successful mutation, is the
//    ground truth for what was acknowledged), and
//  * the recovered database answers queries bit-identically to an oracle
//    database built by replaying the same recovered prefix in-process.
//
// Fork-safety: this binary pins SIMQ_THREADS=1 in a static initializer,
// before any test can touch ThreadPool::Global() -- the process never has
// worker threads, so fork() in the middle of the test is safe by
// construction (no lock can be held by a thread that does not survive
// the fork).

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "core/wal.h"
#include "service/query_service.h"
#include "util/failpoint.h"
#include "workload/generators.h"

namespace simq {
namespace {

const bool kSingleThreadPinned = [] {
  ::setenv("SIMQ_THREADS", "1", 1);
  return true;
}();

constexpr int kInserts = 12;
constexpr int kCheckpointAfter = 6;  // Checkpoint() after this many inserts

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// The scripted workload's data; identical in child, oracle, and checks.
std::vector<TimeSeries> ScriptSeries() {
  std::vector<TimeSeries> series = workload::RandomWalkSeries(kInserts, 16, 4);
  for (int i = 0; i < kInserts; ++i) {
    series[static_cast<size_t>(i)].id = "s" + std::to_string(i);
  }
  return series;
}

// The child's life: arm the failpoint schedule, run the scripted
// workload acking each acknowledged mutation, _exit. A kill: failpoint
// SIGKILLs it somewhere in the middle; a non-kill injection makes a
// mutation fail, after which the child stops (exit code 3).
void RunChild(const std::string& spec, const std::string& snapshot_path,
              const std::string& wal_path, const std::string& ack_path) {
  if (!spec.empty() &&
      !Failpoints::Global().ConfigureFromSpec(spec).ok()) {
    ::_exit(2);
  }
  const int ack_fd =
      ::open(ack_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (ack_fd < 0) {
    ::_exit(2);
  }

  Result<Database> opened =
      OpenDurableDatabase(FeatureConfig(), snapshot_path, wal_path, nullptr);
  if (!opened.ok()) {
    ::_exit(2);
  }
  ServiceOptions options;
  options.snapshot_path = snapshot_path;
  options.wal_path = wal_path;
  QueryService service(std::move(opened).value(), options);

  const char byte = '+';
  if (!service.CreateRelation("r").ok()) {
    ::_exit(3);
  }
  if (::write(ack_fd, &byte, 1) != 1 || ::fdatasync(ack_fd) != 0) {
    ::_exit(2);
  }
  const std::vector<TimeSeries> series = ScriptSeries();
  for (int i = 0; i < kInserts; ++i) {
    if (!service.Insert("r", series[static_cast<size_t>(i)]).ok()) {
      ::_exit(3);
    }
    if (::write(ack_fd, &byte, 1) != 1 || ::fdatasync(ack_fd) != 0) {
      ::_exit(2);
    }
    if (i + 1 == kCheckpointAfter && !service.Checkpoint().ok()) {
      ::_exit(3);
    }
  }
  ::_exit(0);
}

int64_t FileSize(const std::string& path) {
  struct ::stat st;
  return ::stat(path.c_str(), &st) == 0 ? static_cast<int64_t>(st.st_size)
                                        : 0;
}

void RunSchedule(const std::string& tag, const std::string& spec) {
  SCOPED_TRACE("schedule '" + spec + "'");
  const std::string snapshot_path = TempPath("crash_" + tag + ".simqdb");
  const std::string wal_path = TempPath("crash_" + tag + ".wal");
  const std::string ack_path = TempPath("crash_" + tag + ".ack");
  std::remove(snapshot_path.c_str());
  std::remove(wal_path.c_str());
  std::remove(ack_path.c_str());

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    RunChild(spec, snapshot_path, wal_path, ack_path);  // never returns
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  // The child either finished the script, stopped at an injected error
  // (3), or was SIGKILLed mid-IO; a 2 means harness breakage.
  if (WIFEXITED(wstatus)) {
    ASSERT_NE(WEXITSTATUS(wstatus), 2) << "child harness failure";
  } else {
    ASSERT_TRUE(WIFSIGNALED(wstatus));
    ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);
  }

  // Acks: byte 0 is CreateRelation, byte i is insert i-1.
  const int64_t acked = FileSize(ack_path);
  ASSERT_LE(acked, 1 + kInserts);

  // Recovery must always succeed -- no crash schedule may corrupt the
  // snapshot or the (possibly torn) WAL beyond repair.
  Result<Database> recovered =
      OpenDurableDatabase(FeatureConfig(), snapshot_path, wal_path, nullptr);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  Database& db = recovered.value();

  const Relation* relation = db.GetRelation("r");
  if (acked >= 1) {
    ASSERT_NE(relation, nullptr) << "acknowledged CreateRelation lost";
  }
  const int64_t recovered_count = relation == nullptr ? 0 : relation->size();
  // Every acknowledged insert survived; an unacknowledged tail insert may
  // or may not have made it (killed between append and ack) -- both are
  // correct.
  EXPECT_GE(recovered_count, acked - 1) << "acknowledged insert lost";
  ASSERT_LE(recovered_count, kInserts);

  // Oracle: the same prefix, applied in-process without any crash. The
  // recovered database must be indistinguishable from it.
  const std::vector<TimeSeries> series = ScriptSeries();
  Database oracle;
  if (relation != nullptr) {
    ASSERT_TRUE(oracle.CreateRelation("r").ok());
    for (int64_t i = 0; i < recovered_count; ++i) {
      ASSERT_TRUE(oracle.Insert("r", series[static_cast<size_t>(i)]).ok());
    }
    const Relation* oracle_rel = oracle.GetRelation("r");
    for (int64_t id = 0; id < recovered_count; ++id) {
      EXPECT_EQ(relation->record(id).name, oracle_rel->record(id).name);
      EXPECT_EQ(relation->record(id).raw, oracle_rel->record(id).raw);
    }
    if (recovered_count > 0) {
      for (const char* text :
           {"RANGE r WITHIN 3.5 OF #s0", "NEAREST 4 r TO #s0",
            "PAIRS r WITHIN 2.0"}) {
        const Result<QueryResult> a = db.ExecuteText(text);
        const Result<QueryResult> b = oracle.ExecuteText(text);
        ASSERT_TRUE(a.ok() && b.ok()) << text;
        ASSERT_EQ(a.value().matches.size(), b.value().matches.size()) << text;
        for (size_t i = 0; i < a.value().matches.size(); ++i) {
          EXPECT_EQ(a.value().matches[i].id, b.value().matches[i].id);
          EXPECT_EQ(a.value().matches[i].distance,
                    b.value().matches[i].distance);
        }
        ASSERT_EQ(a.value().pairs.size(), b.value().pairs.size()) << text;
        for (size_t i = 0; i < a.value().pairs.size(); ++i) {
          EXPECT_EQ(a.value().pairs[i].first, b.value().pairs[i].first);
          EXPECT_EQ(a.value().pairs[i].second, b.value().pairs[i].second);
          EXPECT_EQ(a.value().pairs[i].distance, b.value().pairs[i].distance);
        }
      }
    }
  }
}

TEST(CrashRecoveryTest, NoFaultScriptCompletes) {
  ASSERT_TRUE(kSingleThreadPinned);
  RunSchedule("clean", "");
}

// Kill at every WAL IO boundary, at several depths into the script.
TEST(CrashRecoveryTest, KillAtWalAppend) {
  RunSchedule("wa_first", "wal.append=kill:always");
  RunSchedule("wa_mid", "wal.append=kill:after-3");
  RunSchedule("wa_late", "wal.append=kill:after-9");
}

TEST(CrashRecoveryTest, KillAtWalSync) {
  RunSchedule("ws_first", "wal.sync=kill:always");
  RunSchedule("ws_mid", "wal.sync=kill:after-4");
}

TEST(CrashRecoveryTest, KillAtWalOpen) {
  RunSchedule("wo", "wal.open=kill:always");
}

// Kill inside the checkpoint's atomic save, at every IO boundary: the
// snapshot either fully commits (rename) or is invisible, and the WAL
// still carries everything acknowledged.
TEST(CrashRecoveryTest, KillDuringCheckpointSave) {
  RunSchedule("so", "save.open=kill:always");
  RunSchedule("sw", "save.write=kill:always");
  RunSchedule("ss", "save.sync=kill:always");
  RunSchedule("sr", "save.rename=kill:always");
}

// Non-kill torn append: the child sees the IoError and stops; the torn
// frame bytes on disk must be invisible after replay.
TEST(CrashRecoveryTest, TornAppendTailIsDiscarded) {
  RunSchedule("torn", "wal.append.torn=after-5");
}

}  // namespace
}  // namespace simq
