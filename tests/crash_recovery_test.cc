// Crash-recovery harness: for every registered IO failpoint, fork a child
// that runs a scripted mutation workload through a durable QueryService
// and is SIGKILLed (kill: failpoints) at exactly that IO boundary; then
// recover in the parent via OpenDurableDatabase and assert that
//
//  * recovery itself always succeeds (a crash never corrupts the store),
//  * every acknowledged mutation survived (the ack file, appended to and
//    fdatasync'd by the child after each successful mutation, is the
//    ground truth for what was acknowledged), and
//  * the recovered database answers queries bit-identically to an oracle
//    database built by replaying the same recovered prefix in-process.
//
// Fork-safety: this binary pins SIMQ_THREADS=1 in a static initializer,
// before any test can touch ThreadPool::Global() -- the process never has
// worker threads, so fork() in the middle of the test is safe by
// construction (no lock can be held by a thread that does not survive
// the fork).

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "core/wal.h"
#include "service/query_service.h"
#include "util/failpoint.h"
#include "workload/generators.h"

namespace simq {
namespace {

const bool kSingleThreadPinned = [] {
  ::setenv("SIMQ_THREADS", "1", 1);
  return true;
}();

constexpr int kInserts = 12;
constexpr int kCheckpointAfter = 6;  // Checkpoint() after this many inserts

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// The scripted workload's data; identical in child, oracle, and checks.
std::vector<TimeSeries> ScriptSeries() {
  std::vector<TimeSeries> series = workload::RandomWalkSeries(kInserts, 16, 4);
  for (int i = 0; i < kInserts; ++i) {
    series[static_cast<size_t>(i)].id = "s" + std::to_string(i);
  }
  return series;
}

// The child's life: arm the failpoint schedule, run the scripted
// workload acking each acknowledged mutation, _exit. A kill: failpoint
// SIGKILLs it somewhere in the middle; a non-kill injection makes a
// mutation fail, after which the child stops (exit code 3).
void RunChild(const std::string& spec, const std::string& snapshot_path,
              const std::string& wal_path, const std::string& ack_path) {
  if (!spec.empty() &&
      !Failpoints::Global().ConfigureFromSpec(spec).ok()) {
    ::_exit(2);
  }
  const int ack_fd =
      ::open(ack_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (ack_fd < 0) {
    ::_exit(2);
  }

  Result<Database> opened =
      OpenDurableDatabase(FeatureConfig(), snapshot_path, wal_path, nullptr);
  if (!opened.ok()) {
    ::_exit(2);
  }
  ServiceOptions options;
  options.snapshot_path = snapshot_path;
  options.wal_path = wal_path;
  QueryService service(std::move(opened).value(), options);

  const char byte = '+';
  if (!service.CreateRelation("r").ok()) {
    ::_exit(3);
  }
  if (::write(ack_fd, &byte, 1) != 1 || ::fdatasync(ack_fd) != 0) {
    ::_exit(2);
  }
  const std::vector<TimeSeries> series = ScriptSeries();
  for (int i = 0; i < kInserts; ++i) {
    if (!service.Insert("r", series[static_cast<size_t>(i)]).ok()) {
      ::_exit(3);
    }
    if (::write(ack_fd, &byte, 1) != 1 || ::fdatasync(ack_fd) != 0) {
      ::_exit(2);
    }
    if (i + 1 == kCheckpointAfter && !service.Checkpoint().ok()) {
      ::_exit(3);
    }
  }
  ::_exit(0);
}

int64_t FileSize(const std::string& path) {
  struct ::stat st;
  return ::stat(path.c_str(), &st) == 0 ? static_cast<int64_t>(st.st_size)
                                        : 0;
}

void RunSchedule(const std::string& tag, const std::string& spec) {
  SCOPED_TRACE("schedule '" + spec + "'");
  const std::string snapshot_path = TempPath("crash_" + tag + ".simqdb");
  const std::string wal_path = TempPath("crash_" + tag + ".wal");
  const std::string ack_path = TempPath("crash_" + tag + ".ack");
  std::remove(snapshot_path.c_str());
  std::remove(wal_path.c_str());
  std::remove(ack_path.c_str());

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    RunChild(spec, snapshot_path, wal_path, ack_path);  // never returns
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  // The child either finished the script, stopped at an injected error
  // (3), or was SIGKILLed mid-IO; a 2 means harness breakage.
  if (WIFEXITED(wstatus)) {
    ASSERT_NE(WEXITSTATUS(wstatus), 2) << "child harness failure";
  } else {
    ASSERT_TRUE(WIFSIGNALED(wstatus));
    ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);
  }

  // Acks: byte 0 is CreateRelation, byte i is insert i-1.
  const int64_t acked = FileSize(ack_path);
  ASSERT_LE(acked, 1 + kInserts);

  // Recovery must always succeed -- no crash schedule may corrupt the
  // snapshot or the (possibly torn) WAL beyond repair.
  Result<Database> recovered =
      OpenDurableDatabase(FeatureConfig(), snapshot_path, wal_path, nullptr);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  Database& db = recovered.value();

  const Relation* relation = db.GetRelation("r");
  if (acked >= 1) {
    ASSERT_NE(relation, nullptr) << "acknowledged CreateRelation lost";
  }
  const int64_t recovered_count = relation == nullptr ? 0 : relation->size();
  // Every acknowledged insert survived; an unacknowledged tail insert may
  // or may not have made it (killed between append and ack) -- both are
  // correct.
  EXPECT_GE(recovered_count, acked - 1) << "acknowledged insert lost";
  ASSERT_LE(recovered_count, kInserts);

  // Oracle: the same prefix, applied in-process without any crash. The
  // recovered database must be indistinguishable from it.
  const std::vector<TimeSeries> series = ScriptSeries();
  Database oracle;
  if (relation != nullptr) {
    ASSERT_TRUE(oracle.CreateRelation("r").ok());
    for (int64_t i = 0; i < recovered_count; ++i) {
      ASSERT_TRUE(oracle.Insert("r", series[static_cast<size_t>(i)]).ok());
    }
    const Relation* oracle_rel = oracle.GetRelation("r");
    for (int64_t id = 0; id < recovered_count; ++id) {
      EXPECT_EQ(relation->record(id).name, oracle_rel->record(id).name);
      EXPECT_EQ(relation->record(id).raw, oracle_rel->record(id).raw);
    }
    if (recovered_count > 0) {
      for (const char* text :
           {"RANGE r WITHIN 3.5 OF #s0", "NEAREST 4 r TO #s0",
            "PAIRS r WITHIN 2.0"}) {
        const Result<QueryResult> a = db.ExecuteText(text);
        const Result<QueryResult> b = oracle.ExecuteText(text);
        ASSERT_TRUE(a.ok() && b.ok()) << text;
        ASSERT_EQ(a.value().matches.size(), b.value().matches.size()) << text;
        for (size_t i = 0; i < a.value().matches.size(); ++i) {
          EXPECT_EQ(a.value().matches[i].id, b.value().matches[i].id);
          EXPECT_EQ(a.value().matches[i].distance,
                    b.value().matches[i].distance);
        }
        ASSERT_EQ(a.value().pairs.size(), b.value().pairs.size()) << text;
        for (size_t i = 0; i < a.value().pairs.size(); ++i) {
          EXPECT_EQ(a.value().pairs[i].first, b.value().pairs[i].first);
          EXPECT_EQ(a.value().pairs[i].second, b.value().pairs[i].second);
          EXPECT_EQ(a.value().pairs[i].distance, b.value().pairs[i].distance);
        }
      }
    }
  }
}

TEST(CrashRecoveryTest, NoFaultScriptCompletes) {
  ASSERT_TRUE(kSingleThreadPinned);
  RunSchedule("clean", "");
}

// Kill at every WAL IO boundary, at several depths into the script.
TEST(CrashRecoveryTest, KillAtWalAppend) {
  RunSchedule("wa_first", "wal.append=kill:always");
  RunSchedule("wa_mid", "wal.append=kill:after-3");
  RunSchedule("wa_late", "wal.append=kill:after-9");
}

TEST(CrashRecoveryTest, KillAtWalSync) {
  RunSchedule("ws_first", "wal.sync=kill:always");
  RunSchedule("ws_mid", "wal.sync=kill:after-4");
}

TEST(CrashRecoveryTest, KillAtWalOpen) {
  RunSchedule("wo", "wal.open=kill:always");
}

// Kill inside the checkpoint's atomic save, at every IO boundary: the
// snapshot either fully commits (rename) or is invisible, and the WAL
// still carries everything acknowledged.
TEST(CrashRecoveryTest, KillDuringCheckpointSave) {
  RunSchedule("so", "save.open=kill:always");
  RunSchedule("sw", "save.write=kill:always");
  RunSchedule("ss", "save.sync=kill:always");
  RunSchedule("sr", "save.rename=kill:always");
}

// Non-kill torn append: the child sees the IoError and stops; the torn
// frame bytes on disk must be invisible after replay.
TEST(CrashRecoveryTest, TornAppendTailIsDiscarded) {
  RunSchedule("torn", "wal.append.torn=after-5");
}

// ---------------------------------------------------------------------------
// Delta-layer crash schedules: a script of inserts, deletes, and explicit
// recompactions, killed at every recompaction boundary (build, and the
// publish's before / between-shards / after points). Recompaction is a
// purely in-memory fold -- the WAL already carries every acknowledged
// insert and delete -- so no matter where the fold dies, recovery must
// reproduce the acked mutation prefix bit-identically, tombstones
// included.

enum class DeltaOp { kCreate, kInsert, kDelete, kRecompact };
struct DeltaStep {
  DeltaOp op;
  int arg = 0;  // series index for kInsert, series id for kDelete
};

// Deterministic script shared by child, oracle, and checks. Two shards in
// the child make the publish.mid (between-shards) boundary reachable.
std::vector<DeltaStep> DeltaScript() {
  return {
      {DeltaOp::kCreate},     {DeltaOp::kInsert, 0}, {DeltaOp::kInsert, 1},
      {DeltaOp::kInsert, 2},  {DeltaOp::kInsert, 3}, {DeltaOp::kDelete, 1},
      {DeltaOp::kRecompact},  {DeltaOp::kInsert, 4}, {DeltaOp::kInsert, 5},
      {DeltaOp::kDelete, 4},  {DeltaOp::kInsert, 6}, {DeltaOp::kRecompact},
      {DeltaOp::kInsert, 7},  {DeltaOp::kInsert, 8}, {DeltaOp::kInsert, 9},
      {DeltaOp::kDelete, 0},  {DeltaOp::kRecompact},
  };
}

void RunDeltaChild(const std::string& spec, const std::string& snapshot_path,
                   const std::string& wal_path, const std::string& ack_path) {
  if (!spec.empty() &&
      !Failpoints::Global().ConfigureFromSpec(spec).ok()) {
    ::_exit(2);
  }
  const int ack_fd =
      ::open(ack_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (ack_fd < 0) {
    ::_exit(2);
  }

  // Built by hand rather than via OpenDurableDatabase so the child runs
  // two shards (the script starts from scratch; the WAL is empty).
  ShardingOptions sharding;
  sharding.num_shards = 2;
  Database base(FeatureConfig(), RTree::Options(), sharding);
  DeltaOptions delta;
  delta.recompact_threshold = 0;  // folds happen only where the script says
  base.set_delta_options(delta);
  ServiceOptions options;
  options.snapshot_path = snapshot_path;
  options.wal_path = wal_path;
  QueryService service(std::move(base), options);

  const std::vector<TimeSeries> series = ScriptSeries();
  const char byte = '+';
  for (const DeltaStep& step : DeltaScript()) {
    Status applied = Status::Ok();
    switch (step.op) {
      case DeltaOp::kCreate:
        applied = service.CreateRelation("r");
        break;
      case DeltaOp::kInsert:
        applied =
            service.Insert("r", series[static_cast<size_t>(step.arg)])
                .status();
        break;
      case DeltaOp::kDelete:
        applied = service.Delete("r", step.arg);
        break;
      case DeltaOp::kRecompact:
        // Not a durable mutation: no ack. A kill: failpoint dies inside;
        // a non-kill injection surfaces here and stops the script.
        if (!service.Recompact("r").ok()) {
          ::_exit(3);
        }
        continue;
    }
    if (!applied.ok()) {
      ::_exit(3);
    }
    if (::write(ack_fd, &byte, 1) != 1 || ::fdatasync(ack_fd) != 0) {
      ::_exit(2);
    }
  }
  ::_exit(0);
}

void RunDeltaSchedule(const std::string& tag, const std::string& spec) {
  SCOPED_TRACE("delta schedule '" + spec + "'");
  const std::string snapshot_path = TempPath("dcrash_" + tag + ".simqdb");
  const std::string wal_path = TempPath("dcrash_" + tag + ".wal");
  const std::string ack_path = TempPath("dcrash_" + tag + ".ack");
  std::remove(snapshot_path.c_str());
  std::remove(wal_path.c_str());
  std::remove(ack_path.c_str());

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    RunDeltaChild(spec, snapshot_path, wal_path, ack_path);  // never returns
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  if (WIFEXITED(wstatus)) {
    ASSERT_NE(WEXITSTATUS(wstatus), 2) << "child harness failure";
  } else {
    ASSERT_TRUE(WIFSIGNALED(wstatus));
    ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);
  }

  const std::vector<DeltaStep> script = DeltaScript();
  int64_t total_mutations = 0;
  for (const DeltaStep& step : script) {
    total_mutations += step.op == DeltaOp::kRecompact ? 0 : 1;
  }
  const int64_t acked = FileSize(ack_path);
  ASSERT_LE(acked, total_mutations);

  Result<Database> recovered =
      OpenDurableDatabase(FeatureConfig(), snapshot_path, wal_path, nullptr);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  Database& db = recovered.value();
  const Relation* relation = db.GetRelation("r");
  if (acked >= 1) {
    ASSERT_NE(relation, nullptr) << "acknowledged CreateRelation lost";
  }
  if (relation == nullptr) {
    return;  // killed before anything durable: nothing more to check
  }

  // The recovered state is some mutation prefix of the script: at least
  // everything acked, at most one unacked trailing mutation (killed
  // between WAL sync and ack). Find the prefix the recovery equals --
  // insert count AND per-id liveness (FindByName is NotFound for a
  // tombstoned row) must both match -- then demand bit-identical answers.
  const std::vector<TimeSeries> series = ScriptSeries();
  bool matched = false;
  for (int64_t prefix = acked;
       prefix <= std::min(acked + 1, total_mutations) && !matched; ++prefix) {
    Database oracle;
    int64_t applied = 0;
    for (const DeltaStep& step : script) {
      if (applied == prefix) {
        break;
      }
      switch (step.op) {
        case DeltaOp::kCreate:
          ASSERT_TRUE(oracle.CreateRelation("r").ok());
          break;
        case DeltaOp::kInsert:
          ASSERT_TRUE(
              oracle.Insert("r", series[static_cast<size_t>(step.arg)]).ok());
          break;
        case DeltaOp::kDelete:
          ASSERT_TRUE(oracle.Delete("r", step.arg).ok());
          break;
        case DeltaOp::kRecompact:
          continue;  // not a mutation; the fold never changes answers
      }
      ++applied;
    }
    const Relation* oracle_rel = oracle.GetRelation("r");
    if (oracle_rel == nullptr || oracle_rel->size() != relation->size()) {
      continue;
    }
    bool liveness_equal = true;
    for (int64_t id = 0; id < relation->size(); ++id) {
      const std::string& name = oracle_rel->record(id).name;
      if (relation->record(id).name != name ||
          relation->FindByName(name).ok() !=
              oracle_rel->FindByName(name).ok()) {
        liveness_equal = false;
        break;
      }
    }
    if (!liveness_equal) {
      continue;
    }
    matched = true;
    for (const char* text :
         {"RANGE r WITHIN 3.5 OF #s2", "NEAREST 4 r TO #s2",
          "PAIRS r WITHIN 2.0"}) {
      if (relation->size() <= 2 || !relation->FindByName("s2").ok()) {
        break;  // killed before the anchor existed
      }
      const Result<QueryResult> a = db.ExecuteText(text);
      const Result<QueryResult> b = oracle.ExecuteText(text);
      ASSERT_TRUE(a.ok() && b.ok()) << text;
      ASSERT_EQ(a.value().matches.size(), b.value().matches.size()) << text;
      for (size_t i = 0; i < a.value().matches.size(); ++i) {
        EXPECT_EQ(a.value().matches[i].id, b.value().matches[i].id) << text;
        EXPECT_EQ(a.value().matches[i].distance,
                  b.value().matches[i].distance)
            << text;
      }
      ASSERT_EQ(a.value().pairs.size(), b.value().pairs.size()) << text;
      for (size_t i = 0; i < a.value().pairs.size(); ++i) {
        EXPECT_EQ(a.value().pairs[i].first, b.value().pairs[i].first);
        EXPECT_EQ(a.value().pairs[i].second, b.value().pairs[i].second);
        EXPECT_EQ(a.value().pairs[i].distance, b.value().pairs[i].distance);
      }
    }
  }
  EXPECT_TRUE(matched)
      << "recovered state matches no acked-bounded prefix of the script";
}

TEST(CrashRecoveryTest, DeltaScriptCompletesWithoutFaults) {
  RunDeltaSchedule("clean", "");
}

TEST(CrashRecoveryTest, KillDuringRecompactionBuild) {
  // Two shards -> two build hits per fold; kill at the first and the
  // second fold's builds.
  RunDeltaSchedule("rb_first", "recompact.build=kill:always");
  RunDeltaSchedule("rb_second", "recompact.build=kill:after-2");
}

TEST(CrashRecoveryTest, KillAtRecompactionPublishBoundaries) {
  RunDeltaSchedule("rp_before", "recompact.publish.before=kill:always");
  RunDeltaSchedule("rp_mid", "recompact.publish.mid=kill:always");
  RunDeltaSchedule("rp_after", "recompact.publish.after=kill:always");
  // Later folds: the same boundaries after earlier folds succeeded.
  RunDeltaSchedule("rp_mid_late", "recompact.publish.mid=kill:after-1");
  RunDeltaSchedule("rp_after_late", "recompact.publish.after=kill:after-2");
}

// Non-kill injection at the build: the child stops at the injected error;
// everything acked before it must still recover bit-identically.
TEST(CrashRecoveryTest, InjectedRecompactionBuildFailureStopsCleanly) {
  RunDeltaSchedule("rb_inject", "recompact.build=after-3");
}

}  // namespace
}  // namespace simq
