#include <gtest/gtest.h>

#include "core/parser.h"

namespace simq {
namespace {

TEST(ParserTest, RangeQueryMinimal) {
  const Result<Query> result =
      ParseQuery("RANGE stocks WITHIN 2.5 OF #ibm");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Query& query = result.value();
  EXPECT_EQ(query.kind, QueryKind::kRange);
  EXPECT_EQ(query.relation, "stocks");
  EXPECT_DOUBLE_EQ(query.epsilon, 2.5);
  ASSERT_TRUE(query.query_series.name.has_value());
  EXPECT_EQ(*query.query_series.name, "ibm");
  EXPECT_EQ(query.transform, nullptr);
  EXPECT_EQ(query.mode, DistanceMode::kNormalForm);
  EXPECT_EQ(query.strategy, ExecutionStrategy::kAuto);
}

TEST(ParserTest, RangeQueryWithLiteralSeries) {
  const Result<Query> result =
      ParseQuery("RANGE r WITHIN 1 OF [1.0, -2.5, 3]");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Query& query = result.value();
  ASSERT_TRUE(query.query_series.is_literal());
  ASSERT_EQ(query.query_series.literal.size(), 3u);
  EXPECT_DOUBLE_EQ(query.query_series.literal[1], -2.5);
}

TEST(ParserTest, TransformClause) {
  const Result<Query> result =
      ParseQuery("RANGE r WITHIN 1 OF #q USING mavg(20)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result.value().transform, nullptr);
  EXPECT_EQ(result.value().transform->name(), "mavg(20)");
}

TEST(ParserTest, CompositeTransform) {
  const Result<Query> result =
      ParseQuery("RANGE r WITHIN 1 OF #q USING mavg(20)|reverse|scale(2)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().transform->name(), "mavg(20)|reverse|scale(2)");
}

TEST(ParserTest, ModeAndViaClauses) {
  const Result<Query> result =
      ParseQuery("RANGE r WITHIN 1 OF #q MODE RAW VIA SCAN");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().mode, DistanceMode::kRaw);
  EXPECT_EQ(result.value().strategy, ExecutionStrategy::kScan);
}

TEST(ParserTest, FullscanStrategy) {
  const Result<Query> result =
      ParseQuery("RANGE r WITHIN 1 OF #q VIA FULLSCAN");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().strategy,
            ExecutionStrategy::kScanNoEarlyAbandon);
}

TEST(ParserTest, KeywordsCaseInsensitive) {
  const Result<Query> result =
      ParseQuery("range r within 1 of #q using reverse via index");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().strategy, ExecutionStrategy::kIndex);
}

TEST(ParserTest, PairsQuery) {
  const Result<Query> result =
      ParseQuery("PAIRS stocks WITHIN 1.5 USING mavg(20)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().kind, QueryKind::kAllPairs);
  EXPECT_DOUBLE_EQ(result.value().epsilon, 1.5);
}

TEST(ParserTest, PairsQueryWithPerSideTransforms) {
  const Result<Query> result = ParseQuery(
      "PAIRS stocks WITHIN 3.0 USING mavg(20) VS reverse|mavg(20)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result.value().transform, nullptr);
  ASSERT_NE(result.value().transform_right, nullptr);
  EXPECT_EQ(result.value().transform->name(), "mavg(20)");
  EXPECT_EQ(result.value().transform_right->name(), "reverse|mavg(20)");
}

TEST(ParserTest, VsOnlyValidInPairs) {
  EXPECT_FALSE(
      ParseQuery("RANGE r WITHIN 1 OF #q USING mavg(2) VS reverse").ok());
}

TEST(ParserTest, PrenormalizedClause) {
  const Result<Query> result =
      ParseQuery("RANGE r WITHIN 1 OF [0.5, -0.5] PRENORMALIZED");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().query_prenormalized);
  EXPECT_FALSE(ParseQuery("RANGE r WITHIN 1 OF #q").value()
                   .query_prenormalized);
}

TEST(ParserTest, NearestQuery) {
  const Result<Query> result = ParseQuery("NEAREST 5 stocks TO #ibm");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().kind, QueryKind::kNearest);
  EXPECT_EQ(result.value().k, 5);
}

TEST(ParserTest, MeanStdPatternClauses) {
  const Result<Query> result =
      ParseQuery("RANGE r WITHIN 1 OF #q MEAN 0 10 STD 0.5 2");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result.value().pattern.mean_range.has_value());
  EXPECT_DOUBLE_EQ(result.value().pattern.mean_range->first, 0.0);
  EXPECT_DOUBLE_EQ(result.value().pattern.mean_range->second, 10.0);
  ASSERT_TRUE(result.value().pattern.std_range.has_value());
  EXPECT_DOUBLE_EQ(result.value().pattern.std_range->second, 2.0);
}

TEST(ParserTest, RejectsMalformedQueries) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM t").ok());
  EXPECT_FALSE(ParseQuery("RANGE r WITHIN OF #q").ok());
  EXPECT_FALSE(ParseQuery("RANGE r WITHIN 1 OF").ok());
  EXPECT_FALSE(ParseQuery("RANGE r WITHIN 1 OF #q USING nosuchrule").ok());
  EXPECT_FALSE(ParseQuery("RANGE r WITHIN 1 OF #q MODE SIDEWAYS").ok());
  EXPECT_FALSE(ParseQuery("RANGE r WITHIN 1 OF #q VIA TURBO").ok());
  EXPECT_FALSE(ParseQuery("RANGE r WITHIN 1 OF #q trailing junk").ok());
  EXPECT_FALSE(ParseQuery("NEAREST 0 r TO #q").ok());
  EXPECT_FALSE(ParseQuery("NEAREST 2.5 r TO #q").ok());
  EXPECT_FALSE(ParseQuery("RANGE r WITHIN 1 OF [1,]").ok());
  EXPECT_FALSE(ParseQuery("RANGE r WITHIN 1 OF [").ok());
  EXPECT_FALSE(ParseQuery("RANGE r WITHIN 1 OF #q MEAN 5 1").ok());
  EXPECT_FALSE(ParseQuery("PAIRS r").ok());
}

TEST(ParserTest, ErrorMessagesMentionOffset) {
  const Result<Query> result = ParseQuery("RANGE r WITHIN x OF #q");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("offset"), std::string::npos);
}

TEST(ParserTest, RuleCostArgumentThroughParser) {
  const Result<Query> result =
      ParseQuery("RANGE r WITHIN 1 OF #q USING mavg(20, 2.5)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_DOUBLE_EQ(result.value().transform->cost(), 2.5);
}

TEST(ParserTest, NegativeNumbersInLiterals) {
  const Result<Query> result =
      ParseQuery("RANGE r WITHIN 0.5 OF [-1, -2.5, -3e2]");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_DOUBLE_EQ(result.value().query_series.literal[2], -300.0);
}

TEST(ParserTest, ExplainPrefixOnEveryQueryKind) {
  for (const char* text :
       {"EXPLAIN RANGE stocks WITHIN 2.5 OF #ibm",
        "explain PAIRS stocks WITHIN 1.0 USING mavg(20)",
        "Explain NEAREST 3 stocks TO #ibm VIA SCAN"}) {
    const Result<Query> result = ParseQuery(text);
    ASSERT_TRUE(result.ok()) << text << ": " << result.status().ToString();
    EXPECT_TRUE(result.value().explain) << text;
  }
  EXPECT_FALSE(ParseQuery("RANGE r WITHIN 1 OF #q").value().explain);
}

TEST(ParserTest, ExplainAloneIsNotAQuery) {
  EXPECT_FALSE(ParseQuery("EXPLAIN").ok());
  EXPECT_FALSE(ParseQuery("EXPLAIN EXPLAIN RANGE r WITHIN 1 OF #q").ok());
}

// The offset annotation must point at the offending token, not past it --
// the shell underlines the position it names.
TEST(ParserTest, MalformedViaErrorPointsAtArgument) {
  const std::string text = "RANGE r WITHIN 1 OF #q VIA TURBO";
  const Result<Query> result = ParseQuery(text);
  ASSERT_FALSE(result.ok());
  const std::string expected =
      "at offset " + std::to_string(text.find("TURBO"));
  EXPECT_NE(result.status().message().find(expected), std::string::npos)
      << result.status().message();
}

TEST(ParserTest, MissingViaArgumentErrorPointsAtEnd) {
  const std::string text = "RANGE r WITHIN 1 OF #q VIA";
  const Result<Query> result = ParseQuery(text);
  ASSERT_FALSE(result.ok());
  const std::string expected = "at offset " + std::to_string(text.size());
  EXPECT_NE(result.status().message().find(expected), std::string::npos)
      << result.status().message();
}

TEST(ParserTest, MalformedModeErrorPointsAtArgument) {
  const std::string text = "RANGE r WITHIN 1 OF #q MODE SIDEWAYS";
  const Result<Query> result = ParseQuery(text);
  ASSERT_FALSE(result.ok());
  const std::string expected =
      "at offset " + std::to_string(text.find("SIDEWAYS"));
  EXPECT_NE(result.status().message().find(expected), std::string::npos)
      << result.status().message();
}

TEST(ParserTest, UnknownRuleErrorPointsAtRuleName) {
  const std::string text = "RANGE r WITHIN 1 OF #q USING mavg(20)|nosuchrule";
  const Result<Query> result = ParseQuery(text);
  ASSERT_FALSE(result.ok());
  const std::string expected =
      "at offset " + std::to_string(text.find("nosuchrule"));
  EXPECT_NE(result.status().message().find(expected), std::string::npos)
      << result.status().message();
}

TEST(ParserTest, MalformedUsingClauses) {
  // Each malformed USING form must fail with a position annotation.
  for (const char* text :
       {"RANGE r WITHIN 1 OF #q USING",         // missing rule
        "RANGE r WITHIN 1 OF #q USING mavg(",   // unterminated args
        "RANGE r WITHIN 1 OF #q USING mavg(20", // missing ')'
        "RANGE r WITHIN 1 OF #q USING mavg(x)", // non-numeric arg
        "RANGE r WITHIN 1 OF #q USING |mavg",   // leading pipe
        "PAIRS r WITHIN 1 USING mavg(20) VS"}) {  // missing right side
    const Result<Query> result = ParseQuery(text);
    ASSERT_FALSE(result.ok()) << text;
    EXPECT_NE(result.status().message().find("at offset"), std::string::npos)
        << text << ": " << result.status().message();
  }
}

}  // namespace
}  // namespace simq
