// SIMQNET1 robustness: payload codecs, frame CRC coverage, the two-tier
// validation contract (framing errors close, semantic errors answer),
// protocol fuzzing with hostile bytes, pipelining with mixed valid and
// poison frames, overload shedding, cancellation, deadlines, cursors,
// idle timeouts, backpressure liveness, graceful goodbye -- and the
// crash schedule: SIGKILL the server at a socket-write boundary, observe
// a clean client-side error, and recover the WAL on restart.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "core/wal.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "service/query_service.h"
#include "util/failpoint.h"
#include "workload/generators.h"

namespace simq {
namespace {

// Pin the global pool width before anything instantiates it: the crash
// schedule forks, and forking a process that holds live pool threads can
// deadlock the child in malloc. With SIMQ_THREADS=1 the pool runs inline;
// the server still exercises real concurrency through its own executor
// threads, which are created after the fork.
const bool kSingleThreadPinned = [] {
  ::setenv("SIMQ_THREADS", "1", 1);
  return true;
}();

Database MakeDatabase(int count, int length = 32, uint64_t seed = 7) {
  Database db;
  EXPECT_TRUE(db.CreateRelation("r").ok());
  EXPECT_TRUE(
      db.BulkLoad("r", workload::RandomWalkSeries(count, length, seed)).ok());
  return db;
}

// A query that burns real exact-kernel time while matching almost nothing
// (same idiom as service_lifecycle_test).
const char* kSlowQuery = "PAIRS r WITHIN 0.001 VIA SCAN MODE EXACT";

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// In-process server: a QueryService over a random-walk relation plus a
// NetServer run on its own thread. The destructor drains and joins.
struct TestServer {
  explicit TestServer(net::NetServerOptions options = {}, int count = 64,
                      int length = 32)
      : service(MakeDatabase(count, length)),
        server(std::make_unique<net::NetServer>(&service, options)) {
    start_status = server->Start();
    EXPECT_TRUE(start_status.ok()) << start_status.ToString();
    if (start_status.ok()) {
      loop = std::thread([this] { server->Run(); });
    }
  }
  ~TestServer() {
    if (loop.joinable()) {
      server->Shutdown();
      loop.join();
    }
  }
  uint16_t port() const { return server->port(); }

  QueryService service;
  std::unique_ptr<net::NetServer> server;
  Status start_status;
  std::thread loop;
};

net::NetClient::Options ClientOptions(bool handshake = true,
                                      double timeout_ms = 10000.0) {
  net::NetClient::Options options;
  options.io_timeout_ms = timeout_ms;
  options.handshake = handshake;
  return options;
}

QueryResult Oracle(QueryService* service, const std::string& text) {
  Result<ServiceResult> result = service->ExecuteText(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(result).value().result : QueryResult{};
}

// Bit-identical answers: the wire carries exactly the doubles the engine
// produced, so EXPECT_EQ on distances is the contract, not a tolerance.
void ExpectSameAnswer(const QueryResult& wire, const QueryResult& oracle) {
  ASSERT_EQ(wire.matches.size(), oracle.matches.size());
  for (size_t i = 0; i < wire.matches.size(); ++i) {
    EXPECT_EQ(wire.matches[i].id, oracle.matches[i].id);
    EXPECT_EQ(wire.matches[i].name, oracle.matches[i].name);
    EXPECT_EQ(wire.matches[i].distance, oracle.matches[i].distance);
  }
  ASSERT_EQ(wire.pairs.size(), oracle.pairs.size());
  for (size_t i = 0; i < wire.pairs.size(); ++i) {
    EXPECT_EQ(wire.pairs[i].first, oracle.pairs[i].first);
    EXPECT_EQ(wire.pairs[i].second, oracle.pairs[i].second);
    EXPECT_EQ(wire.pairs[i].distance, oracle.pairs[i].distance);
  }
}

std::vector<uint8_t> ExecFrame(uint32_t request_id, const std::string& text,
                               uint32_t page_rows = 0,
                               double deadline_ms = 0.0) {
  net::ExecRequest request;
  request.text = text;
  request.page_rows = page_rows;
  request.deadline_ms = deadline_ms;
  return net::BuildFrame(net::Opcode::kExec, request_id,
                         net::EncodeExec(request));
}

struct Frame {
  net::FrameHeader header;
  std::vector<uint8_t> payload;
};

bool ReadFrames(net::NetClient* client, size_t n, std::vector<Frame>* out) {
  for (size_t i = 0; i < n; ++i) {
    Frame frame;
    const Status read = client->ReadFrame(&frame.header, &frame.payload);
    if (!read.ok()) {
      ADD_FAILURE() << "frame " << i << " of " << n << ": "
                    << read.ToString();
      return false;
    }
    out->push_back(std::move(frame));
  }
  return true;
}

net::ResultPage PageOf(const Frame& frame) {
  EXPECT_EQ(frame.header.opcode,
            static_cast<uint8_t>(net::Opcode::kResult));
  net::ResultPage page;
  EXPECT_TRUE(net::DecodeResultPage(frame.payload.data(),
                                    frame.payload.size(), &page)
                  .ok());
  return page;
}

uint16_t ErrorCodeOf(const Frame& frame) {
  EXPECT_EQ(frame.header.opcode, static_cast<uint8_t>(net::Opcode::kError));
  net::ErrorInfo error;
  EXPECT_TRUE(
      net::DecodeError(frame.payload.data(), frame.payload.size(), &error)
          .ok());
  return error.code;
}

constexpr uint16_t Code(StatusCode code) {
  return static_cast<uint16_t>(code);
}

// Reads until the server closes the connection; returns the final
// (non-OK) read status. Frames seen along the way land in `*frames`.
Status DrainUntilClose(net::NetClient* client, std::vector<Frame>* frames,
                       int max_frames = 16) {
  for (int i = 0; i < max_frames; ++i) {
    Frame frame;
    const Status read = client->ReadFrame(&frame.header, &frame.payload);
    if (!read.ok()) return read;
    if (frames != nullptr) frames->push_back(std::move(frame));
  }
  return Status::Internal("server kept talking past the frame cap");
}

// The liveness probe every hostile-input test ends with: a fresh
// connection must still complete a handshake and answer correctly.
void ExpectServerStillAnswers(TestServer* fixture) {
  const std::string text = "NEAREST 5 r TO #walk0";
  net::NetClient probe;
  ASSERT_TRUE(probe.Connect("127.0.0.1", fixture->port(), ClientOptions())
                  .ok());
  net::ExecRequest request;
  request.text = text;
  Result<QueryResult> answer = probe.ExecAll(request);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  ExpectSameAnswer(answer.value(), Oracle(&fixture->service, text));
}

// --- codecs -------------------------------------------------------------

TEST(NetProtocolTest, CodecsRoundTripEveryPayload) {
  net::HelloRequest hello;
  hello.min_version = 3;
  hello.max_version = 9;
  net::HelloRequest hello2;
  const std::vector<uint8_t> hello_bytes = net::EncodeHello(hello);
  ASSERT_TRUE(
      net::DecodeHello(hello_bytes.data(), hello_bytes.size(), &hello2).ok());
  EXPECT_EQ(hello2.min_version, 3);
  EXPECT_EQ(hello2.max_version, 9);

  net::HelloAck ack;
  ack.version = 1;
  ack.max_payload = 12345;
  ack.default_page_rows = 77;
  net::HelloAck ack2;
  const std::vector<uint8_t> ack_bytes = net::EncodeHelloAck(ack);
  ASSERT_TRUE(
      net::DecodeHelloAck(ack_bytes.data(), ack_bytes.size(), &ack2).ok());
  EXPECT_EQ(ack2.version, 1);
  EXPECT_EQ(ack2.max_payload, 12345u);
  EXPECT_EQ(ack2.default_page_rows, 77u);

  net::ExecRequest exec;
  exec.prepared = true;
  exec.statement_id = 0xDEADBEEFCAFEull;
  exec.deadline_ms = 12.5;
  exec.page_rows = 256;
  exec.epsilon = 0.25;
  exec.k = 7;
  exec.has_series = true;
  exec.series = {1.0, -2.5, 3.75};
  net::ExecRequest exec2;
  const std::vector<uint8_t> exec_bytes = net::EncodeExec(exec);
  ASSERT_TRUE(
      net::DecodeExec(exec_bytes.data(), exec_bytes.size(), &exec2).ok());
  EXPECT_TRUE(exec2.prepared);
  EXPECT_EQ(exec2.statement_id, exec.statement_id);
  EXPECT_EQ(exec2.deadline_ms, 12.5);
  EXPECT_EQ(exec2.page_rows, 256u);
  ASSERT_TRUE(exec2.epsilon.has_value());
  EXPECT_EQ(*exec2.epsilon, 0.25);
  ASSERT_TRUE(exec2.k.has_value());
  EXPECT_EQ(*exec2.k, 7);
  ASSERT_TRUE(exec2.has_series);
  EXPECT_EQ(exec2.series, exec.series);

  net::ExecRequest text_exec;
  text_exec.text = "NEAREST 10 r TO #walk0";
  net::ExecRequest text_exec2;
  const std::vector<uint8_t> text_bytes = net::EncodeExec(text_exec);
  ASSERT_TRUE(
      net::DecodeExec(text_bytes.data(), text_bytes.size(), &text_exec2)
          .ok());
  EXPECT_FALSE(text_exec2.prepared);
  EXPECT_EQ(text_exec2.text, text_exec.text);
  EXPECT_FALSE(text_exec2.epsilon.has_value());
  EXPECT_FALSE(text_exec2.k.has_value());
  EXPECT_FALSE(text_exec2.has_series);

  // A page carries one row kind, selected by `kind`.
  net::ResultPage match_page;
  match_page.kind = 0;
  match_page.has_more = true;
  match_page.cursor_id = 42;
  match_page.total_rows = 1000;
  match_page.matches.push_back(Match{5, "walk5", 1.25});
  net::ResultPage match_page2;
  const std::vector<uint8_t> match_bytes =
      net::EncodeResultPage(match_page);
  ASSERT_TRUE(
      net::DecodeResultPage(match_bytes.data(), match_bytes.size(),
                            &match_page2)
          .ok());
  EXPECT_EQ(match_page2.kind, 0);
  EXPECT_TRUE(match_page2.has_more);
  EXPECT_EQ(match_page2.cursor_id, 42u);
  EXPECT_EQ(match_page2.total_rows, 1000u);
  ASSERT_EQ(match_page2.matches.size(), 1u);
  EXPECT_EQ(match_page2.matches[0].id, 5);
  EXPECT_EQ(match_page2.matches[0].name, "walk5");
  EXPECT_EQ(match_page2.matches[0].distance, 1.25);

  net::ResultPage pair_page;
  pair_page.kind = 1;
  pair_page.total_rows = 1;
  pair_page.pairs.push_back(PairMatch{3, 9, 0.5});
  net::ResultPage pair_page2;
  const std::vector<uint8_t> pair_bytes = net::EncodeResultPage(pair_page);
  ASSERT_TRUE(
      net::DecodeResultPage(pair_bytes.data(), pair_bytes.size(),
                            &pair_page2)
          .ok());
  EXPECT_EQ(pair_page2.kind, 1);
  EXPECT_FALSE(pair_page2.has_more);
  ASSERT_EQ(pair_page2.pairs.size(), 1u);
  EXPECT_EQ(pair_page2.pairs[0].first, 3);
  EXPECT_EQ(pair_page2.pairs[0].second, 9);
  EXPECT_EQ(pair_page2.pairs[0].distance, 0.5);

  net::WireStats stats;
  stats.queries = 1;
  stats.mutations = 2;
  stats.timeouts = 3;
  stats.cancellations = 4;
  stats.overloaded = 5;
  stats.cache_hits = 6;
  stats.cache_misses = 7;
  stats.latency_p50_ms = 0.5;
  stats.latency_p95_ms = 9.5;
  stats.latency_p99_ms = 99.5;
  stats.connections_accepted = 8;
  stats.connections_active = 9;
  stats.connections_shed = 10;
  stats.connections_timed_out = 11;
  stats.requests_shed = 12;
  stats.bytes_in = 13;
  stats.bytes_out = 14;
  net::WireStats stats2;
  const std::vector<uint8_t> stats_bytes = net::EncodeStats(stats);
  ASSERT_TRUE(
      net::DecodeStats(stats_bytes.data(), stats_bytes.size(), &stats2).ok());
  EXPECT_EQ(stats2.queries, 1u);
  EXPECT_EQ(stats2.latency_p99_ms, 99.5);
  EXPECT_EQ(stats2.connections_timed_out, 11u);
  EXPECT_EQ(stats2.requests_shed, 12u);
  EXPECT_EQ(stats2.bytes_out, 14u);

  net::ErrorInfo error;
  error.code = Code(StatusCode::kOverloaded);
  error.message = "queue full";
  net::ErrorInfo error2;
  const std::vector<uint8_t> error_bytes = net::EncodeError(error);
  ASSERT_TRUE(
      net::DecodeError(error_bytes.data(), error_bytes.size(), &error2).ok());
  EXPECT_EQ(error2.code, Code(StatusCode::kOverloaded));
  EXPECT_EQ(error2.message, "queue full");
  const Status round = net::StatusFromWire(error2);
  EXPECT_EQ(round.code(), StatusCode::kOverloaded);

  net::FetchRequest fetch;
  fetch.cursor_id = 77;
  fetch.page_rows = 11;
  net::FetchRequest fetch2;
  const std::vector<uint8_t> fetch_bytes = net::EncodeFetch(fetch);
  ASSERT_TRUE(
      net::DecodeFetch(fetch_bytes.data(), fetch_bytes.size(), &fetch2).ok());
  EXPECT_EQ(fetch2.cursor_id, 77u);
  EXPECT_EQ(fetch2.page_rows, 11u);
}

TEST(NetProtocolTest, CodecsRejectTruncationAndTrailingGarbage) {
  net::ExecRequest exec;
  exec.text = "NEAREST 10 r TO #walk0";
  exec.epsilon = 1.5;
  exec.has_series = true;
  exec.series = {1.0, 2.0};
  const std::vector<uint8_t> bytes = net::EncodeExec(exec);
  net::ExecRequest out;
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(net::DecodeExec(bytes.data(), len, &out).ok())
        << "prefix of " << len << " bytes decoded";
  }
  std::vector<uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(net::DecodeExec(padded.data(), padded.size(), &out).ok());
}

TEST(NetProtocolTest, HeaderValidationAndCrcCoverEveryDispatchByte) {
  const std::vector<uint8_t> frame =
      ExecFrame(9, "RANGE r WITHIN 1.0 OF #walk0");
  net::FrameHeader header;
  ASSERT_EQ(net::ParseHeader(frame.data(), frame.size(),
                             net::kDefaultMaxPayload, &header),
            net::HeaderStatus::kOk);
  EXPECT_TRUE(net::CrcMatches(header, frame.data() + net::kHeaderSize));
  EXPECT_EQ(header.request_id, 9u);
  EXPECT_EQ(header.opcode, static_cast<uint8_t>(net::Opcode::kExec));

  // Too few bytes for a header.
  EXPECT_EQ(net::ParseHeader(frame.data(), net::kHeaderSize - 1,
                             net::kDefaultMaxPayload, &header),
            net::HeaderStatus::kNeedMore);

  // Flipping any byte past the magic/length prefix must be caught by the
  // structural checks or the CRC -- including a flip of the CRC itself.
  for (size_t i = 0; i < frame.size(); ++i) {
    std::vector<uint8_t> bent = frame;
    bent[i] ^= 0xFF;
    net::FrameHeader h;
    const net::HeaderStatus hs = net::ParseHeader(
        bent.data(), bent.size(), net::kDefaultMaxPayload, &h);
    if (hs == net::HeaderStatus::kOk &&
        bent.size() >= net::kHeaderSize + h.payload_len) {
      EXPECT_FALSE(net::CrcMatches(h, bent.data() + net::kHeaderSize))
          << "flip at byte " << i << " slipped through";
    } else {
      EXPECT_NE(hs, net::HeaderStatus::kNeedMore)
          << "flip at byte " << i << " stalled the parser";
    }
  }
}

// --- handshake discipline ----------------------------------------------

TEST(NetProtocolTest, HandshakeNegotiatesAndServesQueries) {
  TestServer fixture;
  net::NetClient client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", fixture.port(), ClientOptions()).ok());
  EXPECT_EQ(client.server_hello().version, net::kVersionMax);
  EXPECT_EQ(client.server_hello().max_payload, net::kDefaultMaxPayload);
  EXPECT_GT(client.server_hello().default_page_rows, 0u);

  const std::string text = "NEAREST 10 r TO #walk0";
  net::ExecRequest request;
  request.text = text;
  Result<QueryResult> answer = client.ExecAll(request);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  ExpectSameAnswer(answer.value(), Oracle(&fixture.service, text));
}

TEST(NetProtocolTest, NoVersionOverlapIsRefusedThenClosed) {
  TestServer fixture;
  net::NetClient raw;
  ASSERT_TRUE(raw.Connect("127.0.0.1", fixture.port(),
                          ClientOptions(/*handshake=*/false))
                  .ok());
  net::HelloRequest hello;
  hello.min_version = 7;
  hello.max_version = 9;
  ASSERT_TRUE(raw.SendFrame(net::Opcode::kHello, 1, net::EncodeHello(hello))
                  .ok());
  std::vector<Frame> frames;
  ASSERT_TRUE(ReadFrames(&raw, 1, &frames));
  EXPECT_EQ(ErrorCodeOf(frames[0]), Code(StatusCode::kInvalidArgument));
  std::vector<Frame> rest;
  EXPECT_EQ(DrainUntilClose(&raw, &rest).code(), StatusCode::kIoError);
  EXPECT_TRUE(rest.empty());
  ExpectServerStillAnswers(&fixture);
}

TEST(NetProtocolTest, FirstFrameMustBeHello) {
  TestServer fixture;
  net::NetClient raw;
  ASSERT_TRUE(raw.Connect("127.0.0.1", fixture.port(),
                          ClientOptions(/*handshake=*/false))
                  .ok());
  const std::vector<uint8_t> exec = ExecFrame(1, "NEAREST 5 r TO #walk0");
  ASSERT_TRUE(raw.SendRaw(exec.data(), exec.size()).ok());
  std::vector<Frame> frames;
  ASSERT_TRUE(ReadFrames(&raw, 1, &frames));
  EXPECT_EQ(frames[0].header.request_id, 1u);
  EXPECT_EQ(ErrorCodeOf(frames[0]), Code(StatusCode::kFailedPrecondition));
  EXPECT_FALSE(DrainUntilClose(&raw, nullptr).ok());
  ExpectServerStillAnswers(&fixture);
}

// --- two-tier validation ------------------------------------------------

TEST(NetProtocolTest, UnknownOpcodeIsSemanticNotFatal) {
  TestServer fixture;
  net::NetClient client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", fixture.port(), ClientOptions()).ok());
  // A well-framed frame with a nonsense opcode, then a server-only one:
  // both draw typed errors, neither kills the connection.
  for (const uint8_t opcode :
       {static_cast<uint8_t>(0x63),
        static_cast<uint8_t>(net::Opcode::kHelloAck)}) {
    const uint32_t rid = client.NextRequestId();
    ASSERT_TRUE(
        client.SendFrame(static_cast<net::Opcode>(opcode), rid, {}).ok());
    std::vector<Frame> frames;
    ASSERT_TRUE(ReadFrames(&client, 1, &frames));
    EXPECT_EQ(frames[0].header.request_id, rid);
    EXPECT_EQ(ErrorCodeOf(frames[0]), Code(StatusCode::kUnimplemented));
  }
  // The connection still works.
  const std::string text = "NEAREST 5 r TO #walk0";
  net::ExecRequest request;
  request.text = text;
  Result<QueryResult> answer = client.ExecAll(request);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  ExpectSameAnswer(answer.value(), Oracle(&fixture.service, text));
}

TEST(NetProtocolTest, MalformedPayloadIsSemanticNotFatal) {
  TestServer fixture;
  net::NetClient client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", fixture.port(), ClientOptions()).ok());
  // Zero-length and garbage kExec payloads fail to decode; the error is
  // typed and scoped to the request.
  const std::vector<std::vector<uint8_t>> payloads = {
      {}, {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}};
  for (const std::vector<uint8_t>& payload : payloads) {
    const uint32_t rid = client.NextRequestId();
    ASSERT_TRUE(client.SendFrame(net::Opcode::kExec, rid, payload).ok());
    std::vector<Frame> frames;
    ASSERT_TRUE(ReadFrames(&client, 1, &frames));
    EXPECT_EQ(frames[0].header.request_id, rid);
    EXPECT_EQ(frames[0].header.opcode,
              static_cast<uint8_t>(net::Opcode::kError));
    EXPECT_NE(ErrorCodeOf(frames[0]), 0);
  }
  // A zero-length payload where that is the legal encoding still works.
  const uint32_t rid = client.NextRequestId();
  ASSERT_TRUE(client.SendFrame(net::Opcode::kStats, rid, {}).ok());
  std::vector<Frame> frames;
  ASSERT_TRUE(ReadFrames(&client, 1, &frames));
  EXPECT_EQ(frames[0].header.opcode,
            static_cast<uint8_t>(net::Opcode::kStatsAck));
  ExpectServerStillAnswers(&fixture);
}

TEST(NetProtocolTest, FramingErrorsAnswerValidWorkThenClose) {
  TestServer fixture;
  const std::string text = "NEAREST 10 r TO #walk0";
  const QueryResult oracle = Oracle(&fixture.service, text);

  // Each poison is a differently-broken frame; each is pipelined behind a
  // valid exec on the same connection. The contract: the valid query is
  // answered correctly, then one kError(kCorruption) with request id 0,
  // then the connection closes.
  std::vector<std::vector<uint8_t>> poisons;
  {
    std::vector<uint8_t> bad_magic = ExecFrame(2, text);
    bad_magic[0] ^= 0xFF;
    poisons.push_back(std::move(bad_magic));

    std::vector<uint8_t> bad_crc = ExecFrame(2, text);
    bad_crc[net::kHeaderSize + 3] ^= 0x01;  // payload flip
    poisons.push_back(std::move(bad_crc));

    std::vector<uint8_t> bad_reserved = ExecFrame(2, text);
    bad_reserved[9] = 0x80;  // nonzero flags
    poisons.push_back(std::move(bad_reserved));

    // Oversized declared length (max_payload + 1), header-only.
    std::vector<uint8_t> oversized(net::kHeaderSize, 0);
    oversized[0] = 'S';
    oversized[1] = 'Q';
    oversized[2] = 'N';
    oversized[3] = '1';
    const uint32_t huge = net::kDefaultMaxPayload + 1;
    std::memcpy(oversized.data() + 4, &huge, sizeof(huge));
    oversized[8] = static_cast<uint8_t>(net::Opcode::kExec);
    poisons.push_back(std::move(oversized));
  }

  for (size_t i = 0; i < poisons.size(); ++i) {
    SCOPED_TRACE("poison " + std::to_string(i));
    net::NetClient client;
    ASSERT_TRUE(
        client.Connect("127.0.0.1", fixture.port(), ClientOptions()).ok());
    std::vector<uint8_t> wire = ExecFrame(1, text);
    wire.insert(wire.end(), poisons[i].begin(), poisons[i].end());
    ASSERT_TRUE(client.SendRaw(wire.data(), wire.size()).ok());

    std::vector<Frame> frames;
    ASSERT_TRUE(ReadFrames(&client, 2, &frames));
    EXPECT_EQ(frames[0].header.request_id, 1u);
    ExpectSameAnswer(QueryResult{PageOf(frames[0]).matches,
                                 PageOf(frames[0]).pairs,
                                 {}},
                     oracle);
    EXPECT_EQ(frames[1].header.request_id, 0u);
    EXPECT_EQ(ErrorCodeOf(frames[1]), Code(StatusCode::kCorruption));
    EXPECT_EQ(DrainUntilClose(&client, nullptr).code(),
              StatusCode::kIoError);
  }
  EXPECT_GE(fixture.server->stats().protocol_errors,
            static_cast<int64_t>(poisons.size()));
  ExpectServerStillAnswers(&fixture);
}

TEST(NetProtocolTest, MidFrameDisconnectsNeverWedgeTheServer) {
  TestServer fixture;
  const std::vector<uint8_t> frame = ExecFrame(1, "NEAREST 5 r TO #walk0");
  // Cut points: inside the header, at the header boundary, inside the
  // payload -- plus an immediate close with no bytes at all.
  const size_t cuts[] = {0, 7, net::kHeaderSize, frame.size() - 3};
  for (const size_t cut : cuts) {
    SCOPED_TRACE("cut at " + std::to_string(cut));
    net::NetClient client;
    ASSERT_TRUE(
        client.Connect("127.0.0.1", fixture.port(), ClientOptions()).ok());
    if (cut > 0) {
      ASSERT_TRUE(client.SendRaw(frame.data(), cut).ok());
    }
    ASSERT_TRUE(client.ShutdownWrite().ok());
    // The server sees EOF mid-frame and closes silently: no partial
    // dispatch, no response, no crash.
    std::vector<Frame> frames;
    EXPECT_EQ(DrainUntilClose(&client, &frames).code(),
              StatusCode::kIoError);
    EXPECT_TRUE(frames.empty());
  }
  ExpectServerStillAnswers(&fixture);
}

// --- fuzzing ------------------------------------------------------------

TEST(NetProtocolTest, FuzzRandomBytesNeverCrashOrWedge) {
  TestServer fixture;
  std::mt19937 rng(0x51394E31u);  // deterministic: "SQN1" seed
  std::uniform_int_distribution<int> len_dist(1, 600);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  for (int iter = 0; iter < 48; ++iter) {
    SCOPED_TRACE("iteration " + std::to_string(iter));
    const bool after_handshake = (iter % 2) == 1;
    net::NetClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", fixture.port(),
                               ClientOptions(after_handshake, 5000.0))
                    .ok());
    std::vector<uint8_t> garbage(static_cast<size_t>(len_dist(rng)));
    for (uint8_t& b : garbage) b = static_cast<uint8_t>(byte_dist(rng));
    ASSERT_TRUE(client.SendRaw(garbage.data(), garbage.size()).ok());
    ASSERT_TRUE(client.ShutdownWrite().ok());
    // The server may answer with typed error frames before closing, but
    // any framing-error frame carries request id 0, and it always closes.
    std::vector<Frame> frames;
    EXPECT_FALSE(DrainUntilClose(&client, &frames).ok());
    for (const Frame& f : frames) {
      if (f.header.opcode == static_cast<uint8_t>(net::Opcode::kError) &&
          ErrorCodeOf(f) == Code(StatusCode::kCorruption)) {
        EXPECT_EQ(f.header.request_id, 0u);
      }
    }
  }
  ExpectServerStillAnswers(&fixture);
}

TEST(NetProtocolTest, FuzzMutatedFramesBehindValidWork) {
  TestServer fixture;
  const std::string text = "NEAREST 10 r TO #walk0";
  const QueryResult oracle = Oracle(&fixture.service, text);
  const std::vector<uint8_t> valid = ExecFrame(2, text);

  std::mt19937 rng(19950523u);
  std::uniform_int_distribution<size_t> pos_dist(0, valid.size() - 1);
  std::uniform_int_distribution<int> flip_dist(1, 255);
  std::uniform_int_distribution<size_t> cut_dist(1, valid.size() - 1);

  for (int iter = 0; iter < 64; ++iter) {
    SCOPED_TRACE("iteration " + std::to_string(iter));
    net::NetClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", fixture.port(),
                               ClientOptions(true, 5000.0))
                    .ok());
    std::vector<uint8_t> wire = ExecFrame(1, text);
    const bool truncate = (iter % 2) == 0;
    std::vector<uint8_t> hostile = valid;
    if (truncate) {
      hostile.resize(cut_dist(rng));
    } else {
      // Flip one byte to a guaranteed-different value; any single-byte
      // mutation of a valid frame is a framing error (magic, length,
      // reserved bits, or CRC).
      hostile[pos_dist(rng)] ^= static_cast<uint8_t>(flip_dist(rng));
    }
    wire.insert(wire.end(), hostile.begin(), hostile.end());
    ASSERT_TRUE(client.SendRaw(wire.data(), wire.size()).ok());
    ASSERT_TRUE(client.ShutdownWrite().ok());

    std::vector<Frame> frames;
    ASSERT_TRUE(ReadFrames(&client, 1, &frames));
    ASSERT_EQ(frames[0].header.request_id, 1u);
    const net::ResultPage page = PageOf(frames[0]);
    ExpectSameAnswer(QueryResult{page.matches, page.pairs, {}}, oracle);

    std::vector<Frame> rest;
    EXPECT_FALSE(DrainUntilClose(&client, &rest).ok());
    for (const Frame& f : rest) {
      // Only a framing error (request id 0) may follow; a truncated tail
      // usually just produces EOF with no frame at all.
      EXPECT_EQ(f.header.opcode, static_cast<uint8_t>(net::Opcode::kError));
      EXPECT_EQ(f.header.request_id, 0u);
    }
  }
  ExpectServerStillAnswers(&fixture);
}

TEST(NetProtocolTest, PipelinedMixedValidAndPoisonFrames) {
  TestServer fixture;
  const std::string q1 = "NEAREST 10 r TO #walk0";
  const std::string q2 = "RANGE r WITHIN 2.0 OF #walk3";
  const QueryResult oracle1 = Oracle(&fixture.service, q1);
  const QueryResult oracle2 = Oracle(&fixture.service, q2);

  net::NetClient client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", fixture.port(), ClientOptions()).ok());
  // Two valid execs pipelined ahead of 64 garbage bytes: both answered in
  // FIFO order, then the framing error, then close.
  std::vector<uint8_t> wire = ExecFrame(1, q1);
  const std::vector<uint8_t> second = ExecFrame(2, q2);
  wire.insert(wire.end(), second.begin(), second.end());
  wire.insert(wire.end(), 64, 0xA5);
  ASSERT_TRUE(client.SendRaw(wire.data(), wire.size()).ok());

  std::vector<Frame> frames;
  ASSERT_TRUE(ReadFrames(&client, 3, &frames));
  EXPECT_EQ(frames[0].header.request_id, 1u);
  const net::ResultPage page1 = PageOf(frames[0]);
  ExpectSameAnswer(QueryResult{page1.matches, page1.pairs, {}}, oracle1);
  EXPECT_EQ(frames[1].header.request_id, 2u);
  const net::ResultPage page2 = PageOf(frames[1]);
  ExpectSameAnswer(QueryResult{page2.matches, page2.pairs, {}}, oracle2);
  EXPECT_EQ(frames[2].header.request_id, 0u);
  EXPECT_EQ(ErrorCodeOf(frames[2]), Code(StatusCode::kCorruption));
  EXPECT_EQ(DrainUntilClose(&client, nullptr).code(), StatusCode::kIoError);
}

// --- shedding, cancellation, deadlines ----------------------------------

TEST(NetProtocolTest, OverloadShedsBeyondThePipelineBound) {
  net::NetServerOptions options;
  options.exec_threads = 1;
  options.max_pipeline = 2;  // one executing + one queued
  TestServer fixture(options, /*count=*/200, /*length=*/64);

  net::NetClient client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", fixture.port(), ClientOptions()).ok());
  // Four slow execs in one burst: #1 executes, #2 queues, #3 and #4 are
  // shed immediately with kOverloaded -- bounded queues, typed refusal.
  std::vector<uint8_t> wire;
  for (uint32_t rid = 1; rid <= 4; ++rid) {
    const std::vector<uint8_t> frame = ExecFrame(rid, kSlowQuery);
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  ASSERT_TRUE(client.SendRaw(wire.data(), wire.size()).ok());

  std::vector<Frame> frames;
  ASSERT_TRUE(ReadFrames(&client, 4, &frames));
  int results = 0;
  int shed = 0;
  for (const Frame& f : frames) {
    if (f.header.opcode == static_cast<uint8_t>(net::Opcode::kResult)) {
      ++results;
      EXPECT_TRUE(f.header.request_id == 1 || f.header.request_id == 2);
    } else {
      EXPECT_EQ(ErrorCodeOf(f), Code(StatusCode::kOverloaded));
      EXPECT_TRUE(f.header.request_id == 3 || f.header.request_id == 4);
      ++shed;
    }
  }
  EXPECT_EQ(results, 2);
  EXPECT_EQ(shed, 2);

  // Shed requests poison nothing: the connection keeps answering, and the
  // counters surfaced through the service (satellite of this PR) agree.
  const std::string text = "NEAREST 5 r TO #walk0";
  net::ExecRequest request;
  request.text = text;
  Result<QueryResult> answer = client.ExecAll(request);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  ExpectSameAnswer(answer.value(), Oracle(&fixture.service, text));
  EXPECT_EQ(fixture.service.stats().net.requests_shed, 2);
  EXPECT_EQ(fixture.server->stats().requests_shed, 2);
}

TEST(NetProtocolTest, CancelKillsPendingAndInflightThenRecovers) {
  net::NetServerOptions options;
  options.exec_threads = 1;
  TestServer fixture(options, /*count=*/200, /*length=*/64);

  net::NetClient client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", fixture.port(), ClientOptions()).ok());
  std::vector<uint8_t> wire = ExecFrame(1, kSlowQuery);
  const std::vector<uint8_t> queued = ExecFrame(2, kSlowQuery);
  wire.insert(wire.end(), queued.begin(), queued.end());
  const std::vector<uint8_t> cancel =
      net::BuildFrame(net::Opcode::kCancel, 3, {});
  wire.insert(wire.end(), cancel.begin(), cancel.end());
  ASSERT_TRUE(client.SendRaw(wire.data(), wire.size()).ok());

  bool saw_ack = false;
  bool saw_pending_cancelled = false;
  bool saw_first_response = false;
  std::vector<Frame> frames;
  ASSERT_TRUE(ReadFrames(&client, 3, &frames));
  for (const Frame& f : frames) {
    switch (f.header.request_id) {
      case 1:
        // The in-flight execution either observed the cancel or won the
        // race and completed; both are legal, wedging is not.
        saw_first_response = true;
        if (f.header.opcode == static_cast<uint8_t>(net::Opcode::kError)) {
          EXPECT_EQ(ErrorCodeOf(f), Code(StatusCode::kCancelled));
        } else {
          EXPECT_EQ(f.header.opcode,
                    static_cast<uint8_t>(net::Opcode::kResult));
        }
        break;
      case 2:
        saw_pending_cancelled = true;
        EXPECT_EQ(ErrorCodeOf(f), Code(StatusCode::kCancelled));
        break;
      case 3:
        saw_ack = true;
        EXPECT_EQ(f.header.opcode,
                  static_cast<uint8_t>(net::Opcode::kCancelAck));
        break;
      default:
        ADD_FAILURE() << "unexpected request id " << f.header.request_id;
    }
  }
  EXPECT_TRUE(saw_ack);
  EXPECT_TRUE(saw_pending_cancelled);
  EXPECT_TRUE(saw_first_response);

  // The cancel flag is reset: the same session executes again.
  const std::string text = "NEAREST 5 r TO #walk0";
  net::ExecRequest request;
  request.text = text;
  Result<QueryResult> answer = client.ExecAll(request);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  ExpectSameAnswer(answer.value(), Oracle(&fixture.service, text));
}

TEST(NetProtocolTest, WireDeadlineSurfacesAsTimeout) {
  TestServer fixture({}, /*count=*/200, /*length=*/64);
  net::NetClient client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", fixture.port(), ClientOptions()).ok());
  net::ExecRequest request;
  request.text = kSlowQuery;
  request.deadline_ms = 0.001;  // expired by the time the check runs
  Result<QueryResult> answer = client.ExecAll(request);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kTimeout)
      << answer.status().ToString();
  // The connection survives its own timeout.
  request.deadline_ms = 0.0;
  request.text = "NEAREST 5 r TO #walk0";
  EXPECT_TRUE(client.ExecAll(request).ok());
}

// --- prepared statements, cursors, stats --------------------------------

TEST(NetProtocolTest, PreparedStatementsBindParametersOverTheWire) {
  TestServer fixture;
  net::NetClient client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", fixture.port(), ClientOptions()).ok());
  Result<uint64_t> prepared =
      client.Prepare("RANGE r WITHIN 1.0 OF #walk0");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

  net::ExecRequest request;
  request.prepared = true;
  request.statement_id = prepared.value();
  Result<QueryResult> plain = client.ExecAll(request);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  ExpectSameAnswer(plain.value(),
                   Oracle(&fixture.service, "RANGE r WITHIN 1.0 OF #walk0"));

  request.epsilon = 3.0;  // rebinding widens the answer set
  Result<QueryResult> rebound = client.ExecAll(request);
  ASSERT_TRUE(rebound.ok()) << rebound.status().ToString();
  ExpectSameAnswer(rebound.value(),
                   Oracle(&fixture.service, "RANGE r WITHIN 3.0 OF #walk0"));

  // Executing a statement id that was never prepared is a typed error.
  request.statement_id = prepared.value() + 999;
  request.epsilon.reset();
  Result<QueryResult> missing = client.ExecAll(request);
  EXPECT_FALSE(missing.ok());
}

TEST(NetProtocolTest, CursorsPaginateEvictAndClose) {
  net::NetServerOptions options;
  options.default_page_rows = 8;
  options.max_cursors_per_connection = 2;
  TestServer fixture(options);
  const std::string text = "NEAREST 30 r TO #walk0";
  const QueryResult oracle = Oracle(&fixture.service, text);
  ASSERT_EQ(oracle.matches.size(), 30u);

  net::NetClient client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", fixture.port(), ClientOptions()).ok());

  // ExecAll drains through the server's 8-row default pages.
  net::ExecRequest request;
  request.text = text;
  Result<QueryResult> drained = client.ExecAll(request);
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  ExpectSameAnswer(drained.value(), oracle);

  // Manual pagination: first page of 7, then the remainder in one fetch.
  request.page_rows = 7;
  Result<net::ResultPage> first = client.Exec(request);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first.value().has_more);
  EXPECT_NE(first.value().cursor_id, 0u);
  EXPECT_EQ(first.value().total_rows, 30u);
  ASSERT_EQ(first.value().matches.size(), 7u);
  Result<net::ResultPage> rest =
      client.Fetch(first.value().cursor_id, 100);
  ASSERT_TRUE(rest.ok()) << rest.status().ToString();
  EXPECT_FALSE(rest.value().has_more);
  ASSERT_EQ(rest.value().matches.size(), 23u);
  for (size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(first.value().matches[i].name, oracle.matches[i].name);
    EXPECT_EQ(first.value().matches[i].distance,
              oracle.matches[i].distance);
  }
  for (size_t i = 0; i < 23; ++i) {
    EXPECT_EQ(rest.value().matches[i].name, oracle.matches[i + 7].name);
    EXPECT_EQ(rest.value().matches[i].distance,
              oracle.matches[i + 7].distance);
  }
  // The drained cursor is gone.
  Result<net::ResultPage> gone = client.Fetch(first.value().cursor_id, 10);
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);

  // Eviction: the third open cursor evicts the oldest.
  request.page_rows = 1;
  Result<net::ResultPage> a = client.Exec(request);
  Result<net::ResultPage> b = client.Exec(request);
  Result<net::ResultPage> c = client.Exec(request);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(client.Fetch(a.value().cursor_id, 100).status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(client.Fetch(b.value().cursor_id, 100).ok());
  EXPECT_TRUE(client.Fetch(c.value().cursor_id, 100).ok());

  // Unknown-cursor fetch is typed; close is idempotent.
  EXPECT_EQ(client.Fetch(0xDEAD, 10).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(client.CloseCursor(0xDEAD).ok());
}

TEST(NetProtocolTest, StatsFrameCarriesConnectionCounters) {
  TestServer fixture;
  net::NetClient client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", fixture.port(), ClientOptions()).ok());
  net::ExecRequest request;
  request.text = "NEAREST 5 r TO #walk0";
  ASSERT_TRUE(client.ExecAll(request).ok());

  Result<net::WireStats> stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats.value().queries, 1u);
  EXPECT_GE(stats.value().connections_accepted, 1u);
  EXPECT_GE(stats.value().connections_active, 1u);
  EXPECT_GT(stats.value().bytes_in, 0u);
  EXPECT_GT(stats.value().bytes_out, 0u);
}

// --- timeouts, backpressure, goodbye ------------------------------------

TEST(NetProtocolTest, IdleConnectionsAreReaped) {
  net::NetServerOptions options;
  options.read_idle_ms = 100.0;
  TestServer fixture(options);
  net::NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fixture.port(),
                             ClientOptions(true, 5000.0))
                  .ok());
  // Say nothing; the slow-loris defense closes us within ~read_idle_ms.
  std::vector<Frame> frames;
  EXPECT_EQ(DrainUntilClose(&client, &frames).code(), StatusCode::kIoError);
  EXPECT_TRUE(frames.empty());
  EXPECT_EQ(fixture.service.stats().net.connections_timed_out, 1);
  ExpectServerStillAnswers(&fixture);
}

TEST(NetProtocolTest, SlowReaderUnderBackpressureStillGetsEveryAnswer) {
  net::NetServerOptions options;
  options.output_buffer_limit = 32 * 1024;
  options.default_page_rows = 65536;  // big single-page responses
  TestServer fixture(options, /*count=*/128, /*length=*/32);
  const std::string text = "PAIRS r WITHIN 100.0";  // ~all pairs match
  const QueryResult oracle = Oracle(&fixture.service, text);
  ASSERT_GT(oracle.pairs.size(), 1000u);

  net::NetClient client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", fixture.port(), ClientOptions()).ok());
  constexpr int kPipelined = 5;
  std::vector<uint8_t> wire;
  for (uint32_t rid = 1; rid <= kPipelined; ++rid) {
    const std::vector<uint8_t> frame = ExecFrame(rid, text);
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  ASSERT_TRUE(client.SendRaw(wire.data(), wire.size()).ok());
  // Don't read: let the responses pile up past output_buffer_limit so the
  // server's backpressure path (read interest dropped, dispatch deferred)
  // engages, then drain. Every answer must arrive intact and in order.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  std::vector<Frame> frames;
  ASSERT_TRUE(ReadFrames(&client, kPipelined, &frames));
  for (int i = 0; i < kPipelined; ++i) {
    EXPECT_EQ(frames[i].header.request_id, static_cast<uint32_t>(i + 1));
    const net::ResultPage page = PageOf(frames[i]);
    EXPECT_FALSE(page.has_more);
    ExpectSameAnswer(QueryResult{page.matches, page.pairs, {}}, oracle);
  }
  // Read interest was restored once we drained.
  net::ExecRequest request;
  request.text = "NEAREST 5 r TO #walk0";
  EXPECT_TRUE(client.ExecAll(request).ok());
}

TEST(NetProtocolTest, GoodbyeIsOrderlyInBothDirections) {
  TestServer fixture;
  {
    net::NetClient client;
    ASSERT_TRUE(
        client.Connect("127.0.0.1", fixture.port(), ClientOptions()).ok());
    net::ExecRequest request;
    request.text = "NEAREST 5 r TO #walk0";
    ASSERT_TRUE(client.ExecAll(request).ok());
    EXPECT_TRUE(client.Goodbye().ok());
  }
  // Server-initiated: shutdown drains connected clients with a goodbye.
  net::NetClient lingering;
  ASSERT_TRUE(lingering
                  .Connect("127.0.0.1", fixture.port(),
                           ClientOptions(true, 5000.0))
                  .ok());
  fixture.server->Shutdown();
  std::vector<Frame> frames;
  EXPECT_EQ(DrainUntilClose(&lingering, &frames).code(),
            StatusCode::kIoError);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.opcode,
            static_cast<uint8_t>(net::Opcode::kGoodbye));
  fixture.loop.join();
}

// --- the crash schedule -------------------------------------------------

// Child half of the net crash schedule: serve a durable relation until
// the armed net.write failpoint SIGKILLs us at a socket-write boundary.
// Exit codes: 2 = harness breakage (test fails), 3 = the failpoint never
// fired (test fails via the WIFSIGNALED assertion).
void CrashChildServe(int port_pipe_fd, const std::string& snapshot,
                     const std::string& wal) {
  Result<Database> opened =
      OpenDurableDatabase(FeatureConfig(), snapshot, wal, nullptr);
  if (!opened.ok()) _exit(2);
  ServiceOptions service_options;
  service_options.snapshot_path = snapshot;
  service_options.wal_path = wal;
  QueryService service(std::move(opened).value(), service_options);
  if (!service.CreateRelation("r").ok()) _exit(2);
  if (!service.BulkLoad("r", workload::RandomWalkSeries(32, 16, 5)).ok()) {
    _exit(2);
  }
  // Write #1 is the hello ack; write #2 (the first result) dies. Arming
  // happens only in this child, so the parent's sockets are unaffected.
  if (!Failpoints::Global()
           .ConfigureFromSpec("net.write=kill:after-1")
           .ok()) {
    _exit(2);
  }
  net::NetServerOptions options;
  options.exec_threads = 1;
  net::NetServer server(&service, options);
  if (!server.Start().ok()) _exit(2);
  const uint16_t port = server.port();
  if (::write(port_pipe_fd, &port, sizeof(port)) !=
      static_cast<ssize_t>(sizeof(port))) {
    _exit(2);
  }
  ::close(port_pipe_fd);
  server.Run();
  _exit(3);
}

TEST(NetCrashTest, MidWriteKillLeavesRecoverableStateAndCleanClientError) {
  const std::string snapshot = TempPath("net_crash.snapshot");
  const std::string wal = TempPath("net_crash.wal");
  std::remove(snapshot.c_str());
  std::remove(wal.c_str());

  int port_pipe[2];
  ASSERT_EQ(::pipe(port_pipe), 0);
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ::close(port_pipe[0]);
    CrashChildServe(port_pipe[1], snapshot, wal);  // never returns
  }
  ::close(port_pipe[1]);
  uint16_t port = 0;
  ASSERT_EQ(::read(port_pipe[0], &port, sizeof(port)),
            static_cast<ssize_t>(sizeof(port)));
  ::close(port_pipe[0]);

  // Every mutation was durably acknowledged before the port was
  // published, so whatever the kill interrupts, the relation survives.
  net::NetClient client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", port, ClientOptions(true, 10000.0)).ok());
  net::ExecRequest request;
  request.text = "NEAREST 5 r TO #walk0";
  Result<QueryResult> over_wire = client.ExecAll(request);
  ASSERT_FALSE(over_wire.ok());  // the server died before the result write
  EXPECT_TRUE(over_wire.status().code() == StatusCode::kIoError ||
              over_wire.status().code() == StatusCode::kTimeout)
      << over_wire.status().ToString();
  client.Close();

  int wait_status = 0;
  ASSERT_EQ(::waitpid(child, &wait_status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wait_status))
      << "child exited with "
      << (WIFEXITED(wait_status) ? WEXITSTATUS(wait_status) : -1);
  EXPECT_EQ(WTERMSIG(wait_status), SIGKILL);

  // Restart: recovery replays the WAL and the answers are bit-identical
  // to a never-crashed service over the same data.
  Result<Database> recovered =
      OpenDurableDatabase(FeatureConfig(), snapshot, wal, nullptr);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  QueryService after(std::move(recovered).value());

  Database oracle_db;
  ASSERT_TRUE(oracle_db.CreateRelation("r").ok());
  ASSERT_TRUE(
      oracle_db.BulkLoad("r", workload::RandomWalkSeries(32, 16, 5)).ok());
  QueryService oracle(std::move(oracle_db));
  for (const char* text :
       {"NEAREST 5 r TO #walk0", "RANGE r WITHIN 2.0 OF #walk3",
        "PAIRS r WITHIN 1.0"}) {
    SCOPED_TRACE(text);
    ExpectSameAnswer(Oracle(&after, text), Oracle(&oracle, text));
  }
  std::remove(snapshot.c_str());
  std::remove(wal.c_str());
}

}  // namespace
}  // namespace simq
