#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "geom/search_region.h"
#include "index/rtree.h"
#include "util/random.h"

namespace simq {
namespace {

struct TreeCase {
  int dims;
  int count;
  bool forced_reinsert;
  int max_entries;
};

std::vector<Point> RandomPoints(Random* rng, int count, int dims,
                                double lo = -100.0, double hi = 100.0) {
  std::vector<Point> points(static_cast<size_t>(count));
  for (Point& p : points) {
    p.resize(static_cast<size_t>(dims));
    for (double& v : p) {
      v = rng->UniformDouble(lo, hi);
    }
  }
  return points;
}

RTree::Options MakeOptions(const TreeCase& c) {
  RTree::Options options;
  options.max_entries = c.max_entries;
  options.min_entries = std::max(2, c.max_entries / 3);
  options.forced_reinsert = c.forced_reinsert;
  return options;
}

class RTreeCaseTest : public ::testing::TestWithParam<TreeCase> {};

TEST_P(RTreeCaseTest, InsertMaintainsInvariantsAndSize) {
  const TreeCase c = GetParam();
  Random rng(100 + static_cast<uint64_t>(c.count * c.dims));
  RTree tree(c.dims, MakeOptions(c));
  const std::vector<Point> points = RandomPoints(&rng, c.count, c.dims);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.InsertPoint(points[i], static_cast<int64_t>(i));
  }
  EXPECT_EQ(tree.size(), c.count);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_GE(tree.height(), 1);
}

TEST_P(RTreeCaseTest, RangeSearchMatchesBruteForce) {
  const TreeCase c = GetParam();
  Random rng(200 + static_cast<uint64_t>(c.count * c.dims));
  RTree tree(c.dims, MakeOptions(c));
  const std::vector<Point> points = RandomPoints(&rng, c.count, c.dims);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.InsertPoint(points[i], static_cast<int64_t>(i));
  }

  for (int query = 0; query < 25; ++query) {
    Point lo(static_cast<size_t>(c.dims));
    Point hi(static_cast<size_t>(c.dims));
    for (int d = 0; d < c.dims; ++d) {
      const double a = rng.UniformDouble(-110.0, 110.0);
      const double b = rng.UniformDouble(-110.0, 110.0);
      lo[static_cast<size_t>(d)] = std::min(a, b);
      hi[static_cast<size_t>(d)] = std::max(a, b);
    }
    const Rect box = Rect::FromBounds(lo, hi);

    std::set<int64_t> expected;
    for (size_t i = 0; i < points.size(); ++i) {
      if (box.ContainsPoint(points[i])) {
        expected.insert(static_cast<int64_t>(i));
      }
    }

    std::set<int64_t> actual;
    tree.SearchGeneric(
        [&](const Rect& rect) { return box.Overlaps(rect); },
        [&](const Rect& rect, int64_t) {
          Point p(static_cast<size_t>(c.dims));
          for (int d = 0; d < c.dims; ++d) {
            p[static_cast<size_t>(d)] = rect.lo(d);
          }
          return box.ContainsPoint(p);
        },
        [&](int64_t id) { actual.insert(id); });
    EXPECT_EQ(actual, expected) << "query " << query;
  }
}

TEST_P(RTreeCaseTest, DeleteHalfKeepsTreeConsistent) {
  const TreeCase c = GetParam();
  Random rng(300 + static_cast<uint64_t>(c.count * c.dims));
  RTree tree(c.dims, MakeOptions(c));
  const std::vector<Point> points = RandomPoints(&rng, c.count, c.dims);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.InsertPoint(points[i], static_cast<int64_t>(i));
  }

  for (size_t i = 0; i < points.size(); i += 2) {
    EXPECT_TRUE(tree.Delete(Rect::FromPoint(points[i]),
                            static_cast<int64_t>(i)))
        << "delete " << i;
  }
  EXPECT_EQ(tree.size(), c.count - (c.count + 1) / 2);
  EXPECT_TRUE(tree.CheckInvariants());

  // Deleted entries are gone; survivors are still findable.
  const Rect everything =
      Rect::FromBounds(Point(static_cast<size_t>(c.dims), -1000.0),
                       Point(static_cast<size_t>(c.dims), 1000.0));
  std::set<int64_t> remaining;
  tree.SearchGeneric(
      [&](const Rect& rect) { return everything.Overlaps(rect); },
      [&](const Rect&, int64_t) { return true; },
      [&](int64_t id) { remaining.insert(id); });
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(remaining.count(static_cast<int64_t>(i)), i % 2 == 0 ? 0u : 1u);
  }
}

TEST_P(RTreeCaseTest, BulkLoadEquivalentToIncremental) {
  const TreeCase c = GetParam();
  Random rng(400 + static_cast<uint64_t>(c.count * c.dims));
  const std::vector<Point> points = RandomPoints(&rng, c.count, c.dims);

  RTree bulk(c.dims, MakeOptions(c));
  std::vector<std::pair<Rect, int64_t>> entries;
  for (size_t i = 0; i < points.size(); ++i) {
    entries.emplace_back(Rect::FromPoint(points[i]),
                         static_cast<int64_t>(i));
  }
  bulk.BulkLoad(std::move(entries));
  EXPECT_EQ(bulk.size(), c.count);
  EXPECT_TRUE(bulk.CheckInvariants());

  // Same query answers as brute force.
  for (int query = 0; query < 10; ++query) {
    Point lo(static_cast<size_t>(c.dims));
    Point hi(static_cast<size_t>(c.dims));
    for (int d = 0; d < c.dims; ++d) {
      const double a = rng.UniformDouble(-110.0, 110.0);
      const double b = rng.UniformDouble(-110.0, 110.0);
      lo[static_cast<size_t>(d)] = std::min(a, b);
      hi[static_cast<size_t>(d)] = std::max(a, b);
    }
    const Rect box = Rect::FromBounds(lo, hi);
    std::set<int64_t> expected;
    for (size_t i = 0; i < points.size(); ++i) {
      if (box.ContainsPoint(points[i])) {
        expected.insert(static_cast<int64_t>(i));
      }
    }
    std::set<int64_t> actual;
    bulk.SearchGeneric(
        [&](const Rect& rect) { return box.Overlaps(rect); },
        [&](const Rect& rect, int64_t) {
          Point p(static_cast<size_t>(c.dims));
          for (int d = 0; d < c.dims; ++d) {
            p[static_cast<size_t>(d)] = rect.lo(d);
          }
          return box.ContainsPoint(p);
        },
        [&](int64_t id) { actual.insert(id); });
    EXPECT_EQ(actual, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RTreeCaseTest,
    ::testing::Values(TreeCase{2, 100, true, 8}, TreeCase{2, 100, false, 8},
                      TreeCase{2, 2000, true, 32},
                      TreeCase{4, 500, true, 16},
                      TreeCase{4, 500, false, 16},
                      TreeCase{6, 1500, true, 32},
                      TreeCase{6, 1500, false, 32},
                      TreeCase{3, 50, true, 4}));

TEST(RTreeTest, EmptyTreeBehaves) {
  RTree tree(3);
  EXPECT_EQ(tree.size(), 0);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_TRUE(tree.bounding_box().IsEmpty());
  std::vector<int64_t> results;
  FeatureConfig config;
  config.num_coefficients = 1;
  config.space = FeatureSpace::kRectangular;
  config.include_mean_std = false;
  // 2-d region over a 3-d tree would be wrong; rebuild a 2-d tree.
  RTree tree2(2);
  const SearchRegion region = SearchRegion::MakeRange(
      {Complex(0.0, 0.0)}, 1.0, config);
  tree2.Search(region, nullptr, &results);
  EXPECT_TRUE(results.empty());
}

TEST(RTreeTest, DeleteNonexistentReturnsFalse) {
  RTree tree(2);
  tree.InsertPoint({1.0, 1.0}, 7);
  EXPECT_FALSE(tree.Delete(Rect::FromPoint({2.0, 2.0}), 7));
  EXPECT_FALSE(tree.Delete(Rect::FromPoint({1.0, 1.0}), 8));
  EXPECT_TRUE(tree.Delete(Rect::FromPoint({1.0, 1.0}), 7));
  EXPECT_EQ(tree.size(), 0);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeTest, DeleteEverythingThenReinsert) {
  Random rng(55);
  RTree tree(2);
  const std::vector<Point> points = RandomPoints(&rng, 300, 2);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.InsertPoint(points[i], static_cast<int64_t>(i));
  }
  for (size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(
        tree.Delete(Rect::FromPoint(points[i]), static_cast<int64_t>(i)));
  }
  EXPECT_EQ(tree.size(), 0);
  EXPECT_TRUE(tree.CheckInvariants());
  for (size_t i = 0; i < points.size(); ++i) {
    tree.InsertPoint(points[i], static_cast<int64_t>(i));
  }
  EXPECT_EQ(tree.size(), 300);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeTest, DuplicatePointsSupported) {
  RTree tree(2);
  for (int i = 0; i < 100; ++i) {
    tree.InsertPoint({1.0, 2.0}, i);
  }
  EXPECT_EQ(tree.size(), 100);
  EXPECT_TRUE(tree.CheckInvariants());
  std::set<int64_t> found;
  const Rect box = Rect::FromBounds({0.0, 0.0}, {3.0, 3.0});
  tree.SearchGeneric([&](const Rect& r) { return box.Overlaps(r); },
                     [&](const Rect&, int64_t) { return true; },
                     [&](int64_t id) { found.insert(id); });
  EXPECT_EQ(found.size(), 100u);
}

TEST(RTreeTest, SearchRegionIdentityMatchesBruteForce) {
  Random rng(66);
  FeatureConfig config;
  config.num_coefficients = 2;
  config.space = FeatureSpace::kRectangular;
  config.include_mean_std = false;
  RTree tree(FeatureDimension(config));
  const std::vector<Point> points = RandomPoints(&rng, 800, 4, -3.0, 3.0);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.InsertPoint(points[i], static_cast<int64_t>(i));
  }
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<Complex> query = {
        Complex(rng.UniformDouble(-3.0, 3.0), rng.UniformDouble(-3.0, 3.0)),
        Complex(rng.UniformDouble(-3.0, 3.0), rng.UniformDouble(-3.0, 3.0))};
    const double eps = rng.UniformDouble(0.2, 2.0);
    const SearchRegion region = SearchRegion::MakeRange(query, eps, config);
    std::set<int64_t> expected;
    for (size_t i = 0; i < points.size(); ++i) {
      if (region.ContainsPoint(points[i])) {
        expected.insert(static_cast<int64_t>(i));
      }
    }
    std::vector<int64_t> results;
    tree.Search(region, nullptr, &results);
    EXPECT_EQ(std::set<int64_t>(results.begin(), results.end()), expected);
  }
}

TEST(RTreeTest, TransformedSearchMatchesBruteForce) {
  // Algorithm 2 end-to-end at the index level, polar space with a complex
  // multiplier (safe by Theorem 3).
  Random rng(77);
  FeatureConfig config;
  config.num_coefficients = 2;
  config.space = FeatureSpace::kPolar;
  config.include_mean_std = false;
  RTree tree(FeatureDimension(config));

  std::vector<Point> points;
  for (int i = 0; i < 1000; ++i) {
    const std::vector<Complex> coeffs = {
        Complex(rng.UniformDouble(-2.0, 2.0), rng.UniformDouble(-2.0, 2.0)),
        Complex(rng.UniformDouble(-2.0, 2.0), rng.UniformDouble(-2.0, 2.0))};
    points.push_back(CoefficientsToCoords(coeffs, FeatureSpace::kPolar));
    tree.InsertPoint(points.back(), i);
  }

  for (int trial = 0; trial < 20; ++trial) {
    const LinearTransform transform(
        {Complex(rng.UniformDouble(-1.5, 1.5), rng.UniformDouble(-1.5, 1.5)),
         Complex(rng.UniformDouble(-1.5, 1.5), rng.UniformDouble(-1.5, 1.5))},
        {Complex(0.0, 0.0), Complex(0.0, 0.0)});
    const std::vector<DimAffine> affines =
        LowerToFeatureSpace(transform, config);
    const std::vector<Complex> query = {
        Complex(rng.UniformDouble(-2.0, 2.0), rng.UniformDouble(-2.0, 2.0)),
        Complex(rng.UniformDouble(-2.0, 2.0), rng.UniformDouble(-2.0, 2.0))};
    const double eps = rng.UniformDouble(0.3, 1.5);
    const SearchRegion region = SearchRegion::MakeRange(query, eps, config);

    std::set<int64_t> expected;
    for (size_t i = 0; i < points.size(); ++i) {
      if (region.ContainsTransformedPoint(points[i], affines)) {
        expected.insert(static_cast<int64_t>(i));
      }
    }
    std::vector<int64_t> results;
    tree.Search(region, &affines, &results);
    EXPECT_EQ(std::set<int64_t>(results.begin(), results.end()), expected)
        << "trial " << trial;
  }
}

TEST(RTreeTest, NearestNeighborsMatchBruteForce) {
  Random rng(88);
  FeatureConfig config;
  config.num_coefficients = 2;
  config.space = FeatureSpace::kRectangular;
  config.include_mean_std = false;
  RTree tree(FeatureDimension(config));
  std::vector<Point> points = RandomPoints(&rng, 600, 4, -5.0, 5.0);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.InsertPoint(points[i], static_cast<int64_t>(i));
  }

  for (int trial = 0; trial < 10; ++trial) {
    const std::vector<Complex> query = {
        Complex(rng.UniformDouble(-5.0, 5.0), rng.UniformDouble(-5.0, 5.0)),
        Complex(rng.UniformDouble(-5.0, 5.0), rng.UniformDouble(-5.0, 5.0))};
    const NnLowerBound bound(query, config);
    const std::vector<DimAffine> identity(4);

    auto exact = [&](int64_t id) {
      return bound.ToTransformedPoint(points[static_cast<size_t>(id)],
                                      identity);
    };
    const int k = 7;
    const auto result = tree.NearestNeighbors(bound, nullptr, k, exact);
    ASSERT_EQ(static_cast<int>(result.size()), k);

    std::vector<double> all;
    for (size_t i = 0; i < points.size(); ++i) {
      all.push_back(exact(static_cast<int64_t>(i)));
    }
    std::sort(all.begin(), all.end());
    for (int i = 0; i < k; ++i) {
      EXPECT_NEAR(result[static_cast<size_t>(i)].second,
                  all[static_cast<size_t>(i)], 1e-9)
          << "rank " << i;
    }
    // Results must come back sorted.
    for (int i = 1; i < k; ++i) {
      EXPECT_LE(result[static_cast<size_t>(i - 1)].second,
                result[static_cast<size_t>(i)].second + 1e-12);
    }
  }
}

// Conservative epsilon pair predicate: rectangles whose per-dimension gap
// is at most eps. Exact for point entries under the Chebyshev metric.
bool WithinEps(const Rect& a, const Rect& b, double eps) {
  for (int d = 0; d < a.dims(); ++d) {
    if (a.lo(d) > b.hi(d) + eps || b.lo(d) > a.hi(d) + eps) {
      return false;
    }
  }
  return true;
}

TEST(RTreeTest, SynchronizedSelfJoinMatchesBruteForce) {
  Random rng(222);
  RTree tree(3);
  const std::vector<Point> points = RandomPoints(&rng, 400, 3, -20.0, 20.0);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.InsertPoint(points[i], static_cast<int64_t>(i));
  }
  const double eps = 2.0;

  std::set<std::pair<int64_t, int64_t>> expected;
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = 0; j < points.size(); ++j) {
      bool close = true;
      for (int d = 0; d < 3; ++d) {
        if (std::fabs(points[i][static_cast<size_t>(d)] -
                      points[j][static_cast<size_t>(d)]) > eps) {
          close = false;
          break;
        }
      }
      if (close) {
        expected.insert({static_cast<int64_t>(i), static_cast<int64_t>(j)});
      }
    }
  }

  std::set<std::pair<int64_t, int64_t>> actual;
  tree.ResetNodeAccesses();
  tree.JoinWith(
      tree, [&](const Rect& a, const Rect& b) { return WithinEps(a, b, eps); },
      [&](int64_t a, int64_t b) { actual.insert({a, b}); });
  EXPECT_EQ(actual, expected);
  EXPECT_GT(tree.node_accesses(), 0);
}

TEST(RTreeTest, SynchronizedCrossJoinMatchesBruteForce) {
  Random rng(333);
  RTree left(2);
  RTree right(2);
  const std::vector<Point> left_points =
      RandomPoints(&rng, 300, 2, -20.0, 20.0);
  const std::vector<Point> right_points =
      RandomPoints(&rng, 250, 2, -20.0, 20.0);
  for (size_t i = 0; i < left_points.size(); ++i) {
    left.InsertPoint(left_points[i], static_cast<int64_t>(i));
  }
  for (size_t j = 0; j < right_points.size(); ++j) {
    right.InsertPoint(right_points[j], static_cast<int64_t>(j));
  }
  const double eps = 1.5;

  std::set<std::pair<int64_t, int64_t>> expected;
  for (size_t i = 0; i < left_points.size(); ++i) {
    for (size_t j = 0; j < right_points.size(); ++j) {
      if (std::fabs(left_points[i][0] - right_points[j][0]) <= eps &&
          std::fabs(left_points[i][1] - right_points[j][1]) <= eps) {
        expected.insert({static_cast<int64_t>(i), static_cast<int64_t>(j)});
      }
    }
  }
  std::set<std::pair<int64_t, int64_t>> actual;
  left.JoinWith(
      right,
      [&](const Rect& a, const Rect& b) { return WithinEps(a, b, eps); },
      [&](int64_t a, int64_t b) { actual.insert({a, b}); });
  EXPECT_EQ(actual, expected);
}

TEST(RTreeTest, JoinWithEmptyTreesEmitsNothing) {
  RTree a(2);
  RTree b(2);
  a.InsertPoint({1.0, 1.0}, 0);
  int emitted = 0;
  a.JoinWith(b, [](const Rect&, const Rect&) { return true; },
             [&](int64_t, int64_t) { ++emitted; });
  EXPECT_EQ(emitted, 0);
  b.JoinWith(a, [](const Rect&, const Rect&) { return true; },
             [&](int64_t, int64_t) { ++emitted; });
  EXPECT_EQ(emitted, 0);
}

TEST(RTreeTest, NodeAccessCountingIsSelective) {
  Random rng(99);
  FeatureConfig config;
  config.num_coefficients = 1;
  config.space = FeatureSpace::kRectangular;
  config.include_mean_std = false;
  RTree tree(2);
  for (int i = 0; i < 5000; ++i) {
    tree.InsertPoint({rng.UniformDouble(-100.0, 100.0),
                      rng.UniformDouble(-100.0, 100.0)},
                     i);
  }
  tree.ResetNodeAccesses();
  const SearchRegion region =
      SearchRegion::MakeRange({Complex(0.0, 0.0)}, 1.0, config);
  std::vector<int64_t> results;
  tree.Search(region, nullptr, &results);
  const int64_t selective = tree.node_accesses();
  EXPECT_GT(selective, 0);
  EXPECT_LT(selective, tree.node_count() / 4)
      << "a selective query should touch a small fraction of nodes";
}

TEST(RTreeTest, HeightGrowsLogarithmically) {
  Random rng(111);
  RTree tree(2);
  for (int i = 0; i < 10000; ++i) {
    tree.InsertPoint({rng.UniformDouble(0.0, 1.0), rng.UniformDouble(0.0, 1.0)},
                     i);
  }
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_LE(tree.height(), 5);  // fanout >= 12 on 10k points
}

}  // namespace
}  // namespace simq
