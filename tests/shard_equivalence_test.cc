// Shard-equivalence property suite: the sharded scatter-gather engine
// must return answers bit-identical to the unsharded engine -- same ids,
// same names, same IEEE-754 distance bits, same tie-breaking -- for every
// shard count, partition policy, strategy, and traversal engine, on
// randomized workloads. Also asserts the accounting contracts: node
// accesses are monotone under cross-shard kNN pruning (pruned <=
// unpruned), and relation epochs roll up one bump per shard mutation.
//
// The comparison discipline mirrors the engine's determinism contracts:
// range/kNN answers are canonically ordered by (distance, id) by the
// engine itself and are compared verbatim; join pair sets are compared
// after sorting by (first, second), since the per-probe candidate order
// of the index join legitimately depends on tree shape (it already
// differs between the pointer and packed engines on one shard).

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "core/sharded_relation.h"
#include "core/transformation.h"
#include "workload/generators.h"

namespace simq {
namespace {

Database BuildDatabase(const std::vector<TimeSeries>& series,
                       const ShardingOptions& sharding,
                       bool incremental = false) {
  Database db(FeatureConfig(), RTree::Options(), sharding);
  EXPECT_TRUE(db.CreateRelation("r").ok());
  if (incremental) {
    for (const TimeSeries& ts : series) {
      EXPECT_TRUE(db.Insert("r", ts).ok());
    }
  } else {
    EXPECT_TRUE(db.BulkLoad("r", series).ok());
  }
  return db;
}

ShardingOptions Sharded(int shards, ShardingOptions::Partition partition =
                                        ShardingOptions::Partition::kHash) {
  ShardingOptions options;
  options.num_shards = shards;
  options.partition = partition;
  return options;
}

void ExpectSameMatches(const QueryResult& expected, const QueryResult& actual,
                       const std::string& context) {
  ASSERT_EQ(expected.matches.size(), actual.matches.size()) << context;
  for (size_t i = 0; i < expected.matches.size(); ++i) {
    EXPECT_EQ(expected.matches[i].id, actual.matches[i].id) << context;
    EXPECT_EQ(expected.matches[i].name, actual.matches[i].name) << context;
    // Bit-exact: the sharded kernels must run the same arithmetic.
    EXPECT_EQ(expected.matches[i].distance, actual.matches[i].distance)
        << context;
  }
}

std::vector<PairMatch> SortedPairs(const QueryResult& result) {
  std::vector<PairMatch> pairs = result.pairs;
  std::sort(pairs.begin(), pairs.end(),
            [](const PairMatch& a, const PairMatch& b) {
              if (a.first != b.first) {
                return a.first < b.first;
              }
              return a.second < b.second;
            });
  return pairs;
}

void ExpectSamePairs(const QueryResult& expected, const QueryResult& actual,
                     const std::string& context) {
  const std::vector<PairMatch> a = SortedPairs(expected);
  const std::vector<PairMatch> b = SortedPairs(actual);
  ASSERT_EQ(a.size(), b.size()) << context;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first) << context;
    EXPECT_EQ(a[i].second, b[i].second) << context;
    EXPECT_EQ(a[i].distance, b[i].distance) << context;  // bit-exact
  }
}

const std::vector<int> kShardCounts = {2, 4, 8};

// Workload with engineered ties: clones of a few walks under fresh names,
// so kNN tie-breaking at the k-th distance is actually exercised across
// shard boundaries.
std::vector<TimeSeries> TieWorkload(int count, int length, uint64_t seed) {
  std::vector<TimeSeries> series =
      workload::RandomWalkSeries(count, length, seed);
  const size_t base = series.size();
  for (int c = 0; c < 6; ++c) {
    TimeSeries clone = series[static_cast<size_t>(c * 7) % base];
    clone.id = "clone" + std::to_string(c);
    series.push_back(clone);
  }
  return series;
}

TEST(ShardEquivalence, RangeQueriesAllStrategiesAndPolicies) {
  for (const uint64_t seed : {11u, 29u}) {
    const std::vector<TimeSeries> series = TieWorkload(130, 48, seed);
    const Database baseline = BuildDatabase(series, ShardingOptions());
    const std::vector<std::string> queries = {
        "RANGE r WITHIN 2.5 OF #walk5",
        "RANGE r WITHIN 2.5 OF #walk5 VIA SCAN",
        "RANGE r WITHIN 2.5 OF #walk5 VIA FULLSCAN",
        "RANGE r WITHIN 0 OF #clone0",
        "RANGE r WITHIN 4.0 OF #walk9 USING mavg(8)",
        "RANGE r WITHIN 4.0 OF #walk9 USING mavg(8) VIA SCAN",
        "RANGE r WITHIN 6.0 OF #walk2 USING reverse VIA INDEX",
        "RANGE r WITHIN 3.0 OF #walk3 MEAN 30 80 STD 0.5 9",
        "RANGE r WITHIN 8.0 OF #walk4 MODE RAW",
    };
    for (const int shards : kShardCounts) {
      for (const auto partition : {ShardingOptions::Partition::kHash,
                                   ShardingOptions::Partition::kRange}) {
        const Database sharded =
            BuildDatabase(series, Sharded(shards, partition));
        for (const std::string& text : queries) {
          const std::string context =
              text + " @ shards=" + std::to_string(shards) +
              " partition=" + std::to_string(static_cast<int>(partition));
          const Result<QueryResult> want = baseline.ExecuteText(text);
          const Result<QueryResult> got = sharded.ExecuteText(text);
          ASSERT_TRUE(want.ok()) << context << ": " << want.status().ToString();
          ASSERT_TRUE(got.ok()) << context << ": " << got.status().ToString();
          ExpectSameMatches(want.value(), got.value(), context);
        }
      }
    }
  }
}

TEST(ShardEquivalence, NearestNeighborsWithTiesAllShardCounts) {
  const std::vector<TimeSeries> series = TieWorkload(120, 32, 17);
  const Database baseline = BuildDatabase(series, ShardingOptions());
  const std::vector<std::string> queries = {
      "NEAREST 1 r TO #walk7",
      "NEAREST 5 r TO #clone1",  // exact-duplicate ties at distance 0
      "NEAREST 17 r TO #walk3 USING mavg(6)",
      "NEAREST 9 r TO #walk4 VIA SCAN",
      "NEAREST 200 r TO #walk0",  // k > relation size
      "NEAREST 4 r TO #walk2 MEAN 20 70",
  };
  for (const int shards : kShardCounts) {
    const Database sharded = BuildDatabase(series, Sharded(shards));
    for (const std::string& text : queries) {
      const std::string context =
          text + " @ shards=" + std::to_string(shards);
      const Result<QueryResult> want = baseline.ExecuteText(text);
      const Result<QueryResult> got = sharded.ExecuteText(text);
      ASSERT_TRUE(want.ok()) << context;
      ASSERT_TRUE(got.ok()) << context;
      ExpectSameMatches(want.value(), got.value(), context);
    }
  }
}

TEST(ShardEquivalence, SelfJoinsAllMethodsAndRuleShapes) {
  const std::vector<TimeSeries> series =
      workload::RandomWalkSeries(90, 32, 23);
  const Database baseline = BuildDatabase(series, ShardingOptions());
  const auto mavg = MakeMovingAverageRule(6);
  const auto reverse = MakeReverseRule();
  const double eps = 3.0;
  for (const int shards : kShardCounts) {
    const Database sharded = BuildDatabase(series, Sharded(shards));
    for (const JoinMethod method :
         {JoinMethod::kFullScan, JoinMethod::kScanEarlyAbandon,
          JoinMethod::kIndexNoTransform, JoinMethod::kIndexTransform}) {
      const std::string context = "method=" +
          std::to_string(static_cast<int>(method)) +
          " @ shards=" + std::to_string(shards);
      const Result<QueryResult> want =
          baseline.SelfJoin("r", eps, mavg.get(), method);
      const Result<QueryResult> got =
          sharded.SelfJoin("r", eps, mavg.get(), method);
      ASSERT_TRUE(want.ok()) << context;
      ASSERT_TRUE(got.ok()) << context;
      ExpectSamePairs(want.value(), got.value(), context);
    }
    // Asymmetric join r >< T(r) (the hedging shape), index and scan.
    for (const JoinMethod method :
         {JoinMethod::kScanEarlyAbandon, JoinMethod::kIndexTransform}) {
      const std::string context =
          "asymmetric method=" + std::to_string(static_cast<int>(method)) +
          " @ shards=" + std::to_string(shards);
      const Result<QueryResult> want = baseline.SelfJoin(
          "r", eps, mavg.get(), reverse.get(), method);
      const Result<QueryResult> got =
          sharded.SelfJoin("r", eps, mavg.get(), reverse.get(), method);
      ASSERT_TRUE(want.ok()) << context;
      ASSERT_TRUE(got.ok()) << context;
      ExpectSamePairs(want.value(), got.value(), context);
    }
    // The textual PAIRS planner path.
    const Result<QueryResult> want =
        baseline.ExecuteText("PAIRS r WITHIN 1.5");
    const Result<QueryResult> got = sharded.ExecuteText("PAIRS r WITHIN 1.5");
    ASSERT_TRUE(want.ok() && got.ok());
    ExpectSamePairs(want.value(), got.value(),
                    "PAIRS @ shards=" + std::to_string(shards));
  }
}

TEST(ShardEquivalence, IncrementalInsertRoutingMatchesBulkLoad) {
  const std::vector<TimeSeries> series =
      workload::RandomWalkSeries(70, 24, 31);
  const Database baseline = BuildDatabase(series, ShardingOptions());
  for (const auto partition : {ShardingOptions::Partition::kHash,
                               ShardingOptions::Partition::kRange}) {
    // Pure incremental build and a mixed bulk+incremental build must both
    // agree with the unsharded engine.
    const Database incremental =
        BuildDatabase(series, Sharded(3, partition), /*incremental=*/true);
    Database mixed(FeatureConfig(), RTree::Options(), Sharded(3, partition));
    ASSERT_TRUE(mixed.CreateRelation("r").ok());
    const std::vector<TimeSeries> head(series.begin(), series.begin() + 40);
    ASSERT_TRUE(mixed.BulkLoad("r", head).ok());
    for (size_t i = 40; i < series.size(); ++i) {
      ASSERT_TRUE(mixed.Insert("r", series[i]).ok());
    }
    for (const std::string& text :
         {std::string("RANGE r WITHIN 3.0 OF #walk5"),
          std::string("NEAREST 7 r TO #walk8 USING mavg(4)"),
          std::string("PAIRS r WITHIN 2.0")}) {
      const Result<QueryResult> want = baseline.ExecuteText(text);
      const Result<QueryResult> inc = incremental.ExecuteText(text);
      const Result<QueryResult> mix = mixed.ExecuteText(text);
      ASSERT_TRUE(want.ok() && inc.ok() && mix.ok()) << text;
      ExpectSameMatches(want.value(), inc.value(), "incremental " + text);
      ExpectSameMatches(want.value(), mix.value(), "mixed " + text);
      ExpectSamePairs(want.value(), inc.value(), "incremental " + text);
      ExpectSamePairs(want.value(), mix.value(), "mixed " + text);
    }
  }
}

TEST(ShardEquivalence, PointerEngineScatterGatherAgreesToo) {
  const std::vector<TimeSeries> series = TieWorkload(80, 32, 41);
  Database baseline = BuildDatabase(series, ShardingOptions());
  baseline.set_index_engine(IndexEngine::kPointer);
  for (const int shards : {2, 5}) {
    Database sharded = BuildDatabase(series, Sharded(shards));
    sharded.set_index_engine(IndexEngine::kPointer);
    for (const std::string& text :
         {std::string("RANGE r WITHIN 2.0 OF #walk1 VIA INDEX"),
          std::string("NEAREST 6 r TO #clone2 VIA INDEX")}) {
      const Result<QueryResult> want = baseline.ExecuteText(text);
      const Result<QueryResult> got = sharded.ExecuteText(text);
      ASSERT_TRUE(want.ok() && got.ok()) << text;
      ExpectSameMatches(want.value(), got.value(),
                        text + " @ pointer shards=" + std::to_string(shards));
    }
  }
}

TEST(ShardEquivalence, CrossShardPruningIsMonotoneAndAnswerPreserving) {
  const std::vector<TimeSeries> series = TieWorkload(200, 32, 53);
  for (const int shards : kShardCounts) {
    Database pruned = BuildDatabase(series, Sharded(shards));
    Database unpruned = BuildDatabase(series, Sharded(shards));
    unpruned.set_cross_shard_knn_pruning(false);
    ASSERT_TRUE(pruned.cross_shard_knn_pruning());
    for (const std::string& text :
         {std::string("NEAREST 3 r TO #walk11 VIA INDEX"),
          std::string("NEAREST 10 r TO #clone3 VIA INDEX"),
          std::string("NEAREST 25 r TO #walk40 USING mavg(4) VIA INDEX")}) {
      const std::string context =
          text + " @ shards=" + std::to_string(shards);
      const Result<QueryResult> fast = pruned.ExecuteText(text);
      const Result<QueryResult> slow = unpruned.ExecuteText(text);
      ASSERT_TRUE(fast.ok() && slow.ok()) << context;
      // Pruning must never change the answer...
      ExpectSameMatches(slow.value(), fast.value(), context);
      // ...and the node-access accounting must be monotone: the pruned
      // scatter visits a subset of the unpruned scatter's nodes, and
      // every scatter visits at least the shard roots.
      EXPECT_LE(fast.value().stats.node_accesses,
                slow.value().stats.node_accesses)
          << context;
      EXPECT_GE(fast.value().stats.node_accesses, shards) << context;
    }
  }
}

TEST(ShardEquivalence, EpochRollsUpOneBumpPerShardMutation) {
  const std::vector<TimeSeries> series =
      workload::RandomWalkSeries(40, 16, 61);
  Database db(FeatureConfig(), RTree::Options(), Sharded(4));
  ASSERT_TRUE(db.CreateRelation("r").ok());
  const Relation* relation = db.GetRelation("r");
  ASSERT_NE(relation, nullptr);
  EXPECT_EQ(relation->epoch(), 0u);

  // A bulk load bumps each loaded shard once (all 4 receive records).
  ASSERT_TRUE(db.BulkLoad("r", series).ok());
  EXPECT_EQ(relation->epoch(), 4u);

  // Each insert bumps exactly one shard.
  TimeSeries extra = series[0];
  extra.id = "extra0";
  ASSERT_TRUE(db.Insert("r", extra).ok());
  EXPECT_EQ(relation->epoch(), 5u);
  extra.id = "extra1";
  ASSERT_TRUE(db.Insert("r", extra).ok());
  EXPECT_EQ(relation->epoch(), 6u);

  // The locator and shard sizes stay consistent.
  const ShardedRelation& data = relation->sharded();
  int64_t total = 0;
  for (int s = 0; s < data.num_shards(); ++s) {
    const RelationShard& shard = data.shard(s);
    for (int64_t i = 0; i < shard.size(); ++i) {
      const int64_t g = shard.global_id(i);
      EXPECT_EQ(data.shard_of(g), s);
      EXPECT_EQ(data.local_of(g), i);
    }
    total += shard.size();
  }
  EXPECT_EQ(total, relation->size());
}

}  // namespace
}  // namespace simq
