#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/edit_distance.h"
#include "core/similarity.h"
#include "core/transformation.h"
#include "util/random.h"
#include "util/stats.h"

namespace simq {
namespace {

std::vector<double> RandomSignal(Random* rng, int n) {
  std::vector<double> x(static_cast<size_t>(n));
  for (double& v : x) {
    v = rng->UniformDouble(-3.0, 3.0);
  }
  return x;
}

TEST(TransformationDistanceTest, NoRulesIsEuclidean) {
  Random rng(1);
  const std::vector<double> x = RandomSignal(&rng, 16);
  const std::vector<double> y = RandomSignal(&rng, 16);
  const SimilarityResult result =
      TransformationDistance(x, y, {}, SimilarityOptions());
  EXPECT_NEAR(result.distance, EuclideanDistance(x, y), 1e-12);
  EXPECT_TRUE(result.applied_to_x.empty());
  EXPECT_TRUE(result.applied_to_y.empty());
}

TEST(TransformationDistanceTest, ReverseRuleRecognizesMirrors) {
  Random rng(2);
  const std::vector<double> x = RandomSignal(&rng, 12);
  std::vector<double> y(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    y[i] = -x[i];
  }
  const auto reverse = MakeReverseRule(0.25);
  const SimilarityResult result =
      TransformationDistance(x, y, {reverse.get()}, SimilarityOptions());
  // One reverse application at cost 0.25 makes them identical.
  EXPECT_NEAR(result.distance, 0.25, 1e-9);
  ASSERT_EQ(result.applied_to_x.size() + result.applied_to_y.size(), 1u);
}

TEST(TransformationDistanceTest, WarpBridgesDifferentLengths) {
  // Example 1.2: p warped by 2 equals s; without the rule the distance is
  // infinite (different lengths).
  const std::vector<double> p = {20, 21, 20, 23};
  const std::vector<double> s = {20, 20, 21, 21, 20, 20, 23, 23};
  const auto warp = MakeTimeWarpRule(2, /*cost=*/1.0);

  const SimilarityResult without =
      TransformationDistance(p, s, {}, SimilarityOptions());
  EXPECT_TRUE(std::isinf(without.distance));

  const SimilarityResult with_warp =
      TransformationDistance(p, s, {warp.get()}, SimilarityOptions());
  EXPECT_NEAR(with_warp.distance, 1.0, 1e-9);
  ASSERT_EQ(with_warp.applied_to_x.size(), 1u);
  EXPECT_EQ(with_warp.applied_to_x[0], "warp(2)");
}

TEST(TransformationDistanceTest, CostBudgetPrunesDerivations) {
  Random rng(3);
  const std::vector<double> x = RandomSignal(&rng, 12);
  std::vector<double> y(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    y[i] = -x[i];
  }
  const double direct = EuclideanDistance(x, y);
  const auto expensive_reverse = MakeReverseRule(direct + 10.0);
  const SimilarityResult result = TransformationDistance(
      x, y, {expensive_reverse.get()}, SimilarityOptions());
  // Using the rule would cost more than the plain distance: not applied.
  EXPECT_NEAR(result.distance, direct, 1e-12);
  EXPECT_TRUE(result.applied_to_x.empty());
}

TEST(TransformationDistanceTest, ExplicitBudgetLimitsSearch) {
  Random rng(4);
  const std::vector<double> x = RandomSignal(&rng, 10);
  std::vector<double> y(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    y[i] = -x[i];
  }
  const auto reverse = MakeReverseRule(2.0);
  SimilarityOptions options;
  options.cost_budget = 1.0;  // cheaper than the rule
  const SimilarityResult result =
      TransformationDistance(x, y, {reverse.get()}, options);
  EXPECT_NEAR(result.distance, EuclideanDistance(x, y), 1e-12);
}

TEST(TransformationDistanceTest, SmoothingBothSidesHelps) {
  // Two noisy versions of one trend: smoothing *both* sides (the fourth
  // branch of Equation 10) beats smoothing either side alone.
  Random rng(5);
  const int n = 64;
  std::vector<double> trend(static_cast<size_t>(n));
  trend[0] = 0.0;
  for (int i = 1; i < n; ++i) {
    trend[static_cast<size_t>(i)] =
        trend[static_cast<size_t>(i - 1)] + rng.UniformDouble(-1.0, 1.0);
  }
  std::vector<double> x = trend;
  std::vector<double> y = trend;
  for (int i = 0; i < n; ++i) {
    x[static_cast<size_t>(i)] += rng.UniformDouble(-1.0, 1.0);
    y[static_cast<size_t>(i)] += rng.UniformDouble(-1.0, 1.0);
  }
  const auto smooth = MakeMovingAverageRule(10, /*cost=*/0.1);
  SimilarityOptions both;
  both.max_rule_applications = 1;
  const SimilarityResult with_both =
      TransformationDistance(x, y, {smooth.get()}, both);

  SimilarityOptions one_side = both;
  one_side.transform_both_sides = false;
  const SimilarityResult with_one =
      TransformationDistance(x, y, {smooth.get()}, one_side);

  EXPECT_LT(with_both.distance, with_one.distance);
  EXPECT_EQ(with_both.applied_to_x.size(), 1u);
  EXPECT_EQ(with_both.applied_to_y.size(), 1u);
}

TEST(TransformationDistanceTest, DepthCapBoundsApplications) {
  Random rng(6);
  const std::vector<double> x = RandomSignal(&rng, 16);
  const std::vector<double> y = RandomSignal(&rng, 16);
  const auto smooth = MakeMovingAverageRule(4, /*cost=*/0.0);
  SimilarityOptions options;
  options.max_rule_applications = 2;
  const SimilarityResult result =
      TransformationDistance(x, y, {smooth.get()}, options);
  EXPECT_LE(result.applied_to_x.size(), 2u);
  EXPECT_LE(result.applied_to_y.size(), 2u);
  EXPECT_GT(result.states_expanded, 0);
}

TEST(TransformationDistanceTest, ZeroCostSmoothingMonotone) {
  // With free smoothing and growing depth, the distance never increases:
  // a superset of derivations can only improve the minimum.
  Random rng(7);
  const std::vector<double> x = RandomSignal(&rng, 32);
  const std::vector<double> y = RandomSignal(&rng, 32);
  const auto smooth = MakeMovingAverageRule(8, 0.0);
  double previous = 1e300;
  for (int depth = 0; depth <= 3; ++depth) {
    SimilarityOptions options;
    options.max_rule_applications = depth;
    const SimilarityResult result =
        TransformationDistance(x, y, {smooth.get()}, options);
    EXPECT_LE(result.distance, previous + 1e-9) << "depth " << depth;
    previous = result.distance;
  }
}

TEST(TransformationDistanceTest, PicksCheapestOfSeveralRules) {
  Random rng(8);
  const std::vector<double> x = RandomSignal(&rng, 12);
  std::vector<double> y(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    y[i] = -x[i];
  }
  const auto cheap = MakeReverseRule(0.5);
  const auto costly = MakeMovingAverageRule(3, 5.0);
  const SimilarityResult result = TransformationDistance(
      x, y, {costly.get(), cheap.get()}, SimilarityOptions());
  EXPECT_NEAR(result.distance, 0.5, 1e-9);
}

TEST(TransformationDistanceTest, SymmetricWhenBothSidesAllowed) {
  Random rng(9);
  const std::vector<double> x = RandomSignal(&rng, 16);
  const std::vector<double> y = RandomSignal(&rng, 16);
  const auto reverse = MakeReverseRule(0.3);
  const auto smooth = MakeMovingAverageRule(4, 0.2);
  SimilarityOptions options;
  options.max_rule_applications = 2;
  const SimilarityResult xy = TransformationDistance(
      x, y, {reverse.get(), smooth.get()}, options);
  const SimilarityResult yx = TransformationDistance(
      y, x, {reverse.get(), smooth.get()}, options);
  EXPECT_NEAR(xy.distance, yx.distance, 1e-9);
}

// --- Edit-distance solvers -------------------------------------------------

TEST(EditDistanceTest, IdenticalSequencesAreFree) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(WeightedEditDistance(a, a, EditCosts()), 0.0);
}

TEST(EditDistanceTest, PureInsertionsAndDeletions) {
  EditCosts costs;
  costs.insert_cost = 2.0;
  costs.delete_cost = 3.0;
  const std::vector<double> empty;
  const std::vector<double> abc = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(WeightedEditDistance(empty, abc, costs), 6.0);
  EXPECT_DOUBLE_EQ(WeightedEditDistance(abc, empty, costs), 9.0);
}

TEST(EditDistanceTest, UnitCostsMatchClassicEditDistance) {
  EditCosts costs;
  costs.insert_cost = 1.0;
  costs.delete_cost = 1.0;
  costs.replace_flat = 1.0;
  costs.replace_per_unit = 0.0;
  // "kitten" -> "sitting" analogue over digit sequences: distance 3.
  const std::vector<double> kitten = {10, 8, 19, 19, 4, 13};
  const std::vector<double> sitting = {18, 8, 19, 19, 8, 13, 6};
  EXPECT_DOUBLE_EQ(WeightedEditDistance(kitten, sitting, costs), 3.0);
}

TEST(EditDistanceTest, MagnitudeSensitiveReplacement) {
  EditCosts costs;  // replace cost = |a - b|, insert/delete cost 1 each
  const std::vector<double> a = {1.0, 5.0};
  const std::vector<double> b = {1.0, 7.5};
  // Replacing 5.0 by 7.5 costs 2.5, but delete+insert costs 2.0: the DP
  // must take the cheaper derivation.
  EXPECT_DOUBLE_EQ(WeightedEditDistance(a, b, costs), 2.0);
  // With expensive insert/delete rules, replacement wins.
  costs.insert_cost = 5.0;
  costs.delete_cost = 5.0;
  EXPECT_DOUBLE_EQ(WeightedEditDistance(a, b, costs), 2.5);
}

TEST(EditDistanceTest, SymmetricUnderSymmetricCosts) {
  Random rng(10);
  EditCosts costs;
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<double> a =
        RandomSignal(&rng, static_cast<int>(rng.UniformInt(1, 12)));
    const std::vector<double> b =
        RandomSignal(&rng, static_cast<int>(rng.UniformInt(1, 12)));
    EXPECT_NEAR(WeightedEditDistance(a, b, costs),
                WeightedEditDistance(b, a, costs), 1e-9);
  }
}

TEST(EditDistanceTest, TriangleInequalityHolds) {
  Random rng(11);
  EditCosts costs;
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<double> a = RandomSignal(&rng, 8);
    const std::vector<double> b = RandomSignal(&rng, 8);
    const std::vector<double> c = RandomSignal(&rng, 8);
    const double ab = WeightedEditDistance(a, b, costs);
    const double bc = WeightedEditDistance(b, c, costs);
    const double ac = WeightedEditDistance(a, c, costs);
    EXPECT_LE(ac, ab + bc + 1e-9);
  }
}

TEST(DtwTest, IdenticalSequencesZero) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(DtwDistance(a, a), 0.0);
}

TEST(DtwTest, StutterIsFree) {
  // DTW absorbs time warping: the stuttered sequence aligns at zero cost.
  const std::vector<double> p = {20, 21, 20, 23};
  const std::vector<double> s = {20, 20, 21, 21, 20, 20, 23, 23};
  EXPECT_DOUBLE_EQ(DtwDistance(p, s), 0.0);
}

TEST(DtwTest, AtMostEuclideanOnEqualLengths) {
  Random rng(12);
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<double> a = RandomSignal(&rng, 16);
    const std::vector<double> b = RandomSignal(&rng, 16);
    double l1 = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
      l1 += std::fabs(a[i] - b[i]);
    }
    EXPECT_LE(DtwDistance(a, b), l1 + 1e-9);
  }
}

TEST(DtwTest, BandRestrictsAlignment) {
  const std::vector<double> p = {20, 21, 20, 23};
  const std::vector<double> s = {20, 20, 21, 21, 20, 20, 23, 23};
  // Unbounded DTW is 0; a zero-width band cannot bridge the length gap.
  EXPECT_TRUE(std::isinf(DtwDistance(p, s, 0)));
  EXPECT_DOUBLE_EQ(DtwDistance(p, s, 4), 0.0);
}

TEST(DtwTest, WideBandEqualsUnbounded) {
  Random rng(13);
  const std::vector<double> a = RandomSignal(&rng, 10);
  const std::vector<double> b = RandomSignal(&rng, 12);
  EXPECT_NEAR(DtwDistance(a, b, 100), DtwDistance(a, b), 1e-12);
}

}  // namespace
}  // namespace simq
