// HTTP scrape-surface tests: the exporter's hardening matrix (405/400/
// 431/404, Allow header, query-string stripping), /healthz readiness,
// caller-registered routes (/statements, /flightrecorder), and the
// gauge-freshness regression -- every scrape (HTTP and the wire
// kMetrics frame) must see current delta/cache/statements gauges
// without anything calling stats() in between.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/flight_recorder.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/statements.h"
#include "service/query_service.h"
#include "workload/generators.h"

namespace simq {
namespace {

Database MakeDatabase(int count = 64, int length = 32, uint64_t seed = 7) {
  Database db;
  EXPECT_TRUE(db.CreateRelation("r").ok());
  EXPECT_TRUE(
      db.BulkLoad("r", workload::RandomWalkSeries(count, length, seed)).ok());
  return db;
}

// One-shot HTTP exchange: write `raw` verbatim, read to EOF. Raw bytes
// in, raw bytes out -- the hardening tests need full control of the
// request line.
std::string HttpExchange(uint16_t port, const std::string& raw) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    ADD_FAILURE() << "connect failed";
    return "";
  }
  size_t sent = 0;
  while (sent < raw.size()) {
    // MSG_NOSIGNAL: the 431 test keeps writing after the server has
    // replied and closed; a plain write would raise SIGPIPE.
    const ssize_t n = ::send(fd, raw.data() + sent, raw.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      break;
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      break;
    }
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(uint16_t port, const std::string& path) {
  return HttpExchange(port,
                      "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n");
}

TEST(HttpExporterTest, MetricsScrapeRendersRegistryAndRunsRefresh) {
  obs::MetricRegistry registry;
  registry.GetCounter("test_requests_total")->Add(3);
  std::atomic<int> refreshes{0};
  obs::MetricsHttpExporter exporter(
      &registry, [&refreshes] { refreshes.fetch_add(1); });
  ASSERT_TRUE(exporter.Start(0));
  ASSERT_GT(exporter.port(), 0);

  const std::string response = Get(exporter.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("test_requests_total 3"), std::string::npos);
  EXPECT_EQ(refreshes.load(), 1);
  // The refresh hook runs per scrape, not once.
  (void)Get(exporter.port(), "/metrics");
  EXPECT_EQ(refreshes.load(), 2);
  EXPECT_EQ(exporter.requests_served(), 2);
  EXPECT_EQ(exporter.requests_rejected(), 0);
  exporter.Stop();
}

TEST(HttpExporterTest, HealthzReflectsReadiness) {
  obs::MetricRegistry registry;
  obs::MetricsHttpExporter exporter(&registry, nullptr);
  std::atomic<bool> healthy{true};
  exporter.SetHealthCheck([&healthy](std::string* detail) {
    if (!healthy.load()) {
      *detail = "draining";
      return false;
    }
    return true;
  });
  ASSERT_TRUE(exporter.Start(0));
  std::string response = Get(exporter.port(), "/healthz");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("ok"), std::string::npos);
  healthy.store(false);
  response = Get(exporter.port(), "/healthz");
  EXPECT_NE(response.find("503 Service Unavailable"), std::string::npos);
  EXPECT_NE(response.find("draining"), std::string::npos);
  exporter.Stop();
}

TEST(HttpExporterTest, RoutesCustomHandlersByPath) {
  obs::MetricRegistry registry;
  obs::MetricsHttpExporter exporter(&registry, nullptr);
  obs::StatementsTable table(4);
  table.Record(7, "q", Status::Ok(), false, 1.0, {});
  obs::FlightRecorder flight(16);
  flight.Record("checkpoint", nullptr);
  exporter.AddHandler("/statements", [&table] {
    obs::MetricsHttpExporter::Response response;
    response.content_type = "application/json";
    response.body = obs::RenderStatementsJson(table.Top(0));
    return response;
  });
  exporter.AddHandler("/flightrecorder", [&flight] {
    obs::MetricsHttpExporter::Response response;
    response.content_type = "application/x-ndjson";
    response.body = flight.DumpJsonl();
    return response;
  });
  ASSERT_TRUE(exporter.Start(0));

  std::string response = Get(exporter.port(), "/statements");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos);
  EXPECT_NE(response.find("\"fingerprint\":\"0000000000000007\""),
            std::string::npos);
  // Query strings are stripped before routing.
  response = Get(exporter.port(), "/statements?top=5");
  EXPECT_NE(response.find("200 OK"), std::string::npos);

  response = Get(exporter.port(), "/flightrecorder");
  EXPECT_NE(response.find("application/x-ndjson"), std::string::npos);
  EXPECT_NE(response.find("\"ev\":\"checkpoint\""), std::string::npos);

  response = Get(exporter.port(), "/nope");
  EXPECT_NE(response.find("404 Not Found"), std::string::npos);
  EXPECT_EQ(exporter.requests_rejected(), 1);
  exporter.Stop();
}

TEST(HttpExporterTest, HardeningRejectsHostileRequests) {
  obs::MetricRegistry registry;
  obs::MetricsHttpExporter exporter(&registry, nullptr);
  ASSERT_TRUE(exporter.Start(0));
  const uint16_t port = exporter.port();

  // Non-GET: 405 with the Allow header.
  std::string response =
      HttpExchange(port, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(response.find("405 Method Not Allowed"), std::string::npos);
  EXPECT_NE(response.find("Allow: GET"), std::string::npos);

  // Malformed request lines: 400.
  response = HttpExchange(port, "garbage\r\n\r\n");
  EXPECT_NE(response.find("400 Bad Request"), std::string::npos);
  response = HttpExchange(port, "GET noslash HTTP/1.1\r\n\r\n");
  EXPECT_NE(response.find("400 Bad Request"), std::string::npos);
  response = HttpExchange(port, "GET /metrics\r\n\r\n");  // no version
  EXPECT_NE(response.find("400 Bad Request"), std::string::npos);

  // Headers past the read cap: 431.
  std::string oversized = "GET /metrics HTTP/1.1\r\nX-Pad: ";
  oversized.append(8192, 'a');
  response = HttpExchange(port, oversized);
  EXPECT_NE(response.find("431 Request Header Fields Too Large"),
            std::string::npos);

  EXPECT_EQ(exporter.requests_rejected(), 5);
  // The exporter still serves after every rejection.
  response = Get(port, "/healthz");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  exporter.Stop();
}

// --- gauge freshness (the staleness regression) ---

TEST(ScrapeFreshnessTest, HttpScrapeSeesCurrentGaugesWithoutStats) {
  QueryService service(MakeDatabase());
  obs::MetricsHttpExporter exporter(
      service.metrics_registry(),
      [&service] { service.RefreshScrapeGauges(); });
  ASSERT_TRUE(exporter.Start(0));

  // One miss, one hit, one delta row -- and deliberately no stats()
  // call anywhere: the scrape itself must refresh the mirrors.
  ASSERT_TRUE(service.ExecuteText("NEAREST 3 r TO #walk1").ok());
  ASSERT_TRUE(service.ExecuteText("NEAREST 3 r TO #walk1").ok());
  TimeSeries extra;
  extra.id = "extra";
  extra.values.assign(32, 0.25);
  ASSERT_TRUE(service.Insert("r", extra).ok());

  const std::string response = Get(exporter.port(), "/metrics");
  EXPECT_NE(response.find("simq_cache_hits 1"), std::string::npos)
      << response;
  EXPECT_NE(response.find("simq_cache_misses 1"), std::string::npos);
  EXPECT_NE(response.find("simq_delta_rows 1"), std::string::npos);
  EXPECT_NE(response.find("simq_statements_tracked 1"), std::string::npos);
  exporter.Stop();
}

TEST(ScrapeFreshnessTest, WireMetricsFrameSeesCurrentGaugesWithoutStats) {
  QueryService service(MakeDatabase());
  net::NetServer server(&service);
  ASSERT_TRUE(server.Start().ok());
  std::thread loop([&server] { server.Run(); });

  net::NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  net::ExecRequest exec;
  exec.text = "NEAREST 3 r TO #walk1";
  ASSERT_TRUE(client.Exec(exec).ok());
  ASSERT_TRUE(client.Exec(exec).ok());  // cache hit
  TimeSeries extra;
  extra.id = "extra";
  extra.values.assign(32, 0.25);
  ASSERT_TRUE(service.Insert("r", extra).ok());

  const Result<std::vector<net::WireMetric>> metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  double cache_hits = -1.0;
  double delta_rows = -1.0;
  double statements_tracked = -1.0;
  for (const net::WireMetric& m : metrics.value()) {
    if (m.name == "simq_cache_hits") cache_hits = m.value;
    if (m.name == "simq_delta_rows") delta_rows = m.value;
    if (m.name == "simq_statements_tracked") statements_tracked = m.value;
  }
  EXPECT_EQ(cache_hits, 1.0);
  EXPECT_EQ(delta_rows, 1.0);
  EXPECT_EQ(statements_tracked, 1.0);

  ASSERT_TRUE(client.Goodbye().ok());
  server.Shutdown();
  loop.join();
}

}  // namespace
}  // namespace simq
