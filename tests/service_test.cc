#include "service/query_service.h"

#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "service/fingerprint.h"
#include "service/result_cache.h"
#include "workload/generators.h"

namespace simq {
namespace {

Database MakeDatabase(int count = 120, int length = 64, uint64_t seed = 7) {
  Database db;
  EXPECT_TRUE(db.CreateRelation("r").ok());
  EXPECT_TRUE(
      db.BulkLoad("r", workload::RandomWalkSeries(count, length, seed)).ok());
  return db;
}

// Bit-exact equality of answer sets: ids, names, and distances.
void ExpectSameMatches(const QueryResult& a, const QueryResult& b) {
  ASSERT_EQ(a.matches.size(), b.matches.size());
  for (size_t i = 0; i < a.matches.size(); ++i) {
    EXPECT_EQ(a.matches[i].id, b.matches[i].id);
    EXPECT_EQ(a.matches[i].name, b.matches[i].name);
    EXPECT_EQ(a.matches[i].distance, b.matches[i].distance);  // bit-exact
  }
  ASSERT_EQ(a.pairs.size(), b.pairs.size());
  for (size_t i = 0; i < a.pairs.size(); ++i) {
    EXPECT_EQ(a.pairs[i].first, b.pairs[i].first);
    EXPECT_EQ(a.pairs[i].second, b.pairs[i].second);
    EXPECT_EQ(a.pairs[i].distance, b.pairs[i].distance);
  }
}

TEST(QueryServiceTest, ColdCachedAndPreparedAnswersBitIdentical) {
  QueryService service(MakeDatabase());
  std::string literal = "[";
  for (int i = 0; i < 64; ++i) {
    literal += (i > 0 ? "," : "") + std::to_string((i * 7) % 5);
  }
  literal += "]";
  const std::vector<std::string> texts = {
      "RANGE r WITHIN 4.0 OF #walk3 USING mavg(8)",
      "NEAREST 7 r TO #walk5",
      "PAIRS r WITHIN 1.5",
      "RANGE r WITHIN 6.0 OF " + literal + " VIA SCAN",
  };
  auto session = service.OpenSession();
  for (const std::string& text : texts) {
    const Result<ServiceResult> cold = service.ExecuteText(text);
    ASSERT_TRUE(cold.ok()) << text << ": " << cold.status().ToString();
    EXPECT_FALSE(cold.value().plan.cache_hit) << text;

    const Result<ServiceResult> cached = service.ExecuteText(text);
    ASSERT_TRUE(cached.ok()) << text;
    EXPECT_TRUE(cached.value().plan.cache_hit) << text;
    ExpectSameMatches(cold.value().result, cached.value().result);

    const Result<int64_t> statement = session->Prepare(text);
    ASSERT_TRUE(statement.ok()) << text << statement.status().ToString();
    const Result<ServiceResult> prepared =
        session->ExecutePrepared(statement.value());
    ASSERT_TRUE(prepared.ok()) << text;
    EXPECT_TRUE(prepared.value().plan.prepared);
    ExpectSameMatches(cold.value().result, prepared.value().result);
  }
}

TEST(QueryServiceTest, PreparedParametersBindEpsilonKAndSeries) {
  QueryService service(MakeDatabase());
  auto session = service.OpenSession();

  const Result<int64_t> range =
      session->Prepare("RANGE r WITHIN 1.0 OF #walk3");
  ASSERT_TRUE(range.ok());
  BindParams params;
  params.epsilon = 5.0;
  const Result<ServiceResult> bound =
      session->ExecutePrepared(range.value(), params);
  ASSERT_TRUE(bound.ok());
  const Result<ServiceResult> cold =
      service.ExecuteText("RANGE r WITHIN 5.0 OF #walk3");
  ASSERT_TRUE(cold.ok());
  ExpectSameMatches(cold.value().result, bound.value().result);

  const Result<int64_t> nearest = session->Prepare("NEAREST 1 r TO #walk5");
  ASSERT_TRUE(nearest.ok());
  BindParams k_params;
  k_params.k = 9;
  const Result<ServiceResult> k_bound =
      session->ExecutePrepared(nearest.value(), k_params);
  ASSERT_TRUE(k_bound.ok());
  EXPECT_EQ(k_bound.value().result.matches.size(), 9u);

  BindParams series_params;
  series_params.series.emplace();
  series_params.series->name = "walk11";
  const Result<ServiceResult> series_bound =
      session->ExecutePrepared(range.value(), series_params);
  ASSERT_TRUE(series_bound.ok());
  const Result<ServiceResult> series_cold =
      service.ExecuteText("RANGE r WITHIN 1.0 OF #walk11");
  ASSERT_TRUE(series_cold.ok());
  ExpectSameMatches(series_cold.value().result, series_bound.value().result);

  // Parameter kinds are checked against the statement shape.
  BindParams bad_k;
  bad_k.k = 3;
  EXPECT_EQ(session->ExecutePrepared(range.value(), bad_k).status().code(),
            StatusCode::kInvalidArgument);
  BindParams bad_eps;
  bad_eps.epsilon = 1.0;
  EXPECT_EQ(
      session->ExecutePrepared(nearest.value(), bad_eps).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(QueryServiceTest, MutationInvalidatesCacheAndBumpsEpoch) {
  QueryService service(MakeDatabase(50, 32, 3));
  const std::string text = "RANGE r WITHIN 0.5 OF #walk0";
  const Result<ServiceResult> before = service.ExecuteText(text);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(service.ExecuteText(text).value().plan.cache_hit);
  // The epoch rolls up the per-shard mutation counters, so the pre-loaded
  // relation already has a nonzero version; what matters is that every
  // mutation advances it.
  const uint64_t epoch0 = before.value().plan.relation_epoch;
  EXPECT_EQ(epoch0, service.RelationEpoch("r"));
  EXPECT_GT(epoch0, 0u);

  // Insert an exact duplicate of walk0's values: it lands at distance 0
  // and MUST appear in the next answer -- a stale cache would miss it.
  TimeSeries clone;
  clone.id = "clone_of_walk0";
  clone.values =
      service.database_unlocked().GetRelation("r")->record(0).raw;
  const Result<int64_t> inserted = service.Insert("r", clone);
  ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
  EXPECT_EQ(service.RelationEpoch("r"), epoch0 + 1);

  const Result<ServiceResult> after = service.ExecuteText(text);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.value().plan.cache_hit);
  EXPECT_EQ(after.value().plan.relation_epoch, epoch0 + 1);
  EXPECT_EQ(after.value().result.matches.size(),
            before.value().result.matches.size() + 1);
  bool found = false;
  for (const Match& match : after.value().result.matches) {
    found = found || match.name == "clone_of_walk0";
  }
  EXPECT_TRUE(found);
}

TEST(QueryServiceTest, ExplainReportsStrategyEngineAndCacheStatus) {
  QueryService service(MakeDatabase());
  const Result<ServiceResult> indexed =
      service.ExecuteText("EXPLAIN RANGE r WITHIN 2.0 OF #walk1");
  ASSERT_TRUE(indexed.ok());
  EXPECT_EQ(indexed.value().plan.strategy, "index");
  EXPECT_EQ(indexed.value().plan.engine, "packed");
  EXPECT_FALSE(indexed.value().plan.cache_hit);

  const Result<ServiceResult> scanned =
      service.ExecuteText("EXPLAIN RANGE r WITHIN 2.0 OF #walk1 VIA SCAN");
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(scanned.value().plan.strategy, "scan");
  EXPECT_EQ(scanned.value().plan.engine, "columnar");

  // EXPLAIN is invisible to the fingerprint: it shares the cache entry of
  // the plain query.
  const Result<ServiceResult> plain =
      service.ExecuteText("RANGE r WITHIN 2.0 OF #walk1");
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain.value().plan.cache_hit);
}

TEST(QueryServiceTest, FilterEngineToggleKeepsExplainPlansTruthful) {
  QueryService service(MakeDatabase());
  const std::string text = "EXPLAIN RANGE r WITHIN 2.0 OF #walk1 VIA SCAN";
  const Result<ServiceResult> exact = service.ExecuteText(text);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact.value().plan.filter, "none");
  // Toggling the engine-wide default must not replay the exact-engine
  // cache entry for default-mode queries: the effective engine is part
  // of the cache key, so the filtered plan (and its pruning stats) is
  // reported from a real filtered execution.
  service.mutable_database_unlocked().set_filter_engine(
      FilterEngine::kQuantized);
  const Result<ServiceResult> filtered = service.ExecuteText(text);
  ASSERT_TRUE(filtered.ok());
  EXPECT_FALSE(filtered.value().plan.cache_hit);
  EXPECT_EQ(filtered.value().plan.filter, "quantized");
  EXPECT_GT(filtered.value().plan.filter_scanned, 0);
  ExpectSameMatches(exact.value().result, filtered.value().result);
  // Flipping back revives the original entry (same key as before).
  service.mutable_database_unlocked().set_filter_engine(
      FilterEngine::kExact);
  const Result<ServiceResult> back = service.ExecuteText(text);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().plan.cache_hit);
  EXPECT_EQ(back.value().plan.filter, "none");
  // An explicit MODE FILTERED query reports its own plan either way.
  const Result<ServiceResult> explicit_filtered = service.ExecuteText(
      "EXPLAIN RANGE r WITHIN 2.0 OF #walk1 VIA SCAN MODE FILTERED");
  ASSERT_TRUE(explicit_filtered.ok());
  EXPECT_EQ(explicit_filtered.value().plan.filter, "quantized");
}

TEST(QueryServiceTest, ShardedServiceAnswersMatchUnshardedAndRollUpEpochs) {
  const std::vector<TimeSeries> series =
      workload::RandomWalkSeries(90, 32, 19);
  const auto build = [&](int shards) {
    ShardingOptions sharding;
    sharding.num_shards = shards;
    Database db(FeatureConfig(), RTree::Options(), sharding);
    EXPECT_TRUE(db.CreateRelation("r").ok());
    EXPECT_TRUE(db.BulkLoad("r", series).ok());
    return db;
  };
  QueryService unsharded(build(1));
  QueryService sharded(build(4));
  EXPECT_EQ(unsharded.RelationEpoch("r"), 1u);  // one shard loaded
  EXPECT_EQ(sharded.RelationEpoch("r"), 4u);    // four shards loaded

  // The scan join emits pairs in lexicographic order on every shard
  // count, so verbatim comparison is valid; index-join pair ORDER is
  // tree-shape-dependent and its set equivalence is covered by
  // shard_equivalence_test.
  const std::vector<std::string> texts = {
      "RANGE r WITHIN 0.5 OF #walk4",
      "RANGE r WITHIN 3.0 OF #walk4 USING mavg(6)",
      "NEAREST 9 r TO #walk7",
      "PAIRS r WITHIN 1.5 VIA SCAN",
  };
  for (const std::string& text : texts) {
    const Result<ServiceResult> want = unsharded.ExecuteText(text);
    const Result<ServiceResult> got = sharded.ExecuteText(text);
    ASSERT_TRUE(want.ok() && got.ok()) << text;
    EXPECT_EQ(want.value().plan.shards, 1) << text;
    EXPECT_EQ(got.value().plan.shards, 4) << text;
    ExpectSameMatches(want.value().result, got.value().result);
    // Cached replay on the sharded service stays bit-identical.
    const Result<ServiceResult> replay = sharded.ExecuteText(text);
    ASSERT_TRUE(replay.ok());
    EXPECT_TRUE(replay.value().plan.cache_hit) << text;
    ExpectSameMatches(got.value().result, replay.value().result);
  }

  // A mutation bumps exactly one shard's epoch and invalidates the cache.
  TimeSeries clone = series[4];
  clone.id = "clone_of_walk4";
  ASSERT_TRUE(sharded.Insert("r", clone).ok());
  EXPECT_EQ(sharded.RelationEpoch("r"), 5u);
  const Result<ServiceResult> after = sharded.ExecuteText(texts[0]);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.value().plan.cache_hit);
  EXPECT_EQ(after.value().plan.relation_epoch, 5u);
  bool found = false;
  for (const Match& match : after.value().result.matches) {
    found = found || match.name == "clone_of_walk4";
  }
  EXPECT_TRUE(found);
}

TEST(QueryServiceTest, StatsCountersAndLatencyPercentiles) {
  ServiceOptions options;
  options.result_cache_capacity = 8;
  QueryService service(MakeDatabase(40, 32, 5), options);
  {
    auto session = service.OpenSession();
    const Result<int64_t> statement =
        session->Prepare("NEAREST 3 r TO #walk2");
    ASSERT_TRUE(statement.ok());
    ASSERT_TRUE(session->ExecutePrepared(statement.value()).ok());
    ASSERT_TRUE(session->Execute("RANGE r WITHIN 1.0 OF #walk2").ok());
    ASSERT_TRUE(session->Execute("RANGE r WITHIN 1.0 OF #walk2").ok());
    const ServiceStats mid = service.stats();
    EXPECT_EQ(mid.sessions_opened, 1);
    EXPECT_EQ(mid.active_sessions, 1);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.active_sessions, 0);
  EXPECT_EQ(stats.queries, 3);
  EXPECT_EQ(stats.prepared_executions, 1);
  EXPECT_EQ(stats.cold_parses, 3);  // one Prepare + two one-shot parses
  EXPECT_EQ(stats.cache.hits, 1);
  EXPECT_EQ(stats.cache.misses, 2);
  EXPECT_GE(stats.latency_p95_ms, stats.latency_p50_ms);
  EXPECT_GE(stats.latency_p99_ms, stats.latency_p95_ms);
}

TEST(QueryServiceTest, ErrorPaths) {
  QueryService service(MakeDatabase(20, 16, 2));
  EXPECT_EQ(service.ExecuteText("BOGUS QUERY").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      service.ExecuteText("RANGE nosuch WITHIN 1 OF #walk0").status().code(),
      StatusCode::kNotFound);
  auto session = service.OpenSession();
  EXPECT_EQ(session->ExecutePrepared(999).status().code(),
            StatusCode::kNotFound);
  const Result<int64_t> statement =
      session->Prepare("RANGE r WITHIN 1 OF #walk0");
  ASSERT_TRUE(statement.ok());
  EXPECT_TRUE(session->Close(statement.value()).ok());
  EXPECT_EQ(session->ExecutePrepared(statement.value()).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(session->Close(statement.value()).code(), StatusCode::kNotFound);
  // Errors are never cached: the failing text parses fine after the
  // relation appears.
  ASSERT_TRUE(service.CreateRelation("nosuch").ok());
  TimeSeries s;
  s.id = "walk0";
  s.values = std::vector<double>(16, 1.0);
  ASSERT_TRUE(service.Insert("nosuch", s).ok());
  EXPECT_TRUE(service.ExecuteText("RANGE nosuch WITHIN 1 OF #walk0").ok());
}

TEST(QueryServiceTest, CacheDisabledServesColdEveryTime) {
  ServiceOptions options;
  options.enable_result_cache = false;
  QueryService service(MakeDatabase(30, 32, 4), options);
  const std::string text = "RANGE r WITHIN 2.0 OF #walk1";
  const Result<ServiceResult> first = service.ExecuteText(text);
  const Result<ServiceResult> second = service.ExecuteText(text);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_FALSE(first.value().plan.cache_hit);
  EXPECT_FALSE(second.value().plan.cache_hit);
  ExpectSameMatches(first.value().result, second.value().result);
  EXPECT_EQ(service.stats().cache.hits, 0);
}

TEST(ResultCacheTest, LruEvictionAndInvalidation) {
  ResultCache cache(2);
  QueryResult r1;
  r1.matches.push_back(Match{1, "a", 0.5});
  QueryResult r2;
  r2.matches.push_back(Match{2, "b", 0.25});
  QueryResult out;

  cache.Put("k1", "r", r1);
  cache.Put("k2", "r", r2);
  EXPECT_TRUE(cache.Get("k1", &out));
  EXPECT_EQ(out.matches[0].id, 1);

  // k1 was just used; inserting k3 evicts k2 (least recently used).
  cache.Put("k3", "other", r2);
  EXPECT_FALSE(cache.Get("k2", &out));
  EXPECT_TRUE(cache.Get("k1", &out));
  EXPECT_TRUE(cache.Get("k3", &out));
  EXPECT_EQ(cache.stats().evictions, 1);

  cache.InvalidateRelation("r");
  EXPECT_FALSE(cache.Get("k1", &out));
  EXPECT_TRUE(cache.Get("k3", &out));  // different relation survives
  EXPECT_EQ(cache.stats().invalidated_entries, 1);
}

TEST(FingerprintTest, CanonicalKeySeparatesAndUnifiesCorrectly) {
  const Query base = [] {
    Query q;
    q.kind = QueryKind::kRange;
    q.relation = "r";
    q.epsilon = 1.5;
    q.query_series.name = "walk0";
    return q;
  }();

  Query same = base;
  same.explain = true;  // EXPLAIN shares the entry
  EXPECT_EQ(CanonicalQueryKey(base), CanonicalQueryKey(same));

  Query other_eps = base;
  other_eps.epsilon = 1.5000000001;
  EXPECT_NE(CanonicalQueryKey(base), CanonicalQueryKey(other_eps));

  Query other_series = base;
  other_series.query_series.name = "walk1";
  EXPECT_NE(CanonicalQueryKey(base), CanonicalQueryKey(other_series));

  Query other_strategy = base;
  other_strategy.strategy = ExecutionStrategy::kScan;
  EXPECT_NE(CanonicalQueryKey(base), CanonicalQueryKey(other_strategy));

  Query with_rule = base;
  with_rule.transform = std::shared_ptr<const TransformationRule>(
      MakeMovingAverageRule(8).release());
  EXPECT_NE(CanonicalQueryKey(base), CanonicalQueryKey(with_rule));

  // Rule arguments that differ below 6-significant-digit precision must
  // still produce distinct keys: name() renders at full precision.
  Query scale_a = base;
  scale_a.transform = std::shared_ptr<const TransformationRule>(
      MakeScaleRule(1.0000001, 0.0).release());
  Query scale_b = base;
  scale_b.transform = std::shared_ptr<const TransformationRule>(
      MakeScaleRule(1.0000002, 0.0).release());
  EXPECT_NE(CanonicalQueryKey(scale_a), CanonicalQueryKey(scale_b));

  EXPECT_NE(QueryFingerprint(base), QueryFingerprint(other_series));
}

}  // namespace
}  // namespace simq
