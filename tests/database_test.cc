#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "core/parser.h"
#include "ts/transforms.h"
#include "util/stats.h"
#include "workload/generators.h"

namespace simq {
namespace {

// Reference implementation: normal-form distance between T(x) and q
// computed purely in the time domain.
double ReferenceDistance(const std::vector<double>& data_raw,
                         const std::vector<double>& query_raw,
                         const TransformationRule* rule) {
  std::vector<double> lhs = ToNormalForm(data_raw).values;
  if (rule != nullptr) {
    lhs = rule->Apply(lhs);
  }
  const std::vector<double> rhs = ToNormalForm(query_raw).values;
  return EuclideanDistance(lhs, rhs);
}

std::vector<TimeSeries> TestSeries(int count, int length, uint64_t seed) {
  return workload::RandomWalkSeries(count, length, seed);
}

Database MakeLoadedDatabase(const std::vector<TimeSeries>& series,
                            FeatureConfig config = FeatureConfig()) {
  Database db(config);
  EXPECT_TRUE(db.CreateRelation("r").ok());
  EXPECT_TRUE(db.BulkLoad("r", series).ok());
  return db;
}

std::set<int64_t> MatchIds(const QueryResult& result) {
  std::set<int64_t> ids;
  for (const Match& match : result.matches) {
    ids.insert(match.id);
  }
  return ids;
}

TEST(DatabaseTest, CreateInsertBasics) {
  Database db;
  EXPECT_TRUE(db.CreateRelation("stocks").ok());
  EXPECT_EQ(db.CreateRelation("stocks").code(), StatusCode::kAlreadyExists);

  TimeSeries series;
  series.id = "ibm";
  series.values = {1.0, 2.0, 3.0, 4.0};
  const Result<int64_t> id = db.Insert("stocks", series);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id.value(), 0);

  EXPECT_EQ(db.Insert("nope", series).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(db.Insert("stocks", series).status().code(),
            StatusCode::kAlreadyExists);  // duplicate name

  TimeSeries wrong_length;
  wrong_length.id = "short";
  wrong_length.values = {1.0, 2.0};
  EXPECT_EQ(db.Insert("stocks", wrong_length).status().code(),
            StatusCode::kInvalidArgument);

  TimeSeries empty;
  empty.id = "empty";
  EXPECT_EQ(db.Insert("stocks", empty).status().code(),
            StatusCode::kInvalidArgument);

  const Relation* relation = db.GetRelation("stocks");
  ASSERT_NE(relation, nullptr);
  EXPECT_EQ(relation->size(), 1);
  EXPECT_EQ(relation->series_length(), 4);
  EXPECT_TRUE(relation->FindByName("ibm").ok());
  EXPECT_FALSE(relation->FindByName("zzz").ok());
}

TEST(DatabaseTest, BulkLoadMatchesIncrementalInsert) {
  const std::vector<TimeSeries> series = TestSeries(200, 64, 7);
  Database bulk;
  ASSERT_TRUE(bulk.CreateRelation("r").ok());
  ASSERT_TRUE(bulk.BulkLoad("r", series).ok());

  Database incremental;
  ASSERT_TRUE(incremental.CreateRelation("r").ok());
  for (const TimeSeries& ts : series) {
    ASSERT_TRUE(incremental.Insert("r", ts).ok());
  }

  Query query;
  query.kind = QueryKind::kRange;
  query.relation = "r";
  query.query_series.literal = series[0].values;
  query.epsilon = 5.0;
  const Result<QueryResult> a = bulk.Execute(query);
  const Result<QueryResult> b = incremental.Execute(query);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(MatchIds(a.value()), MatchIds(b.value()));
  EXPECT_TRUE(bulk.GetRelation("r")->index().CheckInvariants());
  EXPECT_TRUE(incremental.GetRelation("r")->index().CheckInvariants());
}

TEST(DatabaseTest, BulkLoadRequiresEmptyRelation) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("r").ok());
  TimeSeries one;
  one.values = {1.0, 2.0, 3.0};
  ASSERT_TRUE(db.Insert("r", one).ok());
  EXPECT_EQ(db.BulkLoad("r", TestSeries(3, 3, 1)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(DatabaseTest, FailedBulkLoadLeavesRelationEmptyAndReloadable) {
  // All-or-nothing: a batch that fails validation part-way must leave no
  // records, no names, and no series-length sentinel behind -- a retry
  // with a DIFFERENT (but internally consistent) length must succeed.
  Database db;
  ASSERT_TRUE(db.CreateRelation("r").ok());
  std::vector<TimeSeries> bad = TestSeries(3, 10, 1);
  bad.push_back(TimeSeries{});  // empty series -> InvalidArgument
  EXPECT_EQ(db.BulkLoad("r", bad).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(db.GetRelation("r")->size(), 0);

  std::vector<TimeSeries> mismatched = TestSeries(2, 10, 2);
  mismatched.push_back(TestSeries(1, 20, 3)[0]);  // length mismatch
  EXPECT_EQ(db.BulkLoad("r", mismatched).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.GetRelation("r")->size(), 0);

  const std::vector<TimeSeries> good = TestSeries(4, 20, 4);
  ASSERT_TRUE(db.BulkLoad("r", good).ok());
  EXPECT_EQ(db.GetRelation("r")->size(), 4);
  EXPECT_EQ(db.GetRelation("r")->series_length(), 20);
}

class RangeQueryEquivalenceTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(RangeQueryEquivalenceTest, IndexScanAndBruteForceAgree) {
  // The Lemma 1 integration property: for every transformation, index
  // execution returns exactly the same answer set as scanning, which in
  // turn matches the time-domain reference distance.
  const std::string rule_name = GetParam();
  const std::vector<TimeSeries> series = TestSeries(250, 64, 11);
  Database db = MakeLoadedDatabase(series);

  std::shared_ptr<TransformationRule> shared_rule;
  if (rule_name == "mavg20") {
    shared_rule = MakeMovingAverageRule(20);
  } else if (rule_name == "reverse") {
    shared_rule = MakeReverseRule();
  } else if (rule_name == "mavg5_reverse") {
    std::vector<std::unique_ptr<TransformationRule>> parts;
    parts.push_back(MakeMovingAverageRule(5));
    parts.push_back(MakeReverseRule());
    shared_rule = MakeCompositeRule(std::move(parts));
  } else if (rule_name == "scale_negative") {
    shared_rule = MakeScaleRule(-2.0);
  }

  for (const double epsilon : {0.5, 2.0, 6.0, 12.0}) {
    Query query;
    query.kind = QueryKind::kRange;
    query.relation = "r";
    query.query_series.literal = series[17].values;
    query.epsilon = epsilon;
    query.transform = shared_rule;

    query.strategy = ExecutionStrategy::kIndex;
    const Result<QueryResult> via_index = db.Execute(query);
    ASSERT_TRUE(via_index.ok()) << via_index.status().ToString();
    EXPECT_TRUE(via_index.value().stats.used_index);

    query.strategy = ExecutionStrategy::kScan;
    const Result<QueryResult> via_scan = db.Execute(query);
    ASSERT_TRUE(via_scan.ok()) << via_scan.status().ToString();
    EXPECT_FALSE(via_scan.value().stats.used_index);

    EXPECT_EQ(MatchIds(via_index.value()), MatchIds(via_scan.value()))
        << "eps=" << epsilon;

    // Brute-force reference.
    std::set<int64_t> expected;
    for (size_t i = 0; i < series.size(); ++i) {
      if (ReferenceDistance(series[i].values, series[17].values,
                            shared_rule.get()) <= epsilon) {
        expected.insert(static_cast<int64_t>(i));
      }
    }
    EXPECT_EQ(MatchIds(via_index.value()), expected) << "eps=" << epsilon;

    // Distances agree with the reference within numerical tolerance.
    for (const Match& match : via_index.value().matches) {
      const double reference = ReferenceDistance(
          series[static_cast<size_t>(match.id)].values, series[17].values,
          shared_rule.get());
      EXPECT_NEAR(match.distance, reference, 1e-7);
    }

    // The index filter admits a superset of the answers (Lemma 1), and
    // never more than the whole relation.
    EXPECT_GE(via_index.value().stats.candidates,
              static_cast<int64_t>(via_index.value().matches.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Rules, RangeQueryEquivalenceTest,
                         ::testing::Values("none", "mavg20", "reverse",
                                           "mavg5_reverse",
                                           "scale_negative"));

TEST(DatabaseTest, ShiftScaleAreNormalFormInvariant) {
  const std::vector<TimeSeries> series = TestSeries(100, 64, 13);
  Database db = MakeLoadedDatabase(series);

  Query query;
  query.kind = QueryKind::kRange;
  query.relation = "r";
  query.query_series.id = 3;
  query.epsilon = 4.0;
  const Result<QueryResult> plain = db.Execute(query);
  ASSERT_TRUE(plain.ok());

  std::vector<std::unique_ptr<TransformationRule>> parts;
  parts.push_back(MakeShiftRule(42.0));
  parts.push_back(MakeScaleRule(3.0));
  query.transform = MakeCompositeRule(std::move(parts));
  const Result<QueryResult> shifted = db.Execute(query);
  ASSERT_TRUE(shifted.ok());
  EXPECT_TRUE(shifted.value().stats.used_index);
  EXPECT_EQ(MatchIds(plain.value()), MatchIds(shifted.value()));
}

TEST(DatabaseTest, TimeWarpQueryAcrossLengths) {
  // Data of length 64; query of length 128 compared under warp(2).
  const std::vector<TimeSeries> series = TestSeries(150, 64, 17);
  Database db = MakeLoadedDatabase(series);

  // The query: the warped version of series 5, plus noise.
  std::vector<double> target =
      TimeWarpSeries(ToNormalForm(series[5].values).values, 2);
  Query query;
  query.kind = QueryKind::kRange;
  query.relation = "r";
  query.query_series.literal = target;
  query.epsilon = 0.1;
  query.transform = std::shared_ptr<const TransformationRule>(
      MakeTimeWarpRule(2).release());

  query.strategy = ExecutionStrategy::kIndex;
  const Result<QueryResult> via_index = db.Execute(query);
  ASSERT_TRUE(via_index.ok()) << via_index.status().ToString();
  query.strategy = ExecutionStrategy::kScan;
  const Result<QueryResult> via_scan = db.Execute(query);
  ASSERT_TRUE(via_scan.ok());

  EXPECT_EQ(MatchIds(via_index.value()), MatchIds(via_scan.value()));
  EXPECT_EQ(MatchIds(via_index.value()).count(5), 1u);

  // Mismatched query length is rejected.
  query.query_series.literal.pop_back();
  EXPECT_FALSE(db.Execute(query).ok());
}

TEST(DatabaseTest, RawModeUsesScanAndRawDistances) {
  const std::vector<TimeSeries> series = TestSeries(80, 32, 19);
  Database db = MakeLoadedDatabase(series);

  Query query;
  query.kind = QueryKind::kRange;
  query.relation = "r";
  query.query_series.id = 0;
  query.epsilon = 25.0;
  query.mode = DistanceMode::kRaw;
  const Result<QueryResult> result = db.Execute(query);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().stats.used_index);

  std::set<int64_t> expected;
  for (size_t i = 0; i < series.size(); ++i) {
    if (EuclideanDistance(series[i].values, series[0].values) <= 25.0) {
      expected.insert(static_cast<int64_t>(i));
    }
  }
  EXPECT_EQ(MatchIds(result.value()), expected);

  // Raw mode cannot be forced onto the index.
  query.strategy = ExecutionStrategy::kIndex;
  EXPECT_EQ(db.Execute(query).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(DatabaseTest, NonSpectralRuleFallsBackToScan) {
  const std::vector<TimeSeries> series = TestSeries(60, 32, 23);
  Database db = MakeLoadedDatabase(series);

  Query query;
  query.kind = QueryKind::kRange;
  query.relation = "r";
  query.query_series.id = 1;
  query.epsilon = 3.0;
  query.transform =
      std::shared_ptr<const TransformationRule>(MakeDespikeRule(2.0).release());
  const Result<QueryResult> result = db.Execute(query);  // auto strategy
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().stats.used_index);

  query.strategy = ExecutionStrategy::kIndex;
  EXPECT_EQ(db.Execute(query).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(DatabaseTest, PlannerRespectsFeatureSpaceSafety) {
  // mavg has a complex multiplier: safe in polar space, unsafe in
  // rectangular space. The planner must scan in the latter.
  const std::vector<TimeSeries> series = TestSeries(60, 64, 29);

  FeatureConfig polar;
  polar.space = FeatureSpace::kPolar;
  Database polar_db = MakeLoadedDatabase(series, polar);

  FeatureConfig rect;
  rect.space = FeatureSpace::kRectangular;
  Database rect_db = MakeLoadedDatabase(series, rect);

  Query query;
  query.kind = QueryKind::kRange;
  query.relation = "r";
  query.query_series.id = 2;
  query.epsilon = 2.0;
  query.transform = std::shared_ptr<const TransformationRule>(
      MakeMovingAverageRule(20).release());

  const Result<QueryResult> via_polar = polar_db.Execute(query);
  ASSERT_TRUE(via_polar.ok());
  EXPECT_TRUE(via_polar.value().stats.used_index);

  const Result<QueryResult> via_rect = rect_db.Execute(query);
  ASSERT_TRUE(via_rect.ok());
  EXPECT_FALSE(via_rect.value().stats.used_index);

  EXPECT_EQ(MatchIds(via_polar.value()), MatchIds(via_rect.value()));

  // Reverse has a real multiplier: indexable in both spaces.
  query.transform = std::shared_ptr<const TransformationRule>(
      MakeReverseRule().release());
  const Result<QueryResult> rect_reverse = rect_db.Execute(query);
  ASSERT_TRUE(rect_reverse.ok());
  EXPECT_TRUE(rect_reverse.value().stats.used_index);
}

TEST(DatabaseTest, NearestNeighborIndexMatchesScan) {
  const std::vector<TimeSeries> series = TestSeries(300, 64, 31);
  Database db = MakeLoadedDatabase(series);

  for (const char* rule_name : {"none", "mavg20", "reverse"}) {
    std::shared_ptr<TransformationRule> rule;
    if (std::string(rule_name) == "mavg20") {
      rule = MakeMovingAverageRule(20);
    } else if (std::string(rule_name) == "reverse") {
      rule = MakeReverseRule();
    }
    Query query;
    query.kind = QueryKind::kNearest;
    query.relation = "r";
    query.query_series.id = 42;
    query.k = 9;
    query.transform = rule;

    query.strategy = ExecutionStrategy::kIndex;
    const Result<QueryResult> via_index = db.Execute(query);
    ASSERT_TRUE(via_index.ok()) << via_index.status().ToString();
    query.strategy = ExecutionStrategy::kScan;
    const Result<QueryResult> via_scan = db.Execute(query);
    ASSERT_TRUE(via_scan.ok());

    ASSERT_EQ(via_index.value().matches.size(), 9u) << rule_name;
    ASSERT_EQ(via_scan.value().matches.size(), 9u);
    for (size_t i = 0; i < 9; ++i) {
      EXPECT_NEAR(via_index.value().matches[i].distance,
                  via_scan.value().matches[i].distance, 1e-7)
          << rule_name << " rank " << i;
    }
    // With the identity, the query object itself is the nearest neighbor.
    if (rule == nullptr) {
      EXPECT_EQ(via_index.value().matches[0].id, 42);
      EXPECT_NEAR(via_index.value().matches[0].distance, 0.0, 1e-9);
    }
  }
}

TEST(DatabaseTest, PatternMeanStdFilters) {
  const std::vector<TimeSeries> series = TestSeries(120, 32, 37);
  Database db = MakeLoadedDatabase(series);

  Query query;
  query.kind = QueryKind::kRange;
  query.relation = "r";
  query.query_series.id = 0;
  query.epsilon = 10.0;
  query.pattern.mean_range = {40.0, 70.0};
  query.pattern.std_range = {0.0, 8.0};

  query.strategy = ExecutionStrategy::kIndex;
  const Result<QueryResult> via_index = db.Execute(query);
  ASSERT_TRUE(via_index.ok());
  query.strategy = ExecutionStrategy::kScan;
  const Result<QueryResult> via_scan = db.Execute(query);
  ASSERT_TRUE(via_scan.ok());
  EXPECT_EQ(MatchIds(via_index.value()), MatchIds(via_scan.value()));

  const Relation* relation = db.GetRelation("r");
  for (const Match& match : via_index.value().matches) {
    const Record& record = relation->record(match.id);
    EXPECT_GE(record.features.mean, 40.0);
    EXPECT_LE(record.features.mean, 70.0);
    EXPECT_LE(record.features.std_dev, 8.0);
  }
}

TEST(DatabaseTest, ConstantPatternChecksSingleObject) {
  const std::vector<TimeSeries> series = TestSeries(50, 32, 41);
  Database db = MakeLoadedDatabase(series);

  Query query;
  query.kind = QueryKind::kRange;
  query.relation = "r";
  query.query_series.id = 10;
  query.epsilon = 100.0;
  query.pattern.kind = Pattern::Kind::kConstant;
  query.pattern.constant_id = 10;
  const Result<QueryResult> result = db.Execute(query);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().matches.size(), 1u);
  EXPECT_EQ(result.value().matches[0].id, 10);
  EXPECT_EQ(result.value().stats.exact_checks, 1);

  query.pattern.constant_id = 999;
  EXPECT_EQ(db.Execute(query).status().code(), StatusCode::kOutOfRange);
}

TEST(DatabaseTest, SelfJoinMethodsAgree) {
  const std::vector<TimeSeries> series = TestSeries(120, 64, 43);
  Database db = MakeLoadedDatabase(series);
  const auto rule = MakeMovingAverageRule(20);
  const double epsilon = 2.0;

  const Result<QueryResult> a =
      db.SelfJoin("r", epsilon, rule.get(), JoinMethod::kFullScan);
  const Result<QueryResult> b =
      db.SelfJoin("r", epsilon, rule.get(), JoinMethod::kScanEarlyAbandon);
  const Result<QueryResult> d =
      db.SelfJoin("r", epsilon, rule.get(), JoinMethod::kIndexTransform);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(d.ok());

  auto unordered = [](const QueryResult& result) {
    std::set<std::pair<int64_t, int64_t>> pairs;
    for (const PairMatch& pair : result.pairs) {
      pairs.insert({std::min(pair.first, pair.second),
                    std::max(pair.first, pair.second)});
    }
    return pairs;
  };
  // a and b: identical ordered pairs.
  EXPECT_EQ(a.value().pairs.size(), b.value().pairs.size());
  EXPECT_EQ(unordered(a.value()), unordered(b.value()));
  // d finds every pair in both directions.
  EXPECT_EQ(d.value().pairs.size(), 2 * a.value().pairs.size());
  EXPECT_EQ(unordered(d.value()), unordered(a.value()));
  EXPECT_TRUE(d.value().stats.used_index);

  // Method c (no transformation) finds at most the pairs similar without
  // smoothing -- a subset of the smoothed answer for smoothing transforms.
  const Result<QueryResult> c =
      db.SelfJoin("r", epsilon, nullptr, JoinMethod::kIndexNoTransform);
  ASSERT_TRUE(c.ok());
  for (const auto& pair : unordered(c.value())) {
    EXPECT_EQ(unordered(d.value()).count(pair), 1u)
        << "untransformed pair should survive smoothing";
  }
}

TEST(DatabaseTest, AsymmetricJoinFindsInversePairs) {
  // The paper's hedging join r >< T_rev(r): build a relation containing an
  // engineered inverse pair and find it via the one-sided reverse join.
  workload::StockMarketOptions options;
  options.num_series = 120;
  options.num_smoothed_similar_pairs = 0;
  options.num_inverse_pairs = 5;
  options.num_resampled_pairs = 0;
  const std::vector<TimeSeries> market = workload::StockMarket(options);
  Database db;
  ASSERT_TRUE(db.CreateRelation("r").ok());
  ASSERT_TRUE(db.BulkLoad("r", market).ok());

  std::vector<std::unique_ptr<TransformationRule>> right_parts;
  right_parts.push_back(MakeReverseRule());
  right_parts.push_back(MakeMovingAverageRule(20));
  const auto right = MakeCompositeRule(std::move(right_parts));
  const auto left = MakeMovingAverageRule(20);

  const Result<QueryResult> via_index = db.SelfJoin(
      "r", 1.0, left.get(), right.get(), JoinMethod::kIndexTransform);
  ASSERT_TRUE(via_index.ok()) << via_index.status().ToString();
  const Result<QueryResult> via_scan = db.SelfJoin(
      "r", 1.0, left.get(), right.get(), JoinMethod::kScanEarlyAbandon);
  ASSERT_TRUE(via_scan.ok());

  auto ordered = [](const QueryResult& result) {
    std::set<std::pair<int64_t, int64_t>> pairs;
    for (const PairMatch& pair : result.pairs) {
      pairs.insert({pair.first, pair.second});
    }
    return pairs;
  };
  // Asymmetric scans check every ordered pair, so index and scan agree
  // on the full ordered answer set.
  EXPECT_EQ(ordered(via_index.value()), ordered(via_scan.value()));

  // Every engineered inverse pair (ids 0..9 pairwise) must be found.
  for (int p = 0; p < options.num_inverse_pairs; ++p) {
    const int64_t a = 2 * p;
    const int64_t b = 2 * p + 1;
    EXPECT_EQ(ordered(via_index.value()).count({a, b}), 1u) << "pair " << p;
  }

  // Same query through the textual language.
  const Result<QueryResult> via_text = db.ExecuteText(
      "PAIRS r WITHIN 1.0 USING mavg(20) VS reverse|mavg(20)");
  ASSERT_TRUE(via_text.ok()) << via_text.status().ToString();
  EXPECT_EQ(ordered(via_text.value()), ordered(via_index.value()));
}

TEST(DatabaseTest, PrenormalizedQueryPattern) {
  // A smoothed normal form used directly as a search pattern: with the
  // PRENORMALIZED flag the engine must not re-normalize it.
  const std::vector<TimeSeries> series = TestSeries(100, 64, 59);
  Database db = MakeLoadedDatabase(series);
  const auto mavg20 = std::shared_ptr<const TransformationRule>(
      MakeMovingAverageRule(20).release());

  const std::vector<double> pattern =
      mavg20->Apply(ToNormalForm(series[8].values).values);

  Query query;
  query.kind = QueryKind::kRange;
  query.relation = "r";
  query.query_series.literal = pattern;
  query.query_prenormalized = true;
  query.epsilon = 1e-6;
  query.transform = mavg20;
  const Result<QueryResult> result = db.Execute(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Series 8 transforms exactly onto the pattern.
  ASSERT_GE(result.value().matches.size(), 1u);
  EXPECT_EQ(result.value().matches[0].id, 8);
  EXPECT_NEAR(result.value().matches[0].distance, 0.0, 1e-7);
}

TEST(DatabaseTest, ExecuteTextEndToEnd) {
  const std::vector<TimeSeries> series = TestSeries(100, 64, 47);
  Database db = MakeLoadedDatabase(series);

  const Result<QueryResult> range =
      db.ExecuteText("RANGE r WITHIN 3.0 OF #walk7 USING mavg(20)");
  ASSERT_TRUE(range.ok()) << range.status().ToString();
  EXPECT_TRUE(range.value().stats.used_index);
  const Result<QueryResult> range_scan = db.ExecuteText(
      "RANGE r WITHIN 3.0 OF #walk7 USING mavg(20) VIA SCAN");
  ASSERT_TRUE(range_scan.ok());
  EXPECT_EQ(MatchIds(range.value()), MatchIds(range_scan.value()));

  const Result<QueryResult> nearest =
      db.ExecuteText("NEAREST 3 r TO #walk7");
  ASSERT_TRUE(nearest.ok());
  ASSERT_EQ(nearest.value().matches.size(), 3u);
  EXPECT_EQ(nearest.value().matches[0].name, "walk7");

  const Result<QueryResult> pairs =
      db.ExecuteText("PAIRS r WITHIN 1.0 USING mavg(20) VIA SCAN");
  ASSERT_TRUE(pairs.ok());

  EXPECT_FALSE(db.ExecuteText("RANGE missing WITHIN 1 OF #walk7").ok());
  EXPECT_FALSE(db.ExecuteText("RANGE r WITHIN 1 OF #nope").ok());
  EXPECT_FALSE(db.ExecuteText("garbage").ok());
}

TEST(DatabaseTest, EmptyRelationQueries) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("r").ok());
  Query query;
  query.kind = QueryKind::kRange;
  query.relation = "r";
  query.query_series.literal = {1.0, 2.0};
  query.epsilon = 1.0;
  const Result<QueryResult> result = db.Execute(query);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().matches.empty());

  const Result<QueryResult> join =
      db.SelfJoin("r", 1.0, nullptr, JoinMethod::kIndexNoTransform);
  ASSERT_TRUE(join.ok());
  EXPECT_TRUE(join.value().pairs.empty());
}

TEST(DatabaseTest, NegativeEpsilonRejected) {
  const std::vector<TimeSeries> series = TestSeries(10, 16, 53);
  Database db = MakeLoadedDatabase(series);
  Query query;
  query.kind = QueryKind::kRange;
  query.relation = "r";
  query.query_series.id = 0;
  query.epsilon = -1.0;
  EXPECT_EQ(db.Execute(query).status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace simq
