// Exhaustive corruption fuzz over the snapshot loader: flip every byte
// and truncate at every length of a small snapshot, and require that
// LoadDatabase always returns a clean Status -- never crashes, never
// over-reads (the CI sanitizer job runs this under ASan/UBSan).
//
// For the checksummed v3 format the contract is stronger: every byte flip
// and every truncation must be *detected* (a non-OK status), because each
// byte is covered by the magic, a section header, or a section CRC. The
// uncheksummed legacy v2 format detects most-but-not-all flips (e.g. a
// flipped name byte yields a different, still-valid name), so there the
// test only requires a clean return.

#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "core/persistence.h"
#include "workload/generators.h"

namespace simq {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteAllBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string MakeSnapshot(int format_version) {
  Database db;
  EXPECT_TRUE(db.CreateRelation("r").ok());
  EXPECT_TRUE(db.BulkLoad("r", workload::RandomWalkSeries(3, 8, 2)).ok());
  const std::string path =
      TempPath("fuzz_base_v" + std::to_string(format_version) + ".simqdb");
  EXPECT_TRUE(SaveDatabase(db, path, format_version).ok());
  return ReadAllBytes(path);
}

TEST(PersistenceCorruptionTest, V3DetectsEveryByteFlip) {
  const std::string bytes = MakeSnapshot(3);
  ASSERT_GT(bytes.size(), 16u);
  const std::string path = TempPath("fuzz_v3_flip.simqdb");
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0xFF);
    WriteAllBytes(path, corrupt);
    const Result<Database> loaded = LoadDatabase(path);
    EXPECT_FALSE(loaded.ok()) << "flip at byte " << i << " went undetected";
  }
}

TEST(PersistenceCorruptionTest, V3DetectsEveryTruncation) {
  const std::string bytes = MakeSnapshot(3);
  const std::string path = TempPath("fuzz_v3_trunc.simqdb");
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteAllBytes(path, bytes.substr(0, len));
    const Result<Database> loaded = LoadDatabase(path);
    EXPECT_FALSE(loaded.ok()) << "truncation to " << len << " bytes loaded";
  }
}

TEST(PersistenceCorruptionTest, V2ByteFlipsNeverCrashAndLoadCleanly) {
  const std::string bytes = MakeSnapshot(2);
  ASSERT_GT(bytes.size(), 16u);
  const std::string path = TempPath("fuzz_v2_flip.simqdb");
  int detected = 0;
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0xFF);
    WriteAllBytes(path, corrupt);
    // The requirement is a clean return (no crash, no over-read); v2 has
    // no checksums, so some flips -- e.g. inside a series name -- load as
    // different-but-valid data.
    const Result<Database> loaded = LoadDatabase(path);
    if (!loaded.ok()) {
      ++detected;
    }
  }
  // The structural validators (bounds, ids, stats) must still catch the
  // vast majority of flips.
  EXPECT_GT(detected, static_cast<int>(bytes.size() / 2));
}

TEST(PersistenceCorruptionTest, V2TruncationsAlwaysFail) {
  const std::string bytes = MakeSnapshot(2);
  const std::string path = TempPath("fuzz_v2_trunc.simqdb");
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteAllBytes(path, bytes.substr(0, len));
    const Result<Database> loaded = LoadDatabase(path);
    EXPECT_FALSE(loaded.ok()) << "truncation to " << len << " bytes loaded";
  }
}

}  // namespace
}  // namespace simq
