// Unit tests of the packed R-tree snapshot: pointer-vs-packed equivalence
// on all three traversals (results AND node-access accounting), kNN
// tie-break determinism, snapshot rebuild semantics through the Database,
// and edge cases (empty tree, rect leaf entries).

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "geom/search_region.h"
#include "index/packed_rtree.h"
#include "index/rtree.h"
#include "ts/feature.h"
#include "util/random.h"

namespace simq {
namespace {

std::vector<Point> RandomPoints(Random* rng, int count, int dims, double lo,
                                double hi) {
  std::vector<Point> points(static_cast<size_t>(count));
  for (Point& p : points) {
    p.resize(static_cast<size_t>(dims));
    for (double& v : p) {
      v = rng->UniformDouble(lo, hi);
    }
  }
  return points;
}

TEST(PackedRTreeTest, SearchMatchesPointerEngineWithTransforms) {
  Random rng(41);
  FeatureConfig config;
  config.num_coefficients = 2;
  config.include_mean_std = false;
  for (const FeatureSpace space :
       {FeatureSpace::kRectangular, FeatureSpace::kPolar}) {
    config.space = space;
    const int dims = FeatureDimension(config);
    RTree tree(dims);
    std::vector<Point> points;
    if (space == FeatureSpace::kPolar) {
      // Polar layout: (magnitude, angle) pairs.
      for (int i = 0; i < 800; ++i) {
        Point p(static_cast<size_t>(dims));
        for (int c = 0; c < config.num_coefficients; ++c) {
          p[static_cast<size_t>(2 * c)] = rng.UniformDouble(0.0, 4.0);
          p[static_cast<size_t>(2 * c + 1)] = rng.UniformDouble(-3.1, 3.1);
        }
        points.push_back(std::move(p));
      }
    } else {
      points = RandomPoints(&rng, 800, dims, -4.0, 4.0);
    }
    for (size_t i = 0; i < points.size(); ++i) {
      tree.InsertPoint(points[i], static_cast<int64_t>(i));
    }
    const PackedRTree packed(tree);
    EXPECT_EQ(packed.node_count(), tree.node_count());
    EXPECT_EQ(packed.size(), tree.size());
    EXPECT_EQ(packed.height(), tree.height());

    for (int trial = 0; trial < 20; ++trial) {
      const std::vector<Complex> query = {
          Complex(rng.UniformDouble(-2.0, 2.0), rng.UniformDouble(-2.0, 2.0)),
          Complex(rng.UniformDouble(-2.0, 2.0), rng.UniformDouble(-2.0, 2.0))};
      const double eps = rng.UniformDouble(0.2, 1.5);
      const SearchRegion region = SearchRegion::MakeRange(query, eps, config);

      // Alternate between the identity and a safe transformation.
      std::vector<DimAffine> affines;
      const std::vector<DimAffine>* affines_ptr = nullptr;
      if (trial % 2 == 1) {
        std::vector<Complex> stretch;
        std::vector<Complex> shift;
        for (int c = 0; c < config.num_coefficients; ++c) {
          if (space == FeatureSpace::kRectangular) {
            stretch.push_back(Complex(rng.UniformDouble(-1.5, 1.5), 0.0));
            shift.push_back(Complex(rng.UniformDouble(-0.5, 0.5),
                                    rng.UniformDouble(-0.5, 0.5)));
          } else {
            stretch.push_back(Complex(rng.UniformDouble(-1.2, 1.2),
                                      rng.UniformDouble(-1.2, 1.2)));
            shift.push_back(Complex(0.0, 0.0));
          }
        }
        const LinearTransform transform(stretch, shift);
        affines = LowerToFeatureSpace(transform, config);
        affines_ptr = &affines;
      }

      tree.ResetNodeAccesses();
      std::vector<int64_t> pointer_results;
      tree.Search(region, affines_ptr, &pointer_results);
      const int64_t pointer_accesses = tree.node_accesses();

      packed.ResetNodeAccesses();
      std::vector<int64_t> packed_results;
      packed.Search(region, affines_ptr, &packed_results);
      const int64_t packed_accesses = packed.node_accesses();

      // Same ids in the same (DFS) order, same node accesses.
      EXPECT_EQ(packed_results, pointer_results)
          << "space " << static_cast<int>(space) << " trial " << trial;
      EXPECT_EQ(packed_accesses, pointer_accesses)
          << "space " << static_cast<int>(space) << " trial " << trial;
    }
  }
}

TEST(PackedRTreeTest, SearchGenericHandlesRectLeafEntries) {
  // Leaf entries that are true rectangles (the subsequence index's trail
  // MBRs), not points.
  Random rng(52);
  RTree tree(3);
  std::vector<Rect> rects;
  for (int i = 0; i < 500; ++i) {
    Point lo(3);
    Point hi(3);
    for (int d = 0; d < 3; ++d) {
      const double a = rng.UniformDouble(-50.0, 50.0);
      lo[static_cast<size_t>(d)] = a;
      hi[static_cast<size_t>(d)] = a + rng.UniformDouble(0.0, 8.0);
    }
    rects.push_back(Rect::FromBounds(lo, hi));
    tree.Insert(rects.back(), i);
  }
  const PackedRTree packed(tree);

  for (int trial = 0; trial < 20; ++trial) {
    Point lo(3);
    Point hi(3);
    for (int d = 0; d < 3; ++d) {
      const double a = rng.UniformDouble(-60.0, 60.0);
      const double b = rng.UniformDouble(-60.0, 60.0);
      lo[static_cast<size_t>(d)] = std::min(a, b);
      hi[static_cast<size_t>(d)] = std::max(a, b);
    }
    const Rect box = Rect::FromBounds(lo, hi);
    const auto overlaps = [&](const auto& rect) {
      for (int d = 0; d < 3; ++d) {
        if (rect.lo(d) > box.hi(d) || rect.hi(d) < box.lo(d)) {
          return false;
        }
      }
      return true;
    };

    tree.ResetNodeAccesses();
    std::vector<int64_t> expected;
    tree.SearchGeneric(overlaps,
                       [&](const Rect& rect, int64_t) { return overlaps(rect); },
                       [&](int64_t id) { expected.push_back(id); });

    packed.ResetNodeAccesses();
    std::vector<int64_t> actual;
    packed.SearchGeneric(
        overlaps, [&](const auto& rect, int64_t) { return overlaps(rect); },
        [&](int64_t id) { actual.push_back(id); });

    EXPECT_EQ(actual, expected) << "trial " << trial;
    EXPECT_EQ(packed.node_accesses(), tree.node_accesses())
        << "trial " << trial;
  }
}

TEST(PackedRTreeTest, JoinMatchesPointerEngine) {
  Random rng(63);
  RTree left(3);
  RTree right(3);
  const std::vector<Point> left_points = RandomPoints(&rng, 400, 3, -20, 20);
  const std::vector<Point> right_points = RandomPoints(&rng, 350, 3, -20, 20);
  for (size_t i = 0; i < left_points.size(); ++i) {
    left.InsertPoint(left_points[i], static_cast<int64_t>(i));
  }
  for (size_t j = 0; j < right_points.size(); ++j) {
    right.InsertPoint(right_points[j], static_cast<int64_t>(j));
  }
  const PackedRTree packed_left(left);
  const PackedRTree packed_right(right);
  const EpsilonPairPredicate pred{3, 2.0};

  // Self-join (both orientations + diagonal, like the pointer engine).
  left.ResetNodeAccesses();
  std::set<std::pair<int64_t, int64_t>> pointer_self;
  left.JoinWith(left, pred, [&](int64_t a, int64_t b) {
    pointer_self.insert({a, b});
  });
  const int64_t pointer_self_accesses = left.node_accesses();

  packed_left.ResetNodeAccesses();
  std::set<std::pair<int64_t, int64_t>> packed_self;
  std::set<std::pair<int64_t, int64_t>> packed_self_nosweep;
  packed_left.JoinWith(packed_left, pred,
                       [&](int64_t a, int64_t b) { packed_self.insert({a, b}); },
                       /*slack=*/2.0);
  const int64_t packed_self_accesses = packed_left.node_accesses();
  // slack = +inf disables the sweep; answers must not change.
  packed_left.JoinWith(
      packed_left, pred,
      [&](int64_t a, int64_t b) { packed_self_nosweep.insert({a, b}); },
      std::numeric_limits<double>::infinity());

  EXPECT_EQ(packed_self, pointer_self);
  EXPECT_EQ(packed_self_nosweep, pointer_self);
  EXPECT_EQ(packed_self_accesses, pointer_self_accesses);

  // Cross-join.
  left.ResetNodeAccesses();
  right.ResetNodeAccesses();
  std::set<std::pair<int64_t, int64_t>> pointer_cross;
  left.JoinWith(right, pred, [&](int64_t a, int64_t b) {
    pointer_cross.insert({a, b});
  });
  const int64_t pointer_cross_accesses =
      left.node_accesses() + right.node_accesses();

  packed_left.ResetNodeAccesses();
  packed_right.ResetNodeAccesses();
  std::set<std::pair<int64_t, int64_t>> packed_cross;
  packed_left.JoinWith(packed_right, pred, [&](int64_t a, int64_t b) {
    packed_cross.insert({a, b});
  }, /*slack=*/2.0);
  EXPECT_EQ(packed_cross, pointer_cross);
  EXPECT_EQ(packed_left.node_accesses() + packed_right.node_accesses(),
            pointer_cross_accesses);
}

TEST(PackedRTreeTest, NearestNeighborsDeterministicTieBreaking) {
  // Duplicate points force exact-distance ties; both engines must resolve
  // them by (distance, then id) and agree on node accesses.
  FeatureConfig config;
  config.num_coefficients = 2;
  config.space = FeatureSpace::kRectangular;
  config.include_mean_std = false;
  RTree tree(4);
  std::vector<Point> points;
  Random rng(74);
  // 60 distinct locations, each duplicated 5 times -> 300 entries.
  for (int loc = 0; loc < 60; ++loc) {
    Point p(4);
    for (double& v : p) {
      v = rng.UniformDouble(-5.0, 5.0);
    }
    for (int copy = 0; copy < 5; ++copy) {
      points.push_back(p);
    }
  }
  // Shuffled insert order so duplicates land in different leaves.
  std::vector<int64_t> ids(points.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<int64_t>(i);
  }
  for (size_t i = ids.size(); i > 1; --i) {
    std::swap(ids[i - 1],
              ids[static_cast<size_t>(rng.UniformInt(
                  0, static_cast<int64_t>(i) - 1))]);
  }
  for (const int64_t id : ids) {
    tree.InsertPoint(points[static_cast<size_t>(id)], id);
  }
  const PackedRTree packed(tree);

  const std::vector<Complex> query = {Complex(0.3, -0.2), Complex(1.1, 0.4)};
  const NnLowerBound bound(query, config);
  const std::vector<DimAffine> identity(4);
  const auto exact = [&](int64_t id) {
    return bound.ToTransformedPoint(points[static_cast<size_t>(id)], identity);
  };

  for (const int k : {1, 3, 7, 12, 50}) {
    tree.ResetNodeAccesses();
    const auto pointer_result = tree.NearestNeighbors(bound, nullptr, k, exact);
    const int64_t pointer_accesses = tree.node_accesses();

    packed.ResetNodeAccesses();
    const auto packed_result = packed.NearestNeighbors(bound, nullptr, k, exact);
    const int64_t packed_accesses = packed.node_accesses();

    ASSERT_EQ(static_cast<int>(pointer_result.size()), k) << "k " << k;
    EXPECT_EQ(packed_result, pointer_result) << "k " << k;
    EXPECT_EQ(packed_accesses, pointer_accesses) << "k " << k;

    // (distance, id) order: nondecreasing distance, ids ascending within a
    // tie, and a tie cut at the k-th distance keeps the smallest ids.
    for (size_t i = 1; i < pointer_result.size(); ++i) {
      ASSERT_LE(pointer_result[i - 1].second, pointer_result[i].second);
      if (pointer_result[i - 1].second == pointer_result[i].second) {
        ASSERT_LT(pointer_result[i - 1].first, pointer_result[i].first);
      }
    }
    const double kth = pointer_result.back().second;
    for (size_t id = 0; id < points.size(); ++id) {
      const double dist = exact(static_cast<int64_t>(id));
      if (dist < kth) {
        const bool found =
            std::any_of(pointer_result.begin(), pointer_result.end(),
                        [&](const std::pair<int64_t, double>& r) {
                          return r.first == static_cast<int64_t>(id);
                        });
        EXPECT_TRUE(found) << "id " << id << " k " << k;
      }
    }
  }
}

TEST(PackedRTreeTest, EmptyTreeTraversalsAreSafe) {
  FeatureConfig config;
  config.num_coefficients = 1;
  config.space = FeatureSpace::kRectangular;
  config.include_mean_std = false;
  RTree tree(2);
  const PackedRTree packed(tree);
  EXPECT_EQ(packed.size(), 0);
  EXPECT_EQ(packed.node_count(), 1);

  const SearchRegion region =
      SearchRegion::MakeRange({Complex(0.0, 0.0)}, 1.0, config);
  std::vector<int64_t> results;
  packed.Search(region, nullptr, &results);
  EXPECT_TRUE(results.empty());

  const NnLowerBound bound({Complex(0.0, 0.0)}, config);
  const auto knn = packed.NearestNeighbors(bound, nullptr, 3,
                                           [](int64_t) { return 0.0; });
  EXPECT_TRUE(knn.empty());

  RTree other(2);
  other.InsertPoint({1.0, 2.0}, 7);
  const PackedRTree packed_other(other);
  int emitted = 0;
  packed.JoinWith(packed_other, [](const auto&, const auto&) { return true; },
                  [&](int64_t, int64_t) { ++emitted; }, 0.0);
  packed_other.JoinWith(packed, [](const auto&, const auto&) { return true; },
                        [&](int64_t, int64_t) { ++emitted; }, 0.0);
  EXPECT_EQ(emitted, 0);
}

TEST(PackedRTreeTest, OversizedFanoutFallsBackToPointerEngine) {
  // max_entries beyond the packed layout's fanout cap must not abort:
  // index queries silently stay on the pointer engine.
  ASSERT_FALSE(PackedRTree::SupportsFanout(PackedRTree::kMaxFanout + 44));
  RTree::Options options;
  options.max_entries = PackedRTree::kMaxFanout + 44;
  options.min_entries = 2;
  Database db(FeatureConfig(), options);
  ASSERT_TRUE(db.CreateRelation("r").ok());
  Random rng(96);
  std::vector<TimeSeries> batch;
  for (int i = 0; i < PackedRTree::kMaxFanout + 100; ++i) {
    TimeSeries ts;
    ts.id = "s" + std::to_string(i);
    for (int t = 0; t < 16; ++t) {
      ts.values.push_back(rng.UniformDouble(-1.0, 1.0));
    }
    batch.push_back(std::move(ts));
  }
  ASSERT_TRUE(db.BulkLoad("r", batch).ok());

  Query query;
  query.kind = QueryKind::kNearest;
  query.relation = "r";
  query.query_series.id = 0;
  query.k = 5;
  query.strategy = ExecutionStrategy::kIndex;
  const auto result = db.Execute(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(static_cast<int>(result.value().matches.size()), 5);
  EXPECT_GT(result.value().stats.node_accesses, 0);
}

TEST(PackedRTreeTest, DatabaseSnapshotRebuildsAfterMutation) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("r").ok());
  Random rng(85);
  const auto make_series = [&](const std::string& name) {
    TimeSeries ts;
    ts.id = name;
    for (int t = 0; t < 32; ++t) {
      ts.values.push_back(rng.UniformDouble(-1.0, 1.0));
    }
    return ts;
  };
  std::vector<TimeSeries> batch;
  for (int i = 0; i < 40; ++i) {
    batch.push_back(make_series("s" + std::to_string(i)));
  }
  ASSERT_TRUE(db.BulkLoad("r", batch).ok());

  Query query;
  query.kind = QueryKind::kNearest;
  query.relation = "r";
  query.query_series.id = 0;
  query.k = 40;
  query.strategy = ExecutionStrategy::kIndex;
  const auto before = db.Execute(query);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(static_cast<int>(before.value().matches.size()), 40);

  // Mutation marks the snapshot stale; the next query sees the new record.
  ASSERT_TRUE(db.Insert("r", make_series("late")).ok());
  query.k = 41;
  const auto after = db.Execute(query);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(static_cast<int>(after.value().matches.size()), 41);

  // Packed and pointer engines agree through the Database surface.
  db.set_index_engine(IndexEngine::kPointer);
  const auto pointer_after = db.Execute(query);
  ASSERT_TRUE(pointer_after.ok());
  ASSERT_EQ(pointer_after.value().matches.size(),
            after.value().matches.size());
  for (size_t i = 0; i < after.value().matches.size(); ++i) {
    EXPECT_EQ(after.value().matches[i].id, pointer_after.value().matches[i].id);
    EXPECT_EQ(after.value().matches[i].distance,
              pointer_after.value().matches[i].distance);
  }
  EXPECT_EQ(after.value().stats.node_accesses,
            pointer_after.value().stats.node_accesses);
}

}  // namespace
}  // namespace simq
