#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/table_printer.h"

namespace simq {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = Status::InvalidArgument("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeName(StatusCode::kTimeout), "Timeout");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "Cancelled");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOverloaded), "Overloaded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
}

TEST(StatusTest, LifecycleFactoriesCarryTheirCode) {
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Timeout("x").code(), StatusCode::kTimeout);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::Overloaded("x").code(), StatusCode::kOverloaded);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(ResultTest, HoldsValue) {
  const Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
}

TEST(ResultTest, HoldsStatus) {
  const Result<int> result = Status::NotFound("missing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> result = std::vector<int>{1, 2, 3};
  const std::vector<int> taken = std::move(result).value();
  EXPECT_EQ(taken.size(), 3u);
}

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1);
  Random b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double value = rng.NextDouble();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(RandomTest, UniformDoubleRespectsBounds) {
  Random rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double value = rng.UniformDouble(-4.0, 4.0);
    EXPECT_GE(value, -4.0);
    EXPECT_LT(value, 4.0);
  }
}

TEST(RandomTest, UniformIntCoversRangeInclusively) {
  Random rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t value = rng.UniformInt(0, 9);
    EXPECT_GE(value, 0);
    EXPECT_LE(value, 9);
    saw_lo = saw_lo || value == 0;
    saw_hi = saw_hi || value == 9;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, UniformIntSingleton) {
  Random rng(13);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.UniformInt(5, 5), 5);
  }
}

TEST(RandomTest, GaussianMomentsRoughlyStandard) {
  Random rng(17);
  const int samples = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < samples; ++i) {
    const double value = rng.NextGaussian();
    sum += value;
    sum_sq += value * value;
  }
  const double mean = sum / samples;
  const double variance = sum_sq / samples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(variance, 1.0, 0.03);
}

TEST(RandomTest, BernoulliFrequency) {
  Random rng(19);
  int hits = 0;
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) {
    hits += rng.Bernoulli(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / samples, 0.25, 0.01);
}

TEST(StatsTest, MeanAndStd) {
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(values), 5.0);
  EXPECT_DOUBLE_EQ(StdDev(values), 2.0);  // classic population-stddev example
}

TEST(StatsTest, EmptyInputs) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({}), 0.0);
}

TEST(StatsTest, ConstantSeriesHasZeroStd) {
  EXPECT_DOUBLE_EQ(StdDev({3.0, 3.0, 3.0}), 0.0);
}

TEST(StatsTest, EuclideanDistanceReal) {
  const std::vector<double> origin = {0.0, 0.0};
  const std::vector<double> three_four = {3.0, 4.0};
  const std::vector<double> ones = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(EuclideanDistance(origin, three_four), 5.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance(ones, ones), 0.0);
}

TEST(StatsTest, EuclideanDistanceComplex) {
  const std::vector<std::complex<double>> a = {{0.0, 0.0}, {1.0, 1.0}};
  const std::vector<std::complex<double>> b = {{3.0, 4.0}, {1.0, 1.0}};
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), 5.0);
}

TEST(StatsTest, EarlyAbandonMatchesFullWhenWithinThreshold) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b = {2.0, 3.0, 4.0, 5.0};
  const double full = EuclideanDistance(a, b);
  EXPECT_DOUBLE_EQ(EuclideanDistanceEarlyAbandon(a, b, full + 0.1), full);
}

TEST(StatsTest, EarlyAbandonReturnsInfinityWhenExceeded) {
  const std::vector<double> a = {0.0, 0.0, 0.0};
  const std::vector<double> b = {10.0, 10.0, 10.0};
  EXPECT_TRUE(std::isinf(EuclideanDistanceEarlyAbandon(a, b, 1.0)));
}

TEST(StatsTest, EarlyAbandonKeepsExactThreshold) {
  // Distance exactly equal to the threshold must not be abandoned.
  const std::vector<double> a = {0.0};
  const std::vector<double> b = {2.0};
  EXPECT_DOUBLE_EQ(EuclideanDistanceEarlyAbandon(a, b, 2.0), 2.0);
}

TEST(StatsTest, EnergyRealAndComplexAgree) {
  const std::vector<double> x = {1.0, -2.0, 3.0};
  std::vector<std::complex<double>> cx;
  for (double v : x) {
    cx.emplace_back(v, 0.0);
  }
  EXPECT_DOUBLE_EQ(Energy(x), 14.0);
  EXPECT_DOUBLE_EQ(Energy(cx), 14.0);
}

TEST(StatsTest, SummarizeOrderStatistics) {
  const Summary summary = Summarize({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(summary.min, 1.0);
  EXPECT_DOUBLE_EQ(summary.max, 5.0);
  EXPECT_DOUBLE_EQ(summary.mean, 3.0);
  EXPECT_DOUBLE_EQ(summary.median, 3.0);
}

TEST(StatsTest, SummarizeEvenCountMedian) {
  const Summary summary = Summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(summary.median, 2.5);
}

TEST(StatsTest, PercentileInterpolatesBetweenRanks) {
  const std::vector<double> sample = {10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(Percentile(sample, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(sample, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(Percentile(sample, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(Percentile(sample, 25.0), 20.0);
  EXPECT_DOUBLE_EQ(Percentile(sample, 90.0), 46.0);  // between ranks 3 and 4
}

TEST(StatsTest, PercentileDegenerateInputs) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 99.0), 7.0);
  EXPECT_DOUBLE_EQ(Percentile({3.0, 1.0}, 200.0), 3.0);  // clamped
}

TEST(TablePrinterTest, FormatHelpers) {
  EXPECT_EQ(TablePrinter::FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::FormatInt(12345), "12345");
  EXPECT_EQ(TablePrinter::FormatInt(-7), "-7");
}

TEST(TablePrinterTest, PrintDoesNotCrash) {
  TablePrinter table({"a", "b"});
  table.AddRow({"1", "2"});
  table.AddRow({"long cell", "x"});
  table.Print();
}

}  // namespace
}  // namespace simq
