// [FRM94-substrate] Subsequence matching: ST-index vs. sequential scan over
// all window offsets, plus the trail-packing ablation (fixed-size vs.
// [FRM94] adaptive marginal-cost sub-trails). The expected shape is the
// [FRM94] result: the index prunes almost all windows for selective
// queries, with the advantage growing with the total data size; adaptive
// packing covers smooth trails with far fewer MBRs than per-point cuts.

#include "bench/bench_common.h"
#include "subseq/subsequence_index.h"
#include "util/random.h"
#include "util/table_printer.h"
#include "workload/generators.h"

namespace simq {
namespace {

void Run() {
  bench::PrintHeader(
      "FRM94-substrate: subsequence matching (ST-index vs offset scan)",
      "claim: the ST-index verifies a small fraction of windows; advantage "
      "grows with data size; adaptive trails << fixed trails");

  TablePrinter table({"total_windows", "packing", "trails", "index_ms",
                      "scan_ms", "speedup", "windows_checked"});
  const int kWindow = 64;
  const int kQueries = 10;

  for (const int series_length : {2000, 8000, 32000}) {
    const std::vector<TimeSeries> data =
        workload::RandomWalkSeries(4, series_length, 555);
    for (const TrailPacking packing :
         {TrailPacking::kFixed, TrailPacking::kAdaptive}) {
      SubsequenceIndex::Options options;
      options.window = kWindow;
      options.packing = packing;
      options.max_trail_length = packing == TrailPacking::kFixed ? 16 : 256;
      SubsequenceIndex index(options);
      for (const TimeSeries& ts : data) {
        SIMQ_CHECK(index.AddSeries(ts).ok());
      }

      // Queries: stored windows plus noise; epsilon admits the planted
      // window and close relatives.
      std::vector<std::vector<double>> queries;
      Random rng(777);
      for (int q = 0; q < kQueries; ++q) {
        const int series_id = static_cast<int>(rng.UniformInt(0, 3));
        const int offset = static_cast<int>(
            rng.UniformInt(0, series_length - kWindow));
        std::vector<double> query(
            data[static_cast<size_t>(series_id)].values.begin() + offset,
            data[static_cast<size_t>(series_id)].values.begin() + offset +
                kWindow);
        for (double& v : query) {
          v += rng.UniformDouble(-0.1, 0.1);
        }
        queries.push_back(std::move(query));
      }
      const double epsilon = 2.0;

      int64_t windows_checked = 0;
      auto run_index = [&] {
        windows_checked = 0;
        for (const auto& query : queries) {
          SubsequenceIndex::SearchStats stats;
          index.RangeSearch(query, epsilon, &stats);
          windows_checked += stats.windows_checked;
        }
      };
      auto run_scan = [&] {
        for (const auto& query : queries) {
          index.ScanSearch(query, epsilon);
        }
      };
      const double index_ms = bench::MedianMillis(run_index, 5) / kQueries;
      const double scan_ms = bench::MedianMillis(run_scan, 5) / kQueries;

      table.AddRow(
          {TablePrinter::FormatInt(index.num_windows()),
           packing == TrailPacking::kFixed ? "fixed(16)" : "adaptive",
           TablePrinter::FormatInt(index.num_trails()),
           TablePrinter::FormatDouble(index_ms, 4),
           TablePrinter::FormatDouble(scan_ms, 4),
           TablePrinter::FormatDouble(scan_ms / index_ms, 1),
           TablePrinter::FormatInt(windows_checked / kQueries)});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace simq

int main() {
  simq::Run();
  return 0;
}
