// [Ablation-k] The k-index cut-off: how many DFT coefficients should the
// index keep? Sweeps k = 1..8 and reports filter selectivity (candidates
// surviving the index filter), false-hit rate, node accesses, and query
// time. Lemma 1 guarantees the *answers* are identical for every k -- the
// "answers" column must be constant -- while energy concentration makes
// even tiny k filter most of the relation ([AFS93]'s original design
// point).

#include "bench/bench_common.h"
#include "util/table_printer.h"
#include "workload/generators.h"

namespace simq {
namespace {

void Run() {
  bench::PrintHeader(
      "Ablation-k: index cut-off (number of indexed DFT coefficients)",
      "claim: identical answers for every k (no false dismissals); few "
      "coefficients already filter most of the relation");

  // Clustered market data: on iid random walks all points are nearly
  // equidistant and no filter can discriminate; sector-correlated stocks
  // have genuine neighborhoods for the filter to isolate.
  workload::StockMarketOptions market_options;
  market_options.num_series = 4000;
  market_options.num_sectors = 12;
  market_options.sector_correlation = 0.9;
  market_options.idiosyncratic_step = 0.4;
  const std::vector<TimeSeries> series =
      workload::StockMarket(market_options);
  const int kQueries = 15;

  TablePrinter table({"k", "index_dims", "answers", "candidates",
                      "false_hit_rate", "node_accesses", "query_ms"});
  for (const int k : {1, 2, 3, 4, 6, 8}) {
    FeatureConfig config;
    config.num_coefficients = k;
    const auto db = bench::BuildDatabase(series, config);
    std::vector<double> epsilons(kQueries);
    for (int q = 0; q < kQueries; ++q) {
      epsilons[static_cast<size_t>(q)] = bench::CalibrateRangeEpsilon(
          *db, "r", (q * 101) % 4000, nullptr, 20);
    }

    int64_t answers = 0;
    int64_t candidates = 0;
    int64_t nodes = 0;
    auto run_queries = [&] {
      answers = candidates = nodes = 0;
      for (int q = 0; q < kQueries; ++q) {
        Query query;
        query.kind = QueryKind::kRange;
        query.relation = "r";
        query.query_series.id = (q * 101) % 4000;
        query.epsilon = epsilons[static_cast<size_t>(q)];
        query.strategy = ExecutionStrategy::kIndex;
        const QueryResult result = db->Execute(query).value();
        answers += static_cast<int64_t>(result.matches.size());
        candidates += result.stats.candidates;
        nodes += result.stats.node_accesses;
      }
    };
    const double ms = bench::MedianMillis(run_queries, 5) / kQueries;

    const double false_hits =
        candidates == 0
            ? 0.0
            : static_cast<double>(candidates - answers) /
                  static_cast<double>(candidates);
    table.AddRow({TablePrinter::FormatInt(k),
                  TablePrinter::FormatInt(FeatureDimension(config)),
                  TablePrinter::FormatInt(answers),
                  TablePrinter::FormatInt(candidates),
                  TablePrinter::FormatDouble(false_hits, 3),
                  TablePrinter::FormatInt(nodes / kQueries),
                  TablePrinter::FormatDouble(ms, 4)});
  }
  table.Print();
}

}  // namespace
}  // namespace simq

int main() {
  simq::Run();
  return 0;
}
