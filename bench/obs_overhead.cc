// [OBS] Observability overhead on the hot paths: what the tracing and
// metrics instrumentation costs when it is off, sampled, and always on.
//
// Engine-level A/B on two workloads, with the modes run back-to-back per
// probe (rotating order) and compared by per-probe median latency, so
// machine drift and scheduling noise hit every mode equally:
//   table1_range   Table-1 stock relation (1067 x 128), T_mavg20 literal
//                  range queries at the ~12-answer operating point
//   filtered_knn   12000 x 128 random walks, quantized filter engine,
//                  NEAREST 10 VIA SCAN MODE FILTERED
//
// Modes per workload:
//   baseline    Query::exec == nullptr -- no context, every trace branch
//               short-circuits on the null pointer
//   off         an ExecutionContext is attached but carries no trace: the
//               dormant-instrumentation path every production query pays
//   accounting  a QueryAccounting is attached and the pool CPU sink +
//               calling-thread CLOCK_THREAD_CPUTIME_ID delta are metered,
//               exactly what enable_resource_accounting pays per query
//   sampled     1 in 64 executions carries a Trace
//   always      every execution carries a Trace
//
// Self-checks (reported in BENCH_obs.json and grepped by CI):
//   * overhead_off_pct (baseline vs off) stays under 2% on both
//     workloads -- the tracing-off budget. "gate_failed": true fails CI.
//   * overhead_accounting_pct (baseline vs accounting) stays under 2% --
//     the resource-accounting budget, gated the same way.
//   * traced and untraced answer sets are bit-identical ("mismatch").
// The sampled/always overheads and the metrics scrape latency (median
// HTTP GET against obs::MetricsHttpExporter) are recorded, not gated.
//
// Usage: obs_overhead [rounds] [out.json]

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/database.h"
#include "core/parser.h"
#include "core/sharded_relation.h"
#include "core/transformation.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/resource_usage.h"
#include "obs/trace.h"
#include "service/query_service.h"
#include "util/thread_pool.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "workload/generators.h"

namespace simq {
namespace {

enum class Mode { kBaseline, kOff, kAccounting, kSampled, kAlways };
constexpr int kModeCount = 5;

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kBaseline: return "baseline";
    case Mode::kOff: return "off";
    case Mode::kAccounting: return "accounting";
    case Mode::kSampled: return "sampled";
    case Mode::kAlways: return "always";
  }
  return "?";
}

struct WorkloadReport {
  std::string name;
  double qps[kModeCount] = {};  // indexed by Mode
  double overhead_off_pct = 0.0;
  double overhead_accounting_pct = 0.0;
  double overhead_sampled_pct = 0.0;
  double overhead_always_pct = 0.0;
};

std::string LiteralRangeText(const std::vector<double>& values,
                             double epsilon) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", epsilon);
  std::string text = std::string("RANGE r WITHIN ") + buffer + " OF [";
  for (size_t i = 0; i < values.size(); ++i) {
    std::snprintf(buffer, sizeof(buffer), "%.17g", values[i]);
    if (i > 0) text += ",";
    text += buffer;
  }
  text += "] USING mavg(20)";
  return text;
}

bool SameMatches(const std::vector<Match>& a, const std::vector<Match>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].distance != b[i].distance) return false;
  }
  return true;
}

// Executes `query` once in `mode` and returns the wall time in ms. The
// query objects are prebuilt (parse cost excluded); the per-query work
// here is exactly what the mode is defined to pay.
double TimeOne(Database* db, const Query& query, Mode mode,
               const std::shared_ptr<const ExecutionContext>& ctx,
               int64_t* tick) {
  Query bound = query;  // cheap: shares the compiled rule chain
  std::shared_ptr<obs::QueryAccounting> accounting;
  if (mode != Mode::kBaseline) {
    bound.exec = ctx;
    const bool traced =
        mode == Mode::kAlways ||
        (mode == Mode::kSampled && ((*tick)++ % 64) == 0);
    ctx->set_trace(traced ? std::make_shared<obs::Trace>() : nullptr);
    if (mode == Mode::kAccounting) {
      accounting = std::make_shared<obs::QueryAccounting>();
      ctx->set_accounting(accounting);
    }
  }
  Stopwatch watch;
  // Accounting mode pays exactly what the service pays per metered query:
  // the pool workers' CPU sink plus the calling thread's own delta.
  const Result<QueryResult> result = [&] {
    if (accounting == nullptr) {
      return db->Execute(bound);
    }
    ThreadPool::ScopedCpuAccounting meter(&accounting->cpu_ns,
                                          &accounting->pool_tasks);
    const int64_t cpu_begin = ThreadPool::ThreadCpuNs();
    Result<QueryResult> r = db->Execute(bound);
    accounting->cpu_ns.fetch_add(ThreadPool::ThreadCpuNs() - cpu_begin,
                                 std::memory_order_relaxed);
    return r;
  }();
  const double elapsed = watch.ElapsedMillis();
  SIMQ_CHECK(result.ok()) << result.status().ToString();
  if (mode != Mode::kBaseline) {
    ctx->set_trace(nullptr);
    if (accounting != nullptr) {
      SIMQ_CHECK(accounting->cpu_ns.load() > 0) << "accounting metered no CPU";
      ctx->set_accounting(nullptr);
    }
  }
  return elapsed;
}

WorkloadReport MeasureWorkload(const std::string& name, Database* db,
                               const std::vector<Query>& queries,
                               int rounds) {
  WorkloadReport report;
  report.name = name;
  auto ctx = std::make_shared<const ExecutionContext>();

  // Identity check first (and warm-up): a traced execution must return
  // the bit-identical answer set of an untraced one.
  for (const Query& query : queries) {
    const Result<QueryResult> plain = db->Execute(query);
    SIMQ_CHECK(plain.ok()) << plain.status().ToString();
    Query traced = query;
    traced.exec = ctx;
    ctx->set_trace(std::make_shared<obs::Trace>());
    const Result<QueryResult> with_trace = db->Execute(traced);
    ctx->set_trace(nullptr);
    SIMQ_CHECK(with_trace.ok()) << with_trace.status().ToString();
    SIMQ_CHECK(SameMatches(plain.value().matches,
                           with_trace.value().matches) &&
               plain.value().pairs.size() == with_trace.value().pairs.size())
        << "traced answers differ on " << name;
  }

  // Per-(probe, mode) latency samples, executed back-to-back per probe so
  // every mode sees the same caches, clocks, and background noise; the
  // per-mode order rotates each round to cancel residual position bias.
  // Medians per probe, summed across probes, yield each mode's cost; this
  // is what survives a noisy shared machine where round-level A/B
  // interleaving does not.
  const Mode kModes[] = {Mode::kBaseline, Mode::kOff, Mode::kAccounting,
                         Mode::kSampled, Mode::kAlways};
  int64_t tick = 0;
  std::vector<std::vector<double>> samples[kModeCount];
  for (auto& per_mode : samples) {
    per_mode.assign(queries.size(), {});
  }
  for (int round = 0; round < rounds; ++round) {
    for (size_t i = 0; i < queries.size(); ++i) {
      for (int slot = 0; slot < kModeCount; ++slot) {
        const Mode mode = kModes[(slot + round) % kModeCount];
        samples[static_cast<int>(mode)][i].push_back(
            TimeOne(db, queries[i], mode, ctx, &tick));
      }
    }
  }
  double total_ms[kModeCount] = {};
  for (const Mode mode : kModes) {
    const int m = static_cast<int>(mode);
    for (size_t i = 0; i < queries.size(); ++i) {
      total_ms[m] += Percentile(samples[m][i], 50.0);
    }
    report.qps[m] =
        1000.0 * static_cast<double>(queries.size()) / total_ms[m];
  }
  const double base = total_ms[static_cast<int>(Mode::kBaseline)];
  report.overhead_off_pct =
      100.0 * (total_ms[static_cast<int>(Mode::kOff)] - base) / base;
  report.overhead_accounting_pct =
      100.0 * (total_ms[static_cast<int>(Mode::kAccounting)] - base) / base;
  report.overhead_sampled_pct =
      100.0 * (total_ms[static_cast<int>(Mode::kSampled)] - base) / base;
  report.overhead_always_pct =
      100.0 * (total_ms[static_cast<int>(Mode::kAlways)] - base) / base;
  return report;
}

// Minimal HTTP GET against 127.0.0.1:`port`; returns false on any socket
// failure or an empty response.
bool HttpGet(uint16_t port, std::string* body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  const char request[] = "GET /metrics HTTP/1.0\r\n\r\n";
  if (::send(fd, request, sizeof(request) - 1, 0) < 0) {
    ::close(fd);
    return false;
  }
  char buffer[4096];
  body->clear();
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    body->append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return !body->empty();
}

// Median / p95 scrape latency against a live exporter whose registry
// holds the full service catalog.
bool MeasureScrape(int requests, double* p50_ms, double* p95_ms) {
  Database db;
  SIMQ_CHECK(db.CreateRelation("r").ok());
  SIMQ_CHECK(
      db.BulkLoad("r", workload::RandomWalkSeries(200, 64, 11)).ok());
  QueryService service(std::move(db));
  for (int i = 0; i < 50; ++i) {
    SIMQ_CHECK(service.ExecuteText("NEAREST 3 r TO #walk1").ok());
  }
  obs::MetricsHttpExporter exporter(
      service.metrics_registry(),
      [&service] { service.RefreshScrapeGauges(); });
  if (!exporter.Start(0)) return false;
  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(requests));
  std::string body;
  if (!HttpGet(exporter.port(), &body)) return false;  // warm-up
  SIMQ_CHECK(body.find("simq_queries_total") != std::string::npos);
  for (int i = 0; i < requests; ++i) {
    Stopwatch watch;
    if (!HttpGet(exporter.port(), &body)) return false;
    latencies.push_back(watch.ElapsedMillis());
  }
  exporter.Stop();
  *p50_ms = Percentile(latencies, 50.0);
  *p95_ms = Percentile(latencies, 95.0);
  return true;
}

void Run(int rounds, const std::string& out_path) {
  bench::PrintHeader(
      "OBS: observability overhead (tracing off / accounting / sampled / "
      "always)",
      "claims: dormant instrumentation and resource accounting each cost "
      "<2% on the Table-1 range and filtered-kNN hot paths; traced answers "
      "are bit-identical");

  std::vector<WorkloadReport> reports;

  // Workload 1: Table-1 stock range queries.
  {
    const std::vector<TimeSeries> market =
        workload::StockMarket(workload::StockMarketOptions());
    auto db = bench::BuildDatabase(market);
    const auto mavg20 = MakeMovingAverageRule(20);
    const double epsilon =
        bench::CalibrateRangeEpsilon(*db, "r", 0, mavg20.get(), 12);
    std::vector<Query> queries;
    constexpr int kProbes = 16;
    for (int p = 0; p < kProbes; ++p) {
      const size_t index =
          static_cast<size_t>(p) * market.size() / kProbes;
      Result<Query> parsed =
          ParseQuery(LiteralRangeText(market[index].values, epsilon));
      SIMQ_CHECK(parsed.ok()) << parsed.status().ToString();
      queries.push_back(std::move(parsed).value());
    }
    reports.push_back(
        MeasureWorkload("table1_range", db.get(), queries, rounds));
  }

  // Workload 2: filtered kNN over 12000 x 128 walks.
  {
    auto db = bench::BuildDatabase(workload::RandomWalkSeries(12000, 128, 5));
    db->set_filter_engine(FilterEngine::kQuantized);
    std::vector<Query> queries;
    constexpr int kProbes = 8;
    for (int p = 0; p < kProbes; ++p) {
      const std::string text =
          "NEAREST 10 r TO #walk" + std::to_string(p * 1500) +
          " VIA SCAN MODE FILTERED";
      Result<Query> parsed = ParseQuery(text);
      SIMQ_CHECK(parsed.ok()) << parsed.status().ToString();
      queries.push_back(std::move(parsed).value());
    }
    reports.push_back(
        MeasureWorkload("filtered_knn", db.get(), queries, rounds));
  }

  double scrape_p50 = 0.0;
  double scrape_p95 = 0.0;
  constexpr int kScrapeRequests = 50;
  const bool scrape_ok =
      MeasureScrape(kScrapeRequests, &scrape_p50, &scrape_p95);
  SIMQ_CHECK(scrape_ok) << "metrics scrape failed";

  TablePrinter table({"workload", "baseline_qps", "off_qps", "acct_qps",
                      "sampled_qps", "always_qps", "off_%", "acct_%",
                      "always_%"});
  bool gate_failed = false;
  for (const WorkloadReport& report : reports) {
    table.AddRow(
        {report.name, TablePrinter::FormatDouble(report.qps[0], 0),
         TablePrinter::FormatDouble(report.qps[1], 0),
         TablePrinter::FormatDouble(report.qps[2], 0),
         TablePrinter::FormatDouble(report.qps[3], 0),
         TablePrinter::FormatDouble(report.qps[4], 0),
         TablePrinter::FormatDouble(report.overhead_off_pct, 2),
         TablePrinter::FormatDouble(report.overhead_accounting_pct, 2),
         TablePrinter::FormatDouble(report.overhead_always_pct, 2)});
    if (report.overhead_off_pct >= 2.0) gate_failed = true;
    if (report.overhead_accounting_pct >= 2.0) gate_failed = true;
  }
  table.Print();
  std::printf("\nscrape: p50=%.3f ms p95=%.3f ms (%d requests)   "
              "tracing-off + accounting gates %s\n",
              scrape_p50, scrape_p95, kScrapeRequests,
              gate_failed ? "FAILED (>= 2%)" : "ok (< 2%)");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  SIMQ_CHECK(out != nullptr) << "cannot write " << out_path;
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"obs_overhead\",\n"
               "  \"rounds\": %d,\n"
               "  \"workloads\": [\n",
               rounds);
  for (size_t i = 0; i < reports.size(); ++i) {
    const WorkloadReport& r = reports[i];
    std::fprintf(
        out,
        "    {\"name\": \"%s\", \"qps_baseline\": %.1f, \"qps_off\": %.1f, "
        "\"qps_accounting\": %.1f, \"qps_sampled\": %.1f, "
        "\"qps_always\": %.1f, \"overhead_off_pct\": %.3f, "
        "\"overhead_accounting_pct\": %.3f, \"overhead_sampled_pct\": %.3f, "
        "\"overhead_always_pct\": %.3f}%s\n",
        r.name.c_str(), r.qps[0], r.qps[1], r.qps[2], r.qps[3], r.qps[4],
        r.overhead_off_pct, r.overhead_accounting_pct,
        r.overhead_sampled_pct, r.overhead_always_pct,
        i + 1 < reports.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"scrape_requests\": %d,\n"
               "  \"scrape_p50_ms\": %.4f,\n"
               "  \"scrape_p95_ms\": %.4f,\n"
               "  \"gate_failed\": %s\n"
               "}\n",
               kScrapeRequests, scrape_p50, scrape_p95,
               gate_failed ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  if (gate_failed) std::exit(1);
}

}  // namespace
}  // namespace simq

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 25;
  const std::string out = argc > 2 ? argv[2] : "BENCH_obs.json";
  simq::Run(rounds, out);
  return 0;
}
