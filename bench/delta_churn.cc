// [DELTA] Mutation churn with the per-shard delta layer vs the legacy
// rebuild-per-query engine, on the 12000 x 128 scale-up workload.
//
// Churn schedule: interleaved {insert one series, run one index range
// query}, the access pattern that used to hit the worst case -- every
// insert invalidated the shard's packed snapshot, so every following
// index query recompiled it from the pointer tree. With the delta layer
// (the default), inserts land in the exactly-scanned delta and the
// snapshot stands; queries pay one extra exact check per delta row
// instead of a full recompile.
//
// Reported per config (shards 1 and 4, delta on/off):
//   churn_ms       wall time of the whole schedule
//   ops_per_sec    schedule throughput (one op = insert + query)
// plus the recompaction cost profile: build (runs under the service's
// shared lock; readers keep executing) and publish (the only exclusive
// section) percentiles across repeated folds -- publish p99 is the MVCC
// pause bound readers can ever observe.
//
// Self-checks (reported in BENCH_delta.json and grepped by CI):
//   * answer identity: a delta-on database and a rebuild-every-time
//     oracle run the schedule in lockstep at both shard counts; every
//     query must match bit for bit ("mismatch": true fails the build,
//     and the process exits nonzero);
//   * acceptance: churn_speedup_1shard >= 2x over rebuild-per-query.
//
// Usage: delta_churn [count] [out.json]   (default 12000 BENCH_delta.json)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/database.h"
#include "util/logging.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"
#include "workload/generators.h"

namespace simq {
namespace {

constexpr int kChurnOps = 64;
constexpr int kIdentityOps = 12;
constexpr int kFolds = 25;

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ConfigResult {
  int shards = 1;
  bool delta = false;
  double churn_ms = 0.0;
  double ops_per_sec = 0.0;
};

struct FoldProfile {
  double build_p50_ms = 0.0;
  double build_p99_ms = 0.0;
  double publish_p50_ms = 0.0;
  double publish_p99_ms = 0.0;
};

double Percentile(std::vector<double> samples, double q) {
  SIMQ_CHECK(!samples.empty());
  std::sort(samples.begin(), samples.end());
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(index, samples.size() - 1)];
}

std::unique_ptr<Database> BuildDb(const std::vector<TimeSeries>& series,
                                  int shards, bool delta) {
  ShardingOptions sharding;
  sharding.num_shards = shards;
  auto db = std::make_unique<Database>(FeatureConfig(), RTree::Options(),
                                       sharding);
  DeltaOptions options;
  options.enabled = delta;
  db->set_delta_options(options);
  SIMQ_CHECK(db->CreateRelation("r").ok());
  SIMQ_CHECK(db->BulkLoad("r", series).ok());
  return db;
}

Query RangeQuery(int64_t probe, double epsilon) {
  Query query;
  query.kind = QueryKind::kRange;
  query.relation = "r";
  query.query_series.id = probe;
  query.epsilon = epsilon;
  query.strategy = ExecutionStrategy::kIndex;
  return query;
}

// One churn op: insert series[i] under a unique name, then answer an
// index range query. Returns the query answer for identity checks.
QueryResult ChurnOp(Database* db, const TimeSeries& fresh, int64_t probe,
                    double epsilon) {
  SIMQ_CHECK(db->Insert("r", fresh).ok());
  Result<QueryResult> result = db->Execute(RangeQuery(probe, epsilon));
  SIMQ_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

std::vector<TimeSeries> ChurnSeries(int ops, int length, uint64_t seed) {
  std::vector<TimeSeries> series =
      workload::RandomWalkSeries(ops, length, seed);
  for (int i = 0; i < ops; ++i) {
    series[static_cast<size_t>(i)].id = "churn" + std::to_string(i);
  }
  return series;
}

ConfigResult RunChurn(const std::vector<TimeSeries>& base, int shards,
                      bool delta, double epsilon) {
  ConfigResult result;
  result.shards = shards;
  result.delta = delta;
  std::unique_ptr<Database> db = BuildDb(base, shards, delta);
  const std::vector<TimeSeries> fresh = ChurnSeries(kChurnOps, 128, 71);
  const int64_t count = static_cast<int64_t>(base.size());
  // Warm: compile the snapshot the first query would otherwise pay for.
  SIMQ_CHECK(db->Execute(RangeQuery(0, epsilon)).ok());
  const double start = NowMs();
  for (int i = 0; i < kChurnOps; ++i) {
    ChurnOp(db.get(), fresh[static_cast<size_t>(i)],
            (static_cast<int64_t>(i) * 37) % count, epsilon);
  }
  result.churn_ms = NowMs() - start;
  result.ops_per_sec =
      result.churn_ms > 0.0 ? 1000.0 * kChurnOps / result.churn_ms : 0.0;
  return result;
}

bool IdentityHolds(const std::vector<TimeSeries>& base, int shards,
                   double epsilon) {
  std::unique_ptr<Database> subject = BuildDb(base, shards, /*delta=*/true);
  std::unique_ptr<Database> oracle = BuildDb(base, shards, /*delta=*/false);
  const std::vector<TimeSeries> fresh = ChurnSeries(kIdentityOps, 128, 72);
  const int64_t count = static_cast<int64_t>(base.size());
  for (int i = 0; i < kIdentityOps; ++i) {
    const int64_t probe = (static_cast<int64_t>(i) * 41) % count;
    const QueryResult a =
        ChurnOp(subject.get(), fresh[static_cast<size_t>(i)], probe, epsilon);
    const QueryResult b =
        ChurnOp(oracle.get(), fresh[static_cast<size_t>(i)], probe, epsilon);
    if (a.matches.size() != b.matches.size()) {
      return false;
    }
    for (size_t m = 0; m < a.matches.size(); ++m) {
      if (a.matches[m].id != b.matches[m].id ||
          a.matches[m].distance != b.matches[m].distance) {
        return false;
      }
    }
  }
  // Fold everything, then the answers must still be the oracle's.
  SIMQ_CHECK(subject->Recompact("r").ok());
  const int64_t probe = 3 % count;
  Result<QueryResult> a = subject->Execute(RangeQuery(probe, epsilon));
  Result<QueryResult> b = oracle->Execute(RangeQuery(probe, epsilon));
  SIMQ_CHECK(a.ok() && b.ok());
  if (a.value().matches.size() != b.value().matches.size()) {
    return false;
  }
  for (size_t m = 0; m < a.value().matches.size(); ++m) {
    if (a.value().matches[m].id != b.value().matches[m].id ||
        a.value().matches[m].distance != b.value().matches[m].distance) {
      return false;
    }
  }
  return true;
}

FoldProfile ProfileRecompaction(const std::vector<TimeSeries>& base,
                                int shards) {
  std::unique_ptr<Database> db = BuildDb(base, shards, /*delta=*/true);
  SIMQ_CHECK(db->Execute(RangeQuery(0, 1.0)).ok());  // compile once
  const std::vector<TimeSeries> fresh = ChurnSeries(kFolds * 4, 128, 73);
  std::vector<double> build_ms;
  std::vector<double> publish_ms;
  for (int fold = 0; fold < kFolds; ++fold) {
    for (int i = 0; i < 4; ++i) {
      SIMQ_CHECK(
          db->Insert("r", fresh[static_cast<size_t>(fold * 4 + i)]).ok());
    }
    std::vector<RelationShard::Recompaction> built;
    const double t0 = NowMs();
    SIMQ_CHECK(db->BuildRecompaction("r", &built).ok());
    const double t1 = NowMs();
    SIMQ_CHECK(db->PublishRecompaction("r", std::move(built)).ok());
    const double t2 = NowMs();
    build_ms.push_back(t1 - t0);
    publish_ms.push_back(t2 - t1);
  }
  FoldProfile profile;
  profile.build_p50_ms = Percentile(build_ms, 0.50);
  profile.build_p99_ms = Percentile(build_ms, 0.99);
  profile.publish_p50_ms = Percentile(publish_ms, 0.50);
  profile.publish_p99_ms = Percentile(publish_ms, 0.99);
  return profile;
}

void Run(int count, const std::string& out_path) {
  bench::PrintHeader(
      "DELTA: mutation churn with the delta layer vs rebuild-per-query",
      "claims: >= 2x churn throughput at 1 shard on the 12000x128 "
      "workload, answers bit-identical, publish pause bounded");

  workload::StockMarketOptions options;
  options.num_series = count;
  const std::vector<TimeSeries> base = workload::StockMarket(options);
  std::unique_ptr<Database> calibration = BuildDb(base, 1, true);
  const double epsilon = bench::CalibrateRangeEpsilon(
      *calibration, "r", /*probe_id=*/0, nullptr, /*target_answers=*/24);
  calibration.reset();

  const bool mismatch =
      !IdentityHolds(base, 1, epsilon) || !IdentityHolds(base, 4, epsilon);

  std::vector<ConfigResult> configs;
  for (const int shards : {1, 4}) {
    for (const bool delta : {true, false}) {
      configs.push_back(RunChurn(base, shards, delta, epsilon));
    }
  }
  const auto churn_of = [&](int shards, bool delta) {
    for (const ConfigResult& config : configs) {
      if (config.shards == shards && config.delta == delta) {
        return config.churn_ms;
      }
    }
    return 0.0;
  };
  const double speedup_1 = churn_of(1, true) > 0.0
                               ? churn_of(1, false) / churn_of(1, true)
                               : 0.0;
  const double speedup_4 = churn_of(4, true) > 0.0
                               ? churn_of(4, false) / churn_of(4, true)
                               : 0.0;

  const FoldProfile folds = ProfileRecompaction(base, 1);

  TablePrinter table({"shards", "delta", "churn_ms", "ops_per_sec"});
  for (const ConfigResult& config : configs) {
    table.AddRow({std::to_string(config.shards),
                  config.delta ? "on" : "off",
                  TablePrinter::FormatDouble(config.churn_ms, 2),
                  TablePrinter::FormatDouble(config.ops_per_sec, 1)});
  }
  table.Print();
  std::printf(
      "churn speedup (delta vs rebuild-per-query): x%.2f @1 shard, "
      "x%.2f @4 shards\n"
      "recompaction @1 shard: build p50/p99 = %.3f/%.3f ms, "
      "publish p50/p99 = %.3f/%.3f ms\n"
      "answers %s\n",
      speedup_1, speedup_4, folds.build_p50_ms, folds.build_p99_ms,
      folds.publish_p50_ms, folds.publish_p99_ms,
      mismatch ? "MISMATCH" : "identical");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  SIMQ_CHECK(out != nullptr) << "cannot write " << out_path;
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"delta_churn\",\n"
               "  \"threads\": %d,\n"
               "  \"count\": %d,\n"
               "  \"length\": 128,\n"
               "  \"churn_ops\": %d,\n"
               "  \"epsilon\": %.17g,\n"
               "  \"configs\": [\n",
               ThreadPool::Global().num_threads(), count, kChurnOps,
               epsilon);
  for (size_t i = 0; i < configs.size(); ++i) {
    const ConfigResult& config = configs[i];
    std::fprintf(out,
                 "    {\"shards\": %d, \"delta\": %s, \"churn_ms\": %.4f, "
                 "\"ops_per_sec\": %.2f}%s\n",
                 config.shards, config.delta ? "true" : "false",
                 config.churn_ms, config.ops_per_sec,
                 i + 1 < configs.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"recompaction\": {\"folds\": %d, "
               "\"build_p50_ms\": %.4f, \"build_p99_ms\": %.4f, "
               "\"publish_p50_ms\": %.4f, \"publish_p99_ms\": %.4f},\n"
               "  \"churn_speedup_1shard\": %.3f,\n"
               "  \"churn_speedup_4shard\": %.3f,\n"
               "  \"mismatch\": %s\n"
               "}\n",
               kFolds, folds.build_p50_ms, folds.build_p99_ms,
               folds.publish_p50_ms, folds.publish_p99_ms, speedup_1,
               speedup_4, mismatch ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  if (mismatch) {
    std::exit(1);
  }
}

}  // namespace
}  // namespace simq

int main(int argc, char** argv) {
  const int count = argc > 1 ? std::atoi(argv[1]) : 12000;
  const std::string out = argc > 2 ? argv[2] : "BENCH_delta.json";
  simq::Run(count, out);
  return 0;
}
