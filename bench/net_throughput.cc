// [NET] End-to-end throughput of the network front end (net/server.h) on
// the Table-1 stock workload: real TCP, SIMQNET1 frames, pipelined
// clients, answers checked bit-identical against the in-process engine.
//
// Two phases against one server:
//   pipelined   `clients` connections, each keeping `depth` (4) exec
//               frames in flight -- below the server's pipeline bound,
//               so nothing is shed and every request is answered. This
//               is the sustained-qps / latency number.
//   overload    the same clients burst far past max_pipeline, so the
//               server must shed with kOverloaded instead of queueing
//               without bound. The shed rate and the survivors'
//               correctness are the point, not the qps.
//
// Self-checks (reported in BENCH_net.json and grepped by CI):
//   * every kResult answer set that crosses the wire is bit-identical to
//     the same query executed in-process ("mismatch": true fails the
//     build)
//   * the pipelined phase sheds nothing; every overload shed is a typed
//     kOverloaded error, never a dropped or garbled response
//
// Usage: net_throughput [clients] [requests_per_phase] [probes] [out.json]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "core/sharded_relation.h"
#include "core/transformation.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "service/query_service.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"
#include "workload/generators.h"

namespace simq {
namespace {

// Round-trip-exact rendering of the probe series into query text (%.17g),
// as in serve_throughput: the server parses back bit-identical inputs.
std::string LiteralQueryText(const std::vector<double>& values,
                             double epsilon) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", epsilon);
  std::string text = std::string("RANGE r WITHIN ") + buffer + " OF [";
  for (size_t i = 0; i < values.size(); ++i) {
    std::snprintf(buffer, sizeof(buffer), "%.17g", values[i]);
    if (i > 0) {
      text += ",";
    }
    text += buffer;
  }
  text += "] USING mavg(20)";
  return text;
}

bool SameMatches(const std::vector<Match>& a, const std::vector<Match>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].distance != b[i].distance) {
      return false;
    }
  }
  return true;
}

// What one client thread observed. Threads write disjoint slots; no locks.
struct ClientResult {
  std::vector<double> latencies_ms;  // answered requests only
  int64_t answered = 0;
  int64_t shed = 0;
  bool failed = false;    // transport/protocol breakage -- hard failure
  bool mismatch = false;  // an answer differed from the in-process oracle
};

// One pipelined closed-loop client: keeps up to `depth` exec frames in
// flight, matches responses by request id, and checks every answer
// against `oracle`. A kOverloaded error counts as shed; any other error
// or unreadable frame fails the bench.
void RunWireClient(uint16_t port, const std::vector<std::string>& texts,
                   const std::vector<std::vector<Match>>& oracle, int quota,
                   int depth, int client_index, int clients,
                   ClientResult* out) {
  net::NetClient client;
  net::NetClientOptions copts;
  copts.io_timeout_ms = 60000.0;
  if (!client.Connect("127.0.0.1", port, copts).ok()) {
    out->failed = true;
    return;
  }
  using Clock = std::chrono::steady_clock;
  std::unordered_map<uint32_t, std::pair<size_t, Clock::time_point>> inflight;
  int sent = 0;
  int done = 0;
  while (done < quota) {
    while (sent < quota && static_cast<int>(inflight.size()) < depth) {
      const size_t which = static_cast<size_t>(
          (sent * clients + client_index) % static_cast<int>(texts.size()));
      net::ExecRequest req;
      req.text = texts[which];
      const uint32_t rid = client.NextRequestId();
      if (!client.SendFrame(net::Opcode::kExec, rid, net::EncodeExec(req))
               .ok()) {
        out->failed = true;
        return;
      }
      inflight.emplace(rid, std::make_pair(which, Clock::now()));
      ++sent;
    }
    net::FrameHeader header;
    std::vector<uint8_t> payload;
    if (!client.ReadFrame(&header, &payload).ok()) {
      out->failed = true;
      return;
    }
    const auto it = inflight.find(header.request_id);
    if (it == inflight.end()) {
      out->failed = true;  // a response for a request we never sent
      return;
    }
    const double ms = std::chrono::duration<double, std::milli>(
                          Clock::now() - it->second.second)
                          .count();
    const size_t which = it->second.first;
    inflight.erase(it);
    ++done;
    if (header.opcode == static_cast<uint8_t>(net::Opcode::kResult)) {
      net::ResultPage page;
      if (!net::DecodeResultPage(payload.data(), payload.size(), &page)
               .ok() ||
          page.has_more) {  // probes answer ~12 rows; one page always fits
        out->failed = true;
        return;
      }
      if (!SameMatches(page.matches, oracle[which])) {
        out->mismatch = true;
      }
      out->latencies_ms.push_back(ms);
      ++out->answered;
    } else if (header.opcode == static_cast<uint8_t>(net::Opcode::kError)) {
      net::ErrorInfo error;
      if (!net::DecodeError(payload.data(), payload.size(), &error).ok() ||
          error.code != static_cast<uint16_t>(StatusCode::kOverloaded)) {
        out->failed = true;
        return;
      }
      ++out->shed;
    } else {
      out->failed = true;
      return;
    }
  }
  client.Goodbye();
}

struct PhaseResult {
  std::string name;
  int depth = 0;
  double qps = 0.0;  // answered requests per second
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double total_s = 0.0;
  int64_t answered = 0;
  int64_t shed = 0;
  bool mismatch = false;
};

PhaseResult RunPhase(const std::string& name, uint16_t port,
                     const std::vector<std::string>& texts,
                     const std::vector<std::vector<Match>>& oracle,
                     int clients, int requests, int depth) {
  std::vector<ClientResult> results(static_cast<size_t>(clients));
  Stopwatch wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    const int quota = requests / clients + (c < requests % clients ? 1 : 0);
    threads.emplace_back(RunWireClient, port, std::cref(texts),
                         std::cref(oracle), quota, depth, c, clients,
                         &results[static_cast<size_t>(c)]);
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  PhaseResult phase;
  phase.name = name;
  phase.depth = depth;
  phase.total_s = wall.ElapsedSeconds();
  std::vector<double> all;
  for (const ClientResult& r : results) {
    if (r.failed) {
      std::fprintf(stderr, "phase %s: client transport failure\n",
                   name.c_str());
      std::exit(1);
    }
    phase.mismatch = phase.mismatch || r.mismatch;
    phase.answered += r.answered;
    phase.shed += r.shed;
    all.insert(all.end(), r.latencies_ms.begin(), r.latencies_ms.end());
  }
  phase.qps = static_cast<double>(phase.answered) / phase.total_s;
  phase.p50_ms = Percentile(all, 50.0);
  phase.p99_ms = Percentile(all, 99.0);
  return phase;
}

void Run(int clients, int requests, int probes, const std::string& out_path) {
  bench::PrintHeader(
      "NET: pipelined wire throughput (1067 x 128 stock relation, "
      "T_mavg20 literal range queries over SIMQNET1/TCP)",
      "claims: pipelined clients below the bound are never shed and get "
      "bit-identical answers; past the bound the server sheds with typed "
      "kOverloaded errors instead of queueing without bound");

  const std::vector<TimeSeries> market =
      workload::StockMarket(workload::StockMarketOptions());

  // Calibrate epsilon once for a ~12-answer operating point, as in the
  // Table-1 reproduction.
  double epsilon = 0.0;
  {
    const auto db = bench::BuildDatabase(market);
    const auto mavg20 = MakeMovingAverageRule(20);
    epsilon = bench::CalibrateRangeEpsilon(*db, "r", 0, mavg20.get(), 12);
  }

  std::vector<std::string> texts;
  texts.reserve(static_cast<size_t>(probes));
  for (int p = 0; p < probes; ++p) {
    const size_t index =
        static_cast<size_t>(p) * market.size() / static_cast<size_t>(probes);
    texts.push_back(LiteralQueryText(market[index].values, epsilon));
  }

  // One service (default options: result cache on -- the bench measures
  // the wire, not the engine) behind one server on an ephemeral port.
  const ShardingOptions sharding = ShardingOptions::FromEnv();
  Database db(FeatureConfig(), RTree::Options(), sharding);
  SIMQ_CHECK(db.CreateRelation("r").ok());
  SIMQ_CHECK(db.BulkLoad("r", market).ok());
  QueryService service(std::move(db), ServiceOptions());

  // In-process oracle answers; also warms the result cache, so both
  // phases compare against (and are served from) identical answer sets.
  std::vector<std::vector<Match>> oracle;
  oracle.reserve(texts.size());
  {
    auto session = service.OpenSession();
    for (const std::string& text : texts) {
      const Result<ServiceResult> result = session->Execute(text);
      SIMQ_CHECK(result.ok()) << result.status().message();
      oracle.push_back(result.value().result.matches);
    }
  }

  net::NetServerOptions sopts;
  sopts.port = 0;
  sopts.exec_threads = 4;
  sopts.max_pipeline = 8;
  sopts.max_queue = 256;
  net::NetServer server(&service, sopts);
  SIMQ_CHECK(server.Start().ok());
  std::thread loop([&server] { server.Run(); });

  const int steady_depth = 4;    // below max_pipeline: nothing shed
  const int overload_depth = 32; // 4x max_pipeline: shedding guaranteed
  std::vector<PhaseResult> phases;
  phases.push_back(RunPhase("pipelined", server.port(), texts, oracle,
                            clients, requests, steady_depth));
  phases.push_back(RunPhase("overload", server.port(), texts, oracle,
                            clients, requests, overload_depth));

  server.Shutdown();
  loop.join();
  const net::NetServerStats sstats = server.stats();

  bool mismatch = false;
  bool contract_broken = false;
  for (const PhaseResult& phase : phases) {
    mismatch = mismatch || phase.mismatch;
  }
  // The shedding contract, both directions: below the bound nothing is
  // shed; past it the server must actually shed.
  if (phases[0].shed != 0) {
    contract_broken = true;
    std::fprintf(stderr, "CONTRACT: pipelined phase shed %lld requests\n",
                 static_cast<long long>(phases[0].shed));
  }
  if (phases[1].shed == 0) {
    contract_broken = true;
    std::fprintf(stderr, "CONTRACT: overload phase shed nothing\n");
  }

  TablePrinter table(
      {"phase", "depth", "qps", "p50_ms", "p99_ms", "shed", "total_s"});
  for (const PhaseResult& phase : phases) {
    table.AddRow({phase.name, TablePrinter::FormatDouble(phase.depth, 0),
                  TablePrinter::FormatDouble(phase.qps, 0),
                  TablePrinter::FormatDouble(phase.p50_ms, 3),
                  TablePrinter::FormatDouble(phase.p99_ms, 3),
                  TablePrinter::FormatDouble(
                      static_cast<double>(phase.shed), 0),
                  TablePrinter::FormatDouble(phase.total_s, 2)});
  }
  table.Print();
  const double shed_rate =
      static_cast<double>(phases[1].shed) /
      static_cast<double>(phases[1].answered + phases[1].shed);
  std::printf(
      "\noverload shed rate = %.1f%%   server: frames_in=%lld "
      "frames_out=%lld bytes_in=%lld bytes_out=%lld   answers %s\n",
      100.0 * shed_rate, static_cast<long long>(sstats.frames_in),
      static_cast<long long>(sstats.frames_out),
      static_cast<long long>(sstats.bytes_in),
      static_cast<long long>(sstats.bytes_out),
      mismatch ? "MISMATCH" : "identical");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  SIMQ_CHECK(out != nullptr) << "cannot write " << out_path;
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"net_throughput\",\n"
               "  \"workload\": \"stock_1067x128_mavg20_range_wire\",\n"
               "  \"clients\": %d,\n"
               "  \"requests_per_phase\": %d,\n"
               "  \"probes\": %d,\n"
               "  \"num_shards\": %d,\n"
               "  \"pool_threads\": %d,\n"
               "  \"exec_threads\": %d,\n"
               "  \"max_pipeline\": %d,\n"
               "  \"max_queue\": %d,\n"
               "  \"epsilon\": %.17g,\n"
               "  \"phases\": [\n",
               clients, requests, probes, sharding.num_shards,
               ThreadPool::Global().num_threads(), sopts.exec_threads,
               sopts.max_pipeline, sopts.max_queue, epsilon);
  for (size_t p = 0; p < phases.size(); ++p) {
    std::fprintf(
        out,
        "    {\"name\": \"%s\", \"depth\": %d, \"qps\": %.1f, "
        "\"p50_ms\": %.4f, \"p99_ms\": %.4f, \"answered\": %lld, "
        "\"shed\": %lld, \"total_s\": %.3f}%s\n",
        phases[p].name.c_str(), phases[p].depth, phases[p].qps,
        phases[p].p50_ms, phases[p].p99_ms,
        static_cast<long long>(phases[p].answered),
        static_cast<long long>(phases[p].shed), phases[p].total_s,
        p + 1 < phases.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"overload_shed_rate\": %.4f,\n"
               "  \"server_requests_shed\": %lld,\n"
               "  \"server_bytes_in\": %lld,\n"
               "  \"server_bytes_out\": %lld,\n"
               "  \"contract_broken\": %s,\n"
               "  \"mismatch\": %s\n"
               "}\n",
               shed_rate, static_cast<long long>(sstats.requests_shed),
               static_cast<long long>(sstats.bytes_in),
               static_cast<long long>(sstats.bytes_out),
               contract_broken ? "true" : "false",
               mismatch ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  if (mismatch || contract_broken) {
    std::exit(1);
  }
}

}  // namespace
}  // namespace simq

int main(int argc, char** argv) {
  const int clients = argc > 1 ? std::atoi(argv[1]) : 4;
  const int requests = argc > 2 ? std::atoi(argv[2]) : 2000;
  const int probes = argc > 3 ? std::atoi(argv[3]) : 16;
  const std::string out = argc > 4 ? argv[4] : "BENCH_net.json";
  simq::Run(clients, requests, probes, out);
  return 0;
}
