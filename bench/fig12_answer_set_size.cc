// [RM97-Fig12] Query time vs. answer-set size on the stock relation
// (1067 series x 128 days, synthetic substitute -- see DESIGN.md): the
// epsilon of a smoothed (mavg(20)) range query is swept so the answer set
// grows from ~1 to ~400 series. The claim is that the index wins until the
// answer set reaches roughly one third of the relation, after which
// sequential scanning catches up (the crossover of Figure 12).

#include "bench/bench_common.h"
#include "core/transformation.h"
#include "ts/transforms.h"
#include "util/stats.h"
#include "util/table_printer.h"
#include "workload/generators.h"

namespace simq {
namespace {

void Run() {
  bench::PrintHeader(
      "RM97-Fig12: time per query varying the size of the answer set",
      "claim: index faster until the answer set reaches ~1/3 of the "
      "relation (~350 of 1067), then sequential scan wins");

  // Market with strong co-movement (few sectors, high correlation): the
  // low-frequency coefficients of same-sector stocks cluster, which is the
  // property of real stock data that keeps the 2-coefficient filter
  // selective out to large answer sets (see DESIGN.md data substitutions).
  workload::StockMarketOptions market_options;
  market_options.num_sectors = 3;
  market_options.sector_correlation = 0.9;
  market_options.idiosyncratic_step = 0.4;
  const std::vector<TimeSeries> market =
      workload::StockMarket(market_options);
  const auto db = bench::BuildDatabase(market);
  const auto mavg20 = std::shared_ptr<const TransformationRule>(
      MakeMovingAverageRule(20).release());

  // Transformed normal forms, computed once for calibration.
  const Relation* relation = db->GetRelation("r");
  const int64_t probe_id = 200;
  const std::vector<double> probe_pattern =
      mavg20->Apply(relation->record(probe_id).normal_values);
  std::vector<double> distances;
  for (const Record& record : relation->records()) {
    distances.push_back(EuclideanDistance(mavg20->Apply(record.normal_values),
                                          probe_pattern));
  }
  std::sort(distances.begin(), distances.end());

  TablePrinter table({"target_answers", "epsilon", "actual_answers",
                      "index_ms", "scan_ms", "index_candidates",
                      "faster"});
  for (const int target : {1, 25, 50, 100, 150, 200, 250, 300, 350, 400}) {
    const double epsilon = workload::CalibrateEpsilon(distances, target);

    Query query;
    query.kind = QueryKind::kRange;
    query.relation = "r";
    query.query_series.literal = probe_pattern;
    query.query_prenormalized = true;
    query.epsilon = epsilon;
    query.transform = mavg20;

    int64_t answers = 0;
    int64_t candidates = 0;
    auto run = [&](ExecutionStrategy strategy) {
      query.strategy = strategy;
      const Result<QueryResult> result = db->Execute(query);
      answers = static_cast<int64_t>(result.value().matches.size());
      if (strategy == ExecutionStrategy::kIndex) {
        candidates = result.value().stats.candidates;
      }
    };

    const double index_ms =
        bench::MedianMillis([&] { run(ExecutionStrategy::kIndex); }, 15);
    const double scan_ms =
        bench::MedianMillis([&] { run(ExecutionStrategy::kScan); }, 15);

    table.AddRow({TablePrinter::FormatInt(target),
                  TablePrinter::FormatDouble(epsilon, 3),
                  TablePrinter::FormatInt(answers),
                  TablePrinter::FormatDouble(index_ms, 4),
                  TablePrinter::FormatDouble(scan_ms, 4),
                  TablePrinter::FormatInt(candidates),
                  index_ms <= scan_ms ? "index" : "scan"});
  }
  table.Print();
}

}  // namespace
}  // namespace simq

int main() {
  simq::Run();
  return 0;
}
