// Shared scaffolding for the experiment harnesses in bench/.
//
// Every figure/table reproduction follows the same pattern: build a
// database from a generated workload, calibrate epsilon if the experiment
// fixes the answer-set size, run a batch of queries per configuration, and
// print one table row per sweep point. See EXPERIMENTS.md for the mapping
// to the figures/tables of the papers.

#ifndef SIMQ_BENCH_BENCH_COMMON_H_
#define SIMQ_BENCH_BENCH_COMMON_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "ts/time_series.h"

namespace simq {
namespace bench {

// Builds a database with one relation "r" bulk-loaded from `series`.
std::unique_ptr<Database> BuildDatabase(const std::vector<TimeSeries>& series,
                                        FeatureConfig config = FeatureConfig());

// Median wall-clock milliseconds of `fn` over `repetitions` runs (after one
// untimed warm-up run).
double MedianMillis(const std::function<void()>& fn, int repetitions);

// An identity transformation routed through the full transformation
// machinery: a moving average with window 1 (multiplier 1 everywhere).
// Reproduces the T_i = (I, 0) device of [RM97] §5: query answers are
// unchanged but every index rectangle/point is pushed through the
// transformation path, exposing its CPU overhead.
std::shared_ptr<const TransformationRule> IdentityViaTransformPath();

// Epsilon such that a normal-form range query around `probe_id` returns
// about `target_answers` series (distances computed exactly, by scan).
double CalibrateRangeEpsilon(const Database& db, const std::string& relation,
                             int64_t probe_id,
                             const TransformationRule* rule,
                             int target_answers);

// Prints the standard experiment banner.
void PrintHeader(const std::string& experiment_id, const std::string& claim);

}  // namespace bench
}  // namespace simq

#endif  // SIMQ_BENCH_BENCH_COMMON_H_
