// [Ablation-space] Polar vs. rectangular complex-coordinate representation.
// [RM97] §5 chose polar coordinates because vector multiplication (moving
// averages!) is only safe there (Theorem 3); rectangular coordinates admit
// real stretches plus arbitrary shifts (Theorem 2). This ablation runs the
// same queries under both layouts: reverse (safe in both) executes on the
// index either way, while mavg(20) is index-accelerated only in polar --
// the rectangular planner falls back to scanning yet returns the same
// answers.

#include "bench/bench_common.h"
#include "core/transformation.h"
#include "util/table_printer.h"
#include "workload/generators.h"

namespace simq {
namespace {

void Run() {
  bench::PrintHeader(
      "Ablation-space: polar vs rectangular coefficient representation",
      "claim: identical answers; mavg only index-accelerable in polar "
      "(Theorem 3), reverse in both (real multiplier)");

  workload::StockMarketOptions market_options;
  market_options.num_series = 4000;
  market_options.num_sectors = 12;
  market_options.sector_correlation = 0.9;
  market_options.idiosyncratic_step = 0.4;
  const std::vector<TimeSeries> series =
      workload::StockMarket(market_options);
  const int kQueries = 15;

  FeatureConfig polar;
  polar.space = FeatureSpace::kPolar;
  FeatureConfig rect;
  rect.space = FeatureSpace::kRectangular;
  const auto polar_db = bench::BuildDatabase(series, polar);
  const auto rect_db = bench::BuildDatabase(series, rect);

  const auto mavg20 = std::shared_ptr<const TransformationRule>(
      MakeMovingAverageRule(20).release());
  const auto reverse = std::shared_ptr<const TransformationRule>(
      MakeReverseRule().release());

  TablePrinter table({"space", "transform", "execution", "answers",
                      "candidates", "query_ms"});
  const struct {
    const char* label;
    std::shared_ptr<const TransformationRule> rule;
  } transforms[] = {{"identity", nullptr},
                    {"reverse", reverse},
                    {"mavg(20)", mavg20}};

  for (const auto& [space_label, db] :
       {std::pair<const char*, const Database*>{"polar", polar_db.get()},
        std::pair<const char*, const Database*>{"rect", rect_db.get()}}) {
    for (const auto& spec : transforms) {
      std::vector<double> epsilons(kQueries);
      for (int q = 0; q < kQueries; ++q) {
        epsilons[static_cast<size_t>(q)] = bench::CalibrateRangeEpsilon(
            *db, "r", (q * 67) % 4000, spec.rule.get(), 20);
      }
      int64_t answers = 0;
      int64_t candidates = 0;
      bool used_index = false;
      // Query patterns are the *transformed* normal forms of the probes so
      // the calibrated answer sizes apply (distance D(T(x), T(probe))).
      std::vector<std::vector<double>> patterns(kQueries);
      for (int q = 0; q < kQueries; ++q) {
        const Record& probe =
            db->GetRelation("r")->record((q * 67) % 4000);
        patterns[static_cast<size_t>(q)] =
            spec.rule != nullptr ? spec.rule->Apply(probe.normal_values)
                                 : probe.normal_values;
      }
      auto run_queries = [&] {
        answers = candidates = 0;
        for (int q = 0; q < kQueries; ++q) {
          Query query;
          query.kind = QueryKind::kRange;
          query.relation = "r";
          query.query_series.literal = patterns[static_cast<size_t>(q)];
          query.query_prenormalized = true;
          query.epsilon = epsilons[static_cast<size_t>(q)];
          query.transform = spec.rule;
          // Auto strategy: let the planner decide per safety.
          const QueryResult result = db->Execute(query).value();
          answers += static_cast<int64_t>(result.matches.size());
          candidates += result.stats.candidates;
          used_index = result.stats.used_index;
        }
      };
      const double ms = bench::MedianMillis(run_queries, 5) / kQueries;
      table.AddRow({space_label, spec.label, used_index ? "index" : "scan",
                    TablePrinter::FormatInt(answers),
                    TablePrinter::FormatInt(candidates),
                    TablePrinter::FormatDouble(ms, 4)});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace simq

int main() {
  simq::Run();
  return 0;
}
