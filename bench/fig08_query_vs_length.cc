// [RM97-Fig8] Range-query time vs. sequence length: index traversal with a
// transformation vs. without. 1,000 random-walk sequences, lengths 64-1024.
//
// The transformation is the identity routed through the full transformation
// machinery (T_i = (I, 0) realized as mavg(1)), so both configurations
// return identical answers and differ only by the per-entry transformation
// work -- the paper's claim is that the difference is a near-constant CPU
// offset and the number of node (disk) accesses is identical.

#include <cstdio>

#include "bench/bench_common.h"
#include "util/table_printer.h"
#include "workload/generators.h"

namespace simq {
namespace {

void Run() {
  bench::PrintHeader(
      "RM97-Fig8: time per range query varying the sequence length",
      "claim: index-with-transformation tracks index-without at a constant "
      "offset; identical node accesses");

  TablePrinter table({"length", "no_transform_ms", "with_transform_ms",
                      "overhead_ms", "nodes_no_t", "nodes_with_t",
                      "answers"});
  const int kNumSeries = 1000;
  const int kQueries = 20;
  const int kTargetAnswers = 10;

  for (const int length : {64, 128, 256, 512, 1024}) {
    const std::vector<TimeSeries> series = workload::RandomWalkSeries(
        kNumSeries, length, 42 + static_cast<uint64_t>(length));
    const auto db = bench::BuildDatabase(series);
    const auto identity = bench::IdentityViaTransformPath();

    // Per-probe calibration keeps every query's answer set near the target
    // regardless of where the probe sits in the data distribution.
    std::vector<double> epsilons(kQueries);
    for (int q = 0; q < kQueries; ++q) {
      epsilons[static_cast<size_t>(q)] = bench::CalibrateRangeEpsilon(
          *db, "r", q % kNumSeries, nullptr, kTargetAnswers);
    }

    int64_t answers = 0;
    int64_t nodes_plain = 0;
    int64_t nodes_transform = 0;
    auto run_queries = [&](bool with_transform) {
      int64_t local_answers = 0;
      int64_t local_nodes = 0;
      for (int q = 0; q < kQueries; ++q) {
        Query query;
        query.kind = QueryKind::kRange;
        query.relation = "r";
        query.query_series.id = q % kNumSeries;
        query.epsilon = epsilons[static_cast<size_t>(q)];
        query.strategy = ExecutionStrategy::kIndex;
        if (with_transform) {
          query.transform = identity;
        }
        const Result<QueryResult> result = db->Execute(query);
        local_answers += static_cast<int64_t>(result.value().matches.size());
        local_nodes += result.value().stats.node_accesses;
      }
      answers = local_answers / kQueries;
      (with_transform ? nodes_transform : nodes_plain) =
          local_nodes / kQueries;
    };

    const double plain_ms =
        bench::MedianMillis([&] { run_queries(false); }, 5) / kQueries;
    const double transform_ms =
        bench::MedianMillis([&] { run_queries(true); }, 5) / kQueries;

    table.AddRow({TablePrinter::FormatInt(length),
                  TablePrinter::FormatDouble(plain_ms, 4),
                  TablePrinter::FormatDouble(transform_ms, 4),
                  TablePrinter::FormatDouble(transform_ms - plain_ms, 4),
                  TablePrinter::FormatInt(nodes_plain),
                  TablePrinter::FormatInt(nodes_transform),
                  TablePrinter::FormatInt(answers)});
  }
  table.Print();
}

}  // namespace
}  // namespace simq

int main() {
  simq::Run();
  return 0;
}
