// Microbenchmarks of the DFT substrate: radix-2 FFT, Bluestein (arbitrary
// length), and the naive reference.

#include <benchmark/benchmark.h>

#include "ts/dft.h"
#include "util/random.h"

namespace simq {
namespace {

std::vector<double> MakeSignal(int n) {
  Random rng(static_cast<uint64_t>(n));
  std::vector<double> x(static_cast<size_t>(n));
  for (double& v : x) {
    v = rng.UniformDouble(-1.0, 1.0);
  }
  return x;
}

void BM_DftPowerOfTwo(benchmark::State& state) {
  const std::vector<double> x = MakeSignal(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dft(x));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DftPowerOfTwo)->RangeMultiplier(2)->Range(64, 4096)->Complexity();

void BM_DftBluestein(benchmark::State& state) {
  // Odd lengths force the chirp-z path.
  const std::vector<double> x =
      MakeSignal(static_cast<int>(state.range(0)) + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dft(x));
  }
}
BENCHMARK(BM_DftBluestein)->RangeMultiplier(2)->Range(64, 4096);

void BM_NaiveDft(benchmark::State& state) {
  const std::vector<double> x = MakeSignal(static_cast<int>(state.range(0)));
  Spectrum input(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    input[i] = Complex(x[i], 0.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(NaiveDft(input));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_NaiveDft)->RangeMultiplier(4)->Range(64, 1024)->Complexity();

}  // namespace
}  // namespace simq

BENCHMARK_MAIN();
