// [Ablation-join] Similarity self-join strategies at the index level:
//   * index nested loop -- one range query per series (Table 1 method c)
//   * synchronized traversal -- both R-trees descended in lockstep
//     ([BKSS90]-style tree join), with a conservative magnitude-band filter
//     and exact postprocessing.
// Both return identical answers; the synchronized join touches each node
// pair once instead of re-descending the tree per probe.

#include <cmath>

#include "bench/bench_common.h"
#include "util/stats.h"
#include "util/table_printer.h"
#include "workload/generators.h"

namespace simq {
namespace {

void Run() {
  bench::PrintHeader(
      "Ablation-join: index nested loop vs synchronized tree join",
      "claim: identical answers; the synchronized traversal does less "
      "per-node work than N re-descents");

  TablePrinter table({"num_series", "strategy", "time_ms", "node_accesses",
                      "exact_checks", "pairs"});
  for (const int count : {1067, 4000}) {
    workload::StockMarketOptions options;
    options.num_series = count;
    const std::vector<TimeSeries> market = workload::StockMarket(options);
    const auto db = bench::BuildDatabase(market);
    const Relation* relation = db->GetRelation("r");
    const RTree& tree = relation->index();
    const double epsilon = 0.45;

    // Strategy 1: index nested loop (method c).
    QueryResult nested;
    const double nested_ms = bench::MedianMillis(
        [&] {
          nested = db->SelfJoin("r", epsilon, nullptr,
                                JoinMethod::kIndexNoTransform)
                       .value();
        },
        5);

    // Strategy 2: synchronized traversal. Conservative filter: magnitude
    // dimensions of the polar layout (dims 2 and 4) must be within epsilon
    // (|delta mag| <= |delta coeff| <= epsilon); angle and statistics
    // dimensions cannot prune without wrap-aware logic, so they pass.
    const int mag_dims[] = {2, 4};
    auto pair_predicate = [&](const Rect& a, const Rect& b) {
      for (const int d : mag_dims) {
        if (a.lo(d) > b.hi(d) + epsilon || b.lo(d) > a.hi(d) + epsilon) {
          return false;
        }
      }
      return true;
    };
    int64_t sync_checks = 0;
    int64_t sync_pairs = 0;
    int64_t sync_nodes = 0;
    const double sync_ms = bench::MedianMillis(
        [&] {
          sync_checks = sync_pairs = 0;
          tree.ResetNodeAccesses();
          tree.JoinWith(tree, pair_predicate, [&](int64_t i, int64_t j) {
            if (i == j) {
              return;
            }
            ++sync_checks;
            const double distance = EuclideanDistanceEarlyAbandon(
                relation->record(i).features.normal_spectrum,
                relation->record(j).features.normal_spectrum, epsilon);
            if (distance <= epsilon) {
              ++sync_pairs;
            }
          });
          sync_nodes = tree.node_accesses();
        },
        5);

    table.AddRow({TablePrinter::FormatInt(count), "nested loop (c)",
                  TablePrinter::FormatDouble(nested_ms, 2),
                  TablePrinter::FormatInt(nested.stats.node_accesses),
                  TablePrinter::FormatInt(nested.stats.exact_checks),
                  TablePrinter::FormatInt(
                      static_cast<int64_t>(nested.pairs.size()))});
    table.AddRow({TablePrinter::FormatInt(count), "synchronized",
                  TablePrinter::FormatDouble(sync_ms, 2),
                  TablePrinter::FormatInt(sync_nodes),
                  TablePrinter::FormatInt(sync_checks),
                  TablePrinter::FormatInt(sync_pairs)});
  }
  table.Print();
  std::printf(
      "\n  note: the synchronized filter uses magnitude bands only, so it\n"
      "  verifies more candidates; both strategies agree on the final\n"
      "  pair count (both orientations).\n");
}

}  // namespace
}  // namespace simq

int main() {
  simq::Run();
  return 0;
}
