// [FAULT] Durability-path trajectory: atomic snapshot save/load, WAL
// append throughput (buffered and synced), WAL replay rate, and the
// snapshot+WAL recovery composition (core/persistence.h, core/wal.h).
//
// Per workload size:
//   save_ms / load_ms        SaveDatabase (tmp+fsync+rename) and
//                            LoadDatabase of the v3 checksummed snapshot
//   wal_append_per_sec       insert frames appended, sync at the end
//   wal_synced_append_per_sec  fdatasync after every append -- the
//                            acknowledged-durable mutation rate a
//                            sync_wal QueryService can sustain
//   replay_ms / replay_frames_per_sec  ReplayWal of the full log into a
//                            fresh database
//   recovery_ms              OpenDurableDatabase over snapshot(prefix) +
//                            WAL(tail): the crash-restart path
//
// Self-check (reported in BENCH_fault.json and grepped by CI): the
// recovered database must answer a range + kNN probe bit-identically to
// the never-persisted live database ("mismatch": true fails the build).
//
// Usage: fault_recovery [count] [out.json]   (count 0 = default 2000)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/database.h"
#include "core/persistence.h"
#include "core/wal.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "workload/generators.h"

namespace simq {
namespace {

constexpr int kLength = 64;

std::string TempPath(const std::string& name) {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp != nullptr ? tmp : "/tmp") + "/" + name;
}

int64_t FileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return 0;
  }
  std::fseek(f, 0, SEEK_END);
  const int64_t size = std::ftell(f);
  std::fclose(f);
  return size;
}

bool SameAnswers(const Database& a, const Database& b) {
  for (const char* text :
       {"RANGE r WITHIN 2.0 OF #walk0", "NEAREST 10 r TO #walk1"}) {
    const Result<QueryResult> ra = a.ExecuteText(text);
    const Result<QueryResult> rb = b.ExecuteText(text);
    if (!ra.ok() || !rb.ok() ||
        ra.value().matches.size() != rb.value().matches.size()) {
      return false;
    }
    for (size_t i = 0; i < ra.value().matches.size(); ++i) {
      if (ra.value().matches[i].id != rb.value().matches[i].id ||
          ra.value().matches[i].distance != rb.value().matches[i].distance) {
        return false;
      }
    }
  }
  return true;
}

void Run(int count, const std::string& out_path) {
  if (count <= 0) {
    count = 2000;
  }
  std::printf("[FAULT] durability paths: %d series x %d\n", count, kLength);
  const std::vector<TimeSeries> series =
      workload::RandomWalkSeries(count, kLength, 11);

  Database live;
  SIMQ_CHECK(live.CreateRelation("r").ok());
  SIMQ_CHECK(live.BulkLoad("r", series).ok());

  // Atomic snapshot save + checksummed load.
  const std::string snapshot_path = TempPath("bench_fault.simqdb");
  Stopwatch sw;
  SIMQ_CHECK(SaveDatabase(live, snapshot_path).ok());
  const double save_ms = sw.ElapsedMillis();
  const int64_t snapshot_bytes = FileBytes(snapshot_path);
  sw.Restart();
  Result<Database> loaded = LoadDatabase(snapshot_path);
  const double load_ms = sw.ElapsedMillis();
  SIMQ_CHECK(loaded.ok()) << loaded.status().ToString();

  // WAL append throughput, buffered (one sync at the end).
  const std::string wal_path = TempPath("bench_fault.wal");
  std::remove(wal_path.c_str());
  double append_per_sec = 0.0;
  {
    Result<WalWriter> writer = WalWriter::Open(wal_path);
    SIMQ_CHECK(writer.ok());
    WalWriter wal = std::move(writer).value();
    SIMQ_CHECK(wal.AppendCreateRelation("r").ok());
    sw.Restart();
    for (const TimeSeries& s : series) {
      SIMQ_CHECK(wal.AppendInsert("r", s).ok());
    }
    SIMQ_CHECK(wal.Sync().ok());
    append_per_sec = count / sw.ElapsedSeconds();
  }

  // Synced append rate: fdatasync per acknowledged mutation, the
  // sync_wal service's floor. Far fewer iterations -- each is a disk
  // round trip.
  const std::string synced_path = TempPath("bench_fault_synced.wal");
  std::remove(synced_path.c_str());
  const int synced_iters = count < 256 ? count : 256;
  double synced_per_sec = 0.0;
  {
    Result<WalWriter> writer = WalWriter::Open(synced_path);
    SIMQ_CHECK(writer.ok());
    WalWriter wal = std::move(writer).value();
    SIMQ_CHECK(wal.AppendCreateRelation("r").ok());
    sw.Restart();
    for (int i = 0; i < synced_iters; ++i) {
      SIMQ_CHECK(wal.AppendInsert("r", series[static_cast<size_t>(i)]).ok());
      SIMQ_CHECK(wal.Sync().ok());
    }
    synced_per_sec = synced_iters / sw.ElapsedSeconds();
  }

  // Replay the full buffered log into a fresh database.
  sw.Restart();
  Database replayed;
  WalReplayStats replay_stats;
  SIMQ_CHECK(ReplayWal(wal_path, &replayed, &replay_stats).ok());
  const double replay_ms = sw.ElapsedMillis();
  SIMQ_CHECK(replay_stats.frames_applied ==
             static_cast<uint64_t>(count) + 1);

  // The crash-restart composition: snapshot of the first half, WAL tail
  // of the second half.
  const std::string tail_path = TempPath("bench_fault_tail.wal");
  std::remove(tail_path.c_str());
  const int half = count / 2;
  {
    Database prefix;
    SIMQ_CHECK(prefix.CreateRelation("r").ok());
    SIMQ_CHECK(
        prefix.BulkLoad("r", {series.begin(), series.begin() + half}).ok());
    SIMQ_CHECK(SaveDatabase(prefix, snapshot_path).ok());
    Result<WalWriter> writer = WalWriter::Open(tail_path);
    SIMQ_CHECK(writer.ok());
    WalWriter wal = std::move(writer).value();
    for (int i = half; i < count; ++i) {
      SIMQ_CHECK(wal.AppendInsert("r", series[static_cast<size_t>(i)]).ok());
    }
    SIMQ_CHECK(wal.Sync().ok());
  }
  sw.Restart();
  Result<Database> recovered =
      OpenDurableDatabase(FeatureConfig(), snapshot_path, tail_path, nullptr);
  const double recovery_ms = sw.ElapsedMillis();
  SIMQ_CHECK(recovered.ok()) << recovered.status().ToString();

  const bool mismatch = !SameAnswers(live, recovered.value()) ||
                        !SameAnswers(live, replayed) ||
                        !SameAnswers(live, loaded.value());

  std::printf("  save %.2f ms (%lld bytes), load %.2f ms\n", save_ms,
              static_cast<long long>(snapshot_bytes), load_ms);
  std::printf("  wal append %.0f/s buffered, %.0f/s synced\n", append_per_sec,
              synced_per_sec);
  std::printf("  replay %.2f ms (%.0f frames/s), recovery %.2f ms\n",
              replay_ms, (count + 1) / (replay_ms / 1e3), recovery_ms);
  std::printf("  recovered answers %s\n",
              mismatch ? "MISMATCH" : "bit-identical");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  SIMQ_CHECK(out != nullptr) << "cannot write " << out_path;
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"fault_recovery\",\n"
               "  \"count\": %d,\n"
               "  \"length\": %d,\n"
               "  \"save_ms\": %.3f,\n"
               "  \"snapshot_bytes\": %lld,\n"
               "  \"load_ms\": %.3f,\n"
               "  \"wal_append_per_sec\": %.1f,\n"
               "  \"wal_synced_append_per_sec\": %.1f,\n"
               "  \"replay_ms\": %.3f,\n"
               "  \"replay_frames_per_sec\": %.1f,\n"
               "  \"recovery_ms\": %.3f,\n"
               "  \"mismatch\": %s\n"
               "}\n",
               count, kLength, save_ms,
               static_cast<long long>(snapshot_bytes), load_ms,
               append_per_sec, synced_per_sec, replay_ms,
               (count + 1) / (replay_ms / 1e3), recovery_ms,
               mismatch ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  if (mismatch) {
    std::exit(1);
  }
}

}  // namespace
}  // namespace simq

int main(int argc, char** argv) {
  const int count = argc > 1 ? std::atoi(argv[1]) : 0;
  const std::string out = argc > 2 ? argv[2] : "BENCH_fault.json";
  simq::Run(count, out);
  return 0;
}
