// [FILTER] Quantized filter-and-refine scan vs the exact columnar scans
// on the Table-1 stock workloads (1067 x 128 and the 12000 x 128
// scale-up), at an epsilon calibrated to Table-1-sized answer sets.
//
// Per workload, three range-scan engines over the same probe batch:
//   full_scan    VIA FULLSCAN -- the exact columnar scan with no early
//                abandoning (Table 1 method a), the ISSUE-5 baseline.
//   ea_scan      VIA SCAN -- the early-abandoning columnar scan with the
//                packed 2-coefficient prefix screen (the strongest
//                pre-existing scan engine).
//   filtered_bN  VIA SCAN MODE FILTERED at N bits/dim -- phase 1 scans
//                the bit-packed codes with the lower-bound LUT kernel,
//                phase 2 refines survivors through the exact kernels.
// plus the same comparison for kNN (scan vs filtered two-phase) and, on
// the 1067-series workload, the self-join (early-abandon vs pairwise
// code-gap filtered).
//
// Self-check (reported in BENCH_filter.json and grepped by CI): every
// filtered answer -- ids, IEEE-754 distance bits, pair emission order --
// must be identical to the exact engines' ("mismatch": true fails the
// build, and the process exits nonzero).
//
// BENCH_filter.json records per-mode wall time plus the filter's
// candidate counts and pruning ratio, and the filtered-vs-full-scan /
// filtered-vs-ea-scan speedups the acceptance bar reads.
//
// Usage: filter_pruning [count] [out.json]   (count 0 = both workloads)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/database.h"
#include "util/logging.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"
#include "workload/generators.h"

namespace simq {
namespace {

const int kBitWidths[] = {4, 6, 8};

struct ModeResult {
  std::string mode;
  double ms = 0.0;
  int64_t scanned = 0;     // filter paths only
  int64_t candidates = 0;  // filter paths only
  int64_t exact_checks = 0;
  double pruning = 0.0;
};

struct WorkloadResult {
  std::string name;
  int count = 0;
  int length = 0;
  double epsilon = 0.0;
  std::vector<ModeResult> range;
  std::vector<ModeResult> knn;
  std::vector<ModeResult> join;
  double range_speedup_vs_full = 0.0;
  double range_speedup_vs_ea = 0.0;
  bool mismatch = false;
};

bool SameMatches(const std::vector<Match>& a, const std::vector<Match>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].distance != b[i].distance) {
      return false;
    }
  }
  return true;
}

bool SamePairs(const std::vector<PairMatch>& a,
               const std::vector<PairMatch>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].first != b[i].first || a[i].second != b[i].second ||
        a[i].distance != b[i].distance) {
      return false;
    }
  }
  return true;
}

Query RangeQuery(int64_t probe, double epsilon, ExecutionStrategy strategy,
                 FilterMode filter) {
  Query query;
  query.kind = QueryKind::kRange;
  query.relation = "r";
  query.query_series.id = probe;
  query.epsilon = epsilon;
  query.strategy = strategy;
  query.filter = filter;
  return query;
}

Query KnnQuery(int64_t probe, int k, FilterMode filter) {
  Query query;
  query.kind = QueryKind::kNearest;
  query.relation = "r";
  query.query_series.id = probe;
  query.k = k;
  query.strategy = ExecutionStrategy::kScan;
  query.filter = filter;
  return query;
}

// Runs the probe batch once, accumulating stats and answers.
std::vector<QueryResult> RunBatch(const Database& db,
                                  const std::vector<Query>& queries) {
  std::vector<QueryResult> answers;
  answers.reserve(queries.size());
  for (const Query& query : queries) {
    Result<QueryResult> result = db.Execute(query);
    SIMQ_CHECK(result.ok()) << result.status().ToString();
    answers.push_back(std::move(result).value());
  }
  return answers;
}

ModeResult MeasureBatch(Database* db, const std::vector<Query>& queries,
                        const std::string& mode, int repetitions) {
  ModeResult out;
  out.mode = mode;
  out.ms = bench::MedianMillis([&] { RunBatch(*db, queries); }, repetitions);
  for (const QueryResult& answer : RunBatch(*db, queries)) {
    out.scanned += answer.stats.filter_scanned;
    out.candidates += answer.stats.candidates;
    out.exact_checks += answer.stats.exact_checks;
  }
  out.pruning = out.scanned > 0
                    ? 1.0 - static_cast<double>(out.candidates) /
                                static_cast<double>(out.scanned)
                    : 0.0;
  return out;
}

WorkloadResult RunWorkload(const std::string& name, int count,
                           int repetitions, bool with_join) {
  WorkloadResult result;
  result.name = name;
  result.count = count;
  result.length = 128;

  workload::StockMarketOptions options;
  options.num_series = count;
  std::unique_ptr<Database> db =
      bench::BuildDatabase(workload::StockMarket(options));
  result.epsilon =
      bench::CalibrateRangeEpsilon(*db, "r", /*probe_id=*/0, nullptr,
                                   /*target_answers=*/24);

  std::vector<int64_t> probes;
  for (int p = 0; p < 16; ++p) {
    probes.push_back(static_cast<int64_t>(p) * count / 16);
  }

  const auto range_batch = [&](ExecutionStrategy strategy,
                               FilterMode filter) {
    std::vector<Query> batch;
    for (const int64_t probe : probes) {
      batch.push_back(RangeQuery(probe, result.epsilon, strategy, filter));
    }
    return batch;
  };
  const auto knn_batch = [&](FilterMode filter) {
    std::vector<Query> batch;
    for (const int64_t probe : probes) {
      batch.push_back(KnnQuery(probe, /*k=*/10, filter));
    }
    return batch;
  };

  // ---- Range: exact baselines, then every code width. ----
  const std::vector<Query> full_queries = range_batch(
      ExecutionStrategy::kScanNoEarlyAbandon, FilterMode::kExact);
  const std::vector<Query> ea_queries =
      range_batch(ExecutionStrategy::kScan, FilterMode::kExact);
  const std::vector<Query> filtered_queries =
      range_batch(ExecutionStrategy::kScan, FilterMode::kFiltered);
  const std::vector<QueryResult> range_expected = RunBatch(*db, ea_queries);
  {
    // Sanity-check the two exact baselines against each other by id only:
    // the no-abandon and abandoning kernels associate their sums
    // differently, so their distance DOUBLES differ in ulps by design.
    // The filtered engine is held to the stricter bar below: bit-identity
    // with the strategy it replaces.
    const std::vector<QueryResult> full = RunBatch(*db, full_queries);
    for (size_t i = 0; i < full.size(); ++i) {
      bool same_ids = full[i].matches.size() ==
                      range_expected[i].matches.size();
      for (size_t m = 0; same_ids && m < full[i].matches.size(); ++m) {
        same_ids = full[i].matches[m].id ==
                   range_expected[i].matches[m].id;
      }
      result.mismatch = result.mismatch || !same_ids;
    }
  }
  result.range.push_back(
      MeasureBatch(db.get(), full_queries, "full_scan", repetitions));
  result.range.push_back(
      MeasureBatch(db.get(), ea_queries, "ea_scan", repetitions));
  double filtered_best_ms = 0.0;
  for (const int bits : kBitWidths) {
    FilterOptions filter_options;
    filter_options.bits_per_dim = bits;
    db->set_filter_options(filter_options);
    const std::vector<QueryResult> answers =
        RunBatch(*db, filtered_queries);
    for (size_t i = 0; i < answers.size(); ++i) {
      result.mismatch = result.mismatch ||
                        !answers[i].stats.used_filter ||
                        !SameMatches(answers[i].matches,
                                     range_expected[i].matches);
    }
    result.range.push_back(MeasureBatch(db.get(), filtered_queries,
                                        "filtered_b" + std::to_string(bits),
                                        repetitions));
    if (bits == 8) {
      filtered_best_ms = result.range.back().ms;
    }
  }
  result.range_speedup_vs_full =
      filtered_best_ms > 0.0 ? result.range[0].ms / filtered_best_ms : 0.0;
  result.range_speedup_vs_ea =
      filtered_best_ms > 0.0 ? result.range[1].ms / filtered_best_ms : 0.0;

  // ---- kNN: exact scan vs the filtered two-phase scan (8 bits). ----
  {
    FilterOptions filter_options;
    filter_options.bits_per_dim = 8;
    db->set_filter_options(filter_options);
    const std::vector<Query> exact_knn = knn_batch(FilterMode::kExact);
    const std::vector<Query> filtered_knn = knn_batch(FilterMode::kFiltered);
    const std::vector<QueryResult> expected = RunBatch(*db, exact_knn);
    const std::vector<QueryResult> actual = RunBatch(*db, filtered_knn);
    for (size_t i = 0; i < expected.size(); ++i) {
      result.mismatch = result.mismatch ||
                        !actual[i].stats.used_filter ||
                        !SameMatches(expected[i].matches, actual[i].matches);
    }
    result.knn.push_back(
        MeasureBatch(db.get(), exact_knn, "scan", repetitions));
    result.knn.push_back(
        MeasureBatch(db.get(), filtered_knn, "filtered_b8", repetitions));
  }

  // ---- Self-join (1067-series workload only: O(N^2) pairs). ----
  if (with_join) {
    const auto run_join = [&](FilterMode filter) {
      Result<QueryResult> joined =
          db->SelfJoin("r", result.epsilon, nullptr, nullptr,
                       JoinMethod::kScanEarlyAbandon, filter);
      SIMQ_CHECK(joined.ok()) << joined.status().ToString();
      return std::move(joined).value();
    };
    const QueryResult expected = run_join(FilterMode::kExact);
    const QueryResult actual = run_join(FilterMode::kFiltered);
    result.mismatch = result.mismatch || !actual.stats.used_filter ||
                      !SamePairs(expected.pairs, actual.pairs);
    ModeResult exact;
    exact.mode = "ea_join";
    exact.ms = bench::MedianMillis([&] { run_join(FilterMode::kExact); },
                                   repetitions);
    exact.exact_checks = expected.stats.exact_checks;
    result.join.push_back(exact);
    ModeResult filtered;
    filtered.mode = "filtered_b8";
    filtered.ms = bench::MedianMillis(
        [&] { run_join(FilterMode::kFiltered); }, repetitions);
    filtered.scanned = actual.stats.filter_scanned;
    filtered.candidates = actual.stats.candidates;
    filtered.exact_checks = actual.stats.exact_checks;
    filtered.pruning =
        filtered.scanned > 0
            ? 1.0 - static_cast<double>(filtered.candidates) /
                        static_cast<double>(filtered.scanned)
            : 0.0;
    result.join.push_back(filtered);
  }
  return result;
}

void PrintModes(const std::string& title,
                const std::vector<ModeResult>& modes) {
  if (modes.empty()) {
    return;
  }
  std::printf("%s\n", title.c_str());
  TablePrinter table(
      {"mode", "ms", "scanned", "candidates", "exact_checks", "pruned"});
  for (const ModeResult& mode : modes) {
    table.AddRow({mode.mode, TablePrinter::FormatDouble(mode.ms, 3),
                  std::to_string(mode.scanned),
                  std::to_string(mode.candidates),
                  std::to_string(mode.exact_checks),
                  TablePrinter::FormatDouble(100.0 * mode.pruning, 1) + "%"});
  }
  table.Print();
}

void WriteModes(std::FILE* out, const char* key,
                const std::vector<ModeResult>& modes, bool trailing_comma) {
  std::fprintf(out, "     \"%s\": [\n", key);
  for (size_t i = 0; i < modes.size(); ++i) {
    const ModeResult& mode = modes[i];
    std::fprintf(out,
                 "      {\"mode\": \"%s\", \"ms\": %.4f, \"scanned\": %lld, "
                 "\"candidates\": %lld, \"exact_checks\": %lld, "
                 "\"pruning\": %.4f}%s\n",
                 mode.mode.c_str(), mode.ms,
                 static_cast<long long>(mode.scanned),
                 static_cast<long long>(mode.candidates),
                 static_cast<long long>(mode.exact_checks), mode.pruning,
                 i + 1 < modes.size() ? "," : "");
  }
  std::fprintf(out, "     ]%s\n", trailing_comma ? "," : "");
}

void Run(int only_count, const std::string& out_path) {
  bench::PrintHeader(
      "FILTER: quantized filter-and-refine vs exact columnar scans",
      "claims: >= 2x over the exact full scan at Table-1 epsilon on the "
      "12000x128 workload, answers bit-identical across all bit widths");

  std::vector<WorkloadResult> results;
  if (only_count == 0 || only_count == 1067) {
    results.push_back(
        RunWorkload("stock_1067x128", 1067, 7, /*with_join=*/true));
  }
  if (only_count == 0 || only_count == 12000) {
    results.push_back(
        RunWorkload("stock_12000x128", 12000, 3, /*with_join=*/false));
  }
  if (results.empty()) {
    results.push_back(RunWorkload(
        "stock_" + std::to_string(only_count) + "x128", only_count, 3,
        /*with_join=*/only_count <= 2000));
  }

  bool mismatch = false;
  for (const WorkloadResult& result : results) {
    std::printf("\n== %s  (eps = %.4f, %d probes) ==\n", result.name.c_str(),
                result.epsilon, 16);
    PrintModes("range", result.range);
    PrintModes("knn (k=10)", result.knn);
    PrintModes("self-join", result.join);
    std::printf(
        "range filtered_b8 speedup: x%.2f vs full scan, x%.2f vs "
        "early-abandon scan; answers %s\n",
        result.range_speedup_vs_full, result.range_speedup_vs_ea,
        result.mismatch ? "MISMATCH" : "identical");
    mismatch = mismatch || result.mismatch;
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  SIMQ_CHECK(out != nullptr) << "cannot write " << out_path;
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"filter_pruning\",\n"
               "  \"threads\": %d,\n"
               "  \"workloads\": [\n",
               ThreadPool::Global().num_threads());
  for (size_t w = 0; w < results.size(); ++w) {
    const WorkloadResult& result = results[w];
    std::fprintf(out,
                 "    {\"workload\": \"%s\", \"count\": %d, \"length\": %d, "
                 "\"epsilon\": %.17g,\n",
                 result.name.c_str(), result.count, result.length,
                 result.epsilon);
    WriteModes(out, "range", result.range, /*trailing_comma=*/true);
    WriteModes(out, "knn", result.knn, /*trailing_comma=*/true);
    if (!result.join.empty()) {
      WriteModes(out, "join", result.join, /*trailing_comma=*/true);
    }
    std::fprintf(out,
                 "     \"range_speedup_vs_full\": %.3f,\n"
                 "     \"range_speedup_vs_ea\": %.3f,\n"
                 "     \"mismatch\": %s}%s\n",
                 result.range_speedup_vs_full, result.range_speedup_vs_ea,
                 result.mismatch ? "true" : "false",
                 w + 1 < results.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"mismatch\": %s\n"
               "}\n",
               mismatch ? "true" : "false");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());
  if (mismatch) {
    std::exit(1);
  }
}

}  // namespace
}  // namespace simq

int main(int argc, char** argv) {
  const int count = argc > 1 ? std::atoi(argv[1]) : 0;
  const std::string out = argc > 2 ? argv[2] : "BENCH_filter.json";
  simq::Run(count, out);
  return 0;
}
