// [RM97-Tab1] The spatial self-join experiment: find all pairs of stock
// series whose 20-day moving averages (of normal forms) are within epsilon.
// Four algorithms, as in Table 1 of the paper:
//   a  sequential scan over the Fourier-coefficient relation, complete
//      distance computation for every pair
//   b  as a, but abandoning a pair as soon as the partial distance exceeds
//      epsilon
//   c  for every sequence, build a search rectangle and pose it to the
//      index as a range query -- without the transformation
//   d  as c, with T_mavg20 applied to both the index and the rectangles
//
// Claims: b is roughly an order of magnitude faster than a; c and d are
// roughly an order faster than b; d is a bit slower than c; the answer of d
// contains every pair twice (|d| = 2 |b|), and |c| < |d| because it misses
// pairs that are only similar after smoothing.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "core/transformation.h"
#include "ts/transforms.h"
#include "util/stats.h"
#include "util/table_printer.h"
#include "workload/generators.h"

namespace simq {
namespace {

void Run() {
  bench::PrintHeader(
      "RM97-Table1: spatial self-join under T_mavg20 (1067 x 128 stock "
      "relation)",
      "claims: time(a) >> time(b) >> time(c) ~ time(d); |answer(d)| = "
      "2*|answer(b)|; |answer(c)| < |answer(d)|");

  const std::vector<TimeSeries> market =
      workload::StockMarket(workload::StockMarketOptions());
  const auto db = bench::BuildDatabase(market);
  const auto mavg20 = MakeMovingAverageRule(20);

  // Calibrate epsilon so method b reports about 12 pairs, the paper's
  // answer-set size. The engineered smoothed-similar pairs make this a
  // natural operating point.
  std::vector<std::vector<double>> smoothed;
  const Relation* relation = db->GetRelation("r");
  smoothed.reserve(static_cast<size_t>(relation->size()));
  for (const Record& record : relation->records()) {
    smoothed.push_back(mavg20->Apply(record.normal_values));
  }
  std::vector<double> pair_distances;
  for (size_t i = 0; i < smoothed.size(); ++i) {
    for (size_t j = i + 1; j < smoothed.size(); ++j) {
      const double d =
          EuclideanDistanceEarlyAbandon(smoothed[i], smoothed[j], 2.0);
      if (d <= 2.0) {
        pair_distances.push_back(d);
      }
    }
  }
  std::sort(pair_distances.begin(), pair_distances.end());
  const double epsilon = workload::CalibrateEpsilon(pair_distances, 12);

  struct MethodSpec {
    const char* label;
    JoinMethod method;
    const TransformationRule* rule;
  };
  const MethodSpec methods[] = {
      {"a (full scan)", JoinMethod::kFullScan, mavg20.get()},
      {"b (early-abandon scan)", JoinMethod::kScanEarlyAbandon, mavg20.get()},
      {"c (index, no transform)", JoinMethod::kIndexNoTransform, nullptr},
      {"d (index + T_mavg20)", JoinMethod::kIndexTransform, mavg20.get()},
  };

  TablePrinter table({"method", "time_ms", "answer_size", "node_accesses",
                      "exact_checks"});
  double time_a = 0.0;
  double time_b = 0.0;
  double time_c = 0.0;
  double time_d = 0.0;
  for (const MethodSpec& spec : methods) {
    QueryResult last;
    const double ms = bench::MedianMillis(
        [&] {
          last = db->SelfJoin("r", epsilon, spec.rule, spec.method).value();
        },
        spec.method == JoinMethod::kFullScan ? 3 : 5);
    if (spec.method == JoinMethod::kFullScan) {
      time_a = ms;
    } else if (spec.method == JoinMethod::kScanEarlyAbandon) {
      time_b = ms;
    } else if (spec.method == JoinMethod::kIndexNoTransform) {
      time_c = ms;
    } else {
      time_d = ms;
    }
    table.AddRow({spec.label, TablePrinter::FormatDouble(ms, 2),
                  TablePrinter::FormatInt(
                      static_cast<int64_t>(last.pairs.size())),
                  TablePrinter::FormatInt(last.stats.node_accesses),
                  TablePrinter::FormatInt(last.stats.exact_checks)});
  }
  table.Print();

  // Same index methods on both traversal engines: the packed snapshot
  // (default, timed above) vs the pointer tree. Answer sets and node
  // accesses must agree; only the wall clock moves.
  TablePrinter engines({"method", "packed_ms", "pointer_ms", "engine_x",
                        "answers", "node_accesses"});
  for (const MethodSpec& spec : methods) {
    if (spec.method != JoinMethod::kIndexNoTransform &&
        spec.method != JoinMethod::kIndexTransform) {
      continue;
    }
    QueryResult packed_result;
    const double packed_ms = bench::MedianMillis(
        [&] {
          packed_result =
              db->SelfJoin("r", epsilon, spec.rule, spec.method).value();
        },
        5);
    db->set_index_engine(IndexEngine::kPointer);
    QueryResult pointer_result;
    const double pointer_ms = bench::MedianMillis(
        [&] {
          pointer_result =
              db->SelfJoin("r", epsilon, spec.rule, spec.method).value();
        },
        5);
    db->set_index_engine(IndexEngine::kPacked);
    const auto pair_ids = [](const QueryResult& result) {
      std::vector<std::pair<int64_t, int64_t>> ids;
      ids.reserve(result.pairs.size());
      for (const PairMatch& pair : result.pairs) {
        ids.emplace_back(pair.first, pair.second);
      }
      std::sort(ids.begin(), ids.end());
      return ids;
    };
    const bool agree =
        pair_ids(packed_result) == pair_ids(pointer_result) &&
        packed_result.stats.node_accesses == pointer_result.stats.node_accesses;
    engines.AddRow(
        {spec.label, TablePrinter::FormatDouble(packed_ms, 2),
         TablePrinter::FormatDouble(pointer_ms, 2),
         TablePrinter::FormatDouble(pointer_ms / packed_ms, 2),
         TablePrinter::FormatInt(
             static_cast<int64_t>(packed_result.pairs.size())),
         TablePrinter::FormatInt(packed_result.stats.node_accesses)});
    if (!agree) {
      std::fprintf(stderr, "FATAL: traversal engines disagree on %s\n",
                   spec.label);
      std::exit(1);
    }
  }
  std::printf("\n  packed vs pointer traversal engine (identical answers "
              "and node accesses):\n");
  engines.Print();
  std::printf("\n  epsilon = %.4f\n", epsilon);
  std::printf("  ratios: a/b = %.1f   b/c = %.1f   b/d = %.1f   d/c = %.2f\n",
              time_a / time_b, time_b / time_c, time_b / time_d,
              time_d / time_c);
  std::printf(
      "\n  note: in-memory, the early-abandoning scan (b) is competitive at\n"
      "  the paper's N = 1067 because 1995 page reads are now L1 hits; the\n"
      "  paper's ordering is asymptotic (O(N^2) scans vs O(N log N) index)\n"
      "  and re-emerges as the relation grows:\n");

  TablePrinter growth({"num_series", "b_scan_ms", "d_index_ms",
                       "speedup_d_over_b", "b_exact_checks",
                       "d_exact_checks"});
  for (const int count : {1067, 4000, 12000}) {
    workload::StockMarketOptions options;
    options.num_series = count;
    const std::vector<TimeSeries> big_market = workload::StockMarket(options);
    const auto big_db = bench::BuildDatabase(big_market);
    QueryResult result_b;
    const double ms_b = bench::MedianMillis(
        [&] {
          result_b = big_db->SelfJoin("r", epsilon, mavg20.get(),
                                      JoinMethod::kScanEarlyAbandon)
                         .value();
        },
        3);
    QueryResult result_d;
    const double ms_d = bench::MedianMillis(
        [&] {
          result_d = big_db->SelfJoin("r", epsilon, mavg20.get(),
                                      JoinMethod::kIndexTransform)
                         .value();
        },
        3);
    growth.AddRow({TablePrinter::FormatInt(count),
                   TablePrinter::FormatDouble(ms_b, 2),
                   TablePrinter::FormatDouble(ms_d, 2),
                   TablePrinter::FormatDouble(ms_b / ms_d, 2),
                   TablePrinter::FormatInt(result_b.stats.exact_checks),
                   TablePrinter::FormatInt(result_d.stats.exact_checks)});
  }
  growth.Print();
}

}  // namespace
}  // namespace simq

int main() {
  simq::Run();
  return 0;
}
