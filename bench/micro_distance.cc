// Microbenchmarks of the exact-distance kernels: full vs. early-abandoning
// Euclidean distance in time and frequency domains. The frequency-domain
// early abandon is what makes the paper's "good implementation" of the
// sequential scan competitive (large coefficients first).

#include <benchmark/benchmark.h>

#include "ts/dft.h"
#include "ts/transforms.h"
#include "util/random.h"
#include "util/stats.h"

namespace simq {
namespace {

std::vector<double> RandomWalk(int n, uint64_t seed) {
  Random rng(seed);
  std::vector<double> x(static_cast<size_t>(n));
  x[0] = rng.UniformDouble(20.0, 99.0);
  for (int t = 1; t < n; ++t) {
    x[static_cast<size_t>(t)] =
        x[static_cast<size_t>(t - 1)] + rng.UniformDouble(-4.0, 4.0);
  }
  return x;
}

void BM_TimeDomainDistanceFull(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::vector<double> a = ToNormalForm(RandomWalk(n, 1)).values;
  const std::vector<double> b = ToNormalForm(RandomWalk(n, 2)).values;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EuclideanDistance(a, b));
  }
}
BENCHMARK(BM_TimeDomainDistanceFull)->Arg(128)->Arg(1024);

void BM_FreqDomainEarlyAbandon(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Spectrum a = Dft(ToNormalForm(RandomWalk(n, 3)).values);
  const Spectrum b = Dft(ToNormalForm(RandomWalk(n, 4)).values);
  // A tight threshold abandons within the first few coefficients because
  // random-walk energy concentrates at the front of the spectrum.
  for (auto _ : state) {
    benchmark::DoNotOptimize(EuclideanDistanceEarlyAbandon(a, b, 0.5));
  }
}
BENCHMARK(BM_FreqDomainEarlyAbandon)->Arg(128)->Arg(1024);

void BM_FreqDomainFull(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Spectrum a = Dft(ToNormalForm(RandomWalk(n, 5)).values);
  const Spectrum b = Dft(ToNormalForm(RandomWalk(n, 6)).values);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EuclideanDistance(a, b));
  }
}
BENCHMARK(BM_FreqDomainFull)->Arg(128)->Arg(1024);

void BM_NormalForm(benchmark::State& state) {
  const std::vector<double> x =
      RandomWalk(static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ToNormalForm(x));
  }
}
BENCHMARK(BM_NormalForm)->Arg(128)->Arg(1024);

void BM_MovingAverage(benchmark::State& state) {
  const std::vector<double> x =
      RandomWalk(static_cast<int>(state.range(0)), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CircularMovingAverage(x, 20));
  }
}
BENCHMARK(BM_MovingAverage)->Arg(128)->Arg(1024);

}  // namespace
}  // namespace simq

BENCHMARK_MAIN();
