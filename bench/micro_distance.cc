// Microbenchmarks of the exact-distance kernels: full vs. early-abandoning
// Euclidean distance in time and frequency domains. The frequency-domain
// early abandon is what makes the paper's "good implementation" of the
// sequential scan competitive (large coefficients first).

#include <benchmark/benchmark.h>

#include "core/database.h"
#include "core/feature_store.h"
#include "ts/dft.h"
#include "ts/transforms.h"
#include "util/random.h"
#include "util/stats.h"
#include "workload/generators.h"

namespace simq {
namespace {

std::vector<double> RandomWalk(int n, uint64_t seed) {
  Random rng(seed);
  std::vector<double> x(static_cast<size_t>(n));
  x[0] = rng.UniformDouble(20.0, 99.0);
  for (int t = 1; t < n; ++t) {
    x[static_cast<size_t>(t)] =
        x[static_cast<size_t>(t - 1)] + rng.UniformDouble(-4.0, 4.0);
  }
  return x;
}

void BM_TimeDomainDistanceFull(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::vector<double> a = ToNormalForm(RandomWalk(n, 1)).values;
  const std::vector<double> b = ToNormalForm(RandomWalk(n, 2)).values;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EuclideanDistance(a, b));
  }
}
BENCHMARK(BM_TimeDomainDistanceFull)->Arg(128)->Arg(1024);

void BM_FreqDomainEarlyAbandon(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Spectrum a = Dft(ToNormalForm(RandomWalk(n, 3)).values);
  const Spectrum b = Dft(ToNormalForm(RandomWalk(n, 4)).values);
  // A tight threshold abandons within the first few coefficients because
  // random-walk energy concentrates at the front of the spectrum.
  for (auto _ : state) {
    benchmark::DoNotOptimize(EuclideanDistanceEarlyAbandon(a, b, 0.5));
  }
}
BENCHMARK(BM_FreqDomainEarlyAbandon)->Arg(128)->Arg(1024);

void BM_FreqDomainFull(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Spectrum a = Dft(ToNormalForm(RandomWalk(n, 5)).values);
  const Spectrum b = Dft(ToNormalForm(RandomWalk(n, 6)).values);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EuclideanDistance(a, b));
  }
}
BENCHMARK(BM_FreqDomainFull)->Arg(128)->Arg(1024);

void BM_NormalForm(benchmark::State& state) {
  const std::vector<double> x =
      RandomWalk(static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ToNormalForm(x));
  }
}
BENCHMARK(BM_NormalForm)->Arg(128)->Arg(1024);

void BM_MovingAverage(benchmark::State& state) {
  const std::vector<double> x =
      RandomWalk(static_cast<int>(state.range(0)), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CircularMovingAverage(x, 20));
  }
}
BENCHMARK(BM_MovingAverage)->Arg(128)->Arg(1024);

// ---------------------------------------------------------------------------
// Sequential-scan kernels: the pre-refactor record-at-a-time AoS loop vs.
// the columnar batch kernel over the FeatureStore, on an identical
// relation. The AoS reference below replicates the scalar FreqDistance
// loop that core/database.cc used before the columnar engine.
// ---------------------------------------------------------------------------

constexpr int kScanCount = 2000;
constexpr double kInf = std::numeric_limits<double>::infinity();

const Database& ScanDatabase() {
  static const Database* db = [] {
    auto* out = new Database();
    SIMQ_CHECK(out->CreateRelation("r").ok());
    SIMQ_CHECK(
        out->BulkLoad("r", workload::RandomWalkSeries(kScanCount, 128, 42))
            .ok());
    return out;
  }();
  return *db;
}

// The old scalar kernel: per-coefficient complex norm with a branch per
// coefficient.
double AosFreqDistance(const Spectrum& data, const Spectrum& query,
                       double threshold) {
  const double limit = threshold == kInf ? kInf : threshold * threshold;
  double sum = 0.0;
  for (size_t f = 0; f < data.size(); ++f) {
    sum += std::norm(data[f] - query[f]);
    if (sum > limit) {
      return kInf;
    }
  }
  return std::sqrt(sum);
}

void BM_ScanKernelAoS(benchmark::State& state) {
  const Database& db = ScanDatabase();
  const Relation* relation = db.GetRelation("r");
  const double threshold = state.range(0) != 0 ? 0.5 : kInf;
  const Spectrum query =
      Dft(ToNormalForm(RandomWalk(128, 1234)).values);
  for (auto _ : state) {
    int64_t matches = 0;
    for (const Record& record : relation->records()) {
      if (AosFreqDistance(record.features.normal_spectrum, query,
                          threshold) <= threshold) {
        ++matches;
      }
    }
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() * kScanCount);
}
BENCHMARK(BM_ScanKernelAoS)
    ->Arg(0)   // full distance (Table 1 method a regime)
    ->Arg(1);  // early abandoning (method b regime)

void BM_ScanKernelColumnar(benchmark::State& state) {
  const Database& db = ScanDatabase();
  const FeatureStore& store = db.GetRelation("r")->store();
  const double threshold = state.range(0) != 0 ? 0.5 : kInf;
  const double limit_sq =
      threshold == kInf ? kInf : threshold * threshold;
  const std::vector<double> query = InterleaveSpectrum(
      Dft(ToNormalForm(RandomWalk(128, 1234)).values));
  const int n = store.spectrum_length();
  const bool screen = limit_sq != kInf;  // engine's prefix-column screen
  const double q0 = query[0], q1 = query[1], q2 = query[2], q3 = query[3];
  for (auto _ : state) {
    int64_t matches = 0;
    for (int64_t i = 0; i < store.size(); ++i) {
      if (screen &&
          PrefixScreenDead(store.PrefixRow(i), q0, q1, q2, q3, limit_sq)) {
        continue;
      }
      const double dist_sq =
          RowDistanceSq(store.SpectrumRow(i), query.data(), n, limit_sq);
      if (dist_sq <= limit_sq) {
        ++matches;
      }
    }
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() * kScanCount);
}
BENCHMARK(BM_ScanKernelColumnar)->Arg(0)->Arg(1);

// Whole-query scan through the engine (planner + columnar kernels), the
// number CI tracks in BENCH_scan.json.
void BM_RangeQueryScan(benchmark::State& state) {
  const Database& db = ScanDatabase();
  Query query;
  query.kind = QueryKind::kRange;
  query.relation = "r";
  query.query_series.id = 17;
  query.epsilon = 4.0;
  query.strategy = state.range(0) != 0 ? ExecutionStrategy::kScan
                                       : ExecutionStrategy::kScanNoEarlyAbandon;
  for (auto _ : state) {
    const Result<QueryResult> result = db.Execute(query);
    benchmark::DoNotOptimize(result.value().matches.size());
  }
  state.SetItemsProcessed(state.iterations() * kScanCount);
}
BENCHMARK(BM_RangeQueryScan)->Arg(0)->Arg(1);

}  // namespace
}  // namespace simq

BENCHMARK_MAIN();
