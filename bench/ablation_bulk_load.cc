// [Ablation-build] Index construction strategy: one-by-one R* insertion
// (with forced reinsertion) vs. STR bulk loading. Reports build time, node
// count, and the node accesses of a fixed query batch against each tree.

#include "bench/bench_common.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "workload/generators.h"

namespace simq {
namespace {

void Run() {
  bench::PrintHeader(
      "Ablation-build: R* insertion vs STR bulk load",
      "claim: bulk load builds much faster with comparable query quality");

  TablePrinter table({"num_series", "strategy", "build_ms", "nodes",
                      "height", "query_nodes", "query_ms"});
  const int kQueries = 15;

  for (const int count : {1000, 4000, 12000}) {
    const std::vector<TimeSeries> series = workload::RandomWalkSeries(
        count, 128, 161 + static_cast<uint64_t>(count));

    for (const bool bulk : {false, true}) {
      Database db;
      SIMQ_CHECK(db.CreateRelation("r").ok());
      Stopwatch build_watch;
      if (bulk) {
        SIMQ_CHECK(db.BulkLoad("r", series).ok());
      } else {
        for (const TimeSeries& ts : series) {
          SIMQ_CHECK(db.Insert("r", ts).ok());
        }
      }
      const double build_ms = build_watch.ElapsedMillis();
      const RTree& tree = db.GetRelation("r")->index();
      SIMQ_CHECK(tree.CheckInvariants());

      const double epsilon =
          bench::CalibrateRangeEpsilon(db, "r", 3, nullptr, 20);
      int64_t nodes = 0;
      auto run_queries = [&] {
        nodes = 0;
        for (int q = 0; q < kQueries; ++q) {
          Query query;
          query.kind = QueryKind::kRange;
          query.relation = "r";
          query.query_series.id = (q * 41) % count;
          query.epsilon = epsilon;
          query.strategy = ExecutionStrategy::kIndex;
          nodes += db.Execute(query).value().stats.node_accesses;
        }
      };
      const double query_ms = bench::MedianMillis(run_queries, 5) / kQueries;

      table.AddRow({TablePrinter::FormatInt(count),
                    bulk ? "STR bulk load" : "R* insertion",
                    TablePrinter::FormatDouble(build_ms, 2),
                    TablePrinter::FormatInt(tree.node_count()),
                    TablePrinter::FormatInt(tree.height()),
                    TablePrinter::FormatInt(nodes / kQueries),
                    TablePrinter::FormatDouble(query_ms, 4)});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace simq

int main() {
  simq::Run();
  return 0;
}
