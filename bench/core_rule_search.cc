// [JMM95-core-2] The general (branch-and-bound) reducibility search over
// transformation-rule sequences: Equation 10 evaluated directly. Shows the
// exponential growth of the searched derivation space with the application
// depth and the effectiveness of cost-budget pruning -- the framework's
// motivation for both cost budgets and the indexable special cases.

#include "bench/bench_common.h"
#include "core/similarity.h"
#include "core/transformation.h"
#include "util/table_printer.h"
#include "workload/generators.h"

namespace simq {
namespace {

void Run() {
  bench::PrintHeader(
      "JMM95-core-2: branch-and-bound over rule derivations",
      "claim: states expanded grow exponentially with the depth cap; "
      "tighter cost budgets prune the search");

  const std::vector<TimeSeries> series =
      workload::RandomWalkSeries(2, 96, 77);
  const std::vector<double>& x = series[0].values;
  const std::vector<double>& y = series[1].values;

  const auto mavg4 = MakeMovingAverageRule(4, 0.4);
  const auto mavg8 = MakeMovingAverageRule(8, 0.7);
  const auto reverse = MakeReverseRule(0.5);
  const auto despike = MakeDespikeRule(2.0, 0.3);
  const std::vector<const TransformationRule*> rules = {
      mavg4.get(), mavg8.get(), reverse.get(), despike.get()};

  TablePrinter depth_table(
      {"max_applications", "states_expanded", "distance", "time_ms"});
  for (const int depth : {0, 1, 2, 3}) {
    SimilarityOptions options;
    options.max_rule_applications = depth;
    SimilarityResult result;
    const double ms = bench::MedianMillis(
        [&] { result = TransformationDistance(x, y, rules, options); }, 3);
    depth_table.AddRow({TablePrinter::FormatInt(depth),
                        TablePrinter::FormatInt(result.states_expanded),
                        TablePrinter::FormatDouble(result.distance, 3),
                        TablePrinter::FormatDouble(ms, 3)});
  }
  depth_table.Print();

  std::printf("\n  budget pruning at depth 3:\n");
  TablePrinter budget_table(
      {"cost_budget", "states_expanded", "distance", "time_ms"});
  for (const double budget : {0.0, 0.5, 1.0, 2.0, 1e100}) {
    SimilarityOptions options;
    options.max_rule_applications = 3;
    options.cost_budget = budget;
    SimilarityResult result;
    const double ms = bench::MedianMillis(
        [&] { result = TransformationDistance(x, y, rules, options); }, 3);
    budget_table.AddRow({budget > 1e99 ? "unbounded"
                                       : TablePrinter::FormatDouble(budget, 1),
                         TablePrinter::FormatInt(result.states_expanded),
                         TablePrinter::FormatDouble(result.distance, 3),
                         TablePrinter::FormatDouble(ms, 3)});
  }
  budget_table.Print();
}

}  // namespace
}  // namespace simq

int main() {
  simq::Run();
  return 0;
}
