// Microbenchmarks of the R*-tree substrate: insertion, bulk load, snapshot
// compilation, and the three hot traversals (range search, k-NN, spatial
// join) on both engines -- the pointer tree and the packed snapshot.
//
// The *_Table1* benchmarks run on the paper's Table-1 workload (the
// 1067 x 128 stock relation's 6-d polar feature points, STR bulk-loaded)
// so the packed-vs-pointer speedup is measured at the operating point the
// acceptance criteria reference. Each Table-1 traversal benchmark verifies
// once, outside the timed loop, that both engines return identical answer
// counts and node-access counts. CI uploads this binary's JSON output as
// BENCH_rtree.json.

#include <benchmark/benchmark.h>

#include "geom/search_region.h"
#include "index/packed_rtree.h"
#include "index/rtree.h"
#include "ts/feature.h"
#include "util/random.h"
#include "workload/generators.h"

namespace simq {
namespace {

std::vector<Point> MakePoints(int count, int dims, uint64_t seed) {
  Random rng(seed);
  std::vector<Point> points(static_cast<size_t>(count));
  for (Point& p : points) {
    p.resize(static_cast<size_t>(dims));
    for (double& v : p) {
      v = rng.UniformDouble(-10.0, 10.0);
    }
  }
  return points;
}

void BM_RTreeInsert(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  const std::vector<Point> points = MakePoints(count, 6, 1);
  for (auto _ : state) {
    RTree tree(6);
    for (size_t i = 0; i < points.size(); ++i) {
      tree.InsertPoint(points[i], static_cast<int64_t>(i));
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_RTreeInsert)->Arg(1000)->Arg(10000);

void BM_RTreeBulkLoad(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  const std::vector<Point> points = MakePoints(count, 6, 2);
  for (auto _ : state) {
    RTree tree(6);
    std::vector<std::pair<Rect, int64_t>> entries;
    entries.reserve(points.size());
    for (size_t i = 0; i < points.size(); ++i) {
      entries.emplace_back(Rect::FromPoint(points[i]),
                           static_cast<int64_t>(i));
    }
    tree.BulkLoad(std::move(entries));
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_RTreeBulkLoad)->Arg(1000)->Arg(10000);

// Cost of compiling the packed snapshot (the rebuild-on-mutation price).
void BM_PackedCompile(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  const std::vector<Point> points = MakePoints(count, 6, 2);
  RTree tree(6);
  std::vector<std::pair<Rect, int64_t>> entries;
  entries.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    entries.emplace_back(Rect::FromPoint(points[i]), static_cast<int64_t>(i));
  }
  tree.BulkLoad(std::move(entries));
  for (auto _ : state) {
    const PackedRTree packed(tree);
    benchmark::DoNotOptimize(packed.node_count());
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_PackedCompile)->Arg(10000)->Arg(100000);

struct UniformFixture {
  explicit UniformFixture(int count)
      : points(MakePoints(count, 4, 3)), tree(4) {
    for (size_t i = 0; i < points.size(); ++i) {
      tree.InsertPoint(points[i], static_cast<int64_t>(i));
    }
    packed = std::make_unique<PackedRTree>(tree);
    config.num_coefficients = 2;
    config.space = FeatureSpace::kRectangular;
    config.include_mean_std = false;
  }
  std::vector<Point> points;
  RTree tree;
  std::unique_ptr<PackedRTree> packed;
  FeatureConfig config;
};

void BM_RangeSearchPointer(benchmark::State& state) {
  UniformFixture fx(static_cast<int>(state.range(0)));
  const SearchRegion region = SearchRegion::MakeRange(
      {Complex(0.0, 0.0), Complex(0.0, 0.0)}, 2.0, fx.config);
  for (auto _ : state) {
    std::vector<int64_t> results;
    fx.tree.Search(region, nullptr, &results);
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_RangeSearchPointer)->Arg(10000)->Arg(100000);

void BM_RangeSearchPacked(benchmark::State& state) {
  UniformFixture fx(static_cast<int>(state.range(0)));
  const SearchRegion region = SearchRegion::MakeRange(
      {Complex(0.0, 0.0), Complex(0.0, 0.0)}, 2.0, fx.config);
  for (auto _ : state) {
    std::vector<int64_t> results;
    fx.packed->Search(region, nullptr, &results);
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_RangeSearchPacked)->Arg(10000)->Arg(100000);

void BM_NearestNeighborsPointer(benchmark::State& state) {
  UniformFixture fx(static_cast<int>(state.range(0)));
  const NnLowerBound bound({Complex(1.0, 1.0), Complex(-1.0, 0.5)},
                           fx.config);
  const std::vector<DimAffine> identity(4);
  auto exact = [&](int64_t id) {
    return bound.ToTransformedPoint(fx.points[static_cast<size_t>(id)],
                                    identity);
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.tree.NearestNeighbors(bound, nullptr, 10, exact));
  }
}
BENCHMARK(BM_NearestNeighborsPointer)->Arg(10000)->Arg(100000);

void BM_NearestNeighborsPacked(benchmark::State& state) {
  UniformFixture fx(static_cast<int>(state.range(0)));
  const NnLowerBound bound({Complex(1.0, 1.0), Complex(-1.0, 0.5)},
                           fx.config);
  const std::vector<DimAffine> identity(4);
  auto exact = [&](int64_t id) {
    return bound.ToTransformedPoint(fx.points[static_cast<size_t>(id)],
                                    identity);
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.packed->NearestNeighbors(bound, nullptr, 10, exact));
  }
}
BENCHMARK(BM_NearestNeighborsPacked)->Arg(10000)->Arg(100000);

// ---------------------------------------------------------------------------
// Table-1 workload: 6-d polar feature points of the stock relation.
// ---------------------------------------------------------------------------

struct Table1Fixture {
  explicit Table1Fixture(int num_series) : tree(6) {
    workload::StockMarketOptions options;
    options.num_series = num_series;
    const std::vector<TimeSeries> market = workload::StockMarket(options);
    std::vector<std::pair<Rect, int64_t>> entries;
    entries.reserve(market.size());
    for (size_t i = 0; i < market.size(); ++i) {
      const SeriesFeatures features = ComputeFeatures(market[i].values);
      coefficients.push_back(
          ExtractCoefficients(features.normal_spectrum,
                              config.num_coefficients));
      feature_points.push_back(MakeFeaturePoint(features, config));
      entries.emplace_back(Rect::FromPoint(feature_points.back()),
                           static_cast<int64_t>(i));
    }
    tree.BulkLoad(std::move(entries));
    packed = std::make_unique<PackedRTree>(tree);
  }
  FeatureConfig config;  // paper default: polar, mean/std, k = 2 -> 6-d
  std::vector<std::vector<Complex>> coefficients;
  std::vector<Point> feature_points;
  RTree tree;
  std::unique_ptr<PackedRTree> packed;
};

constexpr double kTable1Epsilon = 0.45;

std::vector<SearchRegion> Table1Regions(const Table1Fixture& fx, int count) {
  std::vector<SearchRegion> regions;
  regions.reserve(static_cast<size_t>(count));
  for (int q = 0; q < count; ++q) {
    regions.push_back(SearchRegion::MakeRange(
        fx.coefficients[static_cast<size_t>(
            q % fx.coefficients.size())],
        kTable1Epsilon, fx.config));
  }
  return regions;
}

void BM_Table1RangeSearchPointer(benchmark::State& state) {
  Table1Fixture fx(static_cast<int>(state.range(0)));
  const std::vector<SearchRegion> regions = Table1Regions(fx, 64);
  for (auto _ : state) {
    int64_t total = 0;
    std::vector<int64_t> results;
    for (const SearchRegion& region : regions) {
      results.clear();
      fx.tree.Search(region, nullptr, &results);
      total += static_cast<int64_t>(results.size());
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(regions.size()));
}
BENCHMARK(BM_Table1RangeSearchPointer)->Arg(1067)->Arg(12000);

void BM_Table1RangeSearchPacked(benchmark::State& state) {
  Table1Fixture fx(static_cast<int>(state.range(0)));
  const std::vector<SearchRegion> regions = Table1Regions(fx, 64);
  // Answer-set and node-access parity, checked once outside the loop.
  {
    std::vector<int64_t> a;
    std::vector<int64_t> b;
    fx.tree.ResetNodeAccesses();
    fx.packed->ResetNodeAccesses();
    for (const SearchRegion& region : regions) {
      fx.tree.Search(region, nullptr, &a);
      fx.packed->Search(region, nullptr, &b);
    }
    if (a != b || fx.tree.node_accesses() != fx.packed->node_accesses()) {
      state.SkipWithError("packed/pointer range-search mismatch");
      return;
    }
  }
  for (auto _ : state) {
    int64_t total = 0;
    std::vector<int64_t> results;
    for (const SearchRegion& region : regions) {
      results.clear();
      fx.packed->Search(region, nullptr, &results);
      total += static_cast<int64_t>(results.size());
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(regions.size()));
}
BENCHMARK(BM_Table1RangeSearchPacked)->Arg(1067)->Arg(12000);

void BM_Table1SelfJoinPointer(benchmark::State& state) {
  Table1Fixture fx(static_cast<int>(state.range(0)));
  const EpsilonPairPredicate pred{6, kTable1Epsilon};
  for (auto _ : state) {
    int64_t pairs = 0;
    fx.tree.JoinWith(fx.tree, pred,
                     [&](int64_t, int64_t) { ++pairs; });
    benchmark::DoNotOptimize(pairs);
  }
}
BENCHMARK(BM_Table1SelfJoinPointer)->Arg(1067)->Arg(12000);

void BM_Table1SelfJoinPacked(benchmark::State& state) {
  Table1Fixture fx(static_cast<int>(state.range(0)));
  const EpsilonPairPredicate pred{6, kTable1Epsilon};
  // Pair-count and node-access parity, checked once outside the loop.
  {
    int64_t pointer_pairs = 0;
    int64_t packed_pairs = 0;
    fx.tree.ResetNodeAccesses();
    fx.packed->ResetNodeAccesses();
    fx.tree.JoinWith(fx.tree, pred,
                     [&](int64_t, int64_t) { ++pointer_pairs; });
    fx.packed->JoinWith(*fx.packed, pred,
                        [&](int64_t, int64_t) { ++packed_pairs; },
                        kTable1Epsilon);
    if (pointer_pairs != packed_pairs ||
        fx.tree.node_accesses() != fx.packed->node_accesses()) {
      state.SkipWithError("packed/pointer join mismatch");
      return;
    }
  }
  for (auto _ : state) {
    int64_t pairs = 0;
    fx.packed->JoinWith(*fx.packed, pred,
                        [&](int64_t, int64_t) { ++pairs; },
                        kTable1Epsilon);
    benchmark::DoNotOptimize(pairs);
  }
}
BENCHMARK(BM_Table1SelfJoinPacked)->Arg(1067)->Arg(12000);

void BM_Table1NearestNeighborsPointer(benchmark::State& state) {
  Table1Fixture fx(static_cast<int>(state.range(0)));
  const std::vector<DimAffine> identity(6);
  for (auto _ : state) {
    int64_t total = 0;
    for (int q = 0; q < 32; ++q) {
      const NnLowerBound bound(
          fx.coefficients[static_cast<size_t>(q) % fx.coefficients.size()],
          fx.config);
      const auto exact = [&](int64_t id) {
        return bound.ToTransformedPoint(
            fx.feature_points[static_cast<size_t>(id)], identity);
      };
      total += static_cast<int64_t>(
          fx.tree.NearestNeighbors(bound, nullptr, 10, exact).size());
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_Table1NearestNeighborsPointer)->Arg(1067)->Arg(12000);

void BM_Table1NearestNeighborsPacked(benchmark::State& state) {
  Table1Fixture fx(static_cast<int>(state.range(0)));
  const std::vector<DimAffine> identity(6);
  const auto run = [&](const auto& tree, int q) {
    const NnLowerBound bound(
        fx.coefficients[static_cast<size_t>(q) % fx.coefficients.size()],
        fx.config);
    const auto exact = [&](int64_t id) {
      return bound.ToTransformedPoint(
          fx.feature_points[static_cast<size_t>(id)], identity);
    };
    return tree.NearestNeighbors(bound, nullptr, 10, exact);
  };
  // Result and node-access parity, checked once outside the loop.
  {
    fx.tree.ResetNodeAccesses();
    fx.packed->ResetNodeAccesses();
    for (int q = 0; q < 32; ++q) {
      if (run(fx.tree, q) != run(*fx.packed, q)) {
        state.SkipWithError("packed/pointer kNN mismatch");
        return;
      }
    }
    if (fx.tree.node_accesses() != fx.packed->node_accesses()) {
      state.SkipWithError("packed/pointer kNN node-access mismatch");
      return;
    }
  }
  for (auto _ : state) {
    int64_t total = 0;
    for (int q = 0; q < 32; ++q) {
      total += static_cast<int64_t>(run(*fx.packed, q).size());
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_Table1NearestNeighborsPacked)->Arg(1067)->Arg(12000);

}  // namespace
}  // namespace simq

BENCHMARK_MAIN();
