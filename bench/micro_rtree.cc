// Microbenchmarks of the R*-tree substrate: insertion, range search, and
// nearest-neighbor search on the 6-d feature layout of the paper.

#include <benchmark/benchmark.h>

#include "geom/search_region.h"
#include "index/rtree.h"
#include "ts/feature.h"
#include "util/random.h"

namespace simq {
namespace {

std::vector<Point> MakePoints(int count, int dims, uint64_t seed) {
  Random rng(seed);
  std::vector<Point> points(static_cast<size_t>(count));
  for (Point& p : points) {
    p.resize(static_cast<size_t>(dims));
    for (double& v : p) {
      v = rng.UniformDouble(-10.0, 10.0);
    }
  }
  return points;
}

void BM_RTreeInsert(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  const std::vector<Point> points = MakePoints(count, 6, 1);
  for (auto _ : state) {
    RTree tree(6);
    for (size_t i = 0; i < points.size(); ++i) {
      tree.InsertPoint(points[i], static_cast<int64_t>(i));
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_RTreeInsert)->Arg(1000)->Arg(10000);

void BM_RTreeBulkLoad(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  const std::vector<Point> points = MakePoints(count, 6, 2);
  for (auto _ : state) {
    RTree tree(6);
    std::vector<std::pair<Rect, int64_t>> entries;
    entries.reserve(points.size());
    for (size_t i = 0; i < points.size(); ++i) {
      entries.emplace_back(Rect::FromPoint(points[i]),
                           static_cast<int64_t>(i));
    }
    tree.BulkLoad(std::move(entries));
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_RTreeBulkLoad)->Arg(1000)->Arg(10000);

void BM_RTreeRangeSearch(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  const std::vector<Point> points = MakePoints(count, 4, 3);
  RTree tree(4);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.InsertPoint(points[i], static_cast<int64_t>(i));
  }
  FeatureConfig config;
  config.num_coefficients = 2;
  config.space = FeatureSpace::kRectangular;
  config.include_mean_std = false;
  const SearchRegion region = SearchRegion::MakeRange(
      {Complex(0.0, 0.0), Complex(0.0, 0.0)}, 2.0, config);
  for (auto _ : state) {
    std::vector<int64_t> results;
    tree.Search(region, nullptr, &results);
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_RTreeRangeSearch)->Arg(10000)->Arg(100000);

void BM_RTreeNearestNeighbors(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  const std::vector<Point> points = MakePoints(count, 4, 4);
  RTree tree(4);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.InsertPoint(points[i], static_cast<int64_t>(i));
  }
  FeatureConfig config;
  config.num_coefficients = 2;
  config.space = FeatureSpace::kRectangular;
  config.include_mean_std = false;
  const NnLowerBound bound({Complex(1.0, 1.0), Complex(-1.0, 0.5)}, config);
  const std::vector<DimAffine> identity(4);
  auto exact = [&](int64_t id) {
    return bound.ToTransformedPoint(points[static_cast<size_t>(id)],
                                    identity);
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.NearestNeighbors(bound, nullptr, 10, exact));
  }
}
BENCHMARK(BM_RTreeNearestNeighbors)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace simq

BENCHMARK_MAIN();
