#include "bench/bench_common.h"

#include <algorithm>
#include <cstdio>

#include "core/transformation.h"
#include "ts/transforms.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/stopwatch.h"

namespace simq {
namespace bench {

std::unique_ptr<Database> BuildDatabase(const std::vector<TimeSeries>& series,
                                        FeatureConfig config) {
  auto db = std::make_unique<Database>(config);
  SIMQ_CHECK(db->CreateRelation("r").ok());
  const Status status = db->BulkLoad("r", series);
  SIMQ_CHECK(status.ok()) << status.ToString();
  return db;
}

double MedianMillis(const std::function<void()>& fn, int repetitions) {
  SIMQ_CHECK_GT(repetitions, 0);
  fn();  // warm-up
  std::vector<double> samples(static_cast<size_t>(repetitions));
  for (int rep = 0; rep < repetitions; ++rep) {
    Stopwatch watch;
    fn();
    samples[static_cast<size_t>(rep)] = watch.ElapsedMillis();
  }
  return Summarize(std::move(samples)).median;
}

std::shared_ptr<const TransformationRule> IdentityViaTransformPath() {
  return std::shared_ptr<const TransformationRule>(
      MakeMovingAverageRule(1).release());
}

double CalibrateRangeEpsilon(const Database& db, const std::string& relation,
                             int64_t probe_id,
                             const TransformationRule* rule,
                             int target_answers) {
  const Relation* rel = db.GetRelation(relation);
  SIMQ_CHECK(rel != nullptr);
  const Record& probe = rel->record(probe_id);

  std::vector<double> query_values = probe.normal_values;
  if (rule != nullptr) {
    // Distance semantics: D(T(x), q). Calibrate against q = T(probe) so the
    // probe itself is at distance 0 and answer sizes are well-defined.
    query_values = rule->Apply(query_values);
  }

  std::vector<double> distances;
  distances.reserve(static_cast<size_t>(rel->size()));
  for (const Record& record : rel->records()) {
    std::vector<double> transformed = record.normal_values;
    if (rule != nullptr) {
      transformed = rule->Apply(transformed);
    }
    distances.push_back(EuclideanDistance(transformed, query_values));
  }
  std::sort(distances.begin(), distances.end());
  const size_t index = std::min(
      distances.size(), static_cast<size_t>(std::max(1, target_answers)));
  return distances[index - 1] * (1.0 + 1e-9) + 1e-12;
}

void PrintHeader(const std::string& experiment_id, const std::string& claim) {
  std::printf("\n=== %s ===\n", experiment_id.c_str());
  std::printf("%s\n\n", claim.c_str());
}

}  // namespace bench
}  // namespace simq
