// [RM97-Fig9] Range-query time vs. number of sequences: index traversal
// with a transformation vs. without. Length fixed at 128, N = 500-12,000.
// Same identity-through-the-transformation-path device as Fig8.

#include "bench/bench_common.h"
#include "util/table_printer.h"
#include "workload/generators.h"

namespace simq {
namespace {

void Run() {
  bench::PrintHeader(
      "RM97-Fig9: time per range query varying the number of sequences",
      "claim: index traversal with transformations does not deteriorate -- "
      "identical node accesses, bounded CPU overhead");

  TablePrinter table({"num_series", "no_transform_ms", "with_transform_ms",
                      "overhead_ms", "nodes_no_t", "nodes_with_t",
                      "answers"});
  const int kLength = 128;
  const int kQueries = 20;
  const int kTargetAnswers = 10;

  for (const int count : {500, 1000, 2000, 4000, 8000, 12000}) {
    const std::vector<TimeSeries> series = workload::RandomWalkSeries(
        count, kLength, 99 + static_cast<uint64_t>(count));
    const auto db = bench::BuildDatabase(series);
    const auto identity = bench::IdentityViaTransformPath();
    // Per-probe calibration keeps every query's answer set near the target
    // regardless of where the probe sits in the data distribution.
    std::vector<double> epsilons(kQueries);
    for (int q = 0; q < kQueries; ++q) {
      epsilons[static_cast<size_t>(q)] = bench::CalibrateRangeEpsilon(
          *db, "r", (q * 37) % count, nullptr, kTargetAnswers);
    }

    int64_t answers = 0;
    int64_t nodes_plain = 0;
    int64_t nodes_transform = 0;
    auto run_queries = [&](bool with_transform) {
      int64_t local_answers = 0;
      int64_t local_nodes = 0;
      for (int q = 0; q < kQueries; ++q) {
        Query query;
        query.kind = QueryKind::kRange;
        query.relation = "r";
        query.query_series.id = (q * 37) % count;
        query.epsilon = epsilons[static_cast<size_t>(q)];
        query.strategy = ExecutionStrategy::kIndex;
        if (with_transform) {
          query.transform = identity;
        }
        const Result<QueryResult> result = db->Execute(query);
        local_answers += static_cast<int64_t>(result.value().matches.size());
        local_nodes += result.value().stats.node_accesses;
      }
      answers = local_answers / kQueries;
      (with_transform ? nodes_transform : nodes_plain) =
          local_nodes / kQueries;
    };

    const double plain_ms =
        bench::MedianMillis([&] { run_queries(false); }, 5) / kQueries;
    const double transform_ms =
        bench::MedianMillis([&] { run_queries(true); }, 5) / kQueries;

    table.AddRow({TablePrinter::FormatInt(count),
                  TablePrinter::FormatDouble(plain_ms, 4),
                  TablePrinter::FormatDouble(transform_ms, 4),
                  TablePrinter::FormatDouble(transform_ms - plain_ms, 4),
                  TablePrinter::FormatInt(nodes_plain),
                  TablePrinter::FormatInt(nodes_transform),
                  TablePrinter::FormatInt(answers)});
  }
  table.Print();
}

}  // namespace
}  // namespace simq

int main() {
  simq::Run();
  return 0;
}
