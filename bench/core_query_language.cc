// [JMM95-core-3] The query language layer: cost of parsing + planning +
// executing textual queries vs. executing pre-built ASTs, and the planner's
// index-vs-scan decision quality across query shapes.

#include "bench/bench_common.h"
#include "core/parser.h"
#include "util/table_printer.h"
#include "workload/generators.h"

namespace simq {
namespace {

void Run() {
  bench::PrintHeader(
      "JMM95-core-3: query language overhead and planner decisions",
      "claim: the language layer adds microseconds; the planner picks the "
      "index exactly when the transformation is safely indexable");

  const std::vector<TimeSeries> series =
      workload::RandomWalkSeries(2000, 128, 2024);
  const auto db = bench::BuildDatabase(series);

  const struct {
    const char* label;
    const char* text;
    bool expect_index;
  } queries[] = {
      {"identity range", "RANGE r WITHIN 2.0 OF #walk7", true},
      {"smoothed range", "RANGE r WITHIN 2.0 OF #walk7 USING mavg(20)",
       true},
      {"reversed range", "RANGE r WITHIN 2.0 OF #walk7 USING reverse", true},
      {"shift+scale (GK95)",
       "RANGE r WITHIN 2.0 OF #walk7 USING shift(5)|scale(2)", true},
      {"non-spectral rule",
       "RANGE r WITHIN 2.0 OF #walk7 USING despike(2)", false},
      {"raw mode", "RANGE r WITHIN 20 OF #walk7 MODE RAW", false},
      {"nearest", "NEAREST 5 r TO #walk7 USING mavg(20)", true},
  };

  TablePrinter table({"query", "text_ms", "ast_ms", "parse_overhead_ms",
                      "planner_choice", "as_expected"});
  for (const auto& spec : queries) {
    const Query ast = ParseQuery(spec.text).value();
    QueryResult last;
    const double text_ms = bench::MedianMillis(
        [&] { last = db->ExecuteText(spec.text).value(); }, 9);
    const double ast_ms =
        bench::MedianMillis([&] { last = db->Execute(ast).value(); }, 9);
    table.AddRow(
        {spec.label, TablePrinter::FormatDouble(text_ms, 4),
         TablePrinter::FormatDouble(ast_ms, 4),
         TablePrinter::FormatDouble(text_ms - ast_ms, 4),
         last.stats.used_index ? "index" : "scan",
         last.stats.used_index == spec.expect_index ? "yes" : "NO"});
  }
  table.Print();
}

}  // namespace
}  // namespace simq

int main() {
  simq::Run();
  return 0;
}
