// [SHARD] Sharded scatter-gather engine vs the unsharded engine on the
// Table-1 stock workloads (1067 x 128 and the 12000-series scale-up).
//
// Per shard count (1 / 2 / 4 / 8), three trajectories:
//   bulk_load   CreateRelation + BulkLoad wall time. The per-shard build
//               (derived data + STR tree per shard) runs on the thread
//               pool, so this scales with min(shards, cores).
//   churn       alternating Insert + index range query. Each insert
//               invalidates ONLY the routed shard's packed snapshot, so
//               the next query recompiles 1/S of the index instead of
//               all of it -- a win even on one core.
//   queries     batch range / kNN / index-join latency (expected roughly
//               neutral: same kernels, same exact checks, S tree roots).
//
// Self-check (reported in BENCH_shard.json and grepped by CI): range,
// kNN, and join answers at every shard count must be bit-identical to
// the 1-shard answers ("mismatch": true fails the build). Join pairs are
// compared as sorted sets -- the index join's emission order is
// tree-shape-dependent even on one shard (pointer vs packed).
//
// BENCH_shard.json records shard counts, the thread-pool width, and the
// workload dimensions so the perf trajectory stays interpretable across
// machines and PRs.
//
// Usage: shard_scaling [count] [out.json]   (count 0 = both workloads)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/database.h"
#include "core/sharded_relation.h"
#include "core/transformation.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"
#include "workload/generators.h"

namespace simq {
namespace {

const int kShardCounts[] = {1, 2, 4, 8};

struct ConfigResult {
  int shards = 1;
  double bulk_load_ms = 0.0;
  double churn_qps = 0.0;
  double range_ms = 0.0;
  double knn_ms = 0.0;
  double join_ms = 0.0;
};

ShardingOptions Sharded(int shards) {
  ShardingOptions options;
  options.num_shards = shards;
  return options;
}

std::unique_ptr<Database> Build(const std::vector<TimeSeries>& series,
                                int shards) {
  auto db = std::make_unique<Database>(FeatureConfig(), RTree::Options(),
                                       Sharded(shards));
  SIMQ_CHECK(db->CreateRelation("r").ok());
  SIMQ_CHECK(db->BulkLoad("r", series).ok());
  return db;
}

bool SameMatches(const std::vector<Match>& a, const std::vector<Match>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].distance != b[i].distance) {
      return false;
    }
  }
  return true;
}

std::vector<PairMatch> SortedPairs(std::vector<PairMatch> pairs) {
  std::sort(pairs.begin(), pairs.end(),
            [](const PairMatch& a, const PairMatch& b) {
              if (a.first != b.first) {
                return a.first < b.first;
              }
              return a.second < b.second;
            });
  return pairs;
}

bool SamePairs(const std::vector<PairMatch>& a,
               const std::vector<PairMatch>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].first != b[i].first || a[i].second != b[i].second ||
        a[i].distance != b[i].distance) {
      return false;
    }
  }
  return true;
}

struct WorkloadResult {
  std::string name;
  int count = 0;
  int length = 0;
  double epsilon = 0.0;
  std::vector<ConfigResult> configs;
  double bulk_load_speedup_4 = 0.0;
  double churn_speedup_4 = 0.0;
  bool mismatch = false;
};

WorkloadResult RunWorkload(const std::string& name, int count, int reps,
                           int churn_cycles) {
  workload::StockMarketOptions options;
  options.num_series = count;
  const std::vector<TimeSeries> market = workload::StockMarket(options);

  WorkloadResult out;
  out.name = name;
  out.count = count;
  out.length = options.length;

  const auto mavg20 = MakeMovingAverageRule(20);
  {
    const auto db = Build(market, 1);
    out.epsilon =
        bench::CalibrateRangeEpsilon(*db, "r", 0, mavg20.get(), 12);
  }
  char eps_text[64];
  std::snprintf(eps_text, sizeof(eps_text), "%.17g", out.epsilon);
  const std::string range_text = std::string("RANGE r WITHIN ") + eps_text +
                                 " OF #" + market[0].id + " USING mavg(20)";
  const std::string knn_text = "NEAREST 10 r TO #" + market[1].id;

  // Fresh series for the churn phase, unique names per cycle.
  std::vector<TimeSeries> churn_series =
      workload::RandomWalkSeries(churn_cycles, options.length, 77);
  for (int i = 0; i < churn_cycles; ++i) {
    churn_series[static_cast<size_t>(i)].id = "churn" + std::to_string(i);
  }

  std::vector<Match> base_range;
  std::vector<Match> base_knn;
  std::vector<PairMatch> base_join;
  for (const int shards : kShardCounts) {
    ConfigResult config;
    config.shards = shards;

    config.bulk_load_ms =
        bench::MedianMillis([&] { Build(market, shards); }, reps);

    const auto db = Build(market, shards);
    const Result<QueryResult> range = db->ExecuteText(range_text);
    const Result<QueryResult> knn = db->ExecuteText(knn_text);
    const Result<QueryResult> join = db->SelfJoin(
        "r", out.epsilon, mavg20.get(), JoinMethod::kIndexTransform);
    SIMQ_CHECK(range.ok() && knn.ok() && join.ok());
    config.range_ms = bench::MedianMillis(
        [&] { SIMQ_CHECK(db->ExecuteText(range_text).ok()); }, reps);
    config.knn_ms = bench::MedianMillis(
        [&] { SIMQ_CHECK(db->ExecuteText(knn_text).ok()); }, reps);
    config.join_ms = bench::MedianMillis(
        [&] {
          SIMQ_CHECK(db->SelfJoin("r", out.epsilon, mavg20.get(),
                                  JoinMethod::kIndexTransform)
                         .ok());
        },
        reps);

    // Parity vs the 1-shard engine: bit-identical answers required.
    if (shards == 1) {
      base_range = range.value().matches;
      base_knn = knn.value().matches;
      base_join = SortedPairs(join.value().pairs);
    } else {
      const bool ok = SameMatches(base_range, range.value().matches) &&
                      SameMatches(base_knn, knn.value().matches) &&
                      SamePairs(base_join, SortedPairs(join.value().pairs));
      if (!ok) {
        out.mismatch = true;
        std::fprintf(stderr, "ANSWER MISMATCH at %d shards (%s)\n", shards,
                     name.c_str());
      }
    }

    // Mutation churn: insert one fresh series, then run the index range
    // query (which recompiles the invalidated shard's packed snapshot).
    {
      const auto churn_db = Build(market, shards);
      Stopwatch watch;
      for (const TimeSeries& fresh : churn_series) {
        SIMQ_CHECK(churn_db->Insert("r", fresh).ok());
        SIMQ_CHECK(churn_db->ExecuteText(range_text).ok());
      }
      config.churn_qps =
          static_cast<double>(churn_cycles) / watch.ElapsedSeconds();
    }

    out.configs.push_back(config);
  }
  for (const ConfigResult& config : out.configs) {
    if (config.shards == 4) {
      out.bulk_load_speedup_4 =
          out.configs.front().bulk_load_ms / config.bulk_load_ms;
      out.churn_speedup_4 = config.churn_qps / out.configs.front().churn_qps;
    }
  }
  return out;
}

void PrintWorkload(const WorkloadResult& result) {
  std::printf("\n[%s] %d x %d, epsilon=%.4f\n", result.name.c_str(),
              result.count, result.length, result.epsilon);
  TablePrinter table(
      {"shards", "bulk_ms", "churn_qps", "range_ms", "knn_ms", "join_ms"});
  for (const ConfigResult& config : result.configs) {
    table.AddRow({std::to_string(config.shards),
                  TablePrinter::FormatDouble(config.bulk_load_ms, 2),
                  TablePrinter::FormatDouble(config.churn_qps, 1),
                  TablePrinter::FormatDouble(config.range_ms, 3),
                  TablePrinter::FormatDouble(config.knn_ms, 3),
                  TablePrinter::FormatDouble(config.join_ms, 2)});
  }
  table.Print();
  std::printf(
      "bulk_load x%.2f, churn x%.2f at 4 shards; answers %s\n",
      result.bulk_load_speedup_4, result.churn_speedup_4,
      result.mismatch ? "MISMATCH" : "identical");
}

void Run(int only_count, const std::string& out_path) {
  bench::PrintHeader(
      "SHARD: scatter-gather engine scaling across shard counts",
      "claims: parallel per-shard bulk load and churn (insert+query) "
      "throughput improve with shards; all answers bit-identical to the "
      "unsharded engine");

  std::vector<WorkloadResult> results;
  if (only_count == 0 || only_count == 1067) {
    results.push_back(RunWorkload("stock_1067x128", 1067, 5, 120));
  }
  if (only_count == 0 || only_count == 12000) {
    results.push_back(RunWorkload("stock_12000x128", 12000, 3, 40));
  }
  if (results.empty()) {
    results.push_back(RunWorkload(
        "stock_" + std::to_string(only_count) + "x128", only_count, 3, 40));
  }

  bool mismatch = false;
  for (const WorkloadResult& result : results) {
    PrintWorkload(result);
    mismatch = mismatch || result.mismatch;
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  SIMQ_CHECK(out != nullptr) << "cannot write " << out_path;
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"shard_scaling\",\n"
               "  \"threads\": %d,\n"
               "  \"workloads\": [\n",
               ThreadPool::Global().num_threads());
  for (size_t w = 0; w < results.size(); ++w) {
    const WorkloadResult& result = results[w];
    std::fprintf(out,
                 "    {\"workload\": \"%s\", \"count\": %d, \"length\": %d, "
                 "\"epsilon\": %.17g,\n     \"configs\": [\n",
                 result.name.c_str(), result.count, result.length,
                 result.epsilon);
    for (size_t c = 0; c < result.configs.size(); ++c) {
      const ConfigResult& config = result.configs[c];
      std::fprintf(
          out,
          "      {\"shards\": %d, \"bulk_load_ms\": %.3f, "
          "\"churn_qps\": %.2f, \"range_ms\": %.4f, \"knn_ms\": %.4f, "
          "\"join_ms\": %.3f}%s\n",
          config.shards, config.bulk_load_ms, config.churn_qps,
          config.range_ms, config.knn_ms, config.join_ms,
          c + 1 < result.configs.size() ? "," : "");
    }
    std::fprintf(out,
                 "     ],\n"
                 "     \"bulk_load_speedup_4\": %.3f,\n"
                 "     \"churn_speedup_4\": %.3f,\n"
                 "     \"mismatch\": %s}%s\n",
                 result.bulk_load_speedup_4, result.churn_speedup_4,
                 result.mismatch ? "true" : "false",
                 w + 1 < results.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"mismatch\": %s\n"
               "}\n",
               mismatch ? "true" : "false");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());
  if (mismatch) {
    std::exit(1);
  }
}

}  // namespace
}  // namespace simq

int main(int argc, char** argv) {
  const int count = argc > 1 ? std::atoi(argv[1]) : 0;
  const std::string out = argc > 2 ? argv[2] : "BENCH_shard.json";
  simq::Run(count, out);
  return 0;
}
