// [JMM95-core-1] Cost-bounded reducibility for editing-rule systems: the
// polynomial special case of the framework. Measures the weighted edit
// distance and DTW dynamic programs across sequence lengths; the claim is
// the textbook O(n*m) scaling (time grows ~4x per doubling), with the
// Sakoe-Chiba band giving the expected linear-in-band behaviour.

#include "bench/bench_common.h"
#include "core/edit_distance.h"
#include "util/table_printer.h"
#include "workload/generators.h"

namespace simq {
namespace {

void Run() {
  bench::PrintHeader(
      "JMM95-core-1: reducibility via dynamic programming",
      "claim: O(n*m) scaling for edit distance and DTW; banded DTW scales "
      "with the band width");

  TablePrinter table({"length", "edit_ms", "edit_ratio", "dtw_ms",
                      "dtw_ratio", "dtw_band16_ms"});
  double previous_edit = 0.0;
  double previous_dtw = 0.0;
  for (const int length : {64, 128, 256, 512, 1024}) {
    const std::vector<TimeSeries> series = workload::RandomWalkSeries(
        2, length, 5 + static_cast<uint64_t>(length));
    const std::vector<double>& a = series[0].values;
    const std::vector<double>& b = series[1].values;

    const EditCosts costs;
    volatile double sink = 0.0;
    const double edit_ms = bench::MedianMillis(
        [&] { sink = WeightedEditDistance(a, b, costs); }, 5);
    const double dtw_ms =
        bench::MedianMillis([&] { sink = DtwDistance(a, b); }, 5);
    const double banded_ms =
        bench::MedianMillis([&] { sink = DtwDistance(a, b, 16); }, 5);
    (void)sink;

    table.AddRow(
        {TablePrinter::FormatInt(length),
         TablePrinter::FormatDouble(edit_ms, 4),
         previous_edit > 0.0
             ? TablePrinter::FormatDouble(edit_ms / previous_edit, 2)
             : "-",
         TablePrinter::FormatDouble(dtw_ms, 4),
         previous_dtw > 0.0
             ? TablePrinter::FormatDouble(dtw_ms / previous_dtw, 2)
             : "-",
         TablePrinter::FormatDouble(banded_ms, 4)});
    previous_edit = edit_ms;
    previous_dtw = dtw_ms;
  }
  table.Print();
}

}  // namespace
}  // namespace simq

int main() {
  simq::Run();
  return 0;
}
