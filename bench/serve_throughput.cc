// [SERVE] Closed-loop multi-client throughput of the query service on the
// Table-1 stock workload (1067 x 128 series, T_mavg20 range queries with
// literal query series -- what a network client would actually ship).
//
// Three modes over the same query set:
//   cold_parse       every request is parse -> plan -> execute
//   prepared         Prepare once per client, Execute(statement) per
//                    request (result cache off, so the engine runs
//                    every time)
//   prepared_cached  prepared execution with the result cache on
//
// Self-checks (reported in BENCH_serve.json and grepped by CI):
//   * all three modes return bit-identical answer sets per query
//     ("mismatch": true fails the build)
//   * claims: prepared beats cold parse-per-query; cached beats prepared.
//     Cloud runners are too noisy for hard thresholds, so the speedups are
//     recorded, not asserted.
//
// Usage: serve_throughput [clients] [queries_per_mode] [probes] [out.json]

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/sharded_relation.h"
#include "core/transformation.h"
#include "service/query_service.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"
#include "workload/generators.h"

namespace simq {
namespace {

struct ModeResult {
  std::string name;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double total_s = 0.0;
  // Per-probe answers for the cross-mode identity check.
  std::vector<std::vector<Match>> answers;
};

// Round-trip-exact rendering of the probe series into query text: %.17g
// guarantees strtod gives back the same double, so the cold parse path
// computes on bit-identical inputs.
std::string LiteralQueryText(const std::vector<double>& values,
                             double epsilon) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", epsilon);
  std::string text = std::string("RANGE r WITHIN ") + buffer + " OF [";
  for (size_t i = 0; i < values.size(); ++i) {
    std::snprintf(buffer, sizeof(buffer), "%.17g", values[i]);
    if (i > 0) {
      text += ",";
    }
    text += buffer;
  }
  text += "] USING mavg(20)";
  return text;
}

bool SameMatches(const std::vector<Match>& a, const std::vector<Match>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].distance != b[i].distance) {
      return false;
    }
  }
  return true;
}

// Runs one mode: `clients` threads executing `queries` requests total,
// round-robin over the probe texts. `use_prepared` switches the per-client
// request from ExecuteText to ExecutePrepared.
ModeResult RunMode(const std::string& name, QueryService* service,
                   const std::vector<std::string>& texts, int clients,
                   int queries, bool use_prepared) {
  ModeResult mode;
  mode.name = name;
  mode.answers.assign(texts.size(), {});
  std::vector<std::vector<double>> client_latencies(
      static_cast<size_t>(clients));
  std::atomic<bool> failed{false};
  std::mutex answers_mutex;  // clients of one mode share the answer table

  Stopwatch wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto session = service->OpenSession();
      std::vector<int64_t> statements;
      if (use_prepared) {
        for (const std::string& text : texts) {
          const Result<int64_t> statement = session->Prepare(text);
          if (!statement.ok()) {
            failed = true;
            return;
          }
          statements.push_back(statement.value());
        }
      }
      std::vector<double>& latencies =
          client_latencies[static_cast<size_t>(c)];
      const int quota = queries / clients + (c < queries % clients ? 1 : 0);
      for (int i = 0; i < quota; ++i) {
        const size_t which = static_cast<size_t>(
            (i * clients + c) % static_cast<int>(texts.size()));
        Stopwatch watch;
        const Result<ServiceResult> result =
            use_prepared ? session->ExecutePrepared(statements[which])
                         : session->Execute(texts[which]);
        latencies.push_back(watch.ElapsedMillis());
        if (!result.ok()) {
          failed = true;
          return;
        }
        // Record (and cross-check within the mode) the probe's answer.
        {
          std::lock_guard<std::mutex> lock(answers_mutex);
          std::vector<Match>& expected = mode.answers[which];
          if (expected.empty()) {
            expected = result.value().result.matches;
          } else if (!SameMatches(expected, result.value().result.matches)) {
            failed = true;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  mode.total_s = wall.ElapsedSeconds();
  if (failed.load()) {
    std::fprintf(stderr, "mode %s FAILED\n", name.c_str());
    std::exit(1);
  }
  std::vector<double> all;
  for (const std::vector<double>& samples : client_latencies) {
    all.insert(all.end(), samples.begin(), samples.end());
  }
  mode.qps = static_cast<double>(queries) / mode.total_s;
  mode.p50_ms = Percentile(all, 50.0);
  mode.p95_ms = Percentile(all, 95.0);
  return mode;
}

void Run(int clients, int queries, int probes, const std::string& out_path) {
  bench::PrintHeader(
      "SERVE: multi-client service throughput (1067 x 128 stock relation, "
      "T_mavg20 literal range queries)",
      "claims: prepared beats cold parse-per-query; cached beats prepared; "
      "all modes return bit-identical answers");

  const std::vector<TimeSeries> market =
      workload::StockMarket(workload::StockMarketOptions());

  // Calibrate epsilon once for a ~12-answer operating point, as in the
  // Table-1 reproduction.
  double epsilon = 0.0;
  {
    const auto db = bench::BuildDatabase(market);
    const auto mavg20 = MakeMovingAverageRule(20);
    epsilon =
        bench::CalibrateRangeEpsilon(*db, "r", 0, mavg20.get(), 12);
  }

  // Query texts: `probes` distinct stock series shipped as literals.
  std::vector<std::string> texts;
  texts.reserve(static_cast<size_t>(probes));
  for (int p = 0; p < probes; ++p) {
    const size_t index =
        static_cast<size_t>(p) * market.size() / static_cast<size_t>(probes);
    texts.push_back(LiteralQueryText(market[index].values, epsilon));
  }

  // Two services over identically generated data: cold and prepared run
  // uncached (the engine must execute), the cached mode gets the cache.
  // SIMQ_SHARDS shards the relation so the serve trajectory can be read
  // against the shard bench; the shard count and thread budget land in
  // the JSON metadata either way.
  const ShardingOptions sharding = ShardingOptions::FromEnv();
  ServiceOptions uncached;
  uncached.enable_result_cache = false;
  auto BuildService = [&](const ServiceOptions& options) {
    Database db(FeatureConfig(), RTree::Options(), sharding);
    SIMQ_CHECK(db.CreateRelation("r").ok());
    SIMQ_CHECK(db.BulkLoad("r", market).ok());
    return std::make_unique<QueryService>(std::move(db), options);
  };
  auto uncached_service = BuildService(uncached);
  auto cached_service = BuildService(ServiceOptions());

  std::vector<ModeResult> modes;
  modes.push_back(RunMode("cold_parse", uncached_service.get(), texts,
                          clients, queries, /*use_prepared=*/false));
  modes.push_back(RunMode("prepared", uncached_service.get(), texts, clients,
                          queries, /*use_prepared=*/true));
  modes.push_back(RunMode("prepared_cached", cached_service.get(), texts,
                          clients, queries, /*use_prepared=*/true));

  // Cross-mode identity: every probe's answer set must be bit-identical in
  // all three modes.
  bool mismatch = false;
  for (size_t which = 0; which < texts.size(); ++which) {
    for (size_t m = 1; m < modes.size(); ++m) {
      if (!SameMatches(modes[0].answers[which], modes[m].answers[which])) {
        mismatch = true;
        std::fprintf(stderr, "ANSWER MISMATCH: probe %zu, mode %s\n", which,
                     modes[m].name.c_str());
      }
    }
  }

  TablePrinter table({"mode", "qps", "p50_ms", "p95_ms", "total_s"});
  for (const ModeResult& mode : modes) {
    table.AddRow({mode.name, TablePrinter::FormatDouble(mode.qps, 0),
                  TablePrinter::FormatDouble(mode.p50_ms, 3),
                  TablePrinter::FormatDouble(mode.p95_ms, 3),
                  TablePrinter::FormatDouble(mode.total_s, 2)});
  }
  table.Print();
  const double prepared_speedup = modes[1].qps / modes[0].qps;
  const double cached_speedup = modes[2].qps / modes[0].qps;
  const ServiceStats cached_stats = cached_service->stats();
  const int64_t lookups =
      cached_stats.cache.hits + cached_stats.cache.misses;
  std::printf(
      "\nprepared/cold = %.2fx   cached/cold = %.2fx   cache hit rate = "
      "%.1f%%   answers %s\n",
      prepared_speedup, cached_speedup,
      lookups > 0 ? 100.0 * static_cast<double>(cached_stats.cache.hits) /
                        static_cast<double>(lookups)
                  : 0.0,
      mismatch ? "MISMATCH" : "identical");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  SIMQ_CHECK(out != nullptr) << "cannot write " << out_path;
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"serve_throughput\",\n"
               "  \"workload\": \"stock_1067x128_mavg20_range\",\n"
               "  \"clients\": %d,\n"
               "  \"queries_per_mode\": %d,\n"
               "  \"probes\": %d,\n"
               "  \"num_shards\": %d,\n"
               "  \"pool_threads\": %d,\n"
               "  \"max_concurrent_queries\": %d,\n"
               "  \"epsilon\": %.17g,\n"
               "  \"modes\": [\n",
               clients, queries, probes, sharding.num_shards,
               ThreadPool::Global().num_threads(),
               uncached.max_concurrent_queries > 0
                   ? uncached.max_concurrent_queries
                   : ThreadPool::Global().num_threads(),
               epsilon);
  for (size_t m = 0; m < modes.size(); ++m) {
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"qps\": %.1f, \"p50_ms\": %.4f, "
                 "\"p95_ms\": %.4f, \"total_s\": %.3f}%s\n",
                 modes[m].name.c_str(), modes[m].qps, modes[m].p50_ms,
                 modes[m].p95_ms, modes[m].total_s,
                 m + 1 < modes.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"prepared_speedup\": %.3f,\n"
               "  \"cached_speedup\": %.3f,\n"
               "  \"mismatch\": %s\n"
               "}\n",
               prepared_speedup, cached_speedup,
               mismatch ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  if (mismatch) {
    std::exit(1);
  }
}

}  // namespace
}  // namespace simq

int main(int argc, char** argv) {
  const int clients = argc > 1 ? std::atoi(argv[1]) : 4;
  const int queries = argc > 2 ? std::atoi(argv[2]) : 2000;
  const int probes = argc > 3 ? std::atoi(argv[3]) : 24;
  const std::string out = argc > 4 ? argv[4] : "BENCH_serve.json";
  simq::Run(clients, queries, probes, out);
  return 0;
}
