// [RM97-Fig11] Index-based similarity search vs. early-abandoning
// sequential scan, varying the number of sequences (length 128). The claim
// is that the index advantage grows with the relation size.

#include "bench/bench_common.h"
#include "util/table_printer.h"
#include "workload/generators.h"

namespace simq {
namespace {

void Run() {
  bench::PrintHeader(
      "RM97-Fig11: index vs sequential scan, varying the number of "
      "sequences",
      "claim: the index advantage grows with the number of sequences");

  TablePrinter table({"num_series", "index_ms", "ptr_index_ms", "scan_ms",
                      "speedup", "engine_x", "index_candidates", "answers",
                      "index_node_io", "scan_page_io", "io_advantage"});
  const int kLength = 128;
  const int kQueries = 20;
  const double kEpsilon = 2.0;

  for (const int count : {500, 1000, 2000, 4000, 8000, 12000}) {
    const std::vector<TimeSeries> series = workload::RandomWalkSeries(
        count, kLength, 1234 + static_cast<uint64_t>(count));
    const auto db = bench::BuildDatabase(series);
    const auto identity = bench::IdentityViaTransformPath();
    // Fixed, user-scale threshold: the paper's similarity queries operate
    // in the near-exact-match regime ("competitive to ... exact match
    // queries"); iid random walks are near-equidistant in high dimension,
    // so answer-set-targeted thresholds would defeat any filter (the
    // crossover regime is studied systematically in fig12).

    int64_t candidates = 0;
    int64_t answers = 0;
    int64_t index_nodes = 0;
    auto run_queries = [&](ExecutionStrategy strategy) {
      int64_t local_candidates = 0;
      int64_t local_answers = 0;
      int64_t local_nodes = 0;
      for (int q = 0; q < kQueries; ++q) {
        Query query;
        query.kind = QueryKind::kRange;
        query.relation = "r";
        query.query_series.id = (q * 53) % count;
        query.epsilon = kEpsilon;
        query.strategy = strategy;
        query.transform = identity;
        const Result<QueryResult> result = db->Execute(query);
        local_candidates += result.value().stats.candidates;
        local_nodes += result.value().stats.node_accesses;
        local_answers += static_cast<int64_t>(result.value().matches.size());
      }
      if (strategy == ExecutionStrategy::kIndex) {
        candidates = local_candidates / kQueries;
        index_nodes = local_nodes / kQueries;
      }
      answers = local_answers / kQueries;
    };

    // `index_ms` is the packed engine (the default); `ptr_index_ms` reruns
    // the identical queries on the pointer tree. Answer sets and node
    // accesses are engine-invariant, so the other columns apply to both.
    const double index_ms = bench::MedianMillis(
        [&] { run_queries(ExecutionStrategy::kIndex); }, 5) / kQueries;
    db->set_index_engine(IndexEngine::kPointer);
    const double ptr_index_ms = bench::MedianMillis(
        [&] { run_queries(ExecutionStrategy::kIndex); }, 5) / kQueries;
    db->set_index_engine(IndexEngine::kPacked);
    const double scan_ms = bench::MedianMillis(
        [&] { run_queries(ExecutionStrategy::kScan); }, 5) / kQueries;

    // 1995 economics: a sequential scan reads the whole coefficient
    // relation (16 bytes per complex coefficient, 8 KiB pages), while the
    // index reads one page per node it touches. In-memory wall clock hides
    // this; the I/O columns make the paper's comparison visible.
    const int64_t scan_pages =
        (static_cast<int64_t>(count) * kLength * 16 + 8191) / 8192;
    table.AddRow({TablePrinter::FormatInt(count),
                  TablePrinter::FormatDouble(index_ms, 4),
                  TablePrinter::FormatDouble(ptr_index_ms, 4),
                  TablePrinter::FormatDouble(scan_ms, 4),
                  TablePrinter::FormatDouble(scan_ms / index_ms, 2),
                  TablePrinter::FormatDouble(ptr_index_ms / index_ms, 2),
                  TablePrinter::FormatInt(candidates),
                  TablePrinter::FormatInt(answers),
                  TablePrinter::FormatInt(index_nodes),
                  TablePrinter::FormatInt(scan_pages),
                  TablePrinter::FormatDouble(
                      static_cast<double>(scan_pages) /
                          static_cast<double>(std::max<int64_t>(
                              1, index_nodes)),
                      1)});
  }
  table.Print();
}

}  // namespace
}  // namespace simq

int main() {
  simq::Run();
  return 0;
}
