#!/usr/bin/env python3
"""Smoke-checks the metrics scrape surface end to end.

Starts the example server with --metrics-port 0, parses the "metrics on
port N" line it prints, scrapes the endpoint over HTTP, and validates:

  * the response is well-formed Prometheus text exposition (every sample
    line parses, every sample's base metric carries a # TYPE declaration
    of a known type);
  * every metric in the service catalog (docs/OBSERVABILITY.md) is
    present, including the histogram's _bucket/_sum/_count series;
  * counter and gauge values are finite numbers;
  * docs and binary agree in both directions: every metric the server
    exports is named in docs/OBSERVABILITY.md, and every `simq_*` name
    the doc mentions is exported by the server (doc drift fails CI).

Usage: check_metrics.py [path/to/example_simq_server]
Exits nonzero with a message on the first violation (CI runs this).
"""

import os
import re
import signal
import subprocess
import sys
import time
import urllib.request

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# The service metric catalog (docs/OBSERVABILITY.md). Histograms expand
# to _bucket/_sum/_count series in the exposition.
REQUIRED_COUNTERS = [
    "simq_queries_total",
    "simq_prepared_executions_total",
    "simq_cold_parses_total",
    "simq_mutations_total",
    "simq_admission_waits_total",
    "simq_sessions_opened_total",
    "simq_timeouts_total",
    "simq_cancellations_total",
    "simq_overloaded_total",
    "simq_degraded_queries_total",
    "simq_traced_queries_total",
    "simq_wal_appends_total",
    "simq_wal_failures_total",
    "simq_checkpoints_total",
    "simq_recompactions_total",
    "simq_slow_query_log_lines_total",
    "simq_watchdog_stalls_total",
    "simq_net_connections_accepted_total",
    "simq_net_connections_shed_total",
    "simq_net_connections_timed_out_total",
    "simq_net_requests_shed_total",
    "simq_net_bytes_in_total",
    "simq_net_bytes_out_total",
]
REQUIRED_GAUGES = [
    "simq_active_sessions",
    "simq_net_connections_active",
    "simq_cache_hits",
    "simq_cache_misses",
    "simq_cache_insertions",
    "simq_cache_invalidated_entries",
    "simq_cache_evictions",
    "simq_cache_bytes",
    "simq_delta_rows",
    "simq_delta_tombstones",
    "simq_statements_tracked",
]
REQUIRED_HISTOGRAMS = [
    "simq_query_latency_ms",
    "simq_recompaction_duration_ms",
]

SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})?\s+(\S+)$")
TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (\w+)$")

DOC_PATH = os.path.join(REPO, "docs", "OBSERVABILITY.md")
# A metric name in the doc: simq_* not embedded in a longer identifier
# (so `example_simq_server` does not count as `simq_server`).
DOC_NAME_RE = re.compile(r"(?<![A-Za-z0-9_])simq_[a-z0-9_]+")


def fail(message):
    print("check_metrics: FAIL: " + message)
    sys.exit(1)


def base_name(sample_name, histogram_names):
    """Maps a histogram's derived series back to its declared name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            stem = sample_name[: -len(suffix)]
            if stem in histogram_names:
                return stem
    return sample_name


def validate_exposition(text):
    declared = {}  # name -> type
    samples = {}  # name -> list of values
    histogram_names = set()
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            match = TYPE_RE.match(line)
            if match is None:
                if line.startswith("# TYPE"):
                    fail("malformed TYPE comment on line %d: %r"
                         % (line_number, line))
                continue  # other comments (e.g. HELP) are fine
            name, kind = match.groups()
            if kind not in ("counter", "gauge", "histogram"):
                fail("unknown metric type %r on line %d" % (kind, line_number))
            if name in declared:
                fail("duplicate TYPE declaration for %s" % name)
            declared[name] = kind
            if kind == "histogram":
                histogram_names.add(name)
            continue
        match = SAMPLE_RE.match(line)
        if match is None:
            fail("unparseable sample on line %d: %r" % (line_number, line))
        name, _labels, value = match.groups()
        stem = base_name(name, histogram_names)
        if stem not in declared:
            fail("sample %s (line %d) has no preceding # TYPE declaration"
                 % (name, line_number))
        try:
            parsed = float(value)
        except ValueError:
            fail("sample %s has non-numeric value %r" % (name, value))
        if parsed != parsed:  # NaN never belongs in a scrape
            fail("sample %s is NaN" % name)
        samples.setdefault(stem, []).append(parsed)

    for name in REQUIRED_COUNTERS:
        if declared.get(name) != "counter":
            fail("missing or mistyped counter %s" % name)
        if not samples.get(name):
            fail("counter %s declared but has no sample" % name)
    for name in REQUIRED_GAUGES:
        if declared.get(name) != "gauge":
            fail("missing or mistyped gauge %s" % name)
        if not samples.get(name):
            fail("gauge %s declared but has no sample" % name)
    for name in REQUIRED_HISTOGRAMS:
        if declared.get(name) != "histogram":
            fail("missing or mistyped histogram %s" % name)
        series = samples.get(name, [])
        # At minimum the +Inf bucket, _sum, and _count.
        if len(series) < 3:
            fail("histogram %s is missing its derived series" % name)
    return declared


def check_doc_drift(declared):
    """Diffs the doc's metric names against the live scrape, both ways."""
    if not os.path.exists(DOC_PATH):
        fail("metric catalog doc not found: %s" % DOC_PATH)
    with open(DOC_PATH) as doc_file:
        documented = set(DOC_NAME_RE.findall(doc_file.read()))
    live = set(declared)
    undocumented = sorted(n for n in live if n.startswith("simq_")
                          and n not in documented)
    if undocumented:
        fail("exported but absent from docs/OBSERVABILITY.md: %s"
             % ", ".join(undocumented))
    phantom = sorted(n for n in documented if n not in live)
    if phantom:
        fail("named in docs/OBSERVABILITY.md but not exported: %s"
             % ", ".join(phantom))
    return len(documented)


def main():
    server = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
        REPO, "build", "example_simq_server")
    if not os.path.exists(server):
        fail("server binary not found: %s" % server)

    process = subprocess.Popen(
        [server, "--port", "0", "--metrics-port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    port = None
    try:
        deadline = time.time() + 30.0
        while time.time() < deadline:
            line = process.stdout.readline()
            if not line:
                fail("server exited before printing its metrics port")
            match = re.search(r"metrics on port (\d+)", line)
            if match:
                port = int(match.group(1))
                break
        if port is None:
            fail("timed out waiting for the metrics port line")

        body = urllib.request.urlopen(
            "http://127.0.0.1:%d/metrics" % port, timeout=10).read().decode()
        declared = validate_exposition(body)
        documented = check_doc_drift(declared)
    finally:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=15)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()

    print("check_metrics: ok -- %d metrics declared, %d documented, "
          "catalog complete, no doc drift, exposition well-formed"
          % (len(declared), documented))


if __name__ == "__main__":
    main()
