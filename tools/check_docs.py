#!/usr/bin/env python3
"""Documentation lint for CI (the `docs` job in .github/workflows/ci.yml).

Two checks, stdlib only:

1. Markdown link check: every relative link target in the repo's *.md
   files (root, docs/, examples/) must exist. External (http/https/
   mailto) links and pure #anchors are skipped; a `#fragment` suffix on
   a relative link is stripped before the existence check.

2. Header doc check: every public header under src/service/, src/index/,
   src/filter/, src/net/, and src/core/ must open with a file-level doc
   comment
   (`///`) -- the convention that carries the thread-safety contracts
   (see DESIGN.md).

Exits nonzero with one line per violation.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# [text](target) -- excluding images is unnecessary; image targets must
# exist too. Inline code spans are stripped first so `[i](x)`-looking
# code does not trip the matcher.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_SPAN_RE = re.compile(r"`[^`]*`")
FENCE_RE = re.compile(r"^\s*(```|~~~)")

DOC_HEADER_DIRS = [
    "src/service", "src/index", "src/filter", "src/net", "src/core",
    "src/obs"
]


def markdown_files():
    roots = [REPO, os.path.join(REPO, "docs"), os.path.join(REPO, "examples")]
    seen = set()
    for root in roots:
        if not os.path.isdir(root):
            continue
        for name in sorted(os.listdir(root)):
            path = os.path.join(root, name)
            if name.endswith(".md") and os.path.isfile(path):
                seen.add(path)
    return sorted(seen)


def check_links():
    errors = []
    for path in markdown_files():
        rel = os.path.relpath(path, REPO)
        in_fence = False
        with open(path, encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, 1):
                if FENCE_RE.match(line):
                    in_fence = not in_fence
                    continue
                if in_fence:
                    continue
                for target in LINK_RE.findall(CODE_SPAN_RE.sub("", line)):
                    if target.startswith(("http://", "https://", "mailto:", "#")):
                        continue
                    clean = target.split("#", 1)[0]
                    if not clean:
                        continue
                    resolved = os.path.normpath(
                        os.path.join(os.path.dirname(path), clean))
                    if not os.path.exists(resolved):
                        errors.append(
                            f"{rel}:{lineno}: broken link '{target}'")
    return errors


def check_header_docs():
    errors = []
    for directory in DOC_HEADER_DIRS:
        full = os.path.join(REPO, directory)
        for name in sorted(os.listdir(full)):
            if not name.endswith(".h"):
                continue
            path = os.path.join(full, name)
            rel = os.path.relpath(path, REPO)
            with open(path, encoding="utf-8") as handle:
                for line in handle:
                    stripped = line.strip()
                    if not stripped:
                        continue
                    if not stripped.startswith("///"):
                        errors.append(
                            f"{rel}: missing file-level doc comment "
                            "(first non-blank line must start with ///)")
                    break
                else:
                    errors.append(f"{rel}: empty header")
    return errors


def main():
    errors = check_links() + check_header_docs()
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"check_docs: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    print("check_docs: all markdown links resolve and all public headers "
          "in " + " + ".join(DOC_HEADER_DIRS) +
          " carry file-level doc comments")
    return 0


if __name__ == "__main__":
    sys.exit(main())
