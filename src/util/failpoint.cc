#include "util/failpoint.h"

#include <csignal>
#include <cstdlib>

#include "util/logging.h"

namespace simq {
namespace {

// Parses "[kill:](off|always|one-in-<N>|after-<K>)" into a Trigger.
Status ParseTrigger(const std::string& text, Failpoints::Trigger* out) {
  Failpoints::Trigger trigger;
  std::string body = text;
  const std::string kKill = "kill:";
  if (body.rfind(kKill, 0) == 0) {
    trigger.kill = true;
    body = body.substr(kKill.size());
  }
  auto parse_count = [](const std::string& digits, uint64_t* value) {
    if (digits.empty()) return false;
    uint64_t v = 0;
    for (char c : digits) {
      if (c < '0' || c > '9') return false;
      v = v * 10 + static_cast<uint64_t>(c - '0');
    }
    if (v == 0) return false;
    *value = v;
    return true;
  };
  if (body == "off") {
    trigger.kind = Failpoints::TriggerKind::kOff;
  } else if (body == "always") {
    trigger.kind = Failpoints::TriggerKind::kAlways;
  } else if (body.rfind("one-in-", 0) == 0) {
    trigger.kind = Failpoints::TriggerKind::kOneIn;
    if (!parse_count(body.substr(7), &trigger.param)) {
      return Status::InvalidArgument("bad one-in-N trigger: " + text);
    }
  } else if (body.rfind("after-", 0) == 0) {
    trigger.kind = Failpoints::TriggerKind::kAfter;
    if (!parse_count(body.substr(6), &trigger.param)) {
      return Status::InvalidArgument("bad after-K trigger: " + text);
    }
  } else {
    return Status::InvalidArgument("unknown failpoint trigger: " + text);
  }
  *out = trigger;
  return Status::Ok();
}

}  // namespace

Failpoints::Failpoints() {
  const char* spec = std::getenv("SIMQ_FAILPOINTS");
  if (spec != nullptr && spec[0] != '\0') {
    Status status = ConfigureFromSpec(spec);
    SIMQ_CHECK(status.ok()) << "invalid SIMQ_FAILPOINTS: "
                            << status.ToString();
  }
}

Failpoints& Failpoints::Global() {
  static Failpoints* instance = new Failpoints();
  return *instance;
}

void Failpoints::Configure(const std::string& name, Trigger trigger) {
  std::lock_guard<std::mutex> lock(mu_);
  State& state = points_[name];
  const bool was_armed = state.trigger.kind != TriggerKind::kOff;
  const bool now_armed = trigger.kind != TriggerKind::kOff;
  state.trigger = trigger;
  state.hit_count = 0;
  if (was_armed != now_armed) {
    armed_.fetch_add(now_armed ? 1 : uint64_t(-1),
                     std::memory_order_relaxed);
  }
}

Status Failpoints::ConfigureFromSpec(const std::string& spec) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string clause = spec.substr(pos, end - pos);
    pos = end + 1;
    if (clause.empty()) continue;
    const size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("bad failpoint clause: " + clause);
    }
    Trigger trigger;
    SIMQ_RETURN_IF_ERROR(ParseTrigger(clause.substr(eq + 1), &trigger));
    Configure(clause.substr(0, eq), trigger);
  }
  return Status::Ok();
}

void Failpoints::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  armed_.store(0, std::memory_order_relaxed);
}

uint64_t Failpoints::hits(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.hit_count;
}

bool Failpoints::Evaluate(const char* name) {
  if (armed_.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  bool kill = false;
  bool fired = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = points_.find(name);
    if (it == points_.end() ||
        it->second.trigger.kind == TriggerKind::kOff) {
      return false;
    }
    State& state = it->second;
    state.hit_count++;
    switch (state.trigger.kind) {
      case TriggerKind::kOff:
        break;
      case TriggerKind::kAlways:
        fired = true;
        break;
      case TriggerKind::kOneIn:
        fired = (state.hit_count % state.trigger.param) == 0;
        break;
      case TriggerKind::kAfter:
        fired = state.hit_count > state.trigger.param;
        break;
    }
    kill = fired && state.trigger.kill;
  }
  if (kill) {
    // The crash harness depends on dying exactly here, before the IO the
    // failpoint guards. SIGKILL cannot be caught, so no cleanup runs.
    raise(SIGKILL);
  }
  return fired;
}

}  // namespace simq
