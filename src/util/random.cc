#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace simq {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotateLeft(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Random::Random(uint64_t seed) {
  // Expand the seed through SplitMix64 as recommended by the xoshiro authors;
  // this guarantees a non-zero state even for seed 0.
  uint64_t sm = seed;
  for (uint64_t& word : state_) {
    word = SplitMix64(&sm);
  }
}

uint64_t Random::NextUint64() {
  const uint64_t result = RotateLeft(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotateLeft(state_[3], 45);
  return result;
}

double Random::NextDouble() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Random::UniformDouble(double lo, double hi) {
  SIMQ_DCHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

int64_t Random::UniformInt(int64_t lo, int64_t hi) {
  SIMQ_CHECK_LE(lo, hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {
    // [INT64_MIN, INT64_MAX]: the full range.
    return static_cast<int64_t>(NextUint64());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t draw = NextUint64();
  while (draw >= limit) {
    draw = NextUint64();
  }
  return lo + static_cast<int64_t>(draw % range);
}

double Random::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller transform; produces two deviates per two uniforms.
  double u1 = NextDouble();
  while (u1 <= 0.0) {
    u1 = NextDouble();
  }
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

bool Random::Bernoulli(double p) { return NextDouble() < p; }

}  // namespace simq
