// Descriptive statistics and distance primitives shared across simq.
//
// Distances are provided for both real and complex vectors because the
// library computes them interchangeably in the time domain and in the
// frequency domain (Parseval's relation, see ts/dft.h).

#ifndef SIMQ_UTIL_STATS_H_
#define SIMQ_UTIL_STATS_H_

#include <complex>
#include <vector>

namespace simq {

// Arithmetic mean. Returns 0 for an empty vector.
double Mean(const std::vector<double>& values);

// Population standard deviation (divide by n). The Goldin-Kanellakis normal
// form used throughout the library is defined with the population deviation;
// see ts/transforms.h.
double StdDev(const std::vector<double>& values);

// Euclidean (L2) distance. Vectors must have equal length.
double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b);
double EuclideanDistance(const std::vector<std::complex<double>>& a,
                         const std::vector<std::complex<double>>& b);

// Early-abandoning Euclidean distance: accumulates squared differences and
// returns +infinity as soon as the partial sum exceeds threshold^2. This is
// the "stop the distance computation as soon as the distance exceeds eps"
// optimization used by the sequential-scan baselines; scanning frequency
// domain vectors (largest coefficients first) makes the abandon early.
double EuclideanDistanceEarlyAbandon(const std::vector<double>& a,
                                     const std::vector<double>& b,
                                     double threshold);
double EuclideanDistanceEarlyAbandon(
    const std::vector<std::complex<double>>& a,
    const std::vector<std::complex<double>>& b, double threshold);

// Signal energy: sum of squared magnitudes (Equation 3 of [RM97]).
double Energy(const std::vector<double>& values);
double Energy(const std::vector<std::complex<double>>& values);

// Order statistics over a sample; used by bench harnesses for robust timing.
struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
};
Summary Summarize(std::vector<double> values);

// The p-th percentile (p in [0, 100]) of a sample by linear interpolation
// between closest ranks. Returns 0 for an empty sample. Used by the query
// service's latency accounting (p50/p95/p99).
double Percentile(std::vector<double> values, double p);

}  // namespace simq

#endif  // SIMQ_UTIL_STATS_H_
