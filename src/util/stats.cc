#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace simq {

double Mean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  const double mean = Mean(values);
  double sum_sq = 0.0;
  for (double v : values) {
    const double d = v - mean;
    sum_sq += d * d;
  }
  return std::sqrt(sum_sq / static_cast<double>(values.size()));
}

double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  SIMQ_CHECK_EQ(a.size(), b.size());
  double sum_sq = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum_sq += d * d;
  }
  return std::sqrt(sum_sq);
}

double EuclideanDistance(const std::vector<std::complex<double>>& a,
                         const std::vector<std::complex<double>>& b) {
  SIMQ_CHECK_EQ(a.size(), b.size());
  double sum_sq = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum_sq += std::norm(a[i] - b[i]);
  }
  return std::sqrt(sum_sq);
}

double EuclideanDistanceEarlyAbandon(const std::vector<double>& a,
                                     const std::vector<double>& b,
                                     double threshold) {
  SIMQ_CHECK_EQ(a.size(), b.size());
  const double limit = threshold * threshold;
  double sum_sq = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum_sq += d * d;
    if (sum_sq > limit) {
      return std::numeric_limits<double>::infinity();
    }
  }
  return std::sqrt(sum_sq);
}

double EuclideanDistanceEarlyAbandon(
    const std::vector<std::complex<double>>& a,
    const std::vector<std::complex<double>>& b, double threshold) {
  SIMQ_CHECK_EQ(a.size(), b.size());
  const double limit = threshold * threshold;
  double sum_sq = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum_sq += std::norm(a[i] - b[i]);
    if (sum_sq > limit) {
      return std::numeric_limits<double>::infinity();
    }
  }
  return std::sqrt(sum_sq);
}

double Energy(const std::vector<double>& values) {
  double sum = 0.0;
  for (double v : values) {
    sum += v * v;
  }
  return sum;
}

double Energy(const std::vector<std::complex<double>>& values) {
  double sum = 0.0;
  for (const std::complex<double>& v : values) {
    sum += std::norm(v);
  }
  return sum;
}

Summary Summarize(std::vector<double> values) {
  Summary summary;
  if (values.empty()) {
    return summary;
  }
  std::sort(values.begin(), values.end());
  summary.min = values.front();
  summary.max = values.back();
  summary.mean = Mean(values);
  const size_t mid = values.size() / 2;
  summary.median = (values.size() % 2 == 1)
                       ? values[mid]
                       : 0.5 * (values[mid - 1] + values[mid]);
  return summary;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  p = std::max(0.0, std::min(100.0, p));
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

}  // namespace simq
