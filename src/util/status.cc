#include "util/status.h"

namespace simq {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kIoError:
      return "IoError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string result = StatusCodeName(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace simq
