// Monotonic wall-clock timer used by the benchmark harnesses.

#ifndef SIMQ_UTIL_STOPWATCH_H_
#define SIMQ_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace simq {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace simq

#endif  // SIMQ_UTIL_STOPWATCH_H_
