#include "util/table_printer.h"

#include <cstdio>

#include "util/logging.h"

namespace simq {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SIMQ_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  SIMQ_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%s%-*s", c == 0 ? "  " : "  |  ",
                  static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  };

  print_row(headers_);
  size_t total = 2;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 5);
  }
  std::printf("  %s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string TablePrinter::FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string TablePrinter::FormatInt(int64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%lld",
                static_cast<long long>(value));
  return buffer;
}

}  // namespace simq
