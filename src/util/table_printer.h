// Fixed-width console table output for the experiment harnesses in bench/.
//
// Every figure/table reproduction prints its rows through this class so the
// outputs share one format and are easy to diff against EXPERIMENTS.md.

#ifndef SIMQ_UTIL_TABLE_PRINTER_H_
#define SIMQ_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace simq {

class TablePrinter {
 public:
  // Column headers define the number of columns of every subsequent row.
  explicit TablePrinter(std::vector<std::string> headers);

  // Cells accept preformatted strings; AddRow checks the column count.
  void AddRow(std::vector<std::string> cells);

  // Renders the header, a separator, and all rows to stdout.
  void Print() const;

  // Helpers for formatting numeric cells.
  static std::string FormatDouble(double value, int precision = 3);
  static std::string FormatInt(int64_t value);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace simq

#endif  // SIMQ_UTIL_TABLE_PRINTER_H_
