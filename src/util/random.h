// Deterministic pseudo-random number generation for workloads and tests.
//
// All simq workload generators are seeded explicitly so every experiment in
// bench/ is reproducible bit-for-bit across runs.

#ifndef SIMQ_UTIL_RANDOM_H_
#define SIMQ_UTIL_RANDOM_H_

#include <cstdint>

namespace simq {

// A small, fast, high-quality PRNG (xoshiro256**). Not cryptographic.
// Copyable; copies continue the sequence independently.
class Random {
 public:
  explicit Random(uint64_t seed);

  // Uniform over the full 64-bit range.
  uint64_t NextUint64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform in [lo, hi).
  double UniformDouble(double lo, double hi);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Standard normal deviate (Box-Muller).
  double NextGaussian();

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace simq

#endif  // SIMQ_UTIL_RANDOM_H_
