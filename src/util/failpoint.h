// Deterministic fault injection for tests and the crash-recovery harness.
//
// A failpoint is a named hook compiled into failure-prone code paths
// (persistence IO, WAL appends, snapshot compilation, thread-pool task
// boundaries). At runtime each failpoint is `off` unless armed, either
// programmatically (Failpoints::Global().Configure) or via the
// SIMQ_FAILPOINTS environment variable, e.g.
//
//   SIMQ_FAILPOINTS="save.write=always;wal.append=one-in-7;save.sync=after-3"
//   SIMQ_FAILPOINTS="wal.append=kill:after-2"
//
// Triggers:
//   off          never fires
//   always       fires on every hit
//   one-in-N     fires on hits N, 2N, 3N, ... (deterministic, not random)
//   after-K      fires on every hit after the first K (hit K+1 onward)
//
// A `kill:` prefix makes the failpoint raise SIGKILL instead of returning
// an error -- this is how the crash harness murders a child process at an
// exact IO boundary. Without `kill:`, a fired failpoint surfaces as
// Status::IoError("injected failure at failpoint '<name>'") through
// SIMQ_RETURN_IF_FAILPOINT, or as a true `Fired` result from
// SIMQ_FAILPOINT_FIRED for call sites with non-Status signatures.
//
// Cost model: when SIMQ_FAILPOINTS_ENABLED is not defined (cmake
// -DSIMQ_ENABLE_FAILPOINTS=OFF) the macros compile to nothing. When
// compiled in but no failpoint is armed, a hit is one relaxed atomic load.

#ifndef SIMQ_UTIL_FAILPOINT_H_
#define SIMQ_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "util/status.h"

namespace simq {

// Global registry of named failpoints. Thread-safe; a process-wide
// singleton so library code can evaluate failpoints without plumbing a
// handle through every layer.
class Failpoints {
 public:
  enum class TriggerKind : uint8_t { kOff, kAlways, kOneIn, kAfter };

  struct Trigger {
    TriggerKind kind = TriggerKind::kOff;
    uint64_t param = 0;  // N for kOneIn, K for kAfter
    bool kill = false;   // raise SIGKILL instead of returning an error
  };

  // The singleton. First call also applies SIMQ_FAILPOINTS from the
  // environment (invalid specs abort loudly -- a misspelled failpoint in a
  // test harness must not silently test nothing).
  static Failpoints& Global();

  // Arms `name` with `trigger`; resets its hit counter.
  void Configure(const std::string& name, Trigger trigger);

  // Parses and applies a spec string: "name=trigger[;name=trigger...]".
  // Trigger grammar: [kill:](off|always|one-in-<N>|after-<K>).
  // Returns InvalidArgument on malformed input (nothing applied for the
  // malformed clause; earlier clauses stay applied).
  Status ConfigureFromSpec(const std::string& spec);

  // Disarms every failpoint and zeroes all hit counters.
  void Reset();

  // Number of times `name` has been evaluated since last Configure/Reset.
  uint64_t hits(const std::string& name) const;

  // Records a hit on `name` and decides whether it fires. If it fires with
  // `kill` set, this raises SIGKILL and does not return. Otherwise returns
  // true iff the failpoint fired. Unarmed names return false without
  // taking the registry lock.
  bool Evaluate(const char* name);

 private:
  Failpoints();

  struct State {
    Trigger trigger;
    uint64_t hit_count = 0;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, State> points_;
  // Number of armed (non-off) failpoints; fast-path guard for Evaluate.
  std::atomic<uint64_t> armed_{0};
};

}  // namespace simq

#ifdef SIMQ_FAILPOINTS_ENABLED

// True iff the named failpoint fires at this hit (may SIGKILL instead).
#define SIMQ_FAILPOINT_FIRED(name) \
  (::simq::Failpoints::Global().Evaluate(name))

// Returns Status::IoError from the enclosing function when `name` fires.
#define SIMQ_RETURN_IF_FAILPOINT(name)                                \
  do {                                                                \
    if (::simq::Failpoints::Global().Evaluate(name)) {                \
      return ::simq::Status::IoError(                                 \
          std::string("injected failure at failpoint '") + (name) +  \
          "'");                                                       \
    }                                                                 \
  } while (false)

#else  // !SIMQ_FAILPOINTS_ENABLED

#define SIMQ_FAILPOINT_FIRED(name) (false)
#define SIMQ_RETURN_IF_FAILPOINT(name) \
  do {                                 \
  } while (false)

#endif  // SIMQ_FAILPOINTS_ENABLED

#endif  // SIMQ_UTIL_FAILPOINT_H_
