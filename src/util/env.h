// Validated parsing of the engine's integer environment knobs
// (SIMQ_THREADS, SIMQ_SHARDS).
//
// A mistyped knob used to be silently ignored (std::atoi returning 0 fell
// through to the default), which turns "I benchmarked with 8 shards" into
// "I benchmarked with 1 shard and never noticed". The helpers here make
// misconfiguration loud instead: a set-but-invalid value -- non-numeric,
// zero, negative, trailing garbage, or overflowing int -- aborts with a
// message naming the variable and the offending text. An UNSET variable
// still means "use the default"; only present-and-wrong is fatal.
//
// ParsePositiveIntEnv is the pure, unit-testable core (tests/env_test.cc);
// PositiveIntFromEnv is the getenv-reading wrapper the thread pool and
// sharding options call.

#ifndef SIMQ_UTIL_ENV_H_
#define SIMQ_UTIL_ENV_H_

#include <cerrno>
#include <climits>
#include <cstdlib>
#include <string>

#include "util/logging.h"
#include "util/status.h"

namespace simq {

// Parses `text` as a strictly positive int. Rejects empty strings,
// non-numeric text, trailing garbage ("8x"), zero, negatives, and values
// that do not fit in int.
inline Result<int> ParsePositiveIntEnv(const std::string& name,
                                       const std::string& text) {
  const auto invalid = [&](const char* why) {
    return Status::InvalidArgument(name + "='" + text + "' is invalid: " +
                                   why + " (expected an integer >= 1)");
  };
  if (text.empty()) {
    return invalid("empty value");
  }
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str()) {
    return invalid("not a number");
  }
  if (*end != '\0') {
    return invalid("trailing characters after the number");
  }
  if (errno == ERANGE || value > INT_MAX) {
    return invalid("overflows int");
  }
  if (value <= 0) {
    return invalid("must be >= 1");
  }
  return static_cast<int>(value);
}

// Reads environment variable `name`: returns `fallback` when unset, the
// parsed value when valid, and aborts with the parse error when set but
// invalid -- a misconfigured knob must never silently become the default.
inline int PositiveIntFromEnv(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) {
    return fallback;
  }
  Result<int> parsed = ParsePositiveIntEnv(name, env);
  SIMQ_CHECK(parsed.ok()) << " -- " << parsed.status().ToString();
  return parsed.value();
}

}  // namespace simq

#endif  // SIMQ_UTIL_ENV_H_
