// Lightweight assertion macros used throughout simq.
//
// The library follows the Google C++ style rule of not using exceptions;
// recoverable errors are reported through simq::Status (see util/status.h)
// while violated internal invariants terminate the process with a message.
//
// SIMQ_CHECK(cond)        - always evaluated, aborts with file:line on failure.
// SIMQ_CHECK_EQ/NE/...    - binary comparison forms that print both operands.
// SIMQ_DCHECK(cond)       - compiled out in NDEBUG builds.

#ifndef SIMQ_UTIL_LOGGING_H_
#define SIMQ_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace simq {
namespace internal_logging {

// Accumulates a failure message and aborts the process when destroyed.
// Usage is via the SIMQ_CHECK* macros only.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "SIMQ_CHECK failure at " << file << ":" << line << ": "
            << condition;
  }

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace simq

#define SIMQ_CHECK(condition)                                       \
  if (condition) {                                                  \
  } else                                                            \
    ::simq::internal_logging::CheckFailure(__FILE__, __LINE__,      \
                                           #condition)

#define SIMQ_CHECK_OP(op, lhs, rhs)                                      \
  if ((lhs)op(rhs)) {                                                    \
  } else                                                                 \
    ::simq::internal_logging::CheckFailure(__FILE__, __LINE__,           \
                                           #lhs " " #op " " #rhs)        \
        << " (lhs=" << (lhs) << ", rhs=" << (rhs) << ")"

#define SIMQ_CHECK_EQ(lhs, rhs) SIMQ_CHECK_OP(==, lhs, rhs)
#define SIMQ_CHECK_NE(lhs, rhs) SIMQ_CHECK_OP(!=, lhs, rhs)
#define SIMQ_CHECK_LT(lhs, rhs) SIMQ_CHECK_OP(<, lhs, rhs)
#define SIMQ_CHECK_LE(lhs, rhs) SIMQ_CHECK_OP(<=, lhs, rhs)
#define SIMQ_CHECK_GT(lhs, rhs) SIMQ_CHECK_OP(>, lhs, rhs)
#define SIMQ_CHECK_GE(lhs, rhs) SIMQ_CHECK_OP(>=, lhs, rhs)

#ifdef NDEBUG
#define SIMQ_DCHECK(condition) SIMQ_CHECK(true || (condition))
#else
#define SIMQ_DCHECK(condition) SIMQ_CHECK(condition)
#endif

#endif  // SIMQ_UTIL_LOGGING_H_
