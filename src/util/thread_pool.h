// A small fixed-size thread pool with a blocked parallel-for and a
// fire-and-forget task queue. The batch execution kernels
// (core/database.cc) use ParallelFor to spread scans and the nested-loop
// sides of joins over record blocks; the query service (service/) uses
// Submit for asynchronous session work.
//
// Design constraints, in order:
//  * Determinism: ParallelFor hands the body contiguous index ranges plus a
//    dense block number, so callers can write per-block buffers and merge
//    them in block order; results are then independent of thread count and
//    scheduling. The kernels themselves never share mutable state.
//  * Zero overhead when parallelism is off: with one thread (or ranges at
//    or below the grain) ParallelFor degenerates to a direct call of the
//    body on the full range -- no queue, no atomics.
//  * Simplicity over throughput: one global mutex-guarded task queue. The
//    bodies scheduled here are coarse (>= ~1e6 doubles of work per block),
//    so queue contention is irrelevant.
//
// The pool size defaults to std::thread::hardware_concurrency() and can be
// pinned with the SIMQ_THREADS environment variable (SIMQ_THREADS=1
// disables worker threads entirely). Nested ParallelFor calls from inside a
// pool worker run serially on the calling thread.
//
// Shutdown and re-entrancy contract:
//  * Submit never deadlocks and never loses a task. With no worker threads
//    (a 1-thread pool) or once shutdown has begun, the task runs inline on
//    the submitting thread; a task running on a pool worker may Submit
//    more work (it is enqueued, not nested).
//  * The destructor drains the queue: every task submitted before (or
//    inline during) shutdown finishes before the destructor returns.
//  * Submit provides no completion handle by design; callers that must
//    wait use their own latch. A pooled task must never block on work it
//    just submitted (with one worker that is a deadlock by construction).

#ifndef SIMQ_UTIL_THREAD_POOL_H_
#define SIMQ_UTIL_THREAD_POOL_H_

#include <time.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/env.h"
#include "util/failpoint.h"

namespace simq {

class ThreadPool {
 public:
  // body(block, begin, end): process [begin, end); `block` is the dense
  // 0-based block number (blocks partition the range in increasing order).
  using BlockFn = std::function<void(int64_t block, int64_t begin,
                                     int64_t end)>;

  explicit ThreadPool(int num_threads) {
    for (int i = 1; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& worker : workers_) {
      worker.join();
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Worker threads plus the calling thread.
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  // Upper bound on the number of blocks a single ParallelFor call will
  // create, and therefore on the block ids passed to the body. Callers
  // sizing per-block buffers must use this, not a copy of the formula.
  int64_t max_blocks() const { return static_cast<int64_t>(num_threads()) * 4; }

  // The process-wide pool used by the query kernels.
  static ThreadPool& Global() {
    static ThreadPool pool(DefaultThreadCount());
    return pool;
  }

  static int DefaultThreadCount() {
    const unsigned hw = std::thread::hardware_concurrency();
    const int fallback = hw == 0 ? 1 : static_cast<int>(hw);
    // A set-but-invalid SIMQ_THREADS aborts with a clear message instead
    // of silently running at the hardware default (util/env.h).
    return PositiveIntFromEnv("SIMQ_THREADS", fallback);
  }

  // Enqueues one task for asynchronous execution on a worker thread.
  // Degenerate paths that run the task inline on the calling thread, so
  // progress never depends on a worker existing: a pool with no workers
  // (num_threads() == 1, e.g. SIMQ_THREADS=1) and submission during or
  // after shutdown. Safe to call from inside a pooled task.
  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!stop_ && !workers_.empty()) {
        tasks_.push_back(std::move(task));
        cv_.notify_one();
        return;
      }
    }
    task();
  }

  // Caps the number of threads (including the caller) that ParallelFor
  // calls issued from the current thread may use, until the scope exits.
  // The query service's admission scheduler uses this to divide the pool
  // between concurrently running queries. Budgets nest, restoring the
  // previous cap on destruction; values below 1 clamp to 1 (a budget can
  // only narrow -- "unlimited" is the state with no budget installed).
  class ScopedParallelismBudget {
   public:
    explicit ScopedParallelismBudget(int max_threads)
        : previous_(BudgetFlag()) {
      BudgetFlag() = max_threads < 1 ? 1 : max_threads;
    }
    ~ScopedParallelismBudget() { BudgetFlag() = previous_; }
    ScopedParallelismBudget(const ScopedParallelismBudget&) = delete;
    ScopedParallelismBudget& operator=(const ScopedParallelismBudget&) =
        delete;

   private:
    int previous_;
  };

  // This thread's CPU time so far (CLOCK_THREAD_CPUTIME_ID), in
  // nanoseconds; 0 if the clock is unavailable.
  static int64_t ThreadCpuNs() {
    timespec ts;
    if (::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) {
      return 0;
    }
    return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
  }

  // Installs per-query resource accounting for ParallelFor calls issued
  // from the current thread until the scope exits: every block a *helper*
  // thread runs adds its CLOCK_THREAD_CPUTIME_ID delta to `cpu_ns`, and
  // every block (any thread, including the degenerate inline path) bumps
  // `tasks`. The calling thread's own CPU is deliberately not metered
  // here -- the installer is expected to measure its thread's delta
  // around the whole engine call, which already covers the blocks it
  // personally executes; metering them again would double-count.
  // Scopes nest like the parallelism budget; null sinks mean "off" and
  // cost one thread-local load per fan-out.
  class ScopedCpuAccounting {
   public:
    ScopedCpuAccounting(std::atomic<int64_t>* cpu_ns,
                        std::atomic<int64_t>* tasks)
        : prev_cpu_(CpuSinkFlag()), prev_tasks_(TaskSinkFlag()) {
      CpuSinkFlag() = cpu_ns;
      TaskSinkFlag() = tasks;
    }
    ~ScopedCpuAccounting() {
      CpuSinkFlag() = prev_cpu_;
      TaskSinkFlag() = prev_tasks_;
    }
    ScopedCpuAccounting(const ScopedCpuAccounting&) = delete;
    ScopedCpuAccounting& operator=(const ScopedCpuAccounting&) = delete;

   private:
    std::atomic<int64_t>* prev_cpu_;
    std::atomic<int64_t>* prev_tasks_;
  };

  // Splits [begin, end) into contiguous blocks of at least `min_grain`
  // items and runs `body` over them on the pool (the calling thread
  // participates). Returns after every block has finished. Blocks are
  // numbered 0..num_blocks-1 in range order. If a body throws, remaining
  // unstarted blocks are skipped and the first exception is rethrown on
  // the calling thread after all workers have finished.
  void ParallelFor(int64_t begin, int64_t end, int64_t min_grain,
                   const BlockFn& body) {
    const int64_t total = end - begin;
    if (total <= 0) {
      return;
    }
    min_grain = std::max<int64_t>(min_grain, 1);
    const int budget = BudgetFlag();
    const int threads =
        budget > 0 ? std::min(num_threads(), budget) : num_threads();
    if (threads == 1 || total <= min_grain || InWorkerFlag()) {
      if (TaskSinkFlag() != nullptr) {
        TaskSinkFlag()->fetch_add(1, std::memory_order_relaxed);
      }
      body(0, begin, end);
      return;
    }
    const int64_t by_grain = (total + min_grain - 1) / min_grain;
    // A thread budget narrows the fan-out of this one call; max_blocks()
    // stays the pool-wide bound callers size per-block buffers against.
    const int64_t num_blocks = std::min<int64_t>(
        by_grain, std::min<int64_t>(static_cast<int64_t>(threads) * 4,
                                    max_blocks()));

    auto state = std::make_shared<ForState>();
    state->begin = begin;
    state->total = total;
    state->num_blocks = num_blocks;
    state->body = body;
    // Captured at fan-out on the calling thread; helpers read them from
    // the shared state since the sinks are thread-locals of the caller.
    state->cpu_sink = CpuSinkFlag();
    state->task_sink = TaskSinkFlag();

    const auto work = [state] { RunBlocks(*state); };
    // One helper per block beyond the caller's own; extra helpers would
    // only wake, find no block, and exit.
    const int64_t helpers =
        std::min<int64_t>(threads - 1, num_blocks - 1);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (int64_t t = 0; t < helpers; ++t) {
        tasks_.push_back(work);
      }
    }
    cv_.notify_all();
    work();  // the caller participates
    // The caller's own pass has claimed past the last block, so helpers
    // that have not started yet will no-op; wait only for in-flight ones.
    std::unique_lock<std::mutex> lock(state->done_mutex);
    state->done_cv.wait(lock, [&state] {
      return state->active.load(std::memory_order_acquire) == 0;
    });
    if (state->error != nullptr) {
      // First exception thrown by a body, rethrown only after every
      // worker has quiesced so no helper still references caller state.
      const std::exception_ptr error = state->error;
      lock.unlock();
      std::rethrow_exception(error);
    }
  }

 private:
  struct ForState {
    int64_t begin = 0;
    int64_t total = 0;
    int64_t num_blocks = 0;
    BlockFn body;
    std::atomic<int64_t>* cpu_sink = nullptr;   // helper-thread CPU deltas
    std::atomic<int64_t>* task_sink = nullptr;  // blocks executed
    std::atomic<int64_t> next_block{0};
    std::atomic<int64_t> active{0};  // workers inside RunBlocks
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::exception_ptr error;  // first body exception; guarded by done_mutex
  };

  // True while this thread is executing ParallelFor blocks; nested
  // ParallelFor calls from such a thread run serially.
  static bool& InWorkerFlag() {
    static thread_local bool flag = false;
    return flag;
  }

  // Per-thread ParallelFor width cap installed by ScopedParallelismBudget;
  // 0 means unlimited. Read once at fan-out time on the calling thread.
  static int& BudgetFlag() {
    static thread_local int budget = 0;
    return budget;
  }

  // Per-thread accounting sinks installed by ScopedCpuAccounting; null
  // means accounting is off for fan-outs from this thread.
  static std::atomic<int64_t>*& CpuSinkFlag() {
    static thread_local std::atomic<int64_t>* sink = nullptr;
    return sink;
  }
  static std::atomic<int64_t>*& TaskSinkFlag() {
    static thread_local std::atomic<int64_t>* sink = nullptr;
    return sink;
  }

  static void RunBlocks(ForState& state) {
    InWorkerFlag() = true;
    state.active.fetch_add(1, std::memory_order_acq_rel);
    while (true) {
      const int64_t block =
          state.next_block.fetch_add(1, std::memory_order_relaxed);
      if (block >= state.num_blocks) {
        break;
      }
      // Proportional split: block b covers [total*b/B, total*(b+1)/B).
      const int64_t lo = state.begin + state.total * block / state.num_blocks;
      const int64_t hi =
          state.begin + state.total * (block + 1) / state.num_blocks;
      try {
        // Task-boundary fault injection: a fired "pool.task" failpoint
        // stands in for any exception escaping a pooled body. It flows
        // through the normal capture-and-rethrow protocol below, so tests
        // can assert the pool quiesces and the caller sees the error.
        if (SIMQ_FAILPOINT_FIRED("pool.task")) {
          throw std::runtime_error(
              "injected failure at failpoint 'pool.task'");
        }
        if (state.task_sink != nullptr) {
          state.task_sink->fetch_add(1, std::memory_order_relaxed);
        }
        // CPU metering covers helper threads only: on the fan-out thread
        // CpuSinkFlag() still holds the same sink, and that thread's CPU
        // is measured end-to-end by whoever installed the accounting
        // scope (see ScopedCpuAccounting).
        if (state.cpu_sink != nullptr &&
            CpuSinkFlag() != state.cpu_sink) {
          const int64_t cpu_begin = ThreadCpuNs();
          state.body(block, lo, hi);
          state.cpu_sink->fetch_add(ThreadCpuNs() - cpu_begin,
                                    std::memory_order_relaxed);
        } else {
          state.body(block, lo, hi);
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(state.done_mutex);
          if (state.error == nullptr) {
            state.error = std::current_exception();
          }
        }
        // Stop claiming further blocks; workers already past the claim
        // finish theirs. The caller rethrows after the join.
        state.next_block.store(state.num_blocks,
                               std::memory_order_relaxed);
      }
    }
    if (state.active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(state.done_mutex);
      state.done_cv.notify_all();
    }
    InWorkerFlag() = false;
  }

  void WorkerLoop() {
    while (true) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
        if (stop_ && tasks_.empty()) {
          return;
        }
        task = std::move(tasks_.back());
        tasks_.pop_back();
      }
      task();
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::function<void()>> tasks_;
  bool stop_ = false;
};

}  // namespace simq

#endif  // SIMQ_UTIL_THREAD_POOL_H_
