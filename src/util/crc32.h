// CRC32 (IEEE 802.3 polynomial, reflected) over byte buffers.
//
// Used by the durability layer to frame and validate on-disk bytes: every
// SIMQDB3 snapshot section and every WAL frame carries the CRC of its
// payload, so a torn write or bit flip is detected at load/replay time
// instead of being parsed as silent garbage (core/persistence.h,
// core/wal.h). Software table implementation -- the checksummed paths are
// IO-bound, not CRC-bound, at this repo's scales.
//
// Incremental use: feed the previous return value back in as `seed` to
// extend a checksum over multiple buffers. The empty-buffer CRC with seed
// 0 is 0.

#ifndef SIMQ_UTIL_CRC32_H_
#define SIMQ_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace simq {

// CRC32 of `size` bytes at `data`, chained from `seed` (0 to start).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace simq

#endif  // SIMQ_UTIL_CRC32_H_
