// Error model for the simq library.
//
// The library does not use exceptions (see the style notes in DESIGN.md).
// Operations that can fail in ways a caller should handle return a Status,
// or a Result<T> which is either a value or a Status. Internal invariant
// violations use SIMQ_CHECK (util/logging.h) instead.

#ifndef SIMQ_UTIL_STATUS_H_
#define SIMQ_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/logging.h"

namespace simq {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
};

// Returns a stable human-readable name, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

// A cheap value type describing the outcome of an operation.
class Status {
 public:
  // Default-constructed Status is OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Either a T or a non-OK Status. Callers must test ok() before value().
template <typename T>
class Result {
 public:
  // Implicit construction from a value or from a non-OK Status keeps call
  // sites readable: `return value;` / `return Status::InvalidArgument(...)`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    SIMQ_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    SIMQ_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    SIMQ_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    SIMQ_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *std::move(value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace simq

// Propagates a non-OK status from an expression to the caller.
#define SIMQ_RETURN_IF_ERROR(expr)          \
  do {                                      \
    ::simq::Status simq_status__ = (expr);  \
    if (!simq_status__.ok()) {              \
      return simq_status__;                 \
    }                                       \
  } while (false)

#endif  // SIMQ_UTIL_STATUS_H_
