// Error model for the simq library.
//
// The library does not use exceptions (see the style notes in DESIGN.md).
// Operations that can fail in ways a caller should handle return a Status,
// or a Result<T> which is either a value or a Status. Internal invariant
// violations use SIMQ_CHECK (util/logging.h) instead.

#ifndef SIMQ_UTIL_STATUS_H_
#define SIMQ_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/logging.h"

namespace simq {

// Stable, numbered error codes: callers and tests match on the code, never
// on message substrings. The numeric values are part of the (intra-process)
// contract -- append new codes at the end, never renumber.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  // Fault-handling codes (see DESIGN.md "Durability & fault handling"):
  kCorruption = 8,  // on-disk bytes fail validation (CRC, framing, invariants)
  kTimeout = 9,     // a query deadline expired (cooperatively observed)
  kCancelled = 10,  // the caller cancelled the query/session
  kOverloaded = 11, // admission queue wait exceeded its bound
  kIoError = 12,    // the OS failed a read/write/sync/rename (or injection)
};

// Returns a stable human-readable name, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

// A cheap value type describing the outcome of an operation.
class Status {
 public:
  // Default-constructed Status is OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Either a T or a non-OK Status. Callers must test ok() before value().
template <typename T>
class Result {
 public:
  // Implicit construction from a value or from a non-OK Status keeps call
  // sites readable: `return value;` / `return Status::InvalidArgument(...)`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    SIMQ_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    SIMQ_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    SIMQ_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    SIMQ_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *std::move(value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace simq

// Propagates a non-OK status from an expression to the caller.
#define SIMQ_RETURN_IF_ERROR(expr)          \
  do {                                      \
    ::simq::Status simq_status__ = (expr);  \
    if (!simq_status__.ok()) {              \
      return simq_status__;                 \
    }                                       \
  } while (false)

#endif  // SIMQ_UTIL_STATUS_H_
