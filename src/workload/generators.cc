#include "workload/generators.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/logging.h"
#include "util/random.h"

namespace simq {
namespace workload {
namespace {

std::vector<double> RandomWalk(Random* rng, int length, double start_lo,
                               double start_hi, double step) {
  std::vector<double> values(static_cast<size_t>(length));
  values[0] = rng->UniformDouble(start_lo, start_hi);
  for (int t = 1; t < length; ++t) {
    values[static_cast<size_t>(t)] =
        values[static_cast<size_t>(t - 1)] + rng->UniformDouble(-step, step);
  }
  return values;
}

}  // namespace

std::vector<TimeSeries> RandomWalkSeries(int count, int length,
                                         uint64_t seed) {
  SIMQ_CHECK_GT(count, 0);
  SIMQ_CHECK_GT(length, 0);
  Random rng(seed);
  std::vector<TimeSeries> out(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    out[static_cast<size_t>(i)].id = "walk" + std::to_string(i);
    // x0 in [20, 99], z_t in [-4, 4]: the construction of [RM97] §5.
    out[static_cast<size_t>(i)].values =
        RandomWalk(&rng, length, 20.0, 99.0, 4.0);
  }
  return out;
}

std::vector<TimeSeries> StockMarket(const StockMarketOptions& options) {
  SIMQ_CHECK_GT(options.num_series, 0);
  SIMQ_CHECK_GT(options.length, 4);
  SIMQ_CHECK_GT(options.num_sectors, 0);
  const int engineered = 2 * (options.num_smoothed_similar_pairs +
                              options.num_inverse_pairs +
                              options.num_resampled_pairs);
  SIMQ_CHECK_LE(engineered, options.num_series);

  Random rng(options.seed);
  const int length = options.length;

  // Shared per-sector walks give the population realistic cross-correlation
  // without making any specific pair trivially identical.
  std::vector<std::vector<double>> sector_walks(
      static_cast<size_t>(options.num_sectors));
  for (auto& walk : sector_walks) {
    walk = RandomWalk(&rng, length, -2.0, 2.0, 1.0);
  }

  std::vector<TimeSeries> out;
  out.reserve(static_cast<size_t>(options.num_series));
  auto emit = [&](std::vector<double> values, const std::string& tag) {
    TimeSeries series;
    series.id = tag + std::to_string(out.size());
    series.values = std::move(values);
    out.push_back(std::move(series));
  };

  auto sector_blend = [&](int sector) {
    const std::vector<double>& shared =
        sector_walks[static_cast<size_t>(sector)];
    std::vector<double> own =
        RandomWalk(&rng, length, 10.0, 80.0, options.idiosyncratic_step);
    for (int t = 0; t < length; ++t) {
      own[static_cast<size_t>(t)] += options.sector_correlation * 4.0 *
                                     shared[static_cast<size_t>(t)];
    }
    return own;
  };

  // Engineered similar-after-smoothing pairs: identical long-term trend,
  // independent high-frequency noise that a 20-day moving average removes.
  for (int p = 0; p < options.num_smoothed_similar_pairs; ++p) {
    const std::vector<double> trend =
        RandomWalk(&rng, length, 15.0, 60.0, 1.2);
    for (int member = 0; member < 2; ++member) {
      std::vector<double> values = trend;
      for (int t = 0; t < length; ++t) {
        values[static_cast<size_t>(t)] += rng.UniformDouble(-0.6, 0.6);
      }
      emit(std::move(values), "smooth_pair");
    }
  }

  // Inverse pairs: b ~ (2 * mean(a)) - a plus noise, so normal forms are
  // close to negatives of each other (Example 2.2).
  for (int p = 0; p < options.num_inverse_pairs; ++p) {
    const std::vector<double> base = RandomWalk(&rng, length, 15.0, 60.0, 1.5);
    double mean = 0.0;
    for (double v : base) {
      mean += v;
    }
    mean /= static_cast<double>(length);
    std::vector<double> mirrored(static_cast<size_t>(length));
    for (int t = 0; t < length; ++t) {
      mirrored[static_cast<size_t>(t)] =
          2.0 * mean - base[static_cast<size_t>(t)] +
          rng.UniformDouble(-0.3, 0.3);
    }
    emit(std::vector<double>(base), "inverse_a");
    emit(std::move(mirrored), "inverse_b");
  }

  // Resampled pairs: `slow` sampled every other day, `fast` is its 2x
  // stutter (time-warp structure of Example 1.2).
  for (int p = 0; p < options.num_resampled_pairs; ++p) {
    const std::vector<double> slow =
        RandomWalk(&rng, length / 2, 15.0, 60.0, 2.0);
    std::vector<double> fast(static_cast<size_t>(length));
    for (int t = 0; t < length; ++t) {
      fast[static_cast<size_t>(t)] = slow[static_cast<size_t>(t / 2)];
    }
    std::vector<double> padded_slow(static_cast<size_t>(length));
    for (int t = 0; t < length; ++t) {
      // Store the slow series warped to full length as well so the relation
      // stays rectangular; examples re-derive the half-rate series from it.
      padded_slow[static_cast<size_t>(t)] = slow[static_cast<size_t>(t / 2)];
    }
    emit(std::move(fast), "resample_fast");
    emit(std::move(padded_slow), "resample_slow");
  }

  // Background population: sector-correlated walks.
  int sector = 0;
  while (static_cast<int>(out.size()) < options.num_series) {
    emit(sector_blend(sector), "stock");
    sector = (sector + 1) % options.num_sectors;
  }
  return out;
}

double CalibrateEpsilon(const std::vector<double>& sorted_distances,
                        int target_answer_size) {
  SIMQ_CHECK(!sorted_distances.empty());
  SIMQ_CHECK(std::is_sorted(sorted_distances.begin(), sorted_distances.end()));
  if (target_answer_size <= 0) {
    return std::max(0.0, sorted_distances.front() * 0.5);
  }
  const size_t index =
      std::min(sorted_distances.size(), static_cast<size_t>(target_answer_size)) -
      1;
  // Nudge upward so ties at the boundary stay inside the answer set.
  return sorted_distances[index] * (1.0 + 1e-9) + 1e-12;
}

}  // namespace workload
}  // namespace simq
