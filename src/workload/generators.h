// Workload generators for experiments, tests, and examples.
//
// RandomWalkSeries reproduces the synthetic data of [RM97] §5 exactly as
// described: x_0 uniform in [20, 99], increments uniform in [-4, 4].
//
// StockMarket substitutes for the unavailable 1995 stock archive
// (ftp.ai.mit.edu/pub/stocks/results/, 1067 series of 128 daily closes).
// It produces sector-correlated random walks plus engineered structure --
// pairs that become similar after smoothing, inverse (hedge) pairs, and
// 2x-resampled pairs -- so that similarity joins and transformation queries
// have non-trivial answers, which is the property of the real data the
// evaluation depends on (see DESIGN.md "Data substitutions").

#ifndef SIMQ_WORKLOAD_GENERATORS_H_
#define SIMQ_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "ts/time_series.h"

namespace simq {
namespace workload {

// The paper's synthetic random walks; deterministic in `seed`.
std::vector<TimeSeries> RandomWalkSeries(int count, int length,
                                         uint64_t seed);

struct StockMarketOptions {
  int num_series = 1067;  // matches the paper's stock relation
  int length = 128;
  int num_sectors = 20;
  // Pairs engineered to be within a small distance after a 20-day moving
  // average of their normal forms (they differ by short-term noise).
  int num_smoothed_similar_pairs = 12;
  // Pairs moving in opposite directions (Example 2.2 hedging candidates).
  int num_inverse_pairs = 8;
  // Pairs where one series is the 2x time-warp of the other's half-rate
  // samples (Example 1.2).
  int num_resampled_pairs = 4;
  double sector_correlation = 0.55;  // weight of the shared sector walk
  // Step size of each stock's own random walk relative to its sector trend;
  // smaller values produce tighter co-movement (market-crash regimes).
  double idiosyncratic_step = 1.5;
  uint64_t seed = 19950523;          // PODS'95 presentation date
};

std::vector<TimeSeries> StockMarket(const StockMarketOptions& options);

// Smallest epsilon (within `tolerance`) whose range-query answer around
// `probe` has at least `target_answer_size` members, estimated against
// precomputed normal-form distances. Utility for the answer-set-size sweep
// (Figure 12).
double CalibrateEpsilon(const std::vector<double>& sorted_distances,
                        int target_answer_size);

}  // namespace workload
}  // namespace simq

#endif  // SIMQ_WORKLOAD_GENERATORS_H_
