#include "net/protocol.h"

#include <cstring>

#include "net/wire.h"
#include "util/crc32.h"

namespace simq {
namespace net {

namespace {

// Bytes [8, 16) of the header -- opcode, flags, reserved, request id --
// are covered by the frame CRC alongside the payload.
uint32_t FrameCrc(uint8_t opcode, uint8_t flags, uint16_t reserved,
                  uint32_t request_id, const uint8_t* payload,
                  size_t payload_len) {
  uint8_t dispatch[8];
  dispatch[0] = opcode;
  dispatch[1] = flags;
  dispatch[2] = static_cast<uint8_t>(reserved);
  dispatch[3] = static_cast<uint8_t>(reserved >> 8);
  dispatch[4] = static_cast<uint8_t>(request_id);
  dispatch[5] = static_cast<uint8_t>(request_id >> 8);
  dispatch[6] = static_cast<uint8_t>(request_id >> 16);
  dispatch[7] = static_cast<uint8_t>(request_id >> 24);
  uint32_t crc = Crc32(dispatch, sizeof(dispatch));
  if (payload_len > 0) {
    crc = Crc32(payload, payload_len, crc);
  }
  return crc;
}

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed ") + what +
                                 " payload");
}

// Shared epilogue of every decoder: the payload must decode exactly.
Status FinishDecode(const WireReader& reader, const char* what) {
  if (!reader.ok() || reader.remaining() != 0) {
    return Malformed(what);
  }
  return Status::Ok();
}

}  // namespace

bool IsClientOpcode(uint8_t opcode) {
  switch (static_cast<Opcode>(opcode)) {
    case Opcode::kHello:
    case Opcode::kPrepare:
    case Opcode::kExec:
    case Opcode::kFetch:
    case Opcode::kCancel:
    case Opcode::kStats:
    case Opcode::kMetrics:
    case Opcode::kStatements:
    case Opcode::kCloseCursor:
    case Opcode::kGoodbye:
      return true;
    default:
      return false;
  }
}

HeaderStatus ParseHeader(const uint8_t* data, size_t size,
                         uint32_t max_payload, FrameHeader* out) {
  if (size < kHeaderSize) {
    return HeaderStatus::kNeedMore;
  }
  WireReader reader(data, kHeaderSize);
  const uint32_t magic = reader.U32();
  out->payload_len = reader.U32();
  out->opcode = reader.U8();
  out->flags = reader.U8();
  out->reserved = reader.U16();
  out->request_id = reader.U32();
  out->crc = reader.U32();
  if (magic != kMagic) {
    return HeaderStatus::kBadMagic;
  }
  if (out->payload_len > max_payload) {
    return HeaderStatus::kBadLength;
  }
  if (out->flags != 0 || out->reserved != 0) {
    return HeaderStatus::kBadReserved;
  }
  return HeaderStatus::kOk;
}

bool CrcMatches(const FrameHeader& header, const uint8_t* payload) {
  return header.crc == FrameCrc(header.opcode, header.flags, header.reserved,
                                header.request_id, payload,
                                header.payload_len);
}

void AppendFrame(std::vector<uint8_t>* out, Opcode opcode,
                 uint32_t request_id, const uint8_t* payload,
                 size_t payload_len) {
  WireWriter w(out);
  w.U32(kMagic);
  w.U32(static_cast<uint32_t>(payload_len));
  w.U8(static_cast<uint8_t>(opcode));
  w.U8(0);   // flags
  w.U16(0);  // reserved
  w.U32(request_id);
  w.U32(FrameCrc(static_cast<uint8_t>(opcode), 0, 0, request_id, payload,
                 payload_len));
  if (payload_len > 0) {
    w.Bytes(payload, payload_len);
  }
}

std::vector<uint8_t> BuildFrame(Opcode opcode, uint32_t request_id,
                                const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  out.reserve(kHeaderSize + payload.size());
  AppendFrame(&out, opcode, request_id,
              payload.empty() ? nullptr : payload.data(), payload.size());
  return out;
}

// ---------------------------------------------------------------------------
// Payload codecs
// ---------------------------------------------------------------------------

std::vector<uint8_t> EncodeHello(const HelloRequest& hello) {
  WireWriter w;
  w.U16(hello.min_version);
  w.U16(hello.max_version);
  return w.Take();
}

Status DecodeHello(const uint8_t* payload, size_t size, HelloRequest* out) {
  WireReader r(payload, size);
  out->min_version = r.U16();
  out->max_version = r.U16();
  return FinishDecode(r, "HELLO");
}

std::vector<uint8_t> EncodeHelloAck(const HelloAck& ack) {
  WireWriter w;
  w.U16(ack.version);
  w.U32(ack.max_payload);
  w.U32(ack.default_page_rows);
  return w.Take();
}

Status DecodeHelloAck(const uint8_t* payload, size_t size, HelloAck* out) {
  WireReader r(payload, size);
  out->version = r.U16();
  out->max_payload = r.U32();
  out->default_page_rows = r.U32();
  return FinishDecode(r, "HELLO_ACK");
}

std::vector<uint8_t> EncodePrepare(const PrepareRequest& req) {
  WireWriter w;
  w.String(req.text);
  return w.Take();
}

Status DecodePrepare(const uint8_t* payload, size_t size,
                     PrepareRequest* out) {
  WireReader r(payload, size);
  out->text = r.String();
  return FinishDecode(r, "PREPARE");
}

std::vector<uint8_t> EncodePrepareAck(const PrepareAck& ack) {
  WireWriter w;
  w.U64(ack.statement_id);
  return w.Take();
}

Status DecodePrepareAck(const uint8_t* payload, size_t size,
                        PrepareAck* out) {
  WireReader r(payload, size);
  out->statement_id = r.U64();
  return FinishDecode(r, "PREPARE_ACK");
}

std::vector<uint8_t> EncodeExec(const ExecRequest& req) {
  WireWriter w;
  w.U8(req.prepared ? 1 : 0);
  w.F64(req.deadline_ms);
  w.U32(req.page_rows);
  if (!req.prepared) {
    w.String(req.text);
  } else {
    w.U64(req.statement_id);
    w.U8(req.epsilon.has_value() ? 1 : 0);
    if (req.epsilon.has_value()) {
      w.F64(*req.epsilon);
    }
    w.U8(req.k.has_value() ? 1 : 0);
    if (req.k.has_value()) {
      w.I32(*req.k);
    }
    w.U8(req.has_series ? 1 : 0);
    if (req.has_series) {
      w.U32(static_cast<uint32_t>(req.series.size()));
      for (double v : req.series) {
        w.F64(v);
      }
    }
  }
  return w.Take();
}

Status DecodeExec(const uint8_t* payload, size_t size, ExecRequest* out) {
  WireReader r(payload, size);
  const uint8_t prepared = r.U8();
  if (r.ok() && prepared > 1) {
    return Malformed("EXEC");
  }
  out->prepared = prepared == 1;
  out->deadline_ms = r.F64();
  out->page_rows = r.U32();
  if (!out->prepared) {
    out->text = r.String();
  } else {
    out->statement_id = r.U64();
    if (r.U8() != 0) {
      out->epsilon = r.F64();
    }
    if (r.U8() != 0) {
      out->k = r.I32();
    }
    out->has_series = r.U8() != 0;
    if (out->has_series) {
      const uint32_t n = r.U32();
      // The count must be consistent with the bytes actually present
      // before anything is allocated for it.
      if (!r.ok() || static_cast<size_t>(n) * 8 != r.remaining()) {
        return Malformed("EXEC");
      }
      out->series.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        out->series[i] = r.F64();
      }
    }
  }
  return FinishDecode(r, "EXEC");
}

std::vector<uint8_t> EncodeResultPage(const ResultPage& page) {
  WireWriter w;
  w.U8(page.kind);
  w.U8(page.has_more ? 1 : 0);
  w.U64(page.cursor_id);
  w.U64(page.total_rows);
  if (page.kind == 0) {
    const uint32_t n = static_cast<uint32_t>(page.matches.size());
    w.U32(n);
    // Column-major: the id and distance columns are written as contiguous
    // runs straight from the result rows, names after (variable-length).
    for (const Match& m : page.matches) {
      w.I64(m.id);
    }
    for (const Match& m : page.matches) {
      w.F64(m.distance);
    }
    for (const Match& m : page.matches) {
      w.U16(static_cast<uint16_t>(
          m.name.size() > 0xFFFF ? 0xFFFF : m.name.size()));
      w.Bytes(m.name.data(), m.name.size() > 0xFFFF ? 0xFFFF : m.name.size());
    }
  } else {
    const uint32_t n = static_cast<uint32_t>(page.pairs.size());
    w.U32(n);
    for (const PairMatch& p : page.pairs) {
      w.I64(p.first);
    }
    for (const PairMatch& p : page.pairs) {
      w.I64(p.second);
    }
    for (const PairMatch& p : page.pairs) {
      w.F64(p.distance);
    }
  }
  return w.Take();
}

Status DecodeResultPage(const uint8_t* payload, size_t size,
                        ResultPage* out) {
  WireReader r(payload, size);
  out->kind = r.U8();
  if (r.ok() && out->kind > 1) {
    return Malformed("RESULT");
  }
  out->has_more = r.U8() != 0;
  out->cursor_id = r.U64();
  out->total_rows = r.U64();
  const uint32_t n = r.U32();
  // Reject a row count the remaining bytes cannot possibly hold before
  // sizing any vector from it (16 bytes/row is the smallest layout).
  if (!r.ok() || static_cast<size_t>(n) * 16 > r.remaining()) {
    return Malformed("RESULT");
  }
  if (out->kind == 0) {
    out->matches.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      out->matches[i].id = r.I64();
    }
    for (uint32_t i = 0; i < n; ++i) {
      out->matches[i].distance = r.F64();
    }
    for (uint32_t i = 0; i < n; ++i) {
      const uint16_t len = r.U16();
      if (!r.ok() || len > r.remaining()) {
        return Malformed("RESULT");
      }
      out->matches[i].name.assign(
          reinterpret_cast<const char*>(payload + (size - r.remaining())),
          len);
      for (uint16_t b = 0; b < len; ++b) {
        r.U8();
      }
    }
  } else {
    out->pairs.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      out->pairs[i].first = r.I64();
    }
    for (uint32_t i = 0; i < n; ++i) {
      out->pairs[i].second = r.I64();
    }
    for (uint32_t i = 0; i < n; ++i) {
      out->pairs[i].distance = r.F64();
    }
  }
  return FinishDecode(r, "RESULT");
}

std::vector<uint8_t> EncodeFetch(const FetchRequest& req) {
  WireWriter w;
  w.U64(req.cursor_id);
  w.U32(req.page_rows);
  return w.Take();
}

Status DecodeFetch(const uint8_t* payload, size_t size, FetchRequest* out) {
  WireReader r(payload, size);
  out->cursor_id = r.U64();
  out->page_rows = r.U32();
  return FinishDecode(r, "FETCH");
}

std::vector<uint8_t> EncodeCloseCursor(const CloseCursorRequest& req) {
  WireWriter w;
  w.U64(req.cursor_id);
  return w.Take();
}

Status DecodeCloseCursor(const uint8_t* payload, size_t size,
                         CloseCursorRequest* out) {
  WireReader r(payload, size);
  out->cursor_id = r.U64();
  return FinishDecode(r, "CLOSE_CURSOR");
}

std::vector<uint8_t> EncodeError(const ErrorInfo& error) {
  WireWriter w;
  w.U16(error.code);
  w.String(error.message);
  return w.Take();
}

Status DecodeError(const uint8_t* payload, size_t size, ErrorInfo* out) {
  WireReader r(payload, size);
  out->code = r.U16();
  out->message = r.String();
  return FinishDecode(r, "ERROR");
}

std::vector<uint8_t> EncodeStats(const WireStats& stats) {
  WireWriter w;
  w.U64(stats.queries);
  w.U64(stats.mutations);
  w.U64(stats.timeouts);
  w.U64(stats.cancellations);
  w.U64(stats.overloaded);
  w.U64(stats.cache_hits);
  w.U64(stats.cache_misses);
  w.F64(stats.latency_p50_ms);
  w.F64(stats.latency_p95_ms);
  w.F64(stats.latency_p99_ms);
  w.U64(stats.connections_accepted);
  w.U64(stats.connections_active);
  w.U64(stats.connections_shed);
  w.U64(stats.connections_timed_out);
  w.U64(stats.requests_shed);
  w.U64(stats.bytes_in);
  w.U64(stats.bytes_out);
  return w.Take();
}

Status DecodeStats(const uint8_t* payload, size_t size, WireStats* out) {
  WireReader r(payload, size);
  out->queries = r.U64();
  out->mutations = r.U64();
  out->timeouts = r.U64();
  out->cancellations = r.U64();
  out->overloaded = r.U64();
  out->cache_hits = r.U64();
  out->cache_misses = r.U64();
  out->latency_p50_ms = r.F64();
  out->latency_p95_ms = r.F64();
  out->latency_p99_ms = r.F64();
  out->connections_accepted = r.U64();
  out->connections_active = r.U64();
  out->connections_shed = r.U64();
  out->connections_timed_out = r.U64();
  out->requests_shed = r.U64();
  out->bytes_in = r.U64();
  out->bytes_out = r.U64();
  return FinishDecode(r, "STATS_ACK");
}

std::vector<uint8_t> EncodeMetrics(const std::vector<WireMetric>& metrics) {
  WireWriter w;
  w.U32(static_cast<uint32_t>(metrics.size()));
  for (const WireMetric& metric : metrics) {
    w.String(metric.name);
    w.U8(metric.type);
    w.F64(metric.value);
  }
  return w.Take();
}

Status DecodeMetrics(const uint8_t* payload, size_t size,
                     std::vector<WireMetric>* out) {
  WireReader r(payload, size);
  const uint32_t count = r.U32();
  // Cheapest possible sample is an empty name (4 bytes) + type + value:
  // reject counts the payload cannot possibly hold before reserving.
  if (!r.ok() || static_cast<uint64_t>(count) * 13 > r.remaining()) {
    return Malformed("METRICS_ACK");
  }
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WireMetric metric;
    metric.name = r.String();
    metric.type = r.U8();
    metric.value = r.F64();
    out->push_back(std::move(metric));
  }
  return FinishDecode(r, "METRICS_ACK");
}

namespace {

void WriteUsage(WireWriter* w, const obs::ResourceUsage& usage) {
  w->I64(usage.rows_scanned);
  w->I64(usage.candidates);
  w->I64(usage.exact_checks);
  w->I64(usage.delta_rows_merged);
  w->I64(usage.result_bytes);
  w->I64(usage.cpu_ns);
  w->I64(usage.pool_tasks);
  w->I64(usage.peak_parallelism);
}

void ReadUsage(WireReader* r, obs::ResourceUsage* usage) {
  usage->rows_scanned = r->I64();
  usage->candidates = r->I64();
  usage->exact_checks = r->I64();
  usage->delta_rows_merged = r->I64();
  usage->result_bytes = r->I64();
  usage->cpu_ns = r->I64();
  usage->pool_tasks = r->I64();
  usage->peak_parallelism = r->I64();
}

}  // namespace

std::vector<uint8_t> EncodeStatementsRequest(
    const StatementsRequest& request) {
  WireWriter w;
  w.U32(request.top_n);
  return w.Take();
}

Status DecodeStatementsRequest(const uint8_t* payload, size_t size,
                               StatementsRequest* out) {
  WireReader r(payload, size);
  out->top_n = r.U32();
  return FinishDecode(r, "STATEMENTS");
}

std::vector<uint8_t> EncodeStatements(
    const std::vector<WireStatementRow>& rows) {
  WireWriter w;
  w.U32(static_cast<uint32_t>(rows.size()));
  for (const WireStatementRow& row : rows) {
    w.U64(row.fingerprint);
    w.String(row.text);
    w.U64(row.calls);
    w.U64(row.errors);
    w.U64(row.timeouts);
    w.U64(row.cancellations);
    w.U64(row.sheds);
    w.U64(row.cache_hits);
    w.F64(row.total_ms);
    w.F64(row.max_ms);
    w.F64(row.p50_ms);
    w.F64(row.p95_ms);
    w.F64(row.p99_ms);
    WriteUsage(&w, row.total);
    WriteUsage(&w, row.max);
  }
  return w.Take();
}

Status DecodeStatements(const uint8_t* payload, size_t size,
                        std::vector<WireStatementRow>* out) {
  WireReader r(payload, size);
  const uint32_t count = r.U32();
  // Cheapest possible row is 228 bytes (empty text): fingerprint + length
  // prefix + 6 counters + 5 doubles + two 8-field usage blocks. Reject
  // counts the payload cannot possibly hold before reserving for them.
  if (!r.ok() || static_cast<uint64_t>(count) * 228 > r.remaining()) {
    return Malformed("STATEMENTS_ACK");
  }
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WireStatementRow row;
    row.fingerprint = r.U64();
    row.text = r.String();
    row.calls = r.U64();
    row.errors = r.U64();
    row.timeouts = r.U64();
    row.cancellations = r.U64();
    row.sheds = r.U64();
    row.cache_hits = r.U64();
    row.total_ms = r.F64();
    row.max_ms = r.F64();
    row.p50_ms = r.F64();
    row.p95_ms = r.F64();
    row.p99_ms = r.F64();
    ReadUsage(&r, &row.total);
    ReadUsage(&r, &row.max);
    out->push_back(std::move(row));
  }
  return FinishDecode(r, "STATEMENTS_ACK");
}

Status StatusFromWire(const ErrorInfo& error) {
  StatusCode code = StatusCode::kInternal;
  if (error.code <= static_cast<uint16_t>(StatusCode::kIoError)) {
    code = static_cast<StatusCode>(error.code);
  }
  if (code == StatusCode::kOk) {
    code = StatusCode::kInternal;  // an error frame is never OK
  }
  return Status(code, "[net] " + error.message);
}

ErrorInfo ErrorFromStatus(const Status& status) {
  ErrorInfo error;
  error.code = static_cast<uint16_t>(status.code());
  error.message = status.message();
  return error;
}

}  // namespace net
}  // namespace simq
