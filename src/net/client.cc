/// Implementation of the blocking SIMQNET1 client (net/client.h).

#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace simq {
namespace net {
namespace {

timeval TimevalFromMillis(double millis) {
  timeval tv;
  if (millis <= 0) {
    tv.tv_sec = 0;
    tv.tv_usec = 0;  // 0 disables the socket timeout (blocks forever)
    return tv;
  }
  tv.tv_sec = static_cast<time_t>(millis / 1000.0);
  tv.tv_usec = static_cast<suseconds_t>(
      (millis - static_cast<double>(tv.tv_sec) * 1000.0) * 1000.0);
  if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1000;
  return tv;
}

}  // namespace

NetClient::~NetClient() { Close(); }

Status NetClient::Connect(const std::string& host, uint16_t port,
                          const Options& options) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const timeval tv = TimevalFromMillis(options.io_timeout_ms);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status =
        Status::IoError(std::string("connect: ") + std::strerror(errno));
    Close();
    return status;
  }
  if (!options.handshake) return Status::Ok();

  HelloRequest hello;
  hello.min_version = options.min_version;
  hello.max_version = options.max_version;
  std::vector<uint8_t> ack_payload;
  const Status called =
      Call(Opcode::kHello, EncodeHello(hello), Opcode::kHelloAck,
           &ack_payload);
  if (!called.ok()) {
    Close();
    return called;
  }
  const Status decoded =
      DecodeHelloAck(ack_payload.data(), ack_payload.size(), &server_hello_);
  if (!decoded.ok()) {
    Close();
    return decoded;
  }
  return Status::Ok();
}

void NetClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inbuf_.clear();
  inbuf_off_ = 0;
  server_hello_ = HelloAck();
}

Status NetClient::SendRaw(const void* data, size_t size) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(fd_, p + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status NetClient::SendFrame(Opcode opcode, uint32_t request_id,
                            const std::vector<uint8_t>& payload) {
  const std::vector<uint8_t> frame = BuildFrame(opcode, request_id, payload);
  return SendRaw(frame.data(), frame.size());
}

Status NetClient::ReadFrame(FrameHeader* header,
                            std::vector<uint8_t>* payload) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  const uint32_t max_payload =
      server_hello_.max_payload > 0 ? server_hello_.max_payload
                                    : kDefaultMaxPayload;
  uint8_t buf[65536];
  for (;;) {
    const uint8_t* base = inbuf_.data() + inbuf_off_;
    const size_t avail = inbuf_.size() - inbuf_off_;
    FrameHeader parsed;
    const HeaderStatus hs = ParseHeader(base, avail, max_payload, &parsed);
    if (hs == HeaderStatus::kOk &&
        avail >= kHeaderSize + parsed.payload_len) {
      const uint8_t* body = base + kHeaderSize;
      if (!CrcMatches(parsed, body)) {
        return Status::Corruption("server frame CRC mismatch");
      }
      *header = parsed;
      payload->assign(body, body + parsed.payload_len);
      inbuf_off_ += kHeaderSize + parsed.payload_len;
      if (inbuf_off_ == inbuf_.size()) {
        inbuf_.clear();
        inbuf_off_ = 0;
      }
      return Status::Ok();
    }
    if (hs != HeaderStatus::kOk && hs != HeaderStatus::kNeedMore) {
      return Status::Corruption("malformed frame from server");
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      return Status::IoError("connection closed by server");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::Timeout("timed out waiting for a server frame");
      }
      return Status::IoError(std::string("recv: ") + std::strerror(errno));
    }
    inbuf_.insert(inbuf_.end(), buf, buf + n);
  }
}

Status NetClient::ShutdownWrite() {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  if (::shutdown(fd_, SHUT_WR) != 0) {
    return Status::IoError(std::string("shutdown: ") + std::strerror(errno));
  }
  return Status::Ok();
}

Status NetClient::Call(Opcode opcode, const std::vector<uint8_t>& payload,
                       Opcode expected_ack,
                       std::vector<uint8_t>* ack_payload) {
  const uint32_t request_id = NextRequestId();
  Status sent = SendFrame(opcode, request_id, payload);
  if (!sent.ok()) return sent;
  for (;;) {
    FrameHeader header;
    std::vector<uint8_t> body;
    const Status read = ReadFrame(&header, &body);
    if (!read.ok()) return read;
    const Opcode got = static_cast<Opcode>(header.opcode);
    if (got == Opcode::kError && header.request_id == request_id) {
      ErrorInfo error;
      const Status decoded = DecodeError(body.data(), body.size(), &error);
      if (!decoded.ok()) return decoded;
      return StatusFromWire(error);
    }
    if (got == expected_ack && header.request_id == request_id) {
      *ack_payload = std::move(body);
      return Status::Ok();
    }
    if (got == Opcode::kGoodbye) {
      return Status::IoError("server said goodbye mid-call");
    }
    // With one request in flight, anything else is a protocol breach.
    return Status::Corruption("unexpected frame from server");
  }
}

Result<uint64_t> NetClient::Prepare(const std::string& text) {
  PrepareRequest request;
  request.text = text;
  std::vector<uint8_t> body;
  const Status called =
      Call(Opcode::kPrepare, EncodePrepare(request), Opcode::kPrepareAck,
           &body);
  if (!called.ok()) return called;
  PrepareAck ack;
  const Status decoded = DecodePrepareAck(body.data(), body.size(), &ack);
  if (!decoded.ok()) return decoded;
  return ack.statement_id;
}

Result<ResultPage> NetClient::Exec(const ExecRequest& request) {
  std::vector<uint8_t> body;
  const Status called =
      Call(Opcode::kExec, EncodeExec(request), Opcode::kResult, &body);
  if (!called.ok()) return called;
  ResultPage page;
  const Status decoded = DecodeResultPage(body.data(), body.size(), &page);
  if (!decoded.ok()) return decoded;
  return page;
}

Result<QueryResult> NetClient::ExecAll(const ExecRequest& request) {
  Result<ResultPage> first = Exec(request);
  if (!first.ok()) return first.status();
  ResultPage page = std::move(first.value());
  QueryResult result;
  result.matches = std::move(page.matches);
  result.pairs = std::move(page.pairs);
  while (page.has_more) {
    Result<ResultPage> next = Fetch(page.cursor_id, 0);
    if (!next.ok()) return next.status();
    page = std::move(next.value());
    result.matches.insert(result.matches.end(), page.matches.begin(),
                          page.matches.end());
    result.pairs.insert(result.pairs.end(), page.pairs.begin(),
                        page.pairs.end());
  }
  return result;
}

Result<ResultPage> NetClient::Fetch(uint64_t cursor_id, uint32_t page_rows) {
  FetchRequest request;
  request.cursor_id = cursor_id;
  request.page_rows = page_rows;
  std::vector<uint8_t> body;
  const Status called =
      Call(Opcode::kFetch, EncodeFetch(request), Opcode::kResult, &body);
  if (!called.ok()) return called;
  ResultPage page;
  const Status decoded = DecodeResultPage(body.data(), body.size(), &page);
  if (!decoded.ok()) return decoded;
  return page;
}

Result<WireStats> NetClient::Stats() {
  std::vector<uint8_t> body;
  const Status called = Call(Opcode::kStats, {}, Opcode::kStatsAck, &body);
  if (!called.ok()) return called;
  WireStats stats;
  const Status decoded = DecodeStats(body.data(), body.size(), &stats);
  if (!decoded.ok()) return decoded;
  return stats;
}

Result<std::vector<WireMetric>> NetClient::Metrics() {
  std::vector<uint8_t> body;
  const Status called =
      Call(Opcode::kMetrics, {}, Opcode::kMetricsAck, &body);
  if (!called.ok()) return called;
  std::vector<WireMetric> metrics;
  const Status decoded = DecodeMetrics(body.data(), body.size(), &metrics);
  if (!decoded.ok()) return decoded;
  return metrics;
}

Result<std::vector<WireStatementRow>> NetClient::Statements(
    uint32_t top_n) {
  StatementsRequest request;
  request.top_n = top_n;
  std::vector<uint8_t> body;
  const Status called = Call(Opcode::kStatements,
                             EncodeStatementsRequest(request),
                             Opcode::kStatementsAck, &body);
  if (!called.ok()) return called;
  std::vector<WireStatementRow> rows;
  const Status decoded = DecodeStatements(body.data(), body.size(), &rows);
  if (!decoded.ok()) return decoded;
  return rows;
}

Status NetClient::Cancel() {
  std::vector<uint8_t> body;
  return Call(Opcode::kCancel, {}, Opcode::kCancelAck, &body);
}

Status NetClient::CloseCursor(uint64_t cursor_id) {
  CloseCursorRequest request;
  request.cursor_id = cursor_id;
  std::vector<uint8_t> body;
  return Call(Opcode::kCloseCursor, EncodeCloseCursor(request),
              Opcode::kCloseCursorAck, &body);
}

Status NetClient::Goodbye() {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  const Status sent = SendFrame(Opcode::kGoodbye, NextRequestId(), {});
  if (!sent.ok()) return sent;
  for (;;) {
    FrameHeader header;
    std::vector<uint8_t> body;
    const Status read = ReadFrame(&header, &body);
    if (!read.ok()) {
      // Clean EOF counts as an orderly goodbye from an older server.
      Close();
      return read.code() == StatusCode::kIoError ? Status::Ok() : read;
    }
    if (static_cast<Opcode>(header.opcode) == Opcode::kGoodbye) {
      Close();
      return Status::Ok();
    }
    // Late responses to cancelled/abandoned requests may still flush
    // ahead of the goodbye; drain them.
  }
}

}  // namespace net
}  // namespace simq
