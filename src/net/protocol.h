/// SIMQNET1: the length-prefixed, CRC-checked binary protocol the network
/// server (net/server.h) speaks over TCP. docs/PROTOCOL.md is the
/// normative wire description; this header is its executable form.
///
/// Every frame is
///
///   offset  size  field
///   0       4     magic "SQN1" (0x314E5153 as a little-endian u32)
///   4       4     payload length (bounded by the negotiated max payload)
///   8       1     opcode
///   9       1     flags (must be 0 in version 1)
///   10      2     reserved (must be 0 in version 1)
///   12      4     request id (client-chosen; echoed by every response;
///                 0 on server-initiated frames)
///   16      4     CRC32 of header bytes [8, 16) plus the payload
///   20      ...   payload
///
/// with all integers little-endian. The CRC covers the dispatch-relevant
/// header fields and the payload, so a flipped opcode or request id is
/// detected exactly like a flipped payload byte; magic and length are
/// validated structurally before the CRC is checked. Validation severity
/// is two-tier, and the distinction is the contract fuzzing leans on:
///
///  * Framing errors (bad magic, oversized length, bad CRC, nonzero
///    flags/reserved) mean the byte stream cannot be trusted to be in
///    sync: the server stops reading, answers every request admitted
///    before the poison bytes, then sends one kError frame (request id
///    0, kCorruption) and closes the connection.
///  * Semantic errors inside a well-framed frame (unknown opcode, a
///    payload that fails to decode, an unknown statement or cursor id, an
///    engine error) are typed kError responses on a connection that stays
///    open -- pipelined valid requests before and after are unaffected.
///
/// Payload codecs in this header are pure functions over byte vectors
/// (net/wire.h); they allocate nothing global, and every decoder rejects
/// trailing garbage, so a frame either decodes exactly or fails cleanly.

#ifndef SIMQ_NET_PROTOCOL_H_
#define SIMQ_NET_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/query.h"
#include "obs/resource_usage.h"
#include "util/status.h"

namespace simq {
namespace net {

/// "SQN1" read as a little-endian u32.
constexpr uint32_t kMagic = 0x314E5153u;
/// Protocol versions this build can speak (HELLO negotiates within).
constexpr uint16_t kVersionMin = 1;
constexpr uint16_t kVersionMax = 1;
/// Fixed frame header size in bytes.
constexpr size_t kHeaderSize = 20;
/// Default ceiling on a single frame's payload; both sides enforce it.
constexpr uint32_t kDefaultMaxPayload = 8u << 20;

enum class Opcode : uint8_t {
  kHello = 1,         // client->server: version range
  kHelloAck = 2,      // server->client: chosen version + limits
  kPrepare = 3,       // client->server: statement text
  kPrepareAck = 4,    // server->client: statement id
  kExec = 5,          // client->server: one-shot or prepared execution
  kResult = 6,        // server->client: one page of an answer set
  kFetch = 7,         // client->server: next page of a cursor
  kCancel = 8,        // client->server: cancel everything in flight
  kCancelAck = 9,     // server->client
  kStats = 10,        // client->server: service + connection counters
  kStatsAck = 11,     // server->client
  kCloseCursor = 12,  // client->server: drop a cursor early (idempotent)
  kCloseCursorAck = 13,  // server->client
  kGoodbye = 14,      // either direction: orderly close after flush
  kError = 15,        // server->client: typed Status for a request
  kMetrics = 16,      // client->server: full metric registry snapshot
  kMetricsAck = 17,   // server->client
  kStatements = 18,   // client->server: statements-table snapshot
  kStatementsAck = 19,  // server->client
};

/// True for opcodes a client may legally send.
bool IsClientOpcode(uint8_t opcode);

/// Decoded fixed-size frame header (see the layout above).
struct FrameHeader {
  uint32_t payload_len = 0;
  uint8_t opcode = 0;
  uint8_t flags = 0;
  uint16_t reserved = 0;
  uint32_t request_id = 0;
  uint32_t crc = 0;
};

/// Outcome of parsing kHeaderSize bytes; anything but kOk / kNeedMore is a
/// framing error (connection-fatal by protocol contract).
enum class HeaderStatus {
  kOk,
  kNeedMore,     // fewer than kHeaderSize bytes available
  kBadMagic,
  kBadLength,    // payload length exceeds the frame size limit
  kBadReserved,  // nonzero flags or reserved bits in version 1
};

/// Parses and structurally validates a frame header from `data`.
HeaderStatus ParseHeader(const uint8_t* data, size_t size,
                         uint32_t max_payload, FrameHeader* out);

/// True iff `header.crc` matches the CRC computed over the dispatch
/// fields and `payload` (which must be `header.payload_len` bytes).
bool CrcMatches(const FrameHeader& header, const uint8_t* payload);

/// Appends one complete frame (header + payload) to `out`.
void AppendFrame(std::vector<uint8_t>* out, Opcode opcode,
                 uint32_t request_id, const uint8_t* payload,
                 size_t payload_len);
std::vector<uint8_t> BuildFrame(Opcode opcode, uint32_t request_id,
                                const std::vector<uint8_t>& payload);

// ---------------------------------------------------------------------------
// Payloads. Encode* returns payload bytes; Decode* validates that the
// payload decodes exactly (no truncation, no trailing garbage).
// ---------------------------------------------------------------------------

struct HelloRequest {
  uint16_t min_version = kVersionMin;
  uint16_t max_version = kVersionMax;
};

struct HelloAck {
  uint16_t version = kVersionMax;
  uint32_t max_payload = kDefaultMaxPayload;
  uint32_t default_page_rows = 0;
};

struct PrepareRequest {
  std::string text;
};

struct PrepareAck {
  uint64_t statement_id = 0;
};

/// One execution request: a one-shot query text or a prepared statement
/// with optional parameter bindings. `deadline_ms <= 0` defers to the
/// server's default deadline; `page_rows == 0` defers to the server's
/// default page size.
struct ExecRequest {
  bool prepared = false;
  double deadline_ms = 0.0;
  uint32_t page_rows = 0;
  std::string text;            // !prepared
  uint64_t statement_id = 0;   // prepared
  std::optional<double> epsilon;
  std::optional<int32_t> k;
  bool has_series = false;
  std::vector<double> series;
};

/// One page of an answer set. `cursor_id != 0` with `has_more` means the
/// rest is fetchable; the final page of a cursor carries the id with
/// has_more == false so the client knows which cursor just completed.
struct ResultPage {
  uint8_t kind = 0;  // 0 = matches (range/nearest), 1 = pairs
  bool has_more = false;
  uint64_t cursor_id = 0;
  uint64_t total_rows = 0;
  std::vector<Match> matches;
  std::vector<PairMatch> pairs;
};

struct FetchRequest {
  uint64_t cursor_id = 0;
  uint32_t page_rows = 0;
};

struct CloseCursorRequest {
  uint64_t cursor_id = 0;
};

struct ErrorInfo {
  uint16_t code = 0;  // StatusCode numeric value
  std::string message;
};

/// Service + connection counters surfaced over the wire (a stable subset
/// of ServiceStats; see docs/PROTOCOL.md for field semantics).
struct WireStats {
  uint64_t queries = 0;
  uint64_t mutations = 0;
  uint64_t timeouts = 0;
  uint64_t cancellations = 0;
  uint64_t overloaded = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;
  uint64_t connections_shed = 0;
  uint64_t connections_timed_out = 0;
  uint64_t requests_shed = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
};

/// One metric in a kMetricsAck payload: the registry snapshot flattened
/// to (name, type, value) samples. Histograms are exported as derived
/// scalar samples (`_count`, `_sum_ms`, `_p50`, `_p95`, `_p99` suffixes)
/// so the frame stays a flat list; the Prometheus text exposition is the
/// lossless surface. `type` is the MetricSample::Type numeric value of
/// the sample as sent (derived histogram scalars are gauges).
struct WireMetric {
  std::string name;
  uint8_t type = 0;  // 0 = counter, 1 = gauge
  double value = 0.0;
};

/// kStatements request: how many rows the client wants (0 = all).
struct StatementsRequest {
  uint32_t top_n = 0;
};

/// One statements-table row in a kStatementsAck payload. Rows arrive in
/// exactly StatementsTable::Top's order (total_ms descending; ties by
/// calls, then fingerprint). The latency percentiles ride pre-derived so
/// every surface -- shell, wire, HTTP JSON -- reports identical doubles,
/// and the two ResourceUsage blocks are the table's exact summed /
/// maximum integers (docs/PROTOCOL.md "STATEMENTS").
struct WireStatementRow {
  uint64_t fingerprint = 0;
  std::string text;  // canonical text sample, <= kStatementTextCap
  uint64_t calls = 0;
  uint64_t errors = 0;
  uint64_t timeouts = 0;
  uint64_t cancellations = 0;
  uint64_t sheds = 0;
  uint64_t cache_hits = 0;
  double total_ms = 0.0;
  double max_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  obs::ResourceUsage total;
  obs::ResourceUsage max;
};

std::vector<uint8_t> EncodeHello(const HelloRequest& hello);
Status DecodeHello(const uint8_t* payload, size_t size, HelloRequest* out);

std::vector<uint8_t> EncodeHelloAck(const HelloAck& ack);
Status DecodeHelloAck(const uint8_t* payload, size_t size, HelloAck* out);

std::vector<uint8_t> EncodePrepare(const PrepareRequest& req);
Status DecodePrepare(const uint8_t* payload, size_t size,
                     PrepareRequest* out);

std::vector<uint8_t> EncodePrepareAck(const PrepareAck& ack);
Status DecodePrepareAck(const uint8_t* payload, size_t size,
                        PrepareAck* out);

std::vector<uint8_t> EncodeExec(const ExecRequest& req);
Status DecodeExec(const uint8_t* payload, size_t size, ExecRequest* out);

std::vector<uint8_t> EncodeResultPage(const ResultPage& page);
Status DecodeResultPage(const uint8_t* payload, size_t size,
                        ResultPage* out);

std::vector<uint8_t> EncodeFetch(const FetchRequest& req);
Status DecodeFetch(const uint8_t* payload, size_t size, FetchRequest* out);

std::vector<uint8_t> EncodeCloseCursor(const CloseCursorRequest& req);
Status DecodeCloseCursor(const uint8_t* payload, size_t size,
                         CloseCursorRequest* out);

std::vector<uint8_t> EncodeError(const ErrorInfo& error);
Status DecodeError(const uint8_t* payload, size_t size, ErrorInfo* out);

std::vector<uint8_t> EncodeStats(const WireStats& stats);
Status DecodeStats(const uint8_t* payload, size_t size, WireStats* out);

std::vector<uint8_t> EncodeMetrics(const std::vector<WireMetric>& metrics);
Status DecodeMetrics(const uint8_t* payload, size_t size,
                     std::vector<WireMetric>* out);

std::vector<uint8_t> EncodeStatementsRequest(
    const StatementsRequest& request);
Status DecodeStatementsRequest(const uint8_t* payload, size_t size,
                               StatementsRequest* out);

std::vector<uint8_t> EncodeStatements(
    const std::vector<WireStatementRow>& rows);
Status DecodeStatements(const uint8_t* payload, size_t size,
                        std::vector<WireStatementRow>* out);

/// Reconstructs a typed Status from a wire error frame ("[net] " is
/// prefixed so a caller can tell a server-reported error from a local
/// one). An out-of-range code maps to kInternal.
Status StatusFromWire(const ErrorInfo& error);
ErrorInfo ErrorFromStatus(const Status& status);

}  // namespace net
}  // namespace simq

#endif  // SIMQ_NET_PROTOCOL_H_
