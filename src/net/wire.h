/// Little-endian wire primitives for the SIMQNET1 protocol
/// (net/protocol.h): a growing byte writer and a bounds-checked reader.
///
/// Every multi-byte integer and double on the wire is little-endian,
/// assembled and disassembled byte-by-byte so the codec is
/// endianness-portable and never reads through a misaligned pointer
/// (important under UBSan -- frame payloads arrive at arbitrary offsets
/// inside the connection's input buffer).
///
/// WireReader follows the "poisoned stream" idiom: the first out-of-bounds
/// read marks the reader failed and every subsequent read returns zeros.
/// Decoders check ok() once at the end (plus remaining() == 0 when the
/// payload must be consumed exactly) instead of branching per field, which
/// keeps malformed-input handling uniform: no partial state ever escapes a
/// decoder whose reader failed. Both types are header-only and allocation
/// is confined to the writer's vector.

#ifndef SIMQ_NET_WIRE_H_
#define SIMQ_NET_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace simq {
namespace net {

/// Appends little-endian scalars to a byte buffer.
class WireWriter {
 public:
  WireWriter() = default;
  explicit WireWriter(std::vector<uint8_t>* out) : external_(out) {}

  void U8(uint8_t v) { buf().push_back(v); }
  void U16(uint16_t v) {
    buf().push_back(static_cast<uint8_t>(v));
    buf().push_back(static_cast<uint8_t>(v >> 8));
  }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf().push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf().push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Bytes(const void* data, size_t size) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    buf().insert(buf().end(), p, p + size);
  }
  /// u32 length prefix + bytes.
  void String(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Bytes(s.data(), s.size());
  }

  const std::vector<uint8_t>& data() const { return *buffer(); }
  std::vector<uint8_t> Take() { return std::move(owned_); }

 private:
  std::vector<uint8_t>& buf() { return *buffer(); }
  const std::vector<uint8_t>* buffer() const {
    return external_ != nullptr ? external_ : &owned_;
  }
  std::vector<uint8_t>* buffer() {
    return external_ != nullptr ? external_ : &owned_;
  }

  std::vector<uint8_t> owned_;
  std::vector<uint8_t>* external_ = nullptr;
};

/// Bounds-checked little-endian reader over a borrowed byte range.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - off_; }

  uint8_t U8() {
    uint8_t v = 0;
    Copy(&v, 1);
    return v;
  }
  uint16_t U16() {
    uint8_t b[2] = {0, 0};
    Copy(b, 2);
    return static_cast<uint16_t>(b[0] | (b[1] << 8));
  }
  uint32_t U32() {
    uint8_t b[4] = {0, 0, 0, 0};
    Copy(b, 4);
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) | b[i];
    }
    return v;
  }
  uint64_t U64() {
    uint8_t b[8] = {0};
    Copy(b, 8);
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | b[i];
    }
    return v;
  }
  int32_t I32() { return static_cast<int32_t>(U32()); }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64() {
    const uint64_t bits = U64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  /// u32 length prefix + bytes; an over-long length poisons the reader.
  std::string String() {
    const uint32_t len = U32();
    if (!ok_ || len > remaining()) {
      ok_ = false;
      return std::string();
    }
    std::string s(reinterpret_cast<const char*>(data_ + off_), len);
    off_ += len;
    return s;
  }

 private:
  void Copy(void* out, size_t n) {
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return;
    }
    std::memcpy(out, data_ + off_, n);
    off_ += n;
  }

  const uint8_t* data_;
  size_t size_;
  size_t off_ = 0;
  bool ok_ = true;
};

}  // namespace net
}  // namespace simq

#endif  // SIMQ_NET_WIRE_H_
