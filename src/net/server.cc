/// Implementation of the SIMQNET1 epoll server (net/server.h).
///
/// Everything except WorkerLoop runs on the Run() thread; the executor
/// threads touch only the work queue, the completion queue, the wake
/// eventfd, and their WorkItem's Session (internally synchronized).
/// Connections are keyed by a monotonically increasing serial id -- the
/// epoll user data -- never by fd, so a recycled fd can never route a
/// stale event or completion to the wrong connection.

#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "util/failpoint.h"

namespace simq {
namespace net {
namespace {

using Clock = std::chrono::steady_clock;

// epoll user-data tags for the two non-connection fds; connection serial
// ids start above them.
constexpr uint64_t kListenTag = 0;
constexpr uint64_t kWakeTag = 1;
constexpr uint64_t kFirstConnId = 2;

constexpr size_t kMaxWritevSegments = 16;
// recv() calls serviced per readable event before yielding back to the
// loop, so one firehose connection cannot starve the others.
constexpr int kMaxReadBurst = 8;

double MillisSince(Clock::time_point then, Clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - then).count();
}

std::atomic<NetServer*> g_signal_server{nullptr};

void HandleShutdownSignal(int) {
  NetServer* server = g_signal_server.load(std::memory_order_acquire);
  if (server != nullptr) {
    server->Shutdown();
  }
}

}  // namespace

struct NetServer::Cursor {
  uint8_t kind = 0;  // ResultPage::kind of the spilled answer set
  QueryResult result;
  size_t offset = 0;  // rows already returned
};

struct NetServer::PendingExec {
  uint32_t request_id = 0;
  ExecRequest request;
  std::shared_ptr<std::atomic<bool>> cancelled;
};

struct NetServer::WorkItem {
  uint64_t conn_id = 0;
  uint32_t request_id = 0;
  uint32_t page_rows = 0;
  std::shared_ptr<Session> session;
  ExecRequest request;
  std::shared_ptr<std::atomic<bool>> cancelled;
};

struct NetServer::Completion {
  uint64_t conn_id = 0;
  uint32_t request_id = 0;
  uint32_t page_rows = 0;
  Status status;       // non-OK on failure
  QueryResult result;  // meaningful only when status.ok()
};

struct NetServer::Conn {
  struct OutSeg {
    std::shared_ptr<std::vector<uint8_t>> data;
    size_t offset = 0;  // bytes of *data already written
  };

  uint64_t id = 0;
  int fd = -1;
  std::shared_ptr<Session> session;

  std::vector<uint8_t> in;
  size_t in_off = 0;  // consumed prefix of `in`

  std::deque<OutSeg> out;
  size_t out_bytes = 0;  // total unwritten bytes across `out`

  bool hello_done = false;
  bool reading_stopped = false;  // goodbye or fatal error: input is discarded
  bool closing = false;          // close as soon as the output flushes
  bool goodbye_requested = false;
  bool goodbye_sent = false;
  // A framing error was detected; the kError(rid 0) frame and the close
  // are deferred until admitted requests have been answered.
  bool fatal_pending = false;
  Status fatal_status;
  // The peer half-closed (EOF on read); close after admitted requests
  // have been answered and flushed.
  bool peer_closed = false;

  // At most one execution per connection is inside the service at a time;
  // the rest wait in `pending`. That is what keeps pipelined responses
  // strictly FIFO without any reordering machinery.
  bool inflight = false;
  uint32_t inflight_request_id = 0;
  std::shared_ptr<std::atomic<bool>> inflight_cancel;
  bool cancel_pending = false;  // ResetCancel deferred to the completion
  std::deque<PendingExec> pending;

  std::unordered_map<uint64_t, Cursor> cursors;
  std::deque<uint64_t> cursor_order;  // insertion order, for eviction
  uint64_t next_cursor_id = 1;

  Clock::time_point last_read;
  Clock::time_point last_write;
  uint32_t interest = ~0u;  // impossible mask: first UpdateInterest applies
};

NetServer::NetServer(QueryService* service, NetServerOptions options)
    : service_(service), options_(std::move(options)) {}

NetServer::~NetServer() {
  NetServer* self = this;
  g_signal_server.compare_exchange_strong(self, nullptr);
  StopWorkers();
  for (auto& entry : conns_) {
    if (entry.second->fd >= 0) {
      ::close(entry.second->fd);
    }
  }
  conns_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status NetServer::Start() {
  // A dead peer must surface as an EPIPE write error, not a SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);

  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IoError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 256) != 0) {
    return Status::IoError(std::string("listen: ") + std::strerror(errno));
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  std::memset(&bound, 0, sizeof(bound));
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return Status::IoError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::IoError(std::string("epoll_create1: ") +
                           std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    return Status::IoError(std::string("eventfd: ") + std::strerror(errno));
  }

  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.u64 = kListenTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return Status::IoError(std::string("epoll_ctl(listen): ") +
                           std::strerror(errno));
  }
  ev.data.u64 = kWakeTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return Status::IoError(std::string("epoll_ctl(wake): ") +
                           std::strerror(errno));
  }

  next_conn_id_ = kFirstConnId;
  const int threads = std::max(1, options_.exec_threads);
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  started_ = true;
  return Status::Ok();
}

void NetServer::Run() {
  if (!started_) return;
  epoll_event events[64];
  for (;;) {
    if (shutdown_requested_.load(std::memory_order_acquire) && !draining_) {
      BeginDrain();
    }
    if (draining_ && DrainComplete()) break;

    const int timeout_ms = NextTimeoutMillis();
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable epoll failure: tear down
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kListenTag) {
        AcceptNew();
        continue;
      }
      if (tag == kWakeTag) {
        uint64_t counter = 0;
        while (::read(wake_fd_, &counter, sizeof(counter)) > 0) {
        }
        continue;
      }
      auto it = conns_.find(tag);
      if (it == conns_.end()) continue;  // closed earlier in this batch
      Conn* conn = it->second.get();
      const uint32_t ev = events[i].events;
      if ((ev & (EPOLLERR | EPOLLHUP)) != 0 && (ev & EPOLLOUT) == 0) {
        CloseConn(tag, /*timed_out=*/false);
        continue;
      }
      if ((ev & EPOLLOUT) != 0) {
        HandleWritable(conn);
        if (conns_.find(tag) == conns_.end()) continue;
      }
      if ((ev & EPOLLIN) != 0) {
        HandleReadable(conn);
      }
    }
    DrainCompletions();
    CheckTimeouts();
  }

  // Teardown: whatever is still open lost the drain race.
  std::vector<uint64_t> leftover;
  leftover.reserve(conns_.size());
  for (auto& entry : conns_) leftover.push_back(entry.first);
  for (uint64_t id : leftover) CloseConn(id, /*timed_out=*/false);
  StopWorkers();
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    completions_.clear();
  }
  if (options_.checkpoint_on_shutdown && service_->durable()) {
    // Best-effort: on failure the WAL is intact and replays on restart.
    (void)service_->Checkpoint();
  }
  started_ = false;
}

void NetServer::Shutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    const ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
    (void)ignored;
  }
}

void NetServer::EnableSignalShutdown() {
  g_signal_server.store(this, std::memory_order_release);
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = &HandleShutdownSignal;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
}

NetServerStats NetServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void NetServer::AcceptNew() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or a transient accept failure epoll will re-report
    }
    if (SIMQ_FAILPOINT_FIRED("net.accept")) {
      ::close(fd);
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.connections_shed;
      }
      service_->NoteConnectionShed();
      continue;
    }
    if (draining_ ||
        static_cast<int>(conns_.size()) >= options_.max_connections) {
      // Best-effort kOverloaded frame so a well-behaved client backs off
      // instead of retrying into a wall of silent resets.
      const std::vector<uint8_t> frame =
          BuildFrame(Opcode::kError, 0,
                     EncodeError(ErrorFromStatus(Status::Overloaded(
                         draining_ ? "server is shutting down"
                                   : "connection limit reached"))));
      (void)::send(fd, frame.data(), frame.size(),
                   MSG_DONTWAIT | MSG_NOSIGNAL);
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.connections_shed;
      }
      service_->NoteConnectionShed();
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_unique<Conn>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    conn->session = std::shared_ptr<Session>(service_->OpenSession());
    conn->last_read = conn->last_write = Clock::now();

    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conn->interest = EPOLLIN;
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.connections_accepted;
      ++stats_.connections_active;
    }
    service_->NoteConnectionOpened();
    conns_.emplace(conn->id, std::move(conn));
  }
}

void NetServer::HandleReadable(Conn* conn) {
  const uint64_t id = conn->id;
  uint8_t buf[65536];
  for (int burst = 0; burst < kMaxReadBurst; ++burst) {
    if (conn->reading_stopped || conn->closing) return;
    if (SIMQ_FAILPOINT_FIRED("net.read")) {
      CloseConn(id, /*timed_out=*/false);  // simulated mid-frame reset
      return;
    }
    size_t want = sizeof(buf);
    if (SIMQ_FAILPOINT_FIRED("net.read.short")) want = 1;
    const ssize_t n = ::recv(conn->fd, buf, want, 0);
    if (n == 0) {
      // Half-close: the peer is done sending, but may still be reading.
      // Requests already admitted keep their answers; the close happens
      // once they have been sent and flushed.
      conn->peer_closed = true;
      conn->reading_stopped = true;
      UpdateInterest(conn);
      MaybeCloseAfterEof(conn);  // may free conn
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      CloseConn(id, /*timed_out=*/false);
      return;
    }
    conn->in.insert(conn->in.end(), buf, buf + n);
    conn->last_read = Clock::now();
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.bytes_in += n;
    }
    service_->NoteNetBytes(n, 0);
    ProcessInput(conn);
    if (conns_.find(id) == conns_.end()) return;
    if (static_cast<size_t>(n) < want) return;  // socket drained
  }
}

void NetServer::ProcessInput(Conn* conn) {
  for (;;) {
    if (conn->reading_stopped) break;
    const uint8_t* base = conn->in.data() + conn->in_off;
    const size_t avail = conn->in.size() - conn->in_off;
    FrameHeader header;
    const HeaderStatus hs =
        ParseHeader(base, avail, options_.max_payload, &header);
    if (hs == HeaderStatus::kNeedMore) break;
    if (hs != HeaderStatus::kOk) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.protocol_errors;
      }
      const char* what = hs == HeaderStatus::kBadMagic
                             ? "bad frame magic"
                             : (hs == HeaderStatus::kBadLength
                                    ? "frame payload exceeds the limit"
                                    : "nonzero flags/reserved bits");
      ProtocolFatal(conn, Status::Corruption(what));
      break;
    }
    if (avail < kHeaderSize + header.payload_len) break;  // wait for payload
    const uint8_t* payload = base + kHeaderSize;
    if (!CrcMatches(header, payload)) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.protocol_errors;
      }
      ProtocolFatal(conn, Status::Corruption("frame CRC mismatch"));
      break;
    }
    conn->in_off += kHeaderSize + header.payload_len;
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.frames_in;
    }
    HandleFrame(conn, header, payload);
  }
  if (conn->reading_stopped || conn->in_off == conn->in.size()) {
    conn->in.clear();
    conn->in_off = 0;
  } else if (conn->in_off > (64u << 10)) {
    conn->in.erase(conn->in.begin(),
                   conn->in.begin() + static_cast<ptrdiff_t>(conn->in_off));
    conn->in_off = 0;
  }
}

void NetServer::HandleFrame(Conn* conn, const FrameHeader& header,
                            const uint8_t* payload) {
  const size_t size = header.payload_len;
  const uint32_t rid = header.request_id;
  if (!IsClientOpcode(header.opcode)) {
    SendError(conn, rid,
              Status::Unimplemented("unknown or server-only opcode"));
    return;
  }
  const Opcode op = static_cast<Opcode>(header.opcode);
  if (!conn->hello_done && op != Opcode::kHello) {
    // No negotiated version means nothing later can be interpreted
    // reliably; the frame itself was well-formed, so say why, then close.
    SendError(conn, rid,
              Status::FailedPrecondition("first frame must be HELLO"));
    conn->reading_stopped = true;
    conn->closing = true;
    UpdateInterest(conn);
    return;
  }
  switch (op) {
    case Opcode::kHello: {
      HelloRequest hello;
      const Status s = DecodeHello(payload, size, &hello);
      if (!s.ok()) {
        SendError(conn, rid, s);
        return;
      }
      const uint16_t lo = std::max(kVersionMin, hello.min_version);
      const uint16_t hi = std::min(kVersionMax, hello.max_version);
      if (lo > hi) {
        SendError(conn, rid,
                  Status::InvalidArgument(
                      "no protocol version overlap (server speaks 1)"));
        conn->reading_stopped = true;
        conn->closing = true;
        UpdateInterest(conn);
        return;
      }
      conn->hello_done = true;
      HelloAck ack;
      ack.version = hi;
      ack.max_payload = options_.max_payload;
      ack.default_page_rows = options_.default_page_rows;
      SendFrame(conn, Opcode::kHelloAck, rid, EncodeHelloAck(ack));
      return;
    }
    case Opcode::kPrepare: {
      PrepareRequest req;
      const Status s = DecodePrepare(payload, size, &req);
      if (!s.ok()) {
        SendError(conn, rid, s);
        return;
      }
      // Parse/validate only: cheap enough for the loop thread.
      Result<int64_t> prepared = conn->session->Prepare(req.text);
      if (!prepared.ok()) {
        SendError(conn, rid, prepared.status());
        return;
      }
      PrepareAck ack;
      ack.statement_id = static_cast<uint64_t>(prepared.value());
      SendFrame(conn, Opcode::kPrepareAck, rid, EncodePrepareAck(ack));
      return;
    }
    case Opcode::kExec: {
      ExecRequest req;
      const Status s = DecodeExec(payload, size, &req);
      if (!s.ok()) {
        SendError(conn, rid, s);
        return;
      }
      HandleExec(conn, rid, std::move(req));
      return;
    }
    case Opcode::kFetch: {
      FetchRequest req;
      const Status s = DecodeFetch(payload, size, &req);
      if (!s.ok()) {
        SendError(conn, rid, s);
        return;
      }
      HandleFetch(conn, rid, req);
      return;
    }
    case Opcode::kCancel:
      HandleCancel(conn, rid);
      return;
    case Opcode::kStats:
      HandleStats(conn, rid);
      return;
    case Opcode::kMetrics:
      HandleMetrics(conn, rid);
      return;
    case Opcode::kStatements: {
      StatementsRequest req;
      const Status s = DecodeStatementsRequest(payload, size, &req);
      if (!s.ok()) {
        SendError(conn, rid, s);
        return;
      }
      HandleStatements(conn, rid, req);
      return;
    }
    case Opcode::kCloseCursor: {
      CloseCursorRequest req;
      const Status s = DecodeCloseCursor(payload, size, &req);
      if (!s.ok()) {
        SendError(conn, rid, s);
        return;
      }
      if (conn->cursors.erase(req.cursor_id) > 0) {
        for (auto it = conn->cursor_order.begin();
             it != conn->cursor_order.end(); ++it) {
          if (*it == req.cursor_id) {
            conn->cursor_order.erase(it);
            break;
          }
        }
      }
      SendFrame(conn, Opcode::kCloseCursorAck, rid, {});
      return;
    }
    case Opcode::kGoodbye:
      conn->goodbye_requested = true;
      conn->reading_stopped = true;  // in-flight work still completes
      MaybeQueueGoodbye(conn);
      UpdateInterest(conn);
      return;
    default:
      SendError(conn, rid, Status::Unimplemented("unhandled opcode"));
      return;
  }
}

void NetServer::HandleExec(Conn* conn, uint32_t request_id, ExecRequest req) {
  const char* shed_reason = nullptr;
  if (draining_) {
    shed_reason = "server is shutting down";
  } else if (admitted_requests_ >= options_.max_queue) {
    shed_reason = "server request queue is full";
  } else if (static_cast<int>(conn->pending.size()) +
                 (conn->inflight ? 1 : 0) >=
             options_.max_pipeline) {
    shed_reason = "connection pipeline limit reached";
  }
  if (shed_reason != nullptr) {
    SendError(conn, request_id, Status::Overloaded(shed_reason));
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.requests_shed;
    }
    service_->NoteRequestShed();
    return;
  }
  ++admitted_requests_;
  PendingExec exec;
  exec.request_id = request_id;
  exec.request = std::move(req);
  exec.cancelled = std::make_shared<std::atomic<bool>>(false);
  conn->pending.push_back(std::move(exec));
  TryDispatch(conn);
}

void NetServer::TryDispatch(Conn* conn) {
  if (conn->inflight || conn->closing || conn->pending.empty()) return;
  // Backpressure: while the client is not draining its responses, its
  // queued requests stay queued -- output stays bounded by the limit plus
  // one in-flight page.
  if (conn->out_bytes > options_.output_buffer_limit) return;
  PendingExec exec = std::move(conn->pending.front());
  conn->pending.pop_front();
  DispatchToWorkers(conn, std::move(exec));
}

void NetServer::DispatchToWorkers(Conn* conn, PendingExec exec) {
  conn->inflight = true;
  conn->inflight_request_id = exec.request_id;
  conn->inflight_cancel = exec.cancelled;
  WorkItem item;
  item.conn_id = conn->id;
  item.request_id = exec.request_id;
  item.page_rows = exec.request.page_rows;
  item.session = conn->session;
  item.request = std::move(exec.request);
  item.cancelled = std::move(exec.cancelled);
  {
    std::lock_guard<std::mutex> lock(work_mutex_);
    work_queue_.push_back(std::move(item));
  }
  work_cv_.notify_one();
}

void NetServer::WorkerLoop() {
  for (;;) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(work_mutex_);
      work_cv_.wait(lock,
                    [this] { return workers_stop_ || !work_queue_.empty(); });
      if (work_queue_.empty()) return;  // stop requested and queue drained
      item = std::move(work_queue_.front());
      work_queue_.pop_front();
    }
    Completion done;
    done.conn_id = item.conn_id;
    done.request_id = item.request_id;
    done.page_rows = item.page_rows;
    if (item.cancelled->load(std::memory_order_acquire)) {
      done.status = Status::Cancelled("cancelled before execution");
    } else {
      ExecOptions options;
      options.deadline_ms =
          item.request.deadline_ms > 0 ? item.request.deadline_ms : -1.0;
      Result<ServiceResult> executed = [&]() -> Result<ServiceResult> {
        if (!item.request.prepared) {
          return item.session->Execute(item.request.text, options);
        }
        BindParams params;
        params.epsilon = item.request.epsilon;
        if (item.request.k.has_value()) {
          params.k = static_cast<int>(*item.request.k);
        }
        if (item.request.has_series) {
          SeriesRef series;
          series.literal = std::move(item.request.series);
          params.series = std::move(series);
        }
        return item.session->ExecutePrepared(
            static_cast<int64_t>(item.request.statement_id), params, options);
      }();
      if (executed.ok()) {
        done.status = Status::Ok();
        done.result = std::move(executed.value().result);
      } else {
        done.status = executed.status();
      }
    }
    {
      std::lock_guard<std::mutex> lock(completion_mutex_);
      completions_.push_back(std::move(done));
    }
    const uint64_t one = 1;
    const ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
    (void)ignored;
  }
}

void NetServer::DrainCompletions() {
  std::deque<Completion> ready;
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    ready.swap(completions_);
  }
  for (Completion& done : ready) {
    auto it = conns_.find(done.conn_id);
    // A completion for a closed connection is dropped; CloseConn already
    // settled the admitted-request accounting for it.
    if (it == conns_.end()) continue;
    FinishExec(it->second.get(), done);
  }
}

void NetServer::FinishExec(Conn* conn, Completion& done) {
  --admitted_requests_;
  conn->inflight = false;
  conn->inflight_cancel.reset();
  if (conn->cancel_pending) {
    // Deferred until here so ResetCancel cannot race the execution it was
    // meant to cancel (the sticky flag on the context keeps it cancelled).
    conn->session->ResetCancel();
    conn->cancel_pending = false;
  }
  if (done.status.ok()) {
    const ResultPage page =
        PageFromResult(conn, done.page_rows, std::move(done.result));
    SendFrame(conn, Opcode::kResult, done.request_id, EncodeResultPage(page));
  } else {
    SendError(conn, done.request_id, done.status);
  }
  // A legitimately slow query must not count against the read-idle timer.
  conn->last_read = Clock::now();
  TryDispatch(conn);
  MaybeFinishFatal(conn);
  MaybeQueueGoodbye(conn);
  UpdateInterest(conn);
  MaybeCloseAfterEof(conn);  // may free conn; must stay last
}

ResultPage NetServer::PageFromResult(Conn* conn, uint32_t request_rows,
                                     QueryResult result) {
  uint32_t rows = request_rows > 0 ? request_rows : options_.default_page_rows;
  rows = std::min(rows, options_.max_page_rows);
  rows = std::max<uint32_t>(rows, 1);

  const bool is_pairs = !result.pairs.empty();
  const size_t total = is_pairs ? result.pairs.size() : result.matches.size();
  ResultPage page;
  page.kind = is_pairs ? 1 : 0;
  page.total_rows = total;
  if (total <= rows) {
    page.matches = std::move(result.matches);
    page.pairs = std::move(result.pairs);
    page.has_more = false;
    page.cursor_id = 0;
    return page;
  }
  // Spill to a cursor, evicting the oldest at the per-connection cap.
  const int max_cursors = std::max(1, options_.max_cursors_per_connection);
  while (static_cast<int>(conn->cursors.size()) >= max_cursors) {
    const uint64_t victim = conn->cursor_order.front();
    conn->cursor_order.pop_front();
    conn->cursors.erase(victim);
  }
  const uint64_t cursor_id = conn->next_cursor_id++;
  Cursor cursor;
  cursor.kind = page.kind;
  cursor.result = std::move(result);
  cursor.offset = 0;
  auto inserted = conn->cursors.emplace(cursor_id, std::move(cursor));
  conn->cursor_order.push_back(cursor_id);
  return PageFromCursor(&inserted.first->second, cursor_id, rows);
}

ResultPage NetServer::PageFromCursor(Cursor* cursor, uint64_t cursor_id,
                                     uint32_t request_rows) {
  uint32_t rows = request_rows > 0 ? request_rows : options_.default_page_rows;
  rows = std::min(rows, options_.max_page_rows);
  rows = std::max<uint32_t>(rows, 1);

  ResultPage page;
  page.kind = cursor->kind;
  const size_t total = cursor->kind == 1 ? cursor->result.pairs.size()
                                         : cursor->result.matches.size();
  page.total_rows = total;
  const size_t begin = std::min(cursor->offset, total);
  const size_t end = std::min(begin + rows, total);
  if (cursor->kind == 1) {
    page.pairs.assign(cursor->result.pairs.begin() + begin,
                      cursor->result.pairs.begin() + end);
  } else {
    page.matches.assign(cursor->result.matches.begin() + begin,
                        cursor->result.matches.begin() + end);
  }
  cursor->offset = end;
  page.has_more = end < total;
  page.cursor_id = cursor_id;
  return page;
}

void NetServer::HandleFetch(Conn* conn, uint32_t request_id,
                            const FetchRequest& req) {
  auto it = conn->cursors.find(req.cursor_id);
  if (it == conn->cursors.end()) {
    SendError(conn, request_id,
              Status::NotFound(
                  "unknown cursor (completed, closed, or evicted)"));
    return;
  }
  ResultPage page = PageFromCursor(&it->second, req.cursor_id, req.page_rows);
  if (!page.has_more) {
    conn->cursors.erase(it);
    for (auto order = conn->cursor_order.begin();
         order != conn->cursor_order.end(); ++order) {
      if (*order == req.cursor_id) {
        conn->cursor_order.erase(order);
        break;
      }
    }
  }
  SendFrame(conn, Opcode::kResult, request_id, EncodeResultPage(page));
}

void NetServer::HandleCancel(Conn* conn, uint32_t request_id) {
  for (PendingExec& exec : conn->pending) {
    exec.cancelled->store(true, std::memory_order_release);
    SendError(conn, exec.request_id, Status::Cancelled("cancelled by client"));
    --admitted_requests_;
  }
  conn->pending.clear();
  if (conn->inflight) {
    conn->inflight_cancel->store(true, std::memory_order_release);
    conn->session->Cancel();
    conn->cancel_pending = true;  // ResetCancel when the completion lands
  }
  SendFrame(conn, Opcode::kCancelAck, request_id, {});
}

void NetServer::HandleStats(Conn* conn, uint32_t request_id) {
  const ServiceStats service = service_->stats();
  WireStats wire;
  wire.queries = static_cast<uint64_t>(service.queries);
  wire.mutations = static_cast<uint64_t>(service.mutations);
  wire.timeouts = static_cast<uint64_t>(service.timeouts);
  wire.cancellations = static_cast<uint64_t>(service.cancellations);
  wire.overloaded = static_cast<uint64_t>(service.overloaded);
  wire.cache_hits = static_cast<uint64_t>(service.cache.hits);
  wire.cache_misses = static_cast<uint64_t>(service.cache.misses);
  wire.latency_p50_ms = service.latency_p50_ms;
  wire.latency_p95_ms = service.latency_p95_ms;
  wire.latency_p99_ms = service.latency_p99_ms;
  wire.connections_accepted =
      static_cast<uint64_t>(service.net.connections_accepted);
  wire.connections_active =
      static_cast<uint64_t>(service.net.connections_active);
  wire.connections_shed = static_cast<uint64_t>(service.net.connections_shed);
  wire.connections_timed_out =
      static_cast<uint64_t>(service.net.connections_timed_out);
  wire.requests_shed = static_cast<uint64_t>(service.net.requests_shed);
  wire.bytes_in = static_cast<uint64_t>(service.net.bytes_in);
  wire.bytes_out = static_cast<uint64_t>(service.net.bytes_out);
  SendFrame(conn, Opcode::kStatsAck, request_id, EncodeStats(wire));
}

void NetServer::HandleMetrics(Conn* conn, uint32_t request_id) {
  // Refresh first so the mirrored delta/cache/statements gauges reflect
  // this scrape's moment, whether or not anything called stats() before.
  service_->RefreshScrapeGauges();
  const std::vector<obs::MetricSample> snapshot =
      service_->metrics_registry()->Snapshot();
  std::vector<WireMetric> wire;
  wire.reserve(snapshot.size());
  for (const obs::MetricSample& sample : snapshot) {
    if (sample.type == obs::MetricSample::Type::kHistogram) {
      // Flatten each histogram to derived gauges; the text exposition
      // (Prometheus) keeps the full bucket series.
      const auto add = [&](const char* suffix, double value) {
        WireMetric m;
        m.name = sample.name + suffix;
        m.type = 1;
        m.value = value;
        wire.push_back(std::move(m));
      };
      add("_count", static_cast<double>(sample.histogram.count));
      add("_sum_ms", sample.histogram.sum_ms);
      add("_p50", sample.histogram.Percentile(50.0));
      add("_p95", sample.histogram.Percentile(95.0));
      add("_p99", sample.histogram.Percentile(99.0));
      continue;
    }
    WireMetric m;
    m.name = sample.name;
    m.type = sample.type == obs::MetricSample::Type::kCounter ? 0 : 1;
    m.value = sample.value;
    wire.push_back(std::move(m));
  }
  SendFrame(conn, Opcode::kMetricsAck, request_id, EncodeMetrics(wire));
}

void NetServer::HandleStatements(Conn* conn, uint32_t request_id,
                                 const StatementsRequest& req) {
  const std::vector<obs::StatementStats> rows =
      service_->statements()->Top(req.top_n);
  std::vector<WireStatementRow> wire;
  wire.reserve(rows.size());
  for (const obs::StatementStats& row : rows) {
    WireStatementRow w;
    w.fingerprint = row.fingerprint;
    w.text = row.text;
    w.calls = static_cast<uint64_t>(row.calls);
    w.errors = static_cast<uint64_t>(row.errors);
    w.timeouts = static_cast<uint64_t>(row.timeouts);
    w.cancellations = static_cast<uint64_t>(row.cancellations);
    w.sheds = static_cast<uint64_t>(row.sheds);
    w.cache_hits = static_cast<uint64_t>(row.cache_hits);
    w.total_ms = row.total_ms;
    w.max_ms = row.max_ms;
    if (row.latency.count > 0) {
      w.p50_ms = row.latency.Percentile(50.0);
      w.p95_ms = row.latency.Percentile(95.0);
      w.p99_ms = row.latency.Percentile(99.0);
    }
    w.total = row.total;
    w.max = row.max;
    wire.push_back(std::move(w));
  }
  SendFrame(conn, Opcode::kStatementsAck, request_id,
            EncodeStatements(wire));
}

void NetServer::SendFrame(Conn* conn, Opcode opcode, uint32_t request_id,
                          const std::vector<uint8_t>& payload) {
  auto segment = std::make_shared<std::vector<uint8_t>>();
  segment->reserve(kHeaderSize + payload.size());
  AppendFrame(segment.get(), opcode, request_id, payload.data(),
              payload.size());
  conn->out_bytes += segment->size();
  conn->out.push_back(Conn::OutSeg{std::move(segment), 0});
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.frames_out;
  }
  UpdateInterest(conn);
}

void NetServer::SendError(Conn* conn, uint32_t request_id,
                          const Status& status) {
  SendFrame(conn, Opcode::kError, request_id,
            EncodeError(ErrorFromStatus(status)));
}

void NetServer::ProtocolFatal(Conn* conn, const Status& status) {
  // The stream is out of sync, so no further input can be trusted -- but
  // requests admitted before the poison bytes were well-formed, and the
  // pipelining contract promises them answers. Stop reading now; the
  // error frame and the close wait until in-flight and queued work has
  // responded (MaybeFinishFatal, driven from FinishExec).
  conn->reading_stopped = true;
  conn->fatal_pending = true;
  conn->fatal_status = status;
  MaybeFinishFatal(conn);
  UpdateInterest(conn);
}

void NetServer::MaybeFinishFatal(Conn* conn) {
  if (!conn->fatal_pending || conn->closing) return;
  if (conn->inflight || !conn->pending.empty()) return;
  conn->fatal_pending = false;
  SendError(conn, 0, conn->fatal_status);
  conn->closing = true;
  UpdateInterest(conn);
}

void NetServer::MaybeCloseAfterEof(Conn* conn) {
  if (!conn->peer_closed || conn->closing) return;
  if (conn->inflight || !conn->pending.empty()) return;
  if (conn->out.empty()) {
    CloseConn(conn->id, /*timed_out=*/false);
    return;
  }
  conn->closing = true;  // flush the queued responses, then close
  UpdateInterest(conn);
}

void NetServer::MaybeQueueGoodbye(Conn* conn) {
  if (!(conn->goodbye_requested || draining_)) return;
  if (conn->goodbye_sent || conn->closing) return;
  if (conn->inflight || !conn->pending.empty()) return;
  conn->goodbye_sent = true;
  SendFrame(conn, Opcode::kGoodbye, 0, {});
  conn->closing = true;
  UpdateInterest(conn);
}

void NetServer::UpdateInterest(Conn* conn) {
  uint32_t events = 0;
  const bool want_read = !conn->reading_stopped && !conn->closing &&
                         !draining_ &&
                         conn->out_bytes <= options_.output_buffer_limit;
  if (want_read) events |= EPOLLIN;
  if (!conn->out.empty()) events |= EPOLLOUT;
  if (events == conn->interest) return;
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.u64 = conn->id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
    conn->interest = events;
  }
}

void NetServer::HandleWritable(Conn* conn) {
  const uint64_t id = conn->id;
  while (!conn->out.empty()) {
    if (SIMQ_FAILPOINT_FIRED("net.write")) {
      CloseConn(id, /*timed_out=*/false);  // simulated EPIPE (or kill:)
      return;
    }
    iovec iov[kMaxWritevSegments];
    int iov_count = 0;
    if (SIMQ_FAILPOINT_FIRED("net.write.short")) {
      Conn::OutSeg& seg = conn->out.front();
      iov[0].iov_base = seg.data->data() + seg.offset;
      iov[0].iov_len = 1;
      iov_count = 1;
    } else {
      for (const Conn::OutSeg& seg : conn->out) {
        if (iov_count == static_cast<int>(kMaxWritevSegments)) break;
        iov[iov_count].iov_base =
            const_cast<uint8_t*>(seg.data->data()) + seg.offset;
        iov[iov_count].iov_len = seg.data->size() - seg.offset;
        ++iov_count;
      }
    }
    const ssize_t n = ::writev(conn->fd, iov, iov_count);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConn(id, /*timed_out=*/false);
      return;
    }
    conn->last_write = Clock::now();
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.bytes_out += n;
    }
    service_->NoteNetBytes(0, n);
    size_t left = static_cast<size_t>(n);
    conn->out_bytes -= left;
    while (left > 0) {
      Conn::OutSeg& seg = conn->out.front();
      const size_t seg_left = seg.data->size() - seg.offset;
      if (left < seg_left) {
        seg.offset += left;
        left = 0;
      } else {
        left -= seg_left;
        conn->out.pop_front();
      }
    }
  }
  if (conn->out.empty() && conn->closing) {
    CloseConn(id, /*timed_out=*/false);
    return;
  }
  TryDispatch(conn);  // backpressure may have lifted
  UpdateInterest(conn);
}

void NetServer::CloseConn(uint64_t conn_id, bool timed_out) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Conn* conn = it->second.get();
  admitted_requests_ -=
      static_cast<int>(conn->pending.size()) + (conn->inflight ? 1 : 0);
  if (conn->inflight) {
    // The worker still runs this execution; cancel it so the service slot
    // frees quickly. Its completion finds the connection gone and is
    // dropped (the accounting was settled on the line above).
    conn->inflight_cancel->store(true, std::memory_order_release);
    conn->session->Cancel();
  }
  // Counters are published before the socket closes, so a peer that has
  // observed the EOF also observes the close in the stats.
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    --stats_.connections_active;
    if (timed_out) ++stats_.connections_timed_out;
  }
  service_->NoteConnectionClosed(timed_out);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conns_.erase(it);
}

void NetServer::CheckTimeouts() {
  const auto now = Clock::now();
  std::vector<uint64_t> expired;
  for (const auto& entry : conns_) {
    const Conn& conn = *entry.second;
    const bool quiescent = !conn.inflight && conn.pending.empty() &&
                           conn.out.empty() && !conn.closing;
    if (options_.read_idle_ms > 0 && quiescent &&
        MillisSince(conn.last_read, now) >= options_.read_idle_ms) {
      expired.push_back(entry.first);
      continue;
    }
    if (options_.write_idle_ms > 0 && !conn.out.empty() &&
        MillisSince(conn.last_write, now) >= options_.write_idle_ms) {
      expired.push_back(entry.first);
    }
  }
  for (uint64_t id : expired) CloseConn(id, /*timed_out=*/true);
  if (draining_ && now >= drain_deadline_) {
    std::vector<uint64_t> rest;
    rest.reserve(conns_.size());
    for (const auto& entry : conns_) rest.push_back(entry.first);
    for (uint64_t id : rest) CloseConn(id, /*timed_out=*/false);
  }
}

int NetServer::NextTimeoutMillis() const {
  if (shutdown_requested_.load(std::memory_order_acquire) && !draining_) {
    return 0;
  }
  const auto now = Clock::now();
  double best = 60000.0;  // periodic tick upper bound
  if (draining_) {
    best = std::min(
        best,
        std::chrono::duration<double, std::milli>(drain_deadline_ - now)
            .count());
  }
  for (const auto& entry : conns_) {
    const Conn& conn = *entry.second;
    const bool quiescent = !conn.inflight && conn.pending.empty() &&
                           conn.out.empty() && !conn.closing;
    if (options_.read_idle_ms > 0 && quiescent) {
      best = std::min(best,
                      options_.read_idle_ms - MillisSince(conn.last_read, now));
    }
    if (options_.write_idle_ms > 0 && !conn.out.empty()) {
      best = std::min(
          best, options_.write_idle_ms - MillisSince(conn.last_write, now));
    }
  }
  if (best <= 0) return 0;
  return static_cast<int>(std::min(60000.0, std::ceil(best)));
}

void NetServer::BeginDrain() {
  draining_ = true;
  drain_deadline_ =
      Clock::now() + std::chrono::milliseconds(static_cast<int64_t>(
                         std::max(0.0, options_.drain_timeout_ms)));
  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& entry : conns_) ids.push_back(entry.first);
  for (uint64_t id : ids) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    Conn* conn = it->second.get();
    conn->reading_stopped = true;
    conn->in.clear();
    conn->in_off = 0;
    MaybeQueueGoodbye(conn);  // queued/in-flight work still completes first
    UpdateInterest(conn);
  }
}

bool NetServer::DrainComplete() const { return conns_.empty(); }

void NetServer::StopWorkers() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(work_mutex_);
    workers_stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

}  // namespace net
}  // namespace simq
