/// Blocking SIMQNET1 client (net/protocol.h): the counterpart the
/// examples, the protocol fuzz tests, and the net bench all drive.
///
/// Two API layers on one socket:
///
///  * Frame level -- SendFrame / SendRaw / ReadFrame / ShutdownWrite.
///    This is what the fuzzer and the pipelined bench use: SendRaw can
///    deliver arbitrary hostile bytes (truncated frames, bad CRCs,
///    mid-frame disconnects), and SendFrame+ReadFrame decouple request
///    and response so a caller can keep many requests in flight and
///    match responses by request id (the server answers execs in FIFO
///    order per connection).
///  * Call level -- Prepare / Exec / ExecAll / Fetch / Stats / Cancel /
///    Goodbye. One request in flight at a time; a server kError for the
///    request comes back as the typed Status it encodes (prefixed
///    "[net] ").
///
/// Reads honor Options::io_timeout_ms via SO_RCVTIMEO, so a wedged or
/// murdered server surfaces as kTimeout / kIoError instead of a hang --
/// the crash harness depends on that. Instances are not thread-safe.

#ifndef SIMQ_NET_CLIENT_H_
#define SIMQ_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "util/status.h"

namespace simq {
namespace net {

struct NetClientOptions {
  /// SO_RCVTIMEO/SO_SNDTIMEO on the socket; <= 0 blocks forever.
  double io_timeout_ms = 30000.0;
  /// Version range offered in HELLO.
  uint16_t min_version = kVersionMin;
  uint16_t max_version = kVersionMax;
  /// When false, Connect only opens the TCP connection -- no HELLO.
  /// The fuzzer uses this to probe the pre-handshake state.
  bool handshake = true;
};

class NetClient {
 public:
  using Options = NetClientOptions;

  NetClient() = default;
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  Status Connect(const std::string& host, uint16_t port,
                 const Options& options = Options());
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// The server's HELLO ack (valid after a handshaking Connect).
  const HelloAck& server_hello() const { return server_hello_; }

  // --- frame level ---

  /// Writes raw bytes verbatim (hostile input for the fuzzer).
  Status SendRaw(const void* data, size_t size);
  /// Encodes and writes one well-formed frame.
  Status SendFrame(Opcode opcode, uint32_t request_id,
                   const std::vector<uint8_t>& payload);
  /// Blocks for one complete frame; validates magic, length, and CRC.
  /// EOF surfaces as kIoError("connection closed by server").
  Status ReadFrame(FrameHeader* header, std::vector<uint8_t>* payload);
  /// Half-close (SHUT_WR): the mid-frame-disconnect probe.
  Status ShutdownWrite();
  /// Client-chosen request ids for frame-level callers (monotonic, > 0).
  uint32_t NextRequestId() { return next_request_id_++; }

  // --- call level (one request in flight) ---

  Result<uint64_t> Prepare(const std::string& text);
  /// One page; page.cursor_id with has_more means more is fetchable.
  Result<ResultPage> Exec(const ExecRequest& request);
  /// Exec plus a full cursor drain: the complete answer set.
  Result<QueryResult> ExecAll(const ExecRequest& request);
  Result<ResultPage> Fetch(uint64_t cursor_id, uint32_t page_rows = 0);
  Result<WireStats> Stats();
  /// Full metric-registry snapshot (kMetrics), flattened to (name, type,
  /// value) samples; histograms arrive as derived _count/_sum_ms/_p50/
  /// _p95/_p99 gauges.
  Result<std::vector<WireMetric>> Metrics();
  /// Statements-table snapshot (kStatements): the top `top_n` rows by
  /// total_ms (0 = all), aggregates bit-identical to the shell's `.top`
  /// and the HTTP /statements endpoint.
  Result<std::vector<WireStatementRow>> Statements(uint32_t top_n = 0);
  Status Cancel();
  Status CloseCursor(uint64_t cursor_id);
  /// Sends GOODBYE and waits for the server's goodbye (or clean EOF).
  Status Goodbye();

 private:
  /// Send + wait for the matching (by request id) ack or error frame.
  Status Call(Opcode opcode, const std::vector<uint8_t>& payload,
              Opcode expected_ack, std::vector<uint8_t>* ack_payload);

  int fd_ = -1;
  uint32_t next_request_id_ = 1;
  HelloAck server_hello_;
  std::vector<uint8_t> inbuf_;
  size_t inbuf_off_ = 0;
};

}  // namespace net
}  // namespace simq

#endif  // SIMQ_NET_CLIENT_H_
