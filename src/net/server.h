/// The network front end: a single-threaded epoll event loop serving the
/// SIMQNET1 binary protocol (net/protocol.h) over TCP, in front of a
/// QueryService.
///
/// Architecture (DESIGN.md "net — the wire front end"):
///
///  * One event-loop thread owns every connection: the listener, all
///    socket reads/writes, frame parsing/encoding, cursors, and timeouts.
///    Level-triggered epoll; nothing in the loop blocks.
///  * Query execution is offloaded to a small pool of executor threads
///    (NetServerOptions::exec_threads) that drive the QueryService exactly
///    like any other multi-threaded client -- each connection owns a
///    Session, so the service's admission scheduler, deadlines,
///    cancellation, and snapshot isolation all apply unchanged. Requests
///    on one connection execute strictly in arrival order (responses are
///    pipelined FIFO); connections execute concurrently.
///
/// Robustness contract, enforced per byte-boundary:
///
///  * Framing errors (bad magic / oversized length / bad CRC / reserved
///    bits) get one kError frame and a close -- the stream is out of
///    sync -- but only after every request admitted before the poison
///    bytes has been answered: pipelined valid work is never dropped.
///    Semantic errors in well-framed frames (unknown opcode, bad
///    payload, engine errors) are typed kError responses on a connection
///    that keeps working. No input byte sequence crashes or wedges the
///    loop (tests/net_protocol_test.cc fuzzes this under ASan/UBSan).
///  * Byte-bounded buffers with backpressure: each connection's pending
///    output is capped (output_buffer_limit). Past the cap the loop stops
///    reading from that socket (read interest dropped) and defers
///    dispatching its queued requests, so a slow reader holds at most
///    cap + one page of memory and naturally stalls its own request
///    stream instead of ballooning the server.
///  * Overload shedding: at most max_pipeline requests may be queued per
///    connection and max_queue across the server; beyond either bound a
///    request is answered immediately with kError(kOverloaded), and the
///    service's own admission timeout surfaces the same way -- bounded
///    queues everywhere, never silent buildup. Accepts beyond
///    max_connections are shed with a best-effort kOverloaded frame.
///  * Idle timeouts: a connection with nothing in flight that sends no
///    byte for read_idle_ms, or one with pending output that accepts no
///    byte for write_idle_ms, is closed (slow-loris defense).
///  * Cursor-based pagination bounds any single response to page_rows
///    rows; larger answer sets are held server-side (at most
///    max_cursors_per_connection, oldest evicted) and drained by kFetch.
///  * Graceful shutdown (Shutdown(), or SIGTERM/SIGINT after
///    EnableSignalShutdown): stop accepting, let queued + in-flight
///    requests finish (bounded by drain_timeout_ms), flush responses,
///    send kGoodbye, close, then checkpoint a durable service so the WAL
///    state on disk is current.
///
/// Fault injection: the socket paths carry named failpoints --
/// net.accept, net.read, net.read.short, net.write, net.write.short --
/// so the harness can force EAGAIN-like storms, short reads/writes,
/// mid-frame resets, and kill: crashes at exact syscall boundaries.
///
/// Thread-safety: Start()/Run() are called from the owning thread;
/// Shutdown() may be called from any thread or signal handler. Everything
/// else is loop-internal. The QueryService outlives the server.

#ifndef SIMQ_NET_SERVER_H_
#define SIMQ_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/protocol.h"
#include "service/query_service.h"

namespace simq {
namespace net {

struct NetServerOptions {
  /// Listen address. Port 0 binds an ephemeral port (NetServer::port()
  /// reports the choice -- tests and the bench rely on it).
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;

  /// Connection and queue bounds (the shedding contract).
  int max_connections = 256;
  /// Requests in flight per connection, the executing one included; the
  /// (max_pipeline + 1)-th concurrent request on a connection is shed.
  int max_pipeline = 32;
  /// Requests admitted server-wide (executing + queued); beyond it every
  /// new request is shed with kOverloaded.
  int max_queue = 128;

  /// Byte bounds.
  uint32_t max_payload = kDefaultMaxPayload;
  /// Pending-output cap per connection; past it read interest is dropped
  /// and queued requests are not dispatched until the client drains.
  size_t output_buffer_limit = 256 * 1024;

  /// Idle timeouts in milliseconds (0 disables that timer).
  double read_idle_ms = 600000.0;
  double write_idle_ms = 30000.0;

  /// Result paging.
  uint32_t default_page_rows = 1024;
  uint32_t max_page_rows = 65536;
  int max_cursors_per_connection = 8;

  /// Executor threads driving the QueryService.
  int exec_threads = 2;

  /// Graceful-shutdown budget for draining in-flight work.
  double drain_timeout_ms = 5000.0;
  /// Checkpoint a durable service (WAL open + snapshot path configured)
  /// after the loop drains, so a clean SIGTERM leaves a fresh snapshot
  /// and an empty log.
  bool checkpoint_on_shutdown = true;
};

/// Server-side connection counters (mirrored into ServiceStats::net and
/// the kStats frame; the service's copy is the source of truth reported
/// to clients).
struct NetServerStats {
  int64_t connections_accepted = 0;
  int64_t connections_active = 0;
  int64_t connections_shed = 0;
  int64_t connections_timed_out = 0;
  int64_t requests_shed = 0;
  int64_t frames_in = 0;
  int64_t frames_out = 0;
  int64_t protocol_errors = 0;  // framing errors that closed a connection
  int64_t bytes_in = 0;
  int64_t bytes_out = 0;
};

class NetServer {
 public:
  /// `service` must outlive the server and is shared with any other
  /// threads the caller drives (the service is internally synchronized).
  NetServer(QueryService* service, NetServerOptions options = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, creates the epoll instance, starts the executor
  /// threads. On failure the server is unusable (Run returns at once).
  Status Start();

  /// The bound port (valid after Start; resolves port 0 bindings).
  uint16_t port() const { return port_; }

  /// Runs the event loop until Shutdown(); returns after the drain.
  void Run();

  /// Requests graceful shutdown from any thread (async-signal-safe: one
  /// atomic store and one eventfd write).
  void Shutdown();

  /// Routes SIGTERM/SIGINT to Shutdown() for this instance (at most one
  /// instance per process may enable this; later calls override earlier
  /// ones).
  void EnableSignalShutdown();

  /// Loop-thread counters, snapshotted (safe from any thread).
  NetServerStats stats() const;

 private:
  struct Conn;
  struct WorkItem;
  struct Completion;
  struct Cursor;
  struct PendingExec;

  // --- loop-side handlers (all run on the Run() thread) ---
  void AcceptNew();
  void HandleReadable(Conn* conn);
  void HandleWritable(Conn* conn);
  void ProcessInput(Conn* conn);
  void HandleFrame(Conn* conn, const FrameHeader& header,
                   const uint8_t* payload);
  void HandleExec(Conn* conn, uint32_t request_id, ExecRequest req);
  void HandleFetch(Conn* conn, uint32_t request_id, const FetchRequest& req);
  void HandleCancel(Conn* conn, uint32_t request_id);
  void HandleStats(Conn* conn, uint32_t request_id);
  void HandleMetrics(Conn* conn, uint32_t request_id);
  void HandleStatements(Conn* conn, uint32_t request_id,
                        const StatementsRequest& req);
  void DrainCompletions();
  void FinishExec(Conn* conn, Completion& completion);
  void TryDispatch(Conn* conn);
  void DispatchToWorkers(Conn* conn, PendingExec exec);
  ResultPage PageFromResult(Conn* conn, uint32_t request_rows,
                            QueryResult result);
  ResultPage PageFromCursor(Cursor* cursor, uint64_t cursor_id,
                            uint32_t request_rows);
  void SendFrame(Conn* conn, Opcode opcode, uint32_t request_id,
                 const std::vector<uint8_t>& payload);
  void SendError(Conn* conn, uint32_t request_id, const Status& status);
  /// Framing violation: stop reading; the kError(rid 0) frame and the
  /// close are deferred until admitted requests have been answered.
  void ProtocolFatal(Conn* conn, const Status& status);
  void MaybeFinishFatal(Conn* conn);
  /// Peer half-closed: close once admitted requests have answered and
  /// flushed. May free `conn`; callers must not touch it afterwards.
  void MaybeCloseAfterEof(Conn* conn);
  void MaybeQueueGoodbye(Conn* conn);
  void UpdateInterest(Conn* conn);
  void CloseConn(uint64_t conn_id, bool timed_out);
  void CheckTimeouts();
  int NextTimeoutMillis() const;
  void BeginDrain();
  bool DrainComplete() const;

  // --- executor-side ---
  void WorkerLoop();
  /// Idempotent: drains the work queue, then joins the executor threads.
  void StopWorkers();

  QueryService* service_;
  NetServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  bool started_ = false;

  std::atomic<bool> shutdown_requested_{false};
  bool draining_ = false;
  std::chrono::steady_clock::time_point drain_deadline_{};

  uint64_t next_conn_id_ = 1;
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
  /// Requests admitted server-wide (executing + queued), loop-owned.
  int admitted_requests_ = 0;

  // Executor pool: a bounded handoff (the real bound is admitted_requests_
  // <= max_queue, enforced by the loop before anything is queued here).
  std::vector<std::thread> workers_;
  std::mutex work_mutex_;
  std::condition_variable work_cv_;
  std::deque<WorkItem> work_queue_;
  bool workers_stop_ = false;

  // Completions flow back to the loop; wake_fd_ interrupts epoll_wait.
  std::mutex completion_mutex_;
  std::deque<Completion> completions_;

  mutable std::mutex stats_mutex_;
  NetServerStats stats_;
};

}  // namespace net
}  // namespace simq

#endif  // SIMQ_NET_SERVER_H_
