#include "core/database.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/parser.h"
#include "geom/search_region.h"
#include "ts/transforms.h"
#include "util/logging.h"
#include "util/stats.h"

namespace simq {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool PatternAdmits(const Record& record, const Pattern& pattern) {
  if (pattern.mean_range.has_value()) {
    if (record.features.mean < pattern.mean_range->first ||
        record.features.mean > pattern.mean_range->second) {
      return false;
    }
  }
  if (pattern.std_range.has_value()) {
    if (record.features.std_dev < pattern.std_range->first ||
        record.features.std_dev > pattern.std_range->second) {
      return false;
    }
  }
  return true;
}

// Multiplier values of a spectral rule for output frequencies 0..out_n-1,
// materialized once per query so the per-candidate distance kernels stay a
// tight multiply-subtract loop. Returns nullopt for the identity.
std::optional<Spectrum> MaterializeMultiplier(const TransformationRule* rule,
                                              int n) {
  if (rule == nullptr) {
    return std::nullopt;
  }
  const int out_n = rule->OutputLength(n);
  Spectrum multiplier(static_cast<size_t>(out_n));
  for (int f = 0; f < out_n; ++f) {
    const std::optional<Complex> m = rule->Multiplier(f, n);
    SIMQ_CHECK(m.has_value()) << "rule is not spectral";
    multiplier[static_cast<size_t>(f)] = *m;
  }
  return multiplier;
}

// Exact frequency-domain distance between T(data) and the query spectrum,
// early-abandoning once the partial sum exceeds threshold. `multiplier` is
// the materialized spectral form of T (nullptr for the identity). Relies on
// Parseval: this equals the time-domain distance between T(x) and q.
double FreqDistance(const Spectrum& data, const Spectrum& query,
                    const Spectrum* multiplier, double threshold) {
  const int n = static_cast<int>(data.size());
  const int out_n = multiplier != nullptr
                        ? static_cast<int>(multiplier->size())
                        : n;
  SIMQ_CHECK_EQ(static_cast<int>(query.size()), out_n);
  const double limit =
      threshold == kInf ? kInf : threshold * threshold;
  double sum = 0.0;
  for (int f = 0; f < out_n; ++f) {
    Complex value = data[static_cast<size_t>(f % n)];
    if (multiplier != nullptr) {
      value *= (*multiplier)[static_cast<size_t>(f)];
    }
    sum += std::norm(value - query[static_cast<size_t>(f)]);
    if (sum > limit) {
      return kInf;
    }
  }
  return std::sqrt(sum);
}

// Distance between T1(a) and T2(b) in the frequency domain; either
// multiplier may be null (identity on that side).
double FreqDistanceTwoSided(const Spectrum& a, const Spectrum& b,
                            const Spectrum* left_mult,
                            const Spectrum* right_mult, double threshold) {
  SIMQ_CHECK_EQ(a.size(), b.size());
  const int n = static_cast<int>(a.size());
  int out_n = n;
  if (left_mult != nullptr) {
    out_n = static_cast<int>(left_mult->size());
  }
  if (right_mult != nullptr) {
    SIMQ_CHECK(left_mult == nullptr ||
               left_mult->size() == right_mult->size());
    out_n = static_cast<int>(right_mult->size());
  }
  const double limit = threshold == kInf ? kInf : threshold * threshold;
  double sum = 0.0;
  for (int f = 0; f < out_n; ++f) {
    Complex lhs = a[static_cast<size_t>(f % n)];
    if (left_mult != nullptr) {
      lhs *= (*left_mult)[static_cast<size_t>(f)];
    }
    Complex rhs = b[static_cast<size_t>(f % n)];
    if (right_mult != nullptr) {
      rhs *= (*right_mult)[static_cast<size_t>(f)];
    }
    sum += std::norm(lhs - rhs);
    if (sum > limit) {
      return kInf;
    }
  }
  return std::sqrt(sum);
}

void SortMatches(std::vector<Match>* matches) {
  std::sort(matches->begin(), matches->end(),
            [](const Match& a, const Match& b) {
              if (a.distance != b.distance) {
                return a.distance < b.distance;
              }
              return a.id < b.id;
            });
}

}  // namespace

Relation::Relation(std::string name, const FeatureConfig& config,
                   RTree::Options index_options)
    : name_(std::move(name)),
      config_(config),
      index_(std::make_unique<RTree>(FeatureDimension(config),
                                     index_options)) {}

const Record& Relation::record(int64_t id) const {
  SIMQ_CHECK_GE(id, 0);
  SIMQ_CHECK_LT(id, size());
  return records_[static_cast<size_t>(id)];
}

Result<int64_t> Relation::FindByName(const std::string& series_name) const {
  const auto it = by_name_.find(series_name);
  if (it == by_name_.end()) {
    return Status::NotFound("no series named '" + series_name +
                            "' in relation '" + name_ + "'");
  }
  return it->second;
}

Database::Database(FeatureConfig config, RTree::Options index_options)
    : config_(config), index_options_(index_options) {}

Status Database::CreateRelation(const std::string& name) {
  if (relations_.count(name) > 0) {
    return Status::AlreadyExists("relation '" + name + "' already exists");
  }
  relations_[name] =
      std::make_unique<Relation>(name, config_, index_options_);
  return Status::Ok();
}

Result<int64_t> Database::Insert(const std::string& relation,
                                 const TimeSeries& series) {
  const auto it = relations_.find(relation);
  if (it == relations_.end()) {
    return Status::NotFound("no relation named '" + relation + "'");
  }
  Relation* rel = it->second.get();
  if (series.values.empty()) {
    return Status::InvalidArgument("cannot insert an empty series");
  }
  if (rel->series_length_ == 0) {
    rel->series_length_ = series.length();
  } else if (rel->series_length_ != series.length()) {
    return Status::InvalidArgument(
        "series length does not match relation '" + relation + "'");
  }

  Record record;
  record.id = rel->size();
  record.name =
      series.id.empty() ? "s" + std::to_string(record.id) : series.id;
  if (rel->by_name_.count(record.name) > 0) {
    return Status::AlreadyExists("series '" + record.name +
                                 "' already exists in relation");
  }
  record.raw = series.values;
  record.normal_values = ToNormalForm(series.values).values;
  record.features = ComputeFeatures(series.values);

  rel->index_->InsertPoint(MakeFeaturePoint(record.features, config_),
                           record.id);
  rel->by_name_[record.name] = record.id;
  rel->records_.push_back(std::move(record));
  return rel->size() - 1;
}

Status Database::BulkLoad(const std::string& relation,
                          const std::vector<TimeSeries>& series) {
  const auto it = relations_.find(relation);
  if (it == relations_.end()) {
    return Status::NotFound("no relation named '" + relation + "'");
  }
  Relation* rel = it->second.get();
  if (rel->size() != 0) {
    return Status::FailedPrecondition(
        "BulkLoad requires an empty relation; use Insert instead");
  }
  std::vector<std::pair<Rect, int64_t>> entries;
  entries.reserve(series.size());
  for (const TimeSeries& ts : series) {
    if (ts.values.empty()) {
      return Status::InvalidArgument("cannot insert an empty series");
    }
    if (rel->series_length_ == 0) {
      rel->series_length_ = ts.length();
    } else if (rel->series_length_ != ts.length()) {
      return Status::InvalidArgument("series length mismatch in bulk load");
    }
    Record record;
    record.id = rel->size();
    record.name = ts.id.empty() ? "s" + std::to_string(record.id) : ts.id;
    if (rel->by_name_.count(record.name) > 0) {
      return Status::AlreadyExists("series '" + record.name +
                                   "' already exists in relation");
    }
    record.raw = ts.values;
    record.normal_values = ToNormalForm(ts.values).values;
    record.features = ComputeFeatures(ts.values);
    entries.emplace_back(
        Rect::FromPoint(MakeFeaturePoint(record.features, config_)),
        record.id);
    rel->by_name_[record.name] = record.id;
    rel->records_.push_back(std::move(record));
  }
  rel->index_->BulkLoad(std::move(entries));
  return Status::Ok();
}

const Relation* Database::GetRelation(const std::string& name) const {
  const auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, relation] : relations_) {
    names.push_back(name);
  }
  return names;
}

Result<std::vector<double>> Database::ResolveSeries(
    const Relation& relation, const SeriesRef& ref) const {
  if (ref.id.has_value()) {
    if (*ref.id < 0 || *ref.id >= relation.size()) {
      return Status::OutOfRange("series id out of range");
    }
    return relation.record(*ref.id).raw;
  }
  if (ref.name.has_value()) {
    Result<int64_t> id = relation.FindByName(*ref.name);
    if (!id.ok()) {
      return id.status();
    }
    return relation.record(id.value()).raw;
  }
  if (ref.literal.empty()) {
    return Status::InvalidArgument("query series is empty");
  }
  return ref.literal;
}

Result<QueryResult> Database::Execute(const Query& query) const {
  const Relation* relation = GetRelation(query.relation);
  if (relation == nullptr) {
    return Status::NotFound("no relation named '" + query.relation + "'");
  }
  switch (query.kind) {
    case QueryKind::kRange:
      return ExecuteRange(*relation, query);
    case QueryKind::kNearest:
      return ExecuteNearest(*relation, query);
    case QueryKind::kAllPairs: {
      const TransformationRule* left_rule = query.transform.get();
      const TransformationRule* right_rule =
          query.transform_right != nullptr ? query.transform_right.get()
                                           : left_rule;
      if (query.mode != DistanceMode::kNormalForm) {
        return Status::Unimplemented(
            "all-pairs queries support normal-form distances only");
      }
      const int n = relation->series_length();
      bool can_index = true;
      for (const TransformationRule* rule : {left_rule, right_rule}) {
        if (rule == nullptr || n == 0) {
          continue;
        }
        const std::optional<LinearTransform> lowered =
            rule->IndexTransform(n, config_.num_coefficients);
        // Only the data-side (right) transformation must be safe in the
        // index space; the left rule merely transforms the probe point.
        const bool needs_safety = rule == right_rule;
        can_index = can_index && lowered.has_value() &&
                    (!needs_safety || lowered->IsSafeIn(config_.space)) &&
                    rule->OutputLength(n) == n;
      }
      const bool any_rule = left_rule != nullptr || right_rule != nullptr;
      JoinMethod method = JoinMethod::kScanEarlyAbandon;
      switch (query.strategy) {
        case ExecutionStrategy::kAuto:
          method = can_index ? (any_rule ? JoinMethod::kIndexTransform
                                         : JoinMethod::kIndexNoTransform)
                             : JoinMethod::kScanEarlyAbandon;
          break;
        case ExecutionStrategy::kIndex:
          if (!can_index) {
            return Status::FailedPrecondition(
                "transformation is not index-accelerable for this join");
          }
          method = any_rule ? JoinMethod::kIndexTransform
                            : JoinMethod::kIndexNoTransform;
          break;
        case ExecutionStrategy::kScan:
          method = JoinMethod::kScanEarlyAbandon;
          break;
        case ExecutionStrategy::kScanNoEarlyAbandon:
          method = JoinMethod::kFullScan;
          break;
      }
      return SelfJoin(query.relation, query.epsilon, left_rule, right_rule,
                      method);
    }
  }
  return Status::Internal("unknown query kind");
}

Result<QueryResult> Database::ExecuteText(const std::string& text) const {
  Result<Query> query = ParseQuery(text);
  if (!query.ok()) {
    return query.status();
  }
  return Execute(query.value());
}

Result<QueryResult> Database::ExecuteRange(const Relation& relation,
                                           const Query& query) const {
  QueryResult out;
  if (query.epsilon < 0.0) {
    return Status::InvalidArgument("epsilon must be nonnegative");
  }
  if (relation.size() == 0) {
    return out;
  }
  Result<std::vector<double>> resolved =
      ResolveSeries(relation, query.query_series);
  if (!resolved.ok()) {
    return resolved.status();
  }
  const std::vector<double>& raw_query = resolved.value();

  const TransformationRule* rule = query.transform.get();
  if (query.mode == DistanceMode::kNormalForm && rule != nullptr &&
      rule->IsNormalFormInvariant()) {
    rule = nullptr;  // the [GK95] shortcut: invisible to normal forms
  }
  const int n = relation.series_length();
  const int out_n = rule != nullptr ? rule->OutputLength(n) : n;
  if (static_cast<int>(raw_query.size()) != out_n) {
    return Status::InvalidArgument(
        "query series length does not match the transformed data length");
  }

  // Query-side representation.
  std::vector<double> query_values;
  if (query.mode == DistanceMode::kNormalForm && !query.query_prenormalized) {
    query_values = ToNormalForm(raw_query).values;
  } else {
    query_values = raw_query;
  }
  const Spectrum query_spectrum = Dft(query_values);

  const bool spectral = rule == nullptr || rule->IsSpectral(n);
  std::optional<LinearTransform> index_transform;
  if (rule != nullptr && spectral) {
    index_transform = rule->IndexTransform(n, config_.num_coefficients);
  }
  const std::optional<Spectrum> multiplier =
      spectral ? MaterializeMultiplier(rule, n) : std::nullopt;
  const Spectrum* mult = multiplier.has_value() ? &*multiplier : nullptr;
  const bool can_use_index =
      query.mode == DistanceMode::kNormalForm &&
      (rule == nullptr || (index_transform.has_value() &&
                           index_transform->IsSafeIn(config_.space)));

  ExecutionStrategy strategy = query.strategy;
  if (strategy == ExecutionStrategy::kAuto) {
    strategy =
        can_use_index ? ExecutionStrategy::kIndex : ExecutionStrategy::kScan;
  }
  if (strategy == ExecutionStrategy::kIndex && !can_use_index) {
    return Status::FailedPrecondition(
        "query is not index-accelerable (requires normal-form mode and a "
        "safe spectral transformation)");
  }

  // Trivial pattern "a given constant object": check that object directly.
  if (query.pattern.kind == Pattern::Kind::kConstant) {
    if (!query.pattern.constant_id.has_value() ||
        *query.pattern.constant_id < 0 ||
        *query.pattern.constant_id >= relation.size()) {
      return Status::OutOfRange("pattern constant id out of range");
    }
    const Record& record = relation.record(*query.pattern.constant_id);
    if (PatternAdmits(record, query.pattern)) {
      ++out.stats.exact_checks;
      double distance;
      if (query.mode == DistanceMode::kNormalForm && spectral) {
        distance = FreqDistance(record.features.normal_spectrum,
                                query_spectrum, mult, query.epsilon);
      } else {
        const std::vector<double>& base =
            query.mode == DistanceMode::kNormalForm ? record.normal_values
                                                    : record.raw;
        const std::vector<double> transformed =
            rule != nullptr ? rule->Apply(base) : base;
        distance = EuclideanDistanceEarlyAbandon(transformed, query_values,
                                                 query.epsilon);
      }
      if (distance <= query.epsilon) {
        out.matches.push_back(Match{record.id, record.name, distance});
      }
    }
    return out;
  }

  if (strategy == ExecutionStrategy::kIndex) {
    const std::vector<Complex> query_coeffs =
        ExtractCoefficients(query_spectrum, config_.num_coefficients);
    SearchRegion region =
        SearchRegion::MakeRange(query_coeffs, query.epsilon, config_);
    if (config_.include_mean_std) {
      if (query.pattern.mean_range.has_value()) {
        region.ConstrainMean(query.pattern.mean_range->first,
                             query.pattern.mean_range->second);
      }
      if (query.pattern.std_range.has_value()) {
        region.ConstrainStd(query.pattern.std_range->first,
                            query.pattern.std_range->second);
      }
    }
    std::vector<DimAffine> affines;
    const std::vector<DimAffine>* affines_ptr = nullptr;
    if (rule != nullptr) {
      affines = LowerToFeatureSpace(*index_transform, config_);
      affines_ptr = &affines;
    }
    const RTree& tree = relation.index();
    const int64_t accesses_before = tree.node_accesses();
    std::vector<int64_t> candidates;
    tree.Search(region, affines_ptr, &candidates);
    out.stats.used_index = true;
    out.stats.node_accesses = tree.node_accesses() - accesses_before;
    out.stats.candidates = static_cast<int64_t>(candidates.size());
    for (const int64_t id : candidates) {
      const Record& record = relation.record(id);
      if (!PatternAdmits(record, query.pattern)) {
        continue;
      }
      ++out.stats.exact_checks;
      const double distance = FreqDistance(record.features.normal_spectrum,
                                           query_spectrum, mult,
                                           query.epsilon);
      if (distance <= query.epsilon) {
        out.matches.push_back(Match{record.id, record.name, distance});
      }
    }
  } else {
    const bool abandon = strategy != ExecutionStrategy::kScanNoEarlyAbandon;
    const double threshold = abandon ? query.epsilon : kInf;
    for (const Record& record : relation.records()) {
      if (!PatternAdmits(record, query.pattern)) {
        continue;
      }
      ++out.stats.exact_checks;
      double distance;
      if (query.mode == DistanceMode::kNormalForm && spectral) {
        distance = FreqDistance(record.features.normal_spectrum,
                                query_spectrum, mult, threshold);
      } else {
        const std::vector<double>& base =
            query.mode == DistanceMode::kNormalForm ? record.normal_values
                                                    : record.raw;
        const std::vector<double> transformed =
            rule != nullptr ? rule->Apply(base) : base;
        distance =
            abandon ? EuclideanDistanceEarlyAbandon(transformed, query_values,
                                                    query.epsilon)
                    : EuclideanDistance(transformed, query_values);
      }
      if (distance <= query.epsilon) {
        out.matches.push_back(Match{record.id, record.name, distance});
      }
    }
  }
  SortMatches(&out.matches);
  return out;
}

Result<QueryResult> Database::ExecuteNearest(const Relation& relation,
                                             const Query& query) const {
  QueryResult out;
  if (query.k <= 0) {
    return Status::InvalidArgument("k must be positive");
  }
  if (relation.size() == 0) {
    return out;
  }
  Result<std::vector<double>> resolved =
      ResolveSeries(relation, query.query_series);
  if (!resolved.ok()) {
    return resolved.status();
  }
  const std::vector<double>& raw_query = resolved.value();

  const TransformationRule* rule = query.transform.get();
  if (query.mode == DistanceMode::kNormalForm && rule != nullptr &&
      rule->IsNormalFormInvariant()) {
    rule = nullptr;
  }
  const int n = relation.series_length();
  const int out_n = rule != nullptr ? rule->OutputLength(n) : n;
  if (static_cast<int>(raw_query.size()) != out_n) {
    return Status::InvalidArgument(
        "query series length does not match the transformed data length");
  }

  std::vector<double> query_values;
  if (query.mode == DistanceMode::kNormalForm && !query.query_prenormalized) {
    query_values = ToNormalForm(raw_query).values;
  } else {
    query_values = raw_query;
  }
  const Spectrum query_spectrum = Dft(query_values);

  const bool spectral = rule == nullptr || rule->IsSpectral(n);
  std::optional<LinearTransform> index_transform;
  if (rule != nullptr && spectral) {
    index_transform = rule->IndexTransform(n, config_.num_coefficients);
  }
  const std::optional<Spectrum> multiplier =
      spectral ? MaterializeMultiplier(rule, n) : std::nullopt;
  const Spectrum* mult = multiplier.has_value() ? &*multiplier : nullptr;
  const bool can_use_index =
      query.mode == DistanceMode::kNormalForm &&
      (rule == nullptr || (index_transform.has_value() &&
                           index_transform->IsSafeIn(config_.space)));

  ExecutionStrategy strategy = query.strategy;
  if (strategy == ExecutionStrategy::kAuto) {
    strategy =
        can_use_index ? ExecutionStrategy::kIndex : ExecutionStrategy::kScan;
  }
  if (strategy == ExecutionStrategy::kIndex && !can_use_index) {
    return Status::FailedPrecondition(
        "query is not index-accelerable (requires normal-form mode and a "
        "safe spectral transformation)");
  }

  if (strategy == ExecutionStrategy::kIndex) {
    const std::vector<Complex> query_coeffs =
        ExtractCoefficients(query_spectrum, config_.num_coefficients);
    const NnLowerBound bound(query_coeffs, config_);
    std::vector<DimAffine> affines;
    const std::vector<DimAffine>* affines_ptr = nullptr;
    if (rule != nullptr) {
      affines = LowerToFeatureSpace(*index_transform, config_);
      affines_ptr = &affines;
    }
    const RTree& tree = relation.index();
    const int64_t accesses_before = tree.node_accesses();
    const auto exact = [&](int64_t id) {
      const Record& record = relation.record(id);
      if (!PatternAdmits(record, query.pattern)) {
        return kInf;  // excluded entries sort to the end and are dropped
      }
      ++out.stats.exact_checks;
      return FreqDistance(record.features.normal_spectrum, query_spectrum,
                          mult, kInf);
    };
    const std::vector<std::pair<int64_t, double>> neighbors =
        tree.NearestNeighbors(bound, affines_ptr, query.k, exact);
    out.stats.used_index = true;
    out.stats.node_accesses = tree.node_accesses() - accesses_before;
    for (const auto& [id, distance] : neighbors) {
      if (distance == kInf) {
        continue;
      }
      out.matches.push_back(Match{id, relation.record(id).name, distance});
    }
  } else {
    std::vector<Match> all;
    for (const Record& record : relation.records()) {
      if (!PatternAdmits(record, query.pattern)) {
        continue;
      }
      ++out.stats.exact_checks;
      double distance;
      if (query.mode == DistanceMode::kNormalForm && spectral) {
        distance = FreqDistance(record.features.normal_spectrum,
                                query_spectrum, mult, kInf);
      } else {
        const std::vector<double>& base =
            query.mode == DistanceMode::kNormalForm ? record.normal_values
                                                    : record.raw;
        const std::vector<double> transformed =
            rule != nullptr ? rule->Apply(base) : base;
        distance = EuclideanDistance(transformed, query_values);
      }
      all.push_back(Match{record.id, record.name, distance});
    }
    SortMatches(&all);
    if (static_cast<int>(all.size()) > query.k) {
      all.resize(static_cast<size_t>(query.k));
    }
    out.matches = std::move(all);
  }
  SortMatches(&out.matches);
  return out;
}

Result<QueryResult> Database::SelfJoin(const std::string& relation_name,
                                       double epsilon,
                                       const TransformationRule* rule,
                                       JoinMethod method) const {
  return SelfJoin(relation_name, epsilon, rule, rule, method);
}

Result<QueryResult> Database::SelfJoin(const std::string& relation_name,
                                       double epsilon,
                                       const TransformationRule* left_rule,
                                       const TransformationRule* right_rule,
                                       JoinMethod method) const {
  const Relation* relation = GetRelation(relation_name);
  if (relation == nullptr) {
    return Status::NotFound("no relation named '" + relation_name + "'");
  }
  if (epsilon < 0.0) {
    return Status::InvalidArgument("epsilon must be nonnegative");
  }
  QueryResult out;
  const int64_t count = relation->size();
  if (count == 0) {
    return out;
  }
  const int n = relation->series_length();
  const bool symmetric = left_rule == right_rule;
  if (left_rule != nullptr && left_rule->IsNormalFormInvariant()) {
    left_rule = nullptr;
  }
  if (right_rule != nullptr && right_rule->IsNormalFormInvariant()) {
    right_rule = nullptr;
  }
  for (const TransformationRule* rule : {left_rule, right_rule}) {
    if (rule != nullptr && rule->OutputLength(n) != n) {
      return Status::InvalidArgument(
          "self-join transformations must preserve series length");
    }
  }
  const bool left_spectral = left_rule == nullptr || left_rule->IsSpectral(n);
  const bool right_spectral =
      right_rule == nullptr || right_rule->IsSpectral(n);
  const std::optional<Spectrum> left_multiplier =
      left_spectral ? MaterializeMultiplier(left_rule, n) : std::nullopt;
  const std::optional<Spectrum> right_multiplier =
      right_spectral ? MaterializeMultiplier(right_rule, n) : std::nullopt;
  const Spectrum* left_mult =
      left_multiplier.has_value() ? &*left_multiplier : nullptr;
  const Spectrum* right_mult =
      right_multiplier.has_value() ? &*right_multiplier : nullptr;

  if (method == JoinMethod::kFullScan ||
      method == JoinMethod::kScanEarlyAbandon) {
    const double threshold =
        method == JoinMethod::kFullScan ? kInf : epsilon;
    if (left_spectral && right_spectral) {
      for (int64_t i = 0; i < count; ++i) {
        const Spectrum& a = relation->record(i).features.normal_spectrum;
        for (int64_t j = symmetric ? i + 1 : 0; j < count; ++j) {
          if (j == i) {
            continue;
          }
          const Spectrum& b = relation->record(j).features.normal_spectrum;
          ++out.stats.exact_checks;
          const double distance =
              FreqDistanceTwoSided(a, b, left_mult, right_mult, threshold);
          if (distance <= epsilon) {
            out.pairs.push_back(PairMatch{i, j, distance});
          }
        }
      }
    } else {
      // Non-spectral rule(s): transform every series once per side, then
      // compare in the time domain.
      std::vector<std::vector<double>> left_values(
          static_cast<size_t>(count));
      std::vector<std::vector<double>> right_values(
          static_cast<size_t>(count));
      for (int64_t i = 0; i < count; ++i) {
        const std::vector<double>& base = relation->record(i).normal_values;
        left_values[static_cast<size_t>(i)] =
            left_rule != nullptr ? left_rule->Apply(base) : base;
        right_values[static_cast<size_t>(i)] =
            right_rule != nullptr ? right_rule->Apply(base) : base;
      }
      for (int64_t i = 0; i < count; ++i) {
        for (int64_t j = symmetric ? i + 1 : 0; j < count; ++j) {
          if (j == i) {
            continue;
          }
          ++out.stats.exact_checks;
          const double distance =
              method == JoinMethod::kFullScan
                  ? EuclideanDistance(left_values[static_cast<size_t>(i)],
                                      right_values[static_cast<size_t>(j)])
                  : EuclideanDistanceEarlyAbandon(
                        left_values[static_cast<size_t>(i)],
                        right_values[static_cast<size_t>(j)], epsilon);
          if (distance <= epsilon) {
            out.pairs.push_back(PairMatch{i, j, distance});
          }
        }
      }
    }
    return out;
  }

  // Index nested-loop methods (Table 1 c and d). Probe side: left rule
  // applied to the probe's coefficients; data side: right rule applied to
  // the index on the fly (Algorithm 1).
  std::optional<LinearTransform> left_transform;
  std::optional<LinearTransform> right_transform;
  std::vector<DimAffine> affines;
  const std::vector<DimAffine>* affines_ptr = nullptr;
  const Spectrum* post_left = nullptr;
  const Spectrum* post_right = nullptr;
  if (method == JoinMethod::kIndexTransform) {
    if (!left_spectral || !right_spectral) {
      return Status::FailedPrecondition(
          "index join requires spectral transformations");
    }
    if (left_rule != nullptr) {
      left_transform = left_rule->IndexTransform(n, config_.num_coefficients);
      if (!left_transform.has_value()) {
        return Status::FailedPrecondition(
            "left transformation has no index form");
      }
    }
    if (right_rule != nullptr) {
      right_transform =
          right_rule->IndexTransform(n, config_.num_coefficients);
      if (!right_transform.has_value() ||
          !right_transform->IsSafeIn(config_.space)) {
        return Status::FailedPrecondition(
            "right transformation is not safe in the configured feature "
            "space");
      }
      affines = LowerToFeatureSpace(*right_transform, config_);
      affines_ptr = &affines;
    }
    post_left = left_mult;
    post_right = right_mult;
  }

  const RTree& tree = relation->index();
  const int64_t accesses_before = tree.node_accesses();
  out.stats.used_index = true;
  for (int64_t i = 0; i < count; ++i) {
    const Record& probe = relation->record(i);
    std::vector<Complex> query_coeffs = ExtractCoefficients(
        probe.features.normal_spectrum, config_.num_coefficients);
    if (left_transform.has_value()) {
      query_coeffs = left_transform->Apply(query_coeffs);
    }
    const SearchRegion region =
        SearchRegion::MakeRange(query_coeffs, epsilon, config_);
    std::vector<int64_t> candidates;
    tree.Search(region, affines_ptr, &candidates);
    out.stats.candidates += static_cast<int64_t>(candidates.size());
    for (const int64_t j : candidates) {
      if (j == i) {
        continue;
      }
      ++out.stats.exact_checks;
      const double distance = FreqDistanceTwoSided(
          probe.features.normal_spectrum,
          relation->record(j).features.normal_spectrum, post_left,
          post_right, epsilon);
      if (distance <= epsilon) {
        out.pairs.push_back(PairMatch{i, j, distance});
      }
    }
  }
  out.stats.node_accesses = tree.node_accesses() - accesses_before;
  return out;
}

}  // namespace simq
